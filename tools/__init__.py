"""Repository tooling: the lint fallback and the reprolint analyzer."""
