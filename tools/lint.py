#!/usr/bin/env python
"""Dependency-free fallback linter for ``make lint``.

The canonical linter is ruff, configured under ``[tool.ruff]`` in
pyproject.toml; offline images that do not ship ruff run this instead
(the Makefile picks automatically).  It implements the subset of the
ruff selection the repo actually relies on, all from the standard
library:

* **E999** — the file must parse (``ast.parse``);
* **F401** — unused module-level imports (``__init__.py`` re-export
  modules are exempt, mirroring the ruff per-file ignore);
* **W291/W293** — trailing whitespace;
* **W292** — missing newline at end of file;
* **E501** — lines longer than the configured limit;
* **W191** — tabs in indentation.

Exit status is the number of findings (0 = clean).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

LINE_LENGTH = 100
ROOTS = ("src", "tests", "benchmarks", "examples", "tools")


def iter_sources(repo: Path) -> list[Path]:
    files: list[Path] = []
    for root in ROOTS:
        base = repo / root
        if base.is_dir():
            files.extend(sorted(base.rglob("*.py")))
    return files


def used_names(tree: ast.AST) -> set[str]:
    """Every identifier the module body references, plus ``__all__`` strings."""
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets and isinstance(node.value, (ast.List, ast.Tuple)):
                used.update(
                    elt.value for elt in node.value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                )
    return used


def unused_imports(tree: ast.Module) -> list[tuple[int, str]]:
    """Module-level imports never referenced afterwards."""
    bound: list[tuple[int, str, str]] = []  # (line, bound name, display)
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.partition(".")[0]
                bound.append((node.lineno, name, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                name = alias.asname or alias.name
                bound.append((node.lineno, name, alias.name))
    used = used_names(tree)
    return [(line, display) for line, name, display in bound
            if name not in used]


def lint_file(path: Path, *, init_exempt: bool) -> list[str]:
    text = path.read_text(encoding="utf-8")
    problems: list[str] = []
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: E999 syntax error: {exc.msg}"]

    if not init_exempt:
        for line, name in unused_imports(tree):
            problems.append(f"{path}:{line}: F401 {name!r} imported but unused")

    for i, line in enumerate(text.splitlines(), start=1):
        if line != line.rstrip():
            code = "W293" if not line.strip() else "W291"
            problems.append(f"{path}:{i}: {code} trailing whitespace")
        if len(line) > LINE_LENGTH:
            problems.append(
                f"{path}:{i}: E501 line too long ({len(line)} > {LINE_LENGTH})"
            )
        stripped = line.lstrip(" ")
        if stripped.startswith("\t"):
            problems.append(f"{path}:{i}: W191 tab in indentation")
    if text and not text.endswith("\n"):
        problems.append(f"{path}:{len(text.splitlines())}: W292 no newline at end of file")
    return problems


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    files = iter_sources(repo)
    problems: list[str] = []
    for path in files:
        problems.extend(lint_file(path, init_exempt=path.name == "__init__.py"))
    for p in problems:
        print(p)
    print(f"checked {len(files)} files: "
          f"{len(problems)} finding(s)" if problems else
          f"checked {len(files)} files: clean", file=sys.stderr)
    return min(len(problems), 125)


if __name__ == "__main__":
    raise SystemExit(main())
