"""The flow/concurrency rule family (F1, C1, C2, G1).

Where :mod:`tools.reprolint.rules` checks one file at a time, these
rules consume the cross-file layers — per-function summaries
(:mod:`tools.reprolint.summaries`) and the module graph
(:mod:`tools.reprolint.graph`) — to catch the bug classes the live
asyncio plane (PR 7) introduced, which no single-file syntactic rule
can see:

* **F1** interprocedural RNG-stream provenance: a stream named for
  component X must not flow (directly or through a local binding) into
  a call defined by another component.  This closes the hole left by
  D2, which only inspects the call site that *requests* a stream, not
  where the generator is then passed.
* **C1** await-interleaving hazards in ``repro.live``: shared ``self``
  state read before an ``await`` and written after it without being
  re-read (revalidated) is flagged, as is a fire-and-forget
  ``create_task`` whose exceptions have nowhere to go.
* **C2** asyncio callback exception safety: datagram/protocol callbacks
  run directly off the event loop, so an escaping exception kills the
  transport.  Every risky statement in a callback must sit under the
  counted-never-raised pattern (``except Exception: self.counter += 1``)
  or delegate to a project function that does.
* **G1** codec<->grammar drift: every ``repro.net.messages`` payload
  field must have a wire encoding, every declared wire kind an explicit
  arm in both ``encode`` and ``decode``, the ``type_name`` tags must
  match ``MSG_TYPES`` 1:1, and any grammar change must be acknowledged
  by updating ``GRAMMAR_FINGERPRINT`` (whose version prefix is pinned
  to ``WIRE_VERSION``, so the acknowledgement happens next to the bump).

``docs/analysis.md`` documents each rule with violating/conforming
examples.
"""

from __future__ import annotations

import ast
import hashlib
from typing import Callable, Iterator

from tools.reprolint.engine import Finding, ModuleInfo, Project, Rule, register
from tools.reprolint.summaries import (
    FunctionSummary,
    _is_counting_handler,
    _own_scope,
    _qualname,
    _walk_defs,
)

__all__ = [
    "RngStreamProvenance",
    "AwaitInterleavingHazard",
    "CallbackExceptionSafety",
    "CodecGrammarDrift",
]


def _in_package(module: str, package: str) -> bool:
    return module == package or module.startswith(package + ".")


# -- F1 -------------------------------------------------------------------


@register
class RngStreamProvenance(Rule):
    """F1: a named RNG stream stays inside the component it names.

    The registry's named substreams partition the world's randomness by
    component (D2's premise).  D2 audits the *request* site; F1 follows
    the generator itself: a ``rngs.stream("net:faults")`` handed to a
    constructor defined in ``repro.workloads`` couples the fault and
    churn draw sequences even though every individual call site looks
    disciplined.  Flows are taken from the function summaries (direct
    arguments and single-assignment local bindings) and the callee is
    resolved through the module graph; unresolvable callees (builtins,
    third-party, instance attributes) are skipped, never guessed.
    """

    id = "F1"
    name = "rng-stream-provenance"
    description = "a named RNG stream may not flow into another component"

    #: stream name (or its pre-colon family) -> components allowed to
    #: receive a generator drawn from it.
    STREAM_OWNERS: dict[str, tuple[str, ...]] = {
        "prop:engine": ("repro.core", "repro.net"),
        "net:faults": ("repro.net",),
        "ltm:engine": ("repro.baselines",),
        "pis": ("repro.baselines",),
        "live:traffic": ("repro.live",),
        "churn": ("repro.workloads",),
        "heterogeneity": ("repro.workloads",),
        "topology": ("repro.topology",),
        "oracle": ("repro.topology",),
        "membership": ("repro.harness",),
        "lookup-workload": ("repro.workloads", "repro.harness"),
        "overlay": ("repro.overlay",),
    }

    def _owners(self, stream: str) -> tuple[str, ...] | None:
        if stream in self.STREAM_OWNERS:
            return self.STREAM_OWNERS[stream]
        family = stream.partition(":")[0]
        return self.STREAM_OWNERS.get(family)

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = project.graph()
        summaries = project.summaries()
        for module in sorted(project.modules):
            mod = project.modules[module]
            summary = summaries[module]
            flows = list(summary.module_flows)
            for fn in summary.functions:
                flows.extend(fn.stream_flows)
            for flow in flows:
                component = graph.defining_component(module, flow.callee)
                if component is None:
                    continue  # not provably a project call
                owners = self._owners(flow.stream)
                if owners is None:
                    yield Finding(
                        self.id, mod.rel_path, flow.line, flow.col,
                        f"stream {flow.stream!r} flows into `{flow.callee}` but has "
                        "no registered owner; add it to "
                        "RngStreamProvenance.STREAM_OWNERS",
                    )
                elif component not in owners:
                    allowed = ", ".join(owners)
                    yield Finding(
                        self.id, mod.rel_path, flow.line, flow.col,
                        f"stream {flow.stream!r} flows into `{flow.callee}` "
                        f"(defined in {component}); it is reserved for {allowed} — "
                        "draw the callee's stream from the registry instead",
                    )


# -- C1 -------------------------------------------------------------------

_SPAWNERS = frozenset({"create_task", "ensure_future"})
_Event = tuple[str, str | None, ast.AST]  # kind in {load, store, await}


def _self_chain(node: ast.expr) -> str | None:
    """The dotted chain when ``node`` is a ``self.*`` attribute access."""
    qn = _qualname(node)
    if qn is not None and qn.startswith("self.") and qn != "self":
        return qn
    return None


class _EventWalk:
    """Linearize one async function body into load/store/await events.

    Only ``self``-rooted attribute chains are tracked — they are the
    shared state another task can mutate while this one is suspended.
    The walk follows evaluation order where it matters: assignment
    values before targets, awaited expressions before the suspension
    point itself.
    """

    def __init__(self) -> None:
        self.events: list[_Event] = []

    def walk(self, body: list[ast.stmt]) -> list[_Event]:
        for stmt in body:
            self._stmt(stmt)
        return self.events

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scope, analyzed separately
        if isinstance(node, ast.Assign):
            self._expr(node.value)
            for t in node.targets:
                self._store(t)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._expr(node.value)
                self._store(node.target)
        elif isinstance(node, ast.AugAssign):
            self._expr(node.value)
            chain = _self_chain(node.target)
            if chain is not None:
                self.events.append(("load", chain, node.target))
                self.events.append(("store", chain, node.target))
        elif isinstance(node, ast.AsyncFor):
            self._expr(node.iter)
            self.events.append(("await", None, node))
            self._store(node.target)
            for s in [*node.body, *node.orelse]:
                self._stmt(s)
        elif isinstance(node, ast.AsyncWith):
            for item in node.items:
                self._expr(item.context_expr)
            self.events.append(("await", None, node))
            for s in node.body:
                self._stmt(s)
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._stmt(child)
                elif isinstance(child, ast.expr):
                    self._expr(child)
                elif isinstance(child, ast.ExceptHandler):
                    for s in child.body:
                        self._stmt(s)
                elif isinstance(child, (ast.withitem, ast.keyword)):
                    for sub in ast.iter_child_nodes(child):
                        if isinstance(sub, ast.expr):
                            self._expr(sub)

    def _expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Await):
            self._expr(node.value)
            self.events.append(("await", None, node))
            return
        if isinstance(node, ast.Lambda):
            return
        chain = _self_chain(node)
        if chain is not None:
            self.events.append(("load", chain, node))
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, (ast.keyword, ast.comprehension)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.expr):
                        self._expr(sub)

    def _store(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store(elt)
        elif isinstance(target, ast.Starred):
            self._store(target.value)
        elif isinstance(target, ast.Subscript):
            self._expr(target.slice)
            chain = _self_chain(target.value)
            if chain is not None:
                self.events.append(("store", chain, target))
        elif isinstance(target, ast.Attribute):
            chain = _self_chain(target)
            if chain is not None:
                self.events.append(("store", chain, target))


@register
class AwaitInterleavingHazard(Rule):
    """C1: await points in ``repro.live`` must not invalidate cached state.

    Every ``await`` is a point where *any* other task (a datagram
    callback, a timer, another protocol round) may run and mutate shared
    engine/overlay state.  A value of ``self.x`` read before the await
    and used to write ``self.x`` after it silently overwrites whatever
    the interleaved task did — the classic lost-update.  The fix is
    either to finish the read-modify-write before suspending or to
    re-read (revalidate) after resuming; a post-await re-read of the
    same chain clears the finding.

    The second hazard is ``asyncio.create_task`` with the returned task
    discarded: its exception is swallowed until garbage collection logs
    an opaque "Task exception was never retrieved".  The task must be
    awaited, gathered, passed somewhere that manages it, or given an
    ``add_done_callback`` exception sink.
    """

    id = "C1"
    name = "await-interleaving-hazard"
    description = "stale read-across-await writes and sink-less create_task"

    SCOPE = "repro.live"

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        if not _in_package(mod.module, self.SCOPE):
            return
        for _cls, fn in _walk_defs(mod.tree.body, None):
            if isinstance(fn, ast.AsyncFunctionDef):
                yield from self._check_interleaving(mod, fn)
            yield from self._check_fire_and_forget(mod, fn)

    def _check_interleaving(
        self, mod: ModuleInfo, fn: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        events = _EventWalk().walk(fn.body)
        awaits = [i for i, (kind, _, _) in enumerate(events) if kind == "await"]
        if not awaits:
            return
        reported: set[str] = set()
        for k, (kind, chain, node) in enumerate(events):
            if kind != "store" or chain is None or chain in reported:
                continue
            before = [i for i in awaits if i < k]
            if not before:
                continue
            last_await = before[-1]
            loads = [
                i
                for i, (ek, ec, _) in enumerate(events)
                if ek == "load" and ec == chain
            ]
            read_before_suspend = any(i < last_await for i in loads)
            revalidated = any(last_await < i < k for i in loads)
            if read_before_suspend and not revalidated:
                reported.add(chain)
                yield mod.finding(
                    self.id, node,
                    f"`{chain}` was read before an `await` and is written here "
                    "without being re-read after resuming; another task may have "
                    "changed it across the suspension — revalidate after the "
                    "await or restructure the update to complete before it",
                )

    def _check_fire_and_forget(
        self, mod: ModuleInfo, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in _own_scope(fn.body):
            if isinstance(node, ast.Expr) and self._is_spawn(node.value):
                yield mod.finding(
                    self.id, node,
                    "fire-and-forget task: the Task object (and its exception) "
                    "is discarded; keep a reference and await/gather it or "
                    "attach an add_done_callback exception sink",
                )
            elif (
                isinstance(node, ast.Assign)
                and self._is_spawn(node.value)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                name = node.targets[0].id
                if not self._has_sink(fn, name):
                    yield mod.finding(
                        self.id, node,
                        f"task bound to `{name}` has no exception sink: it is "
                        "never awaited, gathered, handed off, or given an "
                        "add_done_callback",
                    )

    @staticmethod
    def _is_spawn(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and (_qualname(node.func) or "").rpartition(".")[2] in _SPAWNERS
        )

    @staticmethod
    def _has_sink(
        fn: ast.FunctionDef | ast.AsyncFunctionDef, name: str
    ) -> bool:
        def mentions(sub: ast.AST) -> bool:
            return any(
                isinstance(n, ast.Name) and n.id == name for n in ast.walk(sub)
            )

        for node in _own_scope(fn.body):
            if isinstance(node, ast.Await) and mentions(node.value):
                return True
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "add_done_callback"
                    and _qualname(func.value) == name
                ):
                    return True
                if AwaitInterleavingHazard._is_spawn(node):
                    continue  # the spawn call itself is not a sink
                args = [*node.args, *(kw.value for kw in node.keywords)]
                if any(mentions(a) for a in args):
                    return True  # handed off to something that manages it
            if isinstance(node, ast.Return) and node.value and mentions(node.value):
                return True  # the caller owns it now
        return False


# -- C2 -------------------------------------------------------------------


@register
class CallbackExceptionSafety(Rule):
    """C2: asyncio protocol callbacks follow counted-never-raised.

    ``datagram_received`` and friends are invoked directly by the event
    loop; an exception escaping one is routed to the loop's exception
    handler, detaching the transport mid-experiment.  The live plane's
    contract (transport module docs) is that malformed input and handler
    failures are *counted, never raised*.  A callback passes when every
    risky statement (a call or a raise) either sits under a broad
    counting ``except`` or delegates to a project function whose own
    body is exception-safe (resolved through the module graph / class
    summaries, so the pattern may live one call deep).
    """

    id = "C2"
    name = "callback-exception-safety"
    description = "protocol callbacks must count errors, never raise"

    SCOPE = "repro.live"
    CALLBACKS = frozenset(
        {"datagram_received", "error_received", "connection_made",
         "connection_lost"}
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        summaries = project.summaries()
        graph = project.graph()
        for module in sorted(project.modules):
            if not _in_package(module, self.SCOPE):
                continue
            mod = project.modules[module]
            summary = summaries[module]
            for fn in summary.functions:
                if fn.name not in self.CALLBACKS or fn.cls is None:
                    continue
                if fn.exception_safe:
                    continue

                def resolves_safe(call: ast.Call, fn: FunctionSummary = fn) -> bool:
                    return self._call_is_safe(call, fn, module, summaries, graph)

                if self._callback_safe(fn.node.body, False, resolves_safe):
                    continue
                yield mod.finding(
                    self.id, fn.node,
                    f"`{fn.qualname}` is an event-loop callback but can raise: "
                    "wrap risky statements in the counted-never-raised pattern "
                    "(`except Exception: self.<counter> += 1`) or delegate to "
                    "a helper that does",
                )

    def _call_is_safe(
        self,
        call: ast.Call,
        fn: FunctionSummary,
        module: str,
        summaries: dict[str, object],
        graph: object,
    ) -> bool:
        qn = _qualname(call.func)
        if qn is None:
            return False
        if qn.startswith("self.") and qn.count(".") == 1:
            target = summaries[module].get(f"{fn.cls}.{qn[5:]}")  # type: ignore[attr-defined]
            return target is not None and target.exception_safe
        resolved = graph.resolve(module, qn)  # type: ignore[attr-defined]
        if resolved is None:
            return False
        def_module, symbol = resolved
        target_summary = summaries.get(def_module)
        if target_summary is None:
            return False
        target = target_summary.get(symbol)  # type: ignore[attr-defined]
        return target is not None and target.exception_safe

    def _callback_safe(
        self,
        body: list[ast.stmt],
        guarded: bool,
        is_safe: Callable[[ast.Call], bool],
    ) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Try):
                inner = guarded or any(
                    _is_counting_handler(h) for h in stmt.handlers
                )
                if not self._callback_safe(stmt.body, inner, is_safe):
                    return False
                for h in stmt.handlers:
                    if not self._callback_safe(h.body, guarded, is_safe):
                        return False
                if not self._callback_safe(stmt.orelse, guarded, is_safe):
                    return False
                if not self._callback_safe(stmt.finalbody, guarded, is_safe):
                    return False
            elif isinstance(
                stmt, (ast.If, ast.For, ast.While, ast.With, ast.AsyncFor,
                       ast.AsyncWith)
            ):
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    headers: list[ast.expr] = [
                        item.context_expr for item in stmt.items
                    ]
                else:
                    headers = [
                        c for c in ast.iter_child_nodes(stmt)
                        if isinstance(c, ast.expr)
                    ]
                if not guarded and any(
                    isinstance(n, ast.Call) and not is_safe(n)
                    for h in headers
                    for n in ast.walk(h)
                ):
                    return False
                for block in (
                    stmt.body,
                    getattr(stmt, "orelse", []),
                ):
                    if not self._callback_safe(block, guarded, is_safe):
                        return False
            elif not guarded and self._risky_stmt(stmt, is_safe):
                return False
        return True

    @staticmethod
    def _risky_stmt(stmt: ast.stmt, is_safe: Callable[[ast.Call], bool]) -> bool:
        for node in _own_scope([stmt]):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call) and not is_safe(node):
                return True
        return False


# -- G1 -------------------------------------------------------------------


@register
class CodecGrammarDrift(Rule):
    """G1: the wire codec and the message grammar cannot drift apart.

    The live plane's determinism bridge rests on "a decoded message is
    byte-for-byte the dataclass the engine would have received in the
    simulator".  Three ways that silently breaks, all caught here
    statically (the round-trip property test only covers fields that
    *both* sides already know about):

    * a grammar field whose annotation has no entry in the codec's
      declared ``WIRE_KINDS`` (it would raise at import, but only when
      the live plane is actually imported);
    * a wire kind declared in ``WIRE_KINDS`` with no explicit
      ``kind == "..."`` arm in ``encode`` *and* ``decode`` (deleting an
      arm must fail analyze — the acceptance test pins this);
    * a ``type_name`` tag set diverging from ``MSG_TYPES``, which
      renumbers wire tags.

    Finally the grammar is fingerprinted (sha256 over every message's
    name and annotated payload fields, in ``MSG_TYPES`` order) and the
    codec must carry the current value in ``GRAMMAR_FINGERPRINT`` with a
    version prefix equal to ``WIRE_VERSION`` — so any grammar change
    forces an edit right next to the version constant, where the bump
    decision belongs.
    """

    id = "G1"
    name = "codec-grammar-drift"
    description = "messages grammar <-> wire codec must agree, with fingerprint"

    MESSAGES_MODULE = "repro.net.messages"
    CODEC_MODULE = "repro.live.codec"
    BASE_CLASS = "Message"

    def check_project(self, project: Project) -> Iterator[Finding]:
        messages = project.modules.get(self.MESSAGES_MODULE)
        codec = project.modules.get(self.CODEC_MODULE)
        if messages is None or codec is None:
            return
        grammar = self._grammar(messages)  # class name -> (type_name, fields)
        msg_types = self._msg_types(messages)
        wire_kinds = self._wire_kinds(codec)

        if wire_kinds is None:
            yield codec.finding(
                self.id, 1,
                "codec must declare a literal `WIRE_KINDS` dict mapping "
                "annotation text to wire kind",
            )
            return

        # 1. every payload field has a wire encoding
        for cls_name, (_tname, fields_) in sorted(grammar.items()):
            for fname, ann, line in fields_:
                if ann not in wire_kinds:
                    yield messages.finding(
                        self.id, line,
                        f"`{cls_name}.{fname}` is annotated `{ann}`, which has "
                        "no entry in the codec's WIRE_KINDS; add a wire "
                        "encoding (and bump WIRE_VERSION)",
                    )

        # 2. every declared kind has an explicit arm in encode and decode
        for func_name in ("encode", "decode"):
            fn = self._function(codec, func_name)
            if fn is None:
                yield codec.finding(
                    self.id, 1,
                    f"codec has no `{func_name}` function to check kind "
                    "coverage against",
                )
                continue
            arms = self._kind_arms(fn)
            for kind in sorted(set(wire_kinds.values())):
                if kind not in arms:
                    yield codec.finding(
                        self.id, fn,
                        f"`{func_name}` has no `kind == \"{kind}\"` arm for a "
                        "kind declared in WIRE_KINDS",
                    )
            for kind in sorted(arms - set(wire_kinds.values())):
                yield codec.finding(
                    self.id, fn,
                    f"`{func_name}` has an arm for kind \"{kind}\" that "
                    "WIRE_KINDS does not declare (dead arm or missing entry)",
                )

        # 3. type_name tags <-> MSG_TYPES, 1:1
        declared_tags = {tname for tname, _ in grammar.values()}
        for tag in sorted(set(msg_types) - declared_tags):
            yield messages.finding(
                self.id, 1,
                f"MSG_TYPES names {tag!r} but no message class declares it "
                "as type_name",
            )
        for cls_name, (tname, _) in sorted(grammar.items()):
            if tname not in msg_types:
                yield messages.finding(
                    self.id, 1,
                    f"message class `{cls_name}` has type_name {tname!r} which "
                    "MSG_TYPES does not list; the wire tag table is stale",
                )

        # 4. fingerprint acknowledgement
        version = self._int_constant(codec, "WIRE_VERSION")
        declared_fp = self._str_constant(codec, "GRAMMAR_FINGERPRINT")
        expected = self._fingerprint(grammar, msg_types, version)
        if declared_fp is None:
            yield codec.finding(
                self.id, 1,
                f"codec must declare GRAMMAR_FINGERPRINT = {expected!r} "
                "(the current grammar's fingerprint)",
            )
        elif declared_fp != expected:
            yield codec.finding(
                self.id, 1,
                f"GRAMMAR_FINGERPRINT is {declared_fp!r} but the grammar "
                f"hashes to {expected!r}; the message grammar changed — "
                "update the fingerprint and bump WIRE_VERSION",
            )

    # -- extraction helpers ------------------------------------------------

    def _grammar(
        self, mod: ModuleInfo
    ) -> dict[str, tuple[str, list[tuple[str, str, int]]]]:
        """class name -> (type_name literal, [(field, annotation, line)]).

        Payload fields include those *inherited* from the base class —
        ``dataclasses.fields()`` lists base-class fields first, so the
        runtime fingerprint sees them and the static one must too (the
        span-context ids on ``Message`` ride every subclass's wire form).
        """
        base_fields: list[tuple[str, str, int]] = []
        for node in mod.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == self.BASE_CLASS:
                base_fields = self._class_payload_fields(node)
                break
        out: dict[str, tuple[str, list[tuple[str, str, int]]]] = {}
        for node in mod.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            is_message = any(
                (_qualname(b) or "").rpartition(".")[2] == self.BASE_CLASS
                for b in node.bases
            )
            if not is_message:
                continue
            tname: str | None = None
            for item in node.body:
                if (
                    isinstance(item, ast.AnnAssign)
                    and isinstance(item.target, ast.Name)
                    and item.target.id == "type_name"
                    and isinstance(item.value, ast.Constant)
                    and isinstance(item.value.value, str)
                ):
                    tname = item.value.value
            if tname is not None:
                out[node.name] = (
                    tname,
                    base_fields + self._class_payload_fields(node),
                )
        return out

    @staticmethod
    def _class_payload_fields(node: ast.ClassDef) -> list[tuple[str, str, int]]:
        """The annotated payload fields declared in one class body."""
        fields_: list[tuple[str, str, int]] = []
        for item in node.body:
            if not (
                isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
            ):
                continue
            ann = ast.unparse(item.annotation)
            if (
                item.target.id not in ("src", "dst", "type_name")
                and "ClassVar" not in ann
            ):
                fields_.append((item.target.id, ann, item.lineno))
        return fields_

    @staticmethod
    def _msg_types(mod: ModuleInfo) -> tuple[str, ...]:
        for node in mod.tree.body:
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "MSG_TYPES"
                for t in node.targets
            ):
                value = node.value
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == "MSG_TYPES"
            ):
                value = node.value
            if isinstance(value, ast.Tuple):
                return tuple(
                    e.value
                    for e in value.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                )
        return ()

    @staticmethod
    def _wire_kinds(mod: ModuleInfo) -> dict[str, str] | None:
        for node in mod.tree.body:
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "WIRE_KINDS"
                for t in node.targets
            ):
                value = node.value
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == "WIRE_KINDS"
            ):
                value = node.value
            if isinstance(value, ast.Dict):
                out: dict[str, str] = {}
                for k, v in zip(value.keys, value.values):
                    if (
                        isinstance(k, ast.Constant)
                        and isinstance(k.value, str)
                        and isinstance(v, ast.Constant)
                        and isinstance(v.value, str)
                    ):
                        out[k.value] = v.value
                return out
        return None

    @staticmethod
    def _function(mod: ModuleInfo, name: str) -> ast.FunctionDef | None:
        for node in mod.tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == name:
                return node
        return None

    @staticmethod
    def _kind_arms(fn: ast.FunctionDef) -> set[str]:
        """Every string K compared as ``kind == "K"`` inside ``fn``."""
        arms: set[str] = set()
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Compare)
                and isinstance(node.left, ast.Name)
                and node.left.id == "kind"
                and len(node.ops) == 1
                and isinstance(node.ops[0], ast.Eq)
                and isinstance(node.comparators[0], ast.Constant)
                and isinstance(node.comparators[0].value, str)
            ):
                continue
            arms.add(node.comparators[0].value)
        return arms

    @staticmethod
    def _int_constant(mod: ModuleInfo, name: str) -> int | None:
        for node in mod.tree.body:
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == name
                    for t in node.targets
                )
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, int)
            ):
                return node.value.value
        return None

    @staticmethod
    def _str_constant(mod: ModuleInfo, name: str) -> str | None:
        for node in mod.tree.body:
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == name
                    for t in node.targets
                )
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                return node.value.value
        return None

    @staticmethod
    def _fingerprint(
        grammar: dict[str, tuple[str, list[tuple[str, str, int]]]],
        msg_types: tuple[str, ...],
        version: int | None,
    ) -> str:
        """Canonical grammar hash: names + annotated payload fields, in
        wire-tag order.  Must match :func:`repro.live.codec.grammar_fingerprint`."""
        by_tag = {tname: fields_ for tname, fields_ in grammar.values()}
        parts = []
        for tname in msg_types:
            fields_ = by_tag.get(tname)
            if fields_ is None:
                continue  # already reported as a tag mismatch
            spec = " ".join(f"{fname}:{ann}" for fname, ann, _ in fields_)
            parts.append(f"{tname} {spec}".rstrip())
        digest = hashlib.sha256(";".join(parts).encode("utf-8")).hexdigest()[:16]
        return f"{version if version is not None else '?'}:{digest}"
