"""reprolint CLI.

Usage (from the repo root)::

    python -m tools.reprolint                  # analyze src/repro, text output
    python -m tools.reprolint --format json
    python -m tools.reprolint --update-baseline
    python -m tools.reprolint --list-rules
    python -m tools.reprolint --select D1,D3 --root some/tree

Exit codes: 0 clean (all findings baselined), 1 new findings, 2 stale
baseline (it lists findings that no longer occur — regenerate with
``--update-baseline`` / ``make analyze-baseline``), 3 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.reprolint.engine import (
    analyze,
    baseline_diff,
    iter_rules,
    load_baseline,
    save_baseline,
    write_report,
)

DEFAULT_ROOT = "src/repro"
DEFAULT_BASELINE = "tools/reprolint/baseline.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint", description="PROP reproduction invariant analyzer"
    )
    parser.add_argument("--root", default=DEFAULT_ROOT,
                        help="package tree to analyze (default: src/repro)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline file of grandfathered findings")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline: report every finding")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current findings")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids (default: all)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.id}  {rule.name}: {rule.description}")
        return 0

    root = Path(args.root)
    if not root.is_dir():
        print(f"reprolint: analysis root {root} is not a directory", file=sys.stderr)
        return 3

    select = [s.strip() for s in args.select.split(",")] if args.select else None
    findings = analyze(root, select=select)

    if args.update_baseline:
        save_baseline(Path(args.baseline), findings)
        print(f"reprolint: baseline rewritten with {len(findings)} finding(s)")
        return 0

    baseline = load_baseline(Path(args.baseline)) if not args.no_baseline else None
    if baseline is None:
        new, stale = findings, []
    else:
        new, stale = baseline_diff(findings, baseline)

    write_report(new, fmt=args.format)
    if stale:
        for fp in stale:
            print(f"stale baseline entry (finding no longer occurs): {fp}",
                  file=sys.stderr)
        print(
            f"reprolint: baseline is stale ({len(stale)} entries); regenerate "
            "with `make analyze-baseline`",
            file=sys.stderr,
        )
    n_baselined = len(findings) - len(new)
    summary = f"reprolint: {len(new)} new finding(s), {n_baselined} baselined"
    print(summary, file=sys.stderr)
    if new:
        return 1
    if stale:
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
