"""reprolint CLI.

Usage (from the repo root)::

    python -m tools.reprolint                  # analyze src/repro, text output
    python -m tools.reprolint --jobs 4         # parallel per-file analysis
    python -m tools.reprolint --format json
    python -m tools.reprolint --json-out findings.json
    python -m tools.reprolint --update-baseline
    python -m tools.reprolint --list-rules
    python -m tools.reprolint --list-suppressions
    python -m tools.reprolint --select D1,D3 --root some/tree

Exit codes: 0 clean (all findings baselined), 1 new findings (or, under
``--list-suppressions``, stale suppressions), 2 stale baseline (it lists
findings that no longer occur — regenerate with ``--update-baseline`` /
``make analyze-baseline``), 3 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.reprolint.engine import (
    analyze_full,
    baseline_diff,
    iter_rules,
    load_baseline,
    save_baseline,
    write_report,
)

DEFAULT_ROOT = "src/repro"
DEFAULT_BASELINE = "tools/reprolint/baseline.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint", description="PROP reproduction invariant analyzer"
    )
    parser.add_argument("--root", default=DEFAULT_ROOT,
                        help="package tree to analyze (default: src/repro)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline file of grandfathered findings")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline: report every finding")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current findings")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--json-out", default=None, metavar="FILE",
                        help="also write the non-baselined findings to FILE "
                             "as JSON (for CI artifacts)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parse/analyze files over N processes "
                             "(output is byte-identical to serial)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids (default: all)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--list-suppressions", action="store_true",
                        help="report `# reprolint: disable=` comments that "
                             "mask no finding (exit 1 if any)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.id}  {rule.name}: {rule.description}")
        return 0

    if args.jobs < 1:
        print("reprolint: --jobs must be >= 1", file=sys.stderr)
        return 3

    root = Path(args.root)
    if not root.is_dir():
        print(f"reprolint: analysis root {root} is not a directory", file=sys.stderr)
        return 3

    select = [s.strip() for s in args.select.split(",")] if args.select else None
    findings, audit = analyze_full(root, select=select, jobs=args.jobs)

    if args.list_suppressions:
        for path, line, token in audit.stale:
            print(f"{path}:{line}: suppression '{token}' masks no finding")
        print(
            f"reprolint: {len(audit.stale)} stale suppression(s) of "
            f"{len(audit.declared)} declared",
            file=sys.stderr,
        )
        return 1 if audit.stale else 0

    if args.update_baseline:
        save_baseline(Path(args.baseline), findings)
        print(f"reprolint: baseline rewritten with {len(findings)} finding(s)")
        return 0

    baseline = load_baseline(Path(args.baseline)) if not args.no_baseline else None
    if baseline is None:
        new, stale = findings, []
    else:
        new, stale = baseline_diff(findings, baseline)

    write_report(new, fmt=args.format)
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps([f.__dict__ for f in new], indent=2) + "\n",
            encoding="utf-8",
        )
    if stale:
        for fp in stale:
            print(f"stale baseline entry (finding no longer occurs): {fp}",
                  file=sys.stderr)
        print(
            f"reprolint: baseline is stale ({len(stale)} entries); regenerate "
            "with `make analyze-baseline`",
            file=sys.stderr,
        )
    n_baselined = len(findings) - len(new)
    summary = f"reprolint: {len(new)} new finding(s), {n_baselined} baselined"
    print(summary, file=sys.stderr)
    if new:
        return 1
    if stale:
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
