"""The reprolint rule catalogue (D1-D7).

Each rule encodes one invariant the reproduction's claims rest on; the
module docstrings of the checked packages state the invariants in prose,
this file makes them machine-checked.  ``docs/analysis.md`` documents
every rule with examples of violating and conforming code.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from tools.reprolint.engine import Finding, ModuleInfo, Project, Rule, register

__all__ = [
    "NoWallClockRandomness",
    "RngStreamDiscipline",
    "SortedSetIteration",
    "HandlerExhaustiveness",
    "ExchangeAtomicity",
    "ConfigCoverage",
    "TracedEventEmission",
]


def _qualname(node: ast.AST) -> str | None:
    """Dotted source text of a Name/Attribute chain ("self.rng.random")."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


#: Generator draw methods — calling one of these consumes RNG state.
DRAW_METHODS = frozenset(
    {
        "random",
        "integers",
        "choice",
        "shuffle",
        "permutation",
        "permuted",
        "exponential",
        "normal",
        "uniform",
        "standard_normal",
        "poisson",
        "binomial",
        "bytes",
    }
)


# -- D1 -------------------------------------------------------------------


@register
class NoWallClockRandomness(Rule):
    """D1: no unseeded randomness or wall-clock reads under ``src/repro``.

    Bit-for-bit determinism (same seed -> same exchange sequence, the
    property the ``latency_scale=0`` bridge test pins) requires every
    draw to flow from an injected, seeded ``numpy.random.Generator`` and
    every timestamp from the simulation clock.
    """

    id = "D1"
    name = "no-wallclock-randomness"
    description = "stdlib random / wall clock / unseeded numpy RNG forbidden"

    #: packages sanctioned to read wall clocks: the live deployment plane
    #: (repro.live) runs protocol timers on real time *by design* — that
    #: is the whole point of the plane — and the profiling plane
    #: (repro.obs.prof) exists to attribute wall seconds and never feeds
    #: them back into protocol state.  The allowlist scopes ONLY the
    #: wall-clock half of D1; unseeded randomness stays forbidden in
    #: every package, including these (a live run must still be
    #: seed-reproducible in everything but timing).
    WALLCLOCK_ALLOW: tuple[str, ...] = ("repro.live", "repro.obs.prof")

    _WALLCLOCK = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "datetime.now",
            "datetime.utcnow",
            "datetime.today",
            "date.today",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )
    _NP_LEGACY = frozenset(
        {
            "seed",
            "rand",
            "randn",
            "randint",
            "random",
            "random_sample",
            "ranf",
            "sample",
            "choice",
            "shuffle",
            "permutation",
            "uniform",
            "normal",
            "exponential",
            "standard_normal",
            "get_state",
            "set_state",
        }
    )

    #: modules whose imports participate in alias resolution: aliasing
    #: one of these (``import time as _time``) must not dodge the rule.
    _CLOCK_MODULES = ("time", "datetime")

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        # First pass: collect import aliases so `import time as _time` /
        # `from time import monotonic as mono` resolve to the canonical
        # dotted names the deny-set is keyed by (the alias dodge).
        module_aliases: dict[str, str] = {}
        name_aliases: dict[str, str] = {}
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if (
                        alias.asname
                        and alias.asname != alias.name
                        and alias.name.partition(".")[0] in self._CLOCK_MODULES
                    ):
                        module_aliases[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module in self._CLOCK_MODULES:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    name_aliases[bound] = f"{node.module}.{alias.name}"
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield mod.finding(
                            self.id, node,
                            "stdlib `random` imported; inject a seeded "
                            "numpy Generator instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield mod.finding(
                        self.id, node,
                        "import from stdlib `random`; inject a seeded "
                        "numpy Generator instead",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(mod, node, module_aliases, name_aliases)

    def _wallclock_allowed(self, module: str) -> bool:
        return any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in self.WALLCLOCK_ALLOW
        )

    @staticmethod
    def _resolve_alias(
        qn: str, module_aliases: dict[str, str], name_aliases: dict[str, str]
    ) -> str:
        head, _, rest = qn.partition(".")
        if rest:
            # `import time as _time` -> _time.monotonic, and
            # `from datetime import datetime as dt` -> dt.now
            target = module_aliases.get(head) or name_aliases.get(head)
            return f"{target}.{rest}" if target is not None else qn
        # `from time import monotonic as mono` -> mono()
        return name_aliases.get(qn, qn)

    def _check_call(
        self,
        mod: ModuleInfo,
        node: ast.Call,
        module_aliases: dict[str, str],
        name_aliases: dict[str, str],
    ) -> Iterator[Finding]:
        qn = _qualname(node.func)
        if qn is None:
            return
        qn = self._resolve_alias(qn, module_aliases, name_aliases)
        if qn in self._WALLCLOCK:
            if not self._wallclock_allowed(mod.module):
                yield mod.finding(
                    self.id, node,
                    f"wall-clock call `{qn}()`; use the simulation clock (sim.now)",
                )
            return
        if (qn == "Random" or qn.endswith(".Random")) and not node.args:
            yield mod.finding(
                self.id, node,
                "argless `Random()` seeds from the OS; inject a seeded Generator",
            )
            return
        if qn.endswith("default_rng") and not node.args and not node.keywords:
            yield mod.finding(
                self.id, node,
                "unseeded `default_rng()` draws OS entropy; pass an explicit seed "
                "or inject a Generator",
            )
            return
        head, _, tail = qn.rpartition(".")
        if tail in self._NP_LEGACY and (
            head in ("np.random", "numpy.random") or head.endswith(".np.random")
        ):
            yield mod.finding(
                self.id, node,
                f"legacy global-state numpy RNG `{qn}()`; draw from an injected "
                "seeded Generator",
            )


# -- D2 -------------------------------------------------------------------


@register
class RngStreamDiscipline(Rule):
    """D2: each component draws only from its own named RNG stream.

    The registry's per-name substreams are what make A/B protocol
    comparisons meaningful ("same world, different protocol"): the fault
    decorator draws only from ``net:faults`` and the protocol engines
    only from ``prop:engine``, so enabling faults never perturbs the
    protocol's draw sequence.  A single cross-stream read silently
    couples the two.
    """

    id = "D2"
    name = "rng-stream-discipline"
    description = "components must draw only from their own named RNG stream"

    #: module -> stream-name literals it may request from the registry.
    STREAM_ALLOW: dict[str, frozenset[str]] = {
        "repro.core.protocol": frozenset({"prop:engine"}),
        "repro.core.timed_protocol": frozenset({"prop:engine"}),
        "repro.net.engine": frozenset({"prop:engine"}),
        "repro.net.faults": frozenset({"net:faults"}),
        "repro.net.transport": frozenset(),
        "repro.net.messages": frozenset(),
    }
    #: modules whose draws must come from the component's own injected
    #: generator (``self.rng``), never a collaborator's.
    _OWN_RNG_ONLY = frozenset({"repro.net.faults"})
    #: protocol modules: draws must use the engine stream (``self.rng``)
    #: or a generator explicitly passed in as a parameter named ``rng``.
    _PROTOCOL = frozenset(
        {"repro.core.protocol", "repro.core.timed_protocol", "repro.net.engine"}
    )
    #: RNG-free modules: any generator draw at all is a violation.
    _RNG_FREE = frozenset({"repro.net.transport", "repro.net.messages"})

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        if mod.module not in self.STREAM_ALLOW:
            return
        allowed = self.STREAM_ALLOW[mod.module]
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in ("stream", "fresh"):
                yield from self._check_stream_request(mod, node, allowed)
            elif func.attr in DRAW_METHODS:
                yield from self._check_draw(mod, node, func)

    def _check_stream_request(
        self, mod: ModuleInfo, node: ast.Call, allowed: frozenset[str]
    ) -> Iterator[Finding]:
        if not node.args:
            return
        arg = node.args[0]
        if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
            yield mod.finding(
                self.id, node,
                "RNG stream name must be a string literal so stream usage "
                "is auditable",
            )
            return
        if arg.value not in allowed:
            names = ", ".join(sorted(allowed)) or "none"
            yield mod.finding(
                self.id, node,
                f"stream {arg.value!r} requested; {mod.module} may only use: {names}",
            )

    def _check_draw(
        self, mod: ModuleInfo, node: ast.Call, func: ast.Attribute
    ) -> Iterator[Finding]:
        recv = _qualname(func.value)
        if recv is None:
            return
        # only receivers that look like generators: `rng`, `self.rng`,
        # `x.y.rng` — draw-named methods on other objects are unrelated.
        if not (recv == "rng" or recv == "self.rng" or recv.endswith(".rng")):
            return
        if mod.module in self._RNG_FREE:
            yield mod.finding(
                self.id, node,
                f"RNG draw `{recv}.{func.attr}()` in RNG-free module {mod.module}",
            )
        elif mod.module in self._OWN_RNG_ONLY and recv != "self.rng":
            yield mod.finding(
                self.id, node,
                f"cross-stream draw `{recv}.{func.attr}()`; {mod.module} may only "
                "draw from its injected fault stream (self.rng)",
            )
        elif mod.module in self._PROTOCOL and recv not in ("self.rng", "rng"):
            yield mod.finding(
                self.id, node,
                f"cross-stream draw `{recv}.{func.attr}()`; protocol code may only "
                "draw from the engine stream (self.rng)",
            )


# -- D3 -------------------------------------------------------------------


class _SetTypedNames(ast.NodeVisitor):
    """Per-scope pass 1: local names bound to set-typed expressions."""

    def __init__(self) -> None:
        self.set_names: set[str] = set()
        self.adj_names: set[str] = set()  # names aliasing an `_adj` list-of-sets

    def visit_Assign(self, node: ast.Assign) -> None:
        self._bind(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._bind([node.target], node.value)
        self.generic_visit(node)

    def _bind(self, targets: list[ast.expr], value: ast.expr) -> None:
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            return
        if _is_set_expr(value, self.set_names, self.adj_names):
            self.set_names.update(names)
        elif _is_adj_attr(value):
            self.adj_names.update(names)

    # nested functions have their own scope; don't leak bindings
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _walk_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a scope's statements without descending into nested defs
    (each function body is analyzed as its own scope)."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # a def in this scope's body opens its own scope
        stack.extend(ast.iter_child_nodes(node))


def _is_adj_attr(node: ast.expr) -> bool:
    """``self._adj`` / ``overlay._adj`` — the adjacency list-of-sets."""
    return isinstance(node, ast.Attribute) and node.attr == "_adj"


def _is_set_expr(node: ast.expr, set_names: set[str], adj_names: set[str]) -> bool:
    """Syntactically set-typed: literals, set()/frozenset(), .keys(),
    subscripts of an ``_adj`` adjacency table, set algebra thereof."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return True
        return False
    if isinstance(node, ast.Subscript):
        v = node.value
        return _is_adj_attr(v) or (isinstance(v, ast.Name) and v.id in adj_names)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names, adj_names) or _is_set_expr(
            node.right, set_names, adj_names
        )
    return False


@register
class SortedSetIteration(Rule):
    """D3: set iteration feeding a protocol decision must be sorted.

    Set iteration order is an implementation detail of the hash table;
    when it selects neighbors, orders exchange candidates, or builds the
    lists RNG indices are drawn against, the topology trajectory depends
    on interpreter internals instead of the seed.  Any ``for``/
    comprehension/materialization over a set-typed expression in the
    protocol-decision packages must go through ``sorted()`` (or carry a
    suppression justifying order-independence).
    """

    id = "D3"
    name = "sorted-set-iteration"
    description = "set/dict-key iteration on decision paths needs sorted()"

    SCOPES = (
        "repro.core",
        "repro.net",
        "repro.overlay",
        "repro.workloads",
        "repro.baselines",
    )
    #: materializers whose argument order becomes data order.
    _MATERIALIZERS = frozenset({"list", "tuple", "enumerate", "iter", "next"})

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        if not mod.module.startswith(self.SCOPES):
            return
        for scope in self._scopes(mod.tree):
            pass1 = _SetTypedNames()
            for stmt in scope:
                pass1.visit(stmt)
            yield from self._flag_iterations(
                mod, scope, pass1.set_names, pass1.adj_names
            )

    def _scopes(self, tree: ast.Module) -> Iterator[list[ast.stmt]]:
        """The module body and every function body, each its own scope."""
        yield tree.body
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node.body

    def _flag_iterations(
        self,
        mod: ModuleInfo,
        body: list[ast.stmt],
        set_names: set[str],
        adj_names: set[str],
    ) -> Iterator[Finding]:
        def is_set(expr: ast.expr) -> bool:
            return _is_set_expr(expr, set_names, adj_names)

        for node in _walk_scope(body):
            if isinstance(node, ast.For) and is_set(node.iter):
                yield self._finding(mod, node.iter, "for-loop")
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for comp in node.generators:
                    if is_set(comp.iter):
                        yield self._finding(mod, comp.iter, "comprehension")
            elif isinstance(node, ast.Call):
                qn = _qualname(node.func)
                name = (qn or "").rpartition(".")[2]
                if (
                    name in self._MATERIALIZERS or qn in ("np.fromiter", "numpy.fromiter")
                ) and node.args and is_set(node.args[0]):
                    yield self._finding(mod, node.args[0], f"{name}() argument")

    def _finding(self, mod: ModuleInfo, node: ast.expr, where: str) -> Finding:
        src = ast.unparse(node)
        if len(src) > 40:
            src = src[:37] + "..."
        return mod.finding(
            self.id, node,
            f"unsorted set iteration ({where}) over `{src}`; wrap in sorted() "
            "or suppress with a justification if provably order-independent",
        )


# -- D4 -------------------------------------------------------------------

_ABSORBED_RE = re.compile(r"#\s*reprolint:\s*D4-absorbed:\s*([A-Za-z0-9_,\s]+)")


@register
class HandlerExhaustiveness(Rule):
    """D4: the engine dispatch covers exactly the exported message grammar.

    Every concrete message class in ``repro.net.messages`` must have an
    ``isinstance`` dispatch arm in ``repro.net.engine``'s ``_on_message``
    (or an explicit ``# reprolint: D4-absorbed: Name`` marker for
    messages deliberately absorbed), and every dispatch arm must name a
    real exported message — no dead handlers.
    """

    id = "D4"
    name = "handler-exhaustiveness"
    description = "message classes <-> engine dispatch arms must match 1:1"

    MESSAGES_MODULE = "repro.net.messages"
    ENGINE_MODULE = "repro.net.engine"
    DISPATCHER = "_on_message"
    BASE_CLASS = "Message"

    def check_project(self, project: Project) -> Iterator[Finding]:
        messages = project.modules.get(self.MESSAGES_MODULE)
        engine = project.modules.get(self.ENGINE_MODULE)
        if messages is None or engine is None:
            return
        required = self._message_classes(messages)
        dispatcher = self._find_dispatcher(engine)
        if dispatcher is None:
            yield engine.finding(
                self.id, 1,
                f"no `{self.DISPATCHER}` dispatcher found for the message grammar",
            )
            return
        handled = self._handled_names(dispatcher)
        absorbed = self._absorbed_names(engine)
        for name in sorted(required):
            if name not in handled and name not in absorbed:
                yield engine.finding(
                    self.id, dispatcher,
                    f"message class `{name}` has no dispatch arm in "
                    f"{self.DISPATCHER} (and no D4-absorbed marker)",
                )
        for name, node in sorted(handled.items()):
            if name not in required and name != self.BASE_CLASS:
                yield engine.finding(
                    self.id, node,
                    f"dead dispatch arm: `{name}` is not a message class "
                    f"exported by {self.MESSAGES_MODULE}",
                )
        for name in sorted(absorbed):
            if name not in required:
                yield engine.finding(
                    self.id, 1,
                    f"stale D4-absorbed marker: `{name}` is not an exported "
                    "message class",
                )

    def _message_classes(self, mod: ModuleInfo) -> set[str]:
        out: set[str] = set()
        for node in mod.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            for base in node.bases:
                base_name = _qualname(base)
                if base_name and base_name.rpartition(".")[2] == self.BASE_CLASS:
                    out.add(node.name)
        return out

    def _find_dispatcher(self, mod: ModuleInfo) -> ast.FunctionDef | None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.FunctionDef) and node.name == self.DISPATCHER:
                return node
        return None

    def _handled_names(self, dispatcher: ast.FunctionDef) -> dict[str, ast.AST]:
        handled: dict[str, ast.AST] = {}
        for node in ast.walk(dispatcher):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance"
                and len(node.args) == 2
            ):
                continue
            cls = node.args[1]
            classes = cls.elts if isinstance(cls, ast.Tuple) else [cls]
            for c in classes:
                qn = _qualname(c)
                if qn:
                    handled[qn.rpartition(".")[2]] = node
        return handled

    def _absorbed_names(self, mod: ModuleInfo) -> set[str]:
        out: set[str] = set()
        for line in mod.lines:
            m = _ABSORBED_RE.search(line)
            if m:
                out.update(n.strip() for n in m.group(1).split(",") if n.strip())
        return out


# -- D5 -------------------------------------------------------------------


@register
class ExchangeAtomicity(Rule):
    """D5: overlay neighbor structures mutate only in sanctioned modules.

    Theorem 2's isomorphism guarantee (and Theorem 1's connectivity) hold
    because every topology change goes through the exchange primitives.
    A stray ``add_edge``/embedding write from an engine, workload, or
    metric would silently invalidate every downstream result, so mutation
    is confined to the overlay package, the exchange executors, the Var
    evaluator (swap-measure-swap), the baseline protocols (their own
    exchange primitives), and the physical-topology generators.
    """

    id = "D5"
    name = "exchange-atomicity"
    description = "overlay mutation confined to overlay/exchange modules"

    ALLOWED_PREFIXES = ("repro.overlay.", "repro.baselines.", "repro.topology.")
    ALLOWED_MODULES = frozenset(
        {
            "repro.overlay",
            "repro.baselines",
            "repro.topology",
            "repro.core.exchange",
            "repro.core.varcalc",
        }
    )
    #: ``replace_host`` is deliberately absent: it is the sanctioned
    #: membership boundary (validates, bumps version counters) that the
    #: churn workload calls; everything below bypasses an invariant.
    MUTATOR_CALLS = frozenset(
        {"add_edge", "remove_edge", "rewire", "swap_embedding",
         "append_slot", "pop_slot"}
    )
    MUTATED_ATTRS = frozenset(
        {"embedding", "embedding_version", "topology_version", "_adj", "_n_edges"}
    )
    _SET_MUTATORS = frozenset({"add", "discard", "remove", "pop", "clear", "update"})

    def _allowed(self, module: str) -> bool:
        return module in self.ALLOWED_MODULES or module.startswith(self.ALLOWED_PREFIXES)

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        if self._allowed(mod.module) or not mod.module.startswith("repro."):
            return
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in self.MUTATOR_CALLS:
                    yield mod.finding(
                        self.id, node,
                        f"overlay mutation `{_qualname(node.func) or node.func.attr}()` "
                        "outside the overlay/exchange modules; route through the "
                        "exchange primitives",
                    )
                elif node.func.attr in self._SET_MUTATORS and self._touches_adj(
                    node.func.value
                ):
                    yield mod.finding(
                        self.id, node,
                        "direct neighbor-set mutation outside the overlay modules",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for t in targets:
                    attr = self._mutated_attr(t)
                    if attr is not None:
                        yield mod.finding(
                            self.id, node,
                            f"direct write to overlay `{attr}` outside the "
                            "overlay/exchange modules",
                        )

    def _mutated_attr(self, target: ast.expr) -> str | None:
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute) and target.attr in self.MUTATED_ATTRS:
            # `self.embedding = ...` inside non-overlay classes is still a
            # write to *that object's* attribute; only flag chains that go
            # through another object (e.g. `self.overlay.embedding`).
            inner = _qualname(target.value)
            if inner is not None and inner != "self":
                return f"{inner}.{target.attr}"
        return None

    def _touches_adj(self, node: ast.expr) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and sub.attr == "_adj":
                return True
        return False


# -- D6 -------------------------------------------------------------------


@register
class ConfigCoverage(Rule):
    """D6: every ``PROPConfig`` field is referenced by the validation path.

    The config validation added in PR 2 is the contract that rejects
    meaningless parameter combinations before they burn simulation time.
    A field the validator never reads is a field a typo in an experiment
    sweep can silently set to garbage.
    """

    id = "D6"
    name = "config-coverage"
    description = "every PROPConfig field must be read by __post_init__"

    CONFIG_MODULE = "repro.core.config"
    CONFIG_CLASS = "PROPConfig"
    VALIDATOR = "__post_init__"

    def check_project(self, project: Project) -> Iterator[Finding]:
        mod = project.modules.get(self.CONFIG_MODULE)
        if mod is None:
            return
        cls = next(
            (
                n
                for n in mod.tree.body
                if isinstance(n, ast.ClassDef) and n.name == self.CONFIG_CLASS
            ),
            None,
        )
        if cls is None:
            return
        fields: dict[str, int] = {}
        validator: ast.FunctionDef | None = None
        for node in cls.body:
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                ann = ast.unparse(node.annotation)
                if not node.target.id.startswith("_") and "ClassVar" not in ann:
                    fields[node.target.id] = node.lineno
            elif isinstance(node, ast.FunctionDef) and node.name == self.VALIDATOR:
                validator = node
        if validator is None:
            if fields:
                yield mod.finding(
                    self.id, cls,
                    f"{self.CONFIG_CLASS} has no {self.VALIDATOR} validation path",
                )
            return
        read = {
            n.attr
            for n in ast.walk(validator)
            if isinstance(n, ast.Attribute)
            and isinstance(n.value, ast.Name)
            and n.value.id == "self"
        }
        for name, line in fields.items():
            if name not in read:
                yield mod.finding(
                    self.id, line,
                    f"{self.CONFIG_CLASS} field `{name}` is never referenced by "
                    f"{self.VALIDATOR}; add a validation check",
                )


# -- D7 -------------------------------------------------------------------


@register
class TracedEventEmission(Rule):
    """D7: decision-path code reports events only through the Tracer.

    The ``repro.obs`` tracing plane is the single source of truth for
    what happened in a run: the analyzer's exactly-once 2PC accounting,
    the byte-identical serial/parallel trace guarantee, and the report
    event counts all assume every observable event flows through
    ``tracer.emit``.  A ``print()`` on an engine code path is invisible
    to all of them (and corrupts the CLI's machine-parsed output); a
    ``logging`` call drags in wall-clock timestamps and global handler
    state.  Protocol, message-plane, and overlay modules therefore may
    not print or log — they emit typed events through the injected
    Tracer.
    """

    id = "D7"
    name = "traced-event-emission"
    description = "core/net/overlay must emit via Tracer, not print/logging"

    SCOPES = ("repro.core", "repro.net", "repro.overlay")
    #: receivers whose method calls are logging emissions (`logger.info`,
    #: `self.log.debug`, `logging.warning`, ...).
    _LOG_RECEIVERS = frozenset({"logging", "logger", "log"})

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        if not mod.module.startswith(self.SCOPES):
            return
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "logging" or alias.name.startswith("logging."):
                        yield mod.finding(
                            self.id, node,
                            "`logging` imported on a decision path; emit typed "
                            "events through the injected Tracer instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "logging" or (
                    node.module or ""
                ).startswith("logging."):
                    yield mod.finding(
                        self.id, node,
                        "import from `logging` on a decision path; emit typed "
                        "events through the injected Tracer instead",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(mod, node)

    def _check_call(self, mod: ModuleInfo, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            yield mod.finding(
                self.id, node,
                "bare `print()` on a decision path; emit a typed event "
                "through the injected Tracer (or drop the output)",
            )
            return
        qn = _qualname(func)
        if qn is None:
            return
        recv, _, _ = qn.rpartition(".")
        tail = recv.rpartition(".")[2]
        if recv and (recv in self._LOG_RECEIVERS or tail in self._LOG_RECEIVERS):
            yield mod.finding(
                self.id, node,
                f"logging call `{qn}()` on a decision path; emit a typed "
                "event through the injected Tracer instead",
            )
