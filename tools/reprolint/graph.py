"""The project module graph: imports, definitions, call resolution.

:class:`ModuleGraph` is the cross-file layer under the flow rules: it
records, per module, which local names are bound by imports (absolute
and relative) and which names the module defines at top level, then
resolves a dotted call target as written in source (``ChurnProcess``,
``factory.build_preset``) back to the *project module that defines it*.
Resolution is deliberately best-effort — dynamic dispatch, instance
attributes (``self._sink``) and re-exports through ``__init__`` are
reported as unresolved rather than guessed — so rules built on it only
ever act on edges that are provably intra-project.

Components are the second-level packages (``repro.live``, ``repro.net``,
…): the granularity at which RNG-stream ownership (rule F1) and the
concurrency rules scope their checks.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from tools.reprolint.engine import ModuleInfo

__all__ = ["ModuleGraph"]


class ModuleGraph:
    """Imports and top-level definitions for every project module."""

    def __init__(self, modules: dict[str, "ModuleInfo"]) -> None:
        self.modules = modules
        #: module -> local name -> fully-qualified target (module or symbol)
        self.imports: dict[str, dict[str, str]] = {}
        #: module -> names defined at module top level (classes + functions)
        self.defs: dict[str, set[str]] = {}
        for name, mod in modules.items():
            self.imports[name] = self._scan_imports(name, mod)
            self.defs[name] = {
                n.name
                for n in mod.tree.body
                if isinstance(n, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef))
            }

    @staticmethod
    def component(module: str) -> str:
        """The second-level package a module belongs to (``repro.live``)."""
        parts = module.split(".")
        return ".".join(parts[:2]) if len(parts) >= 2 else module

    # -- import scanning ---------------------------------------------------

    def _scan_imports(self, name: str, mod: "ModuleInfo") -> dict[str, str]:
        is_package = mod.path.name == "__init__.py"
        bound: dict[str, str] = {}
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        bound[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        bound[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = self._absolute_base(name, is_package, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    bound[local] = f"{base}.{alias.name}" if base else alias.name
        return bound

    @staticmethod
    def _absolute_base(
        module: str, is_package: bool, node: ast.ImportFrom
    ) -> str | None:
        """The absolute module an ``ImportFrom`` pulls names out of."""
        if node.level == 0:
            return node.module
        parts = module.split(".")
        # level 1 from a plain module strips the module name; from a
        # package __init__ it is the package itself
        drop = node.level - 1 if is_package else node.level
        if drop > len(parts):
            return None
        base_parts = parts[: len(parts) - drop] if drop else parts
        base = ".".join(base_parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    # -- resolution --------------------------------------------------------

    def resolve(self, module: str, dotted: str) -> tuple[str, str] | None:
        """Resolve a dotted call target to ``(defining_module, symbol)``.

        ``dotted`` is source text from the caller's scope.  Returns None
        for anything not provably defined by a project module (builtins,
        third-party calls, instance attributes, ``self.*`` methods —
        the class-aware rules handle those locally).
        """
        parts = dotted.split(".")
        head = parts[0]
        if head in ("self", "cls"):
            return None
        imported = self.imports.get(module, {})
        if head in imported:
            full = imported[head]
            if len(parts) > 1:
                full = f"{full}.{'.'.join(parts[1:])}"
            return self._split_symbol(full)
        if head in self.defs.get(module, set()):
            return module, dotted
        return None

    def _split_symbol(self, full: str) -> tuple[str, str] | None:
        """Split ``repro.net.engine.MessagePROPEngine`` into module+symbol
        by the longest module prefix the project actually contains."""
        parts = full.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.modules:
                return candidate, ".".join(parts[cut:])
        if full in self.modules:
            return full, ""
        return None

    def defining_component(self, module: str, dotted: str) -> str | None:
        """The component owning ``dotted`` as called from ``module``."""
        resolved = self.resolve(module, dotted)
        if resolved is None:
            return None
        return self.component(resolved[0])
