"""Per-function summaries: the facts the cross-file rule family consumes.

The per-file rules (D1-D7) see one AST at a time; the flow/concurrency
rules (F1, C1, C2) need *function-level* facts that survive across file
boundaries: which dotted names a function calls, whether it may suspend
on an ``await``, which named RNG streams it creates and where it passes
them, whether it mutates overlay state, and whether its body follows the
counted-never-raised exception pattern.  :func:`build_module_summary`
extracts one :class:`FunctionSummary` per function/method (plus a
pseudo-summary for the module body) in a single AST walk; the engine
caches the result per :class:`~tools.reprolint.engine.Project` so every
cross-file rule shares it.

Summaries are deliberately *syntactic* over-approximations: a call
target is the dotted source text (``ChurnProcess``, ``self._sink``),
resolved later — best effort — by :mod:`tools.reprolint.graph`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from tools.reprolint.engine import ModuleInfo

__all__ = [
    "FunctionSummary",
    "ModuleSummary",
    "StreamFlow",
    "build_module_summary",
]


def _qualname(node: ast.AST) -> str | None:
    """Dotted source text of a Name/Attribute chain ("self.rng.random")."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def _stream_literal(node: ast.expr) -> str | None:
    """The stream name when ``node`` is ``<reg>.stream("lit")``/``fresh``."""
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("stream", "fresh")
        and node.args
    ):
        return None
    arg = node.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    return None


@dataclass(frozen=True)
class StreamFlow:
    """One named RNG stream passed as an argument into a call."""

    stream: str  # the stream-name literal, e.g. "net:faults"
    callee: str  # dotted callee source text, e.g. "ChurnProcess"
    line: int
    col: int


@dataclass
class FunctionSummary:
    """What one function does, as seen from outside it."""

    module: str  # dotted module, e.g. "repro.live.node"
    qualname: str  # class-qualified local name, e.g. "PeerNode.sendto"
    name: str  # bare name
    cls: str | None  # enclosing class name (None for module-level defs)
    line: int
    is_async: bool
    may_await: bool  # contains Await / async for / async with
    calls: tuple[str, ...]  # dotted call targets, as written
    streams_created: tuple[str, ...]  # literal names passed to .stream/.fresh
    stream_flows: tuple[StreamFlow, ...]  # streams flowing into calls
    mutates_overlay: bool  # performs a D5-class overlay mutation
    exception_safe: bool  # every risky stmt guarded by a counting except
    node: ast.FunctionDef | ast.AsyncFunctionDef


@dataclass
class ModuleSummary:
    """All of one module's function summaries plus its module-level flows."""

    module: str
    functions: tuple[FunctionSummary, ...]
    module_flows: tuple[StreamFlow, ...]  # stream flows in module-level code

    def get(self, qualname: str) -> FunctionSummary | None:
        for fn in self.functions:
            if fn.qualname == qualname:
                return fn
        return None


# -- scope walking ---------------------------------------------------------


def _own_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Nodes of a scope's statements, skipping nested function scopes."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _collect_flows(body: list[ast.stmt]) -> tuple[list[str], list[StreamFlow]]:
    """Stream creations and stream-into-call flows within one scope.

    Tracks both direct flows (``Engine(rngs.stream("x"))``) and flows
    through a local binding (``rng = rngs.stream("x"); Engine(rng)``) —
    the indirection D2's call-site check cannot see.
    """
    created: list[str] = []
    bindings: dict[str, str] = {}  # local name -> stream name
    # pass 1: creations and local bindings
    for node in _own_scope(body):
        name = _stream_literal(node) if isinstance(node, ast.Call) else None
        if name is not None:
            created.append(name)
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            stream = _stream_literal(node.value)
            if stream is not None and isinstance(target, ast.Name):
                bindings[target.id] = stream
    # pass 2: stream expressions / bound names used as call arguments
    flows: list[StreamFlow] = []
    for node in _own_scope(body):
        if not isinstance(node, ast.Call):
            continue
        callee = _qualname(node.func)
        if callee is None:
            continue
        args = list(node.args) + [kw.value for kw in node.keywords]
        for arg in args:
            stream = _stream_literal(arg)
            if stream is None and isinstance(arg, ast.Name):
                stream = bindings.get(arg.id)
            if stream is not None:
                flows.append(
                    StreamFlow(stream, callee, node.lineno, node.col_offset)
                )
    return created, flows


# -- exception safety ------------------------------------------------------


def _is_counting_handler(handler: ast.ExceptHandler) -> bool:
    """An ``except`` that catches broadly, counts, and never re-raises."""
    if handler.type is not None:
        qn = _qualname(handler.type)
        names = {qn} if qn else set()
        if isinstance(handler.type, ast.Tuple):
            names = {_qualname(e) for e in handler.type.elts}
        tails = {(n or "").rpartition(".")[2] for n in names}
        if not tails & {"Exception", "BaseException"}:
            return False
    counts = any(
        isinstance(n, ast.AugAssign)
        and isinstance(n.op, ast.Add)
        and isinstance(n.target, ast.Attribute)
        for n in ast.walk(handler)
    )
    raises = any(isinstance(n, ast.Raise) for n in ast.walk(handler))
    return counts and not raises


def _risky(stmt: ast.stmt) -> bool:
    """Does this statement (sans nested defs) call anything or raise?"""
    for node in _own_scope([stmt]):
        if isinstance(node, (ast.Call, ast.Raise)):
            return True
    return False


def _exception_safe(body: list[ast.stmt], guarded: bool = False) -> bool:
    """True when every risky statement runs under a counting ``except``."""
    for stmt in body:
        if isinstance(stmt, ast.Try):
            inner = guarded or any(
                _is_counting_handler(h) for h in stmt.handlers
            )
            if not _exception_safe(stmt.body, inner):
                return False
            for h in stmt.handlers:
                if not _exception_safe(h.body, guarded):
                    return False
            if not _exception_safe(stmt.orelse, guarded):
                return False
            if not _exception_safe(stmt.finalbody, guarded):
                return False
        elif isinstance(stmt, (ast.If, ast.For, ast.While, ast.With)):
            blocks = [stmt.body, getattr(stmt, "orelse", [])]
            head_risky = any(
                isinstance(n, (ast.Call, ast.Raise))
                for field in ast.iter_child_nodes(stmt)
                if not isinstance(field, ast.stmt)
                for n in ast.walk(field)
            )
            if head_risky and not guarded:
                return False
            for block in blocks:
                if not _exception_safe(block, guarded):
                    return False
        elif _risky(stmt) and not guarded:
            return False
    return True


# -- overlay mutation ------------------------------------------------------

#: mirrors rule D5's mutator inventory (kept in sync by test_flow.py).
OVERLAY_MUTATORS = frozenset(
    {"add_edge", "remove_edge", "rewire", "swap_embedding",
     "append_slot", "pop_slot"}
)
OVERLAY_ATTRS = frozenset(
    {"embedding", "embedding_version", "topology_version", "_adj", "_n_edges"}
)


def _mutates_overlay(body: list[ast.stmt]) -> bool:
    for node in _own_scope(body):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in OVERLAY_MUTATORS
        ):
            return True
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                if isinstance(t, ast.Subscript):
                    t = t.value
                if isinstance(t, ast.Attribute) and t.attr in OVERLAY_ATTRS:
                    return True
    return False


# -- assembly --------------------------------------------------------------


def _summarize_function(
    module: str,
    cls: str | None,
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> FunctionSummary:
    calls: list[str] = []
    may_await = False
    for node in _own_scope(fn.body):
        if isinstance(node, ast.Call):
            target = _qualname(node.func)
            if target is not None:
                calls.append(target)
        elif isinstance(node, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
            may_await = True
    created, flows = _collect_flows(fn.body)
    return FunctionSummary(
        module=module,
        qualname=f"{cls}.{fn.name}" if cls else fn.name,
        name=fn.name,
        cls=cls,
        line=fn.lineno,
        is_async=isinstance(fn, ast.AsyncFunctionDef),
        may_await=may_await,
        calls=tuple(calls),
        streams_created=tuple(created),
        stream_flows=tuple(flows),
        mutates_overlay=_mutates_overlay(fn.body),
        exception_safe=_exception_safe(fn.body),
        node=fn,
    )


def _walk_defs(
    body: list[ast.stmt], cls: str | None
) -> Iterator[tuple[str | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every function definition with its enclosing class name."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield cls, stmt
            # nested defs are summarized too, attributed to the same class
            yield from _walk_defs(stmt.body, cls)
        elif isinstance(stmt, ast.ClassDef):
            yield from _walk_defs(stmt.body, stmt.name)
        elif isinstance(stmt, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
            for block in (
                getattr(stmt, "body", []),
                getattr(stmt, "orelse", []),
                getattr(stmt, "finalbody", []),
            ):
                yield from _walk_defs(block, cls)
            for h in getattr(stmt, "handlers", []):
                yield from _walk_defs(h.body, cls)


def build_module_summary(mod: "ModuleInfo") -> ModuleSummary:
    """Summarize every function of ``mod`` plus its module-level flows."""
    functions = tuple(
        _summarize_function(mod.module, cls, fn)
        for cls, fn in _walk_defs(mod.tree.body, None)
    )
    _, module_flows = _collect_flows(mod.tree.body)
    return ModuleSummary(
        module=mod.module, functions=functions, module_flows=tuple(module_flows)
    )
