"""reprolint: AST-based invariant analyzer for the PROP reproduction.

Domain-specific static analysis over ``src/repro``.  Where generic
linters enforce style, reprolint enforces the *reproduction invariants*
the paper's theorems and the determinism bridge rest on.

Per-file rules (one AST at a time):

* **D1** no wall-clock or unseeded randomness — every draw flows from an
  injected seeded :class:`numpy.random.Generator`;
* **D2** RNG-stream discipline — fault injection draws only from the
  fault stream, protocol modules only from the protocol stream;
* **D3** no set/dict-key iteration feeding a protocol decision without
  an explicit ``sorted()``;
* **D4** message-handler exhaustiveness — every message class has a
  dispatch arm in the engine, and no dead handlers;
* **D5** exchange atomicity — overlay neighbor structures mutate only
  inside the overlay/exchange modules;
* **D6** config coverage — every ``PROPConfig`` field is referenced by
  the validation path;
* **D7** traced event emission — decision-path code reports through the
  injected Tracer, never ``print``/``logging``.

Flow/concurrency rules (over the project-wide module graph and
per-function summaries — see :mod:`tools.reprolint.graph` and
:mod:`tools.reprolint.summaries`):

* **F1** RNG-stream provenance — a stream named for component X may not
  flow into a call defined by another component;
* **C1** await-interleaving hazards in ``repro.live`` — stale
  read-across-await writes and fire-and-forget ``create_task``;
* **C2** callback exception safety — asyncio protocol callbacks follow
  the counted-never-raised pattern;
* **G1** codec<->grammar drift — the wire codec covers every message
  field, and grammar changes force a fingerprint/version update.

See ``docs/analysis.md`` for the rule catalogue, the
``# reprolint: disable=RULE`` suppression syntax and the baseline-file
workflow.  Run as ``python -m tools.reprolint`` (or ``make analyze``).
"""

from tools.reprolint.engine import (
    Finding,
    ModuleInfo,
    Project,
    SuppressionAudit,
    analyze,
    analyze_full,
    iter_rules,
)

__all__ = [
    "Finding",
    "ModuleInfo",
    "Project",
    "SuppressionAudit",
    "analyze",
    "analyze_full",
    "iter_rules",
]
