"""reprolint: AST-based invariant analyzer for the PROP reproduction.

Domain-specific static analysis over ``src/repro``.  Where generic
linters enforce style, reprolint enforces the *reproduction invariants*
the paper's theorems and the determinism bridge rest on:

* **D1** no wall-clock or unseeded randomness — every draw flows from an
  injected seeded :class:`numpy.random.Generator`;
* **D2** RNG-stream discipline — fault injection draws only from the
  fault stream, protocol modules only from the protocol stream;
* **D3** no set/dict-key iteration feeding a protocol decision without
  an explicit ``sorted()``;
* **D4** message-handler exhaustiveness — every message class has a
  dispatch arm in the engine, and no dead handlers;
* **D5** exchange atomicity — overlay neighbor structures mutate only
  inside the overlay/exchange modules;
* **D6** config coverage — every ``PROPConfig`` field is referenced by
  the validation path.

See ``docs/analysis.md`` for the rule catalogue, the
``# reprolint: disable=RULE`` suppression syntax and the baseline-file
workflow.  Run as ``python -m tools.reprolint`` (or ``make analyze``).
"""

from tools.reprolint.engine import Finding, ModuleInfo, Project, analyze, iter_rules

__all__ = ["Finding", "ModuleInfo", "Project", "analyze", "iter_rules"]
