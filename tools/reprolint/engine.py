"""The reprolint rule engine.

Pipeline: parse every ``*.py`` under the analysis root into a
:class:`Project`, run each registered rule (per-module visitors and
project-wide checks), drop findings suppressed by an inline
``# reprolint: disable=RULE`` comment, then reconcile the remainder
against the checked-in baseline:

* a finding **not** in the baseline is *new* — reported, exit 1;
* a baseline entry with no matching finding is *stale* — the baseline
  shrank without being regenerated, exit 2 (``make analyze-baseline``
  rewrites it).

Baseline entries are fingerprints ``rule::path::message`` (no line
numbers, so unrelated edits do not churn the file), stored as a
fingerprint -> count multiset in JSON.
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "Finding",
    "ModuleInfo",
    "Project",
    "Rule",
    "analyze",
    "baseline_diff",
    "iter_rules",
    "load_baseline",
    "register",
    "save_baseline",
    "write_report",
]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+|all)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline file."""
        return f"{self.rule}::{self.path}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class ModuleInfo:
    """One parsed source module plus its suppression map."""

    def __init__(self, path: Path, module: str, text: str, repo: Path) -> None:
        self.path = path
        self.module = module  # dotted name, e.g. "repro.net.faults"
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        try:
            self.rel_path = path.resolve().relative_to(repo.resolve()).as_posix()
        except ValueError:
            self.rel_path = path.as_posix()
        self._suppressions = self._scan_suppressions()

    def _scan_suppressions(self) -> dict[int, frozenset[str]]:
        out: dict[int, frozenset[str]] = {}
        for i, line in enumerate(self.lines, start=1):
            m = _SUPPRESS_RE.search(line)
            if m:
                spec = m.group(1)
                if spec.strip() == "all":
                    out[i] = frozenset({"all"})
                else:
                    out[i] = frozenset(
                        r.strip() for r in spec.split(",") if r.strip()
                    )
        return out

    def suppressed(self, rule: str, line: int) -> bool:
        """Is ``rule`` disabled at ``line``?

        A suppression comment applies to its own line, or — when it
        stands on a comment-only line — to the next source line below it.
        """
        for at in (line, line - 1):
            rules = self._suppressions.get(at)
            if rules is None:
                continue
            if at == line - 1 and not self.lines[at - 1].lstrip().startswith("#"):
                continue  # trailing comment on the previous statement
            if "all" in rules or rule in rules:
                return True
        return False

    def finding(self, rule: str, node: ast.AST | int, message: str) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        col = 0 if isinstance(node, int) else getattr(node, "col_offset", 0)
        return Finding(rule=rule, path=self.rel_path, line=line, col=col, message=message)


class Project:
    """All modules under one analysis root, keyed by dotted name.

    The root directory itself is treated as the ``repro`` package, so a
    fixture tree laid out like ``src/repro`` (e.g. ``fixtures/d4_bad``
    containing ``net/messages.py``) exercises module-targeted rules
    exactly as the real tree does.
    """

    PACKAGE = "repro"

    def __init__(self, root: Path, repo: Path | None = None) -> None:
        self.root = Path(root)
        self.repo = Path(repo) if repo is not None else Path.cwd()
        self.modules: dict[str, ModuleInfo] = {}
        self.parse_errors: list[Finding] = []
        for path in sorted(self.root.rglob("*.py")):
            rel = path.relative_to(self.root)
            parts = [self.PACKAGE, *rel.with_suffix("").parts]
            if parts[-1] == "__init__":
                parts.pop()
            module = ".".join(parts)
            try:
                text = path.read_text(encoding="utf-8")
                self.modules[module] = ModuleInfo(path, module, text, self.repo)
            except (SyntaxError, UnicodeDecodeError) as exc:
                line = getattr(exc, "lineno", 1) or 1
                self.parse_errors.append(
                    Finding("E999", path.as_posix(), line, 0, f"unparseable module: {exc}")
                )


class Rule:
    """Base class: subclass, set ``id``/``name``/``description``, override
    :meth:`check_module` and/or :meth:`check_project`."""

    id: str = ""
    name: str = ""
    description: str = ""

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def iter_rules() -> list[Rule]:
    """Registered rules in id order (importing the rules module first)."""
    from tools.reprolint import rules as _rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def analyze(
    root: Path | str,
    *,
    repo: Path | str | None = None,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Run the registered rules over ``root``; suppressions applied.

    ``select`` restricts to the given rule ids (default: all).  Parse
    errors surface as unsuppressable ``E999`` findings.
    """
    project = Project(Path(root), Path(repo) if repo is not None else None)
    wanted = set(select) if select is not None else None
    findings: list[Finding] = list(project.parse_errors)
    for rule in iter_rules():
        if wanted is not None and rule.id not in wanted:
            continue
        for mod in project.modules.values():
            for f in rule.check_module(mod):
                if not mod.suppressed(f.rule, f.line):
                    findings.append(f)
        for f in rule.check_project(project):
            mod = _module_for_path(project, f.path)
            if mod is None or not mod.suppressed(f.rule, f.line):
                findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _module_for_path(project: Project, rel_path: str) -> ModuleInfo | None:
    for mod in project.modules.values():
        if mod.rel_path == rel_path:
            return mod
    return None


# -- baseline ------------------------------------------------------------


def load_baseline(path: Path) -> Counter[str]:
    """Fingerprint multiset from a baseline file (empty if absent)."""
    if not path.exists():
        return Counter()
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"malformed baseline file {path}")
    return Counter({str(k): int(v) for k, v in data["findings"].items()})


def save_baseline(path: Path, findings: Iterable[Finding]) -> None:
    counts = Counter(f.fingerprint for f in findings)
    payload = {
        "comment": "grandfathered reprolint findings; regenerate with `make analyze-baseline`",
        "findings": {k: counts[k] for k in sorted(counts)},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def baseline_diff(
    findings: Iterable[Finding], baseline: Counter[str]
) -> tuple[list[Finding], list[str]]:
    """Split into (new findings, stale baseline fingerprints)."""
    remaining = Counter(baseline)
    new: list[Finding] = []
    for f in findings:
        if remaining[f.fingerprint] > 0:
            remaining[f.fingerprint] -= 1
        else:
            new.append(f)
    stale = sorted(k for k, v in remaining.items() if v > 0 for _ in range(v))
    return new, stale


# -- reporting -----------------------------------------------------------


def write_report(
    findings: list[Finding],
    *,
    fmt: str = "text",
    out: Callable[[str], None] = print,
) -> None:
    if fmt == "json":
        out(json.dumps([f.__dict__ for f in findings], indent=2))
        return
    for f in findings:
        out(f.render())
