"""The reprolint rule engine.

Pipeline: parse every ``*.py`` under the analysis root into a
:class:`Project`, run each registered rule (per-module visitors and
project-wide checks), drop findings suppressed by an inline
``# reprolint: disable=RULE`` comment, then reconcile the remainder
against the checked-in baseline:

* a finding **not** in the baseline is *new* — reported, exit 1;
* a baseline entry with no matching finding is *stale* — the baseline
  shrank without being regenerated, exit 2 (``make analyze-baseline``
  rewrites it).

Baseline entries are fingerprints ``rule::path::message`` (no line
numbers, so unrelated edits do not churn the file), stored as a
fingerprint -> count multiset in JSON.
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from tools.reprolint.graph import ModuleGraph
    from tools.reprolint.summaries import ModuleSummary

__all__ = [
    "Finding",
    "ModuleInfo",
    "Project",
    "Rule",
    "SuppressionAudit",
    "analyze",
    "analyze_full",
    "baseline_diff",
    "iter_rules",
    "load_baseline",
    "register",
    "save_baseline",
    "write_report",
]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+|all)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline file."""
        return f"{self.rule}::{self.path}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class ModuleInfo:
    """One parsed source module plus its suppression map."""

    def __init__(self, path: Path, module: str, text: str, repo: Path) -> None:
        self.path = path
        self.module = module  # dotted name, e.g. "repro.net.faults"
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        try:
            self.rel_path = path.resolve().relative_to(repo.resolve()).as_posix()
        except ValueError:
            self.rel_path = path.as_posix()
        self._suppressions = self._scan_suppressions()

    def _scan_suppressions(self) -> dict[int, frozenset[str]]:
        out: dict[int, frozenset[str]] = {}
        for i, line in enumerate(self.lines, start=1):
            m = _SUPPRESS_RE.search(line)
            if m:
                spec = m.group(1)
                if spec.strip() == "all":
                    out[i] = frozenset({"all"})
                else:
                    out[i] = frozenset(
                        r.strip() for r in spec.split(",") if r.strip()
                    )
        return out

    @property
    def suppressions(self) -> dict[int, frozenset[str]]:
        """Declared suppressions: comment line -> rule tokens (or "all")."""
        return self._suppressions

    def suppressed(
        self,
        rule: str,
        line: int,
        hits: set[tuple[str, int, str]] | None = None,
    ) -> bool:
        """Is ``rule`` disabled at ``line``?

        A suppression comment applies to its own line, or — when it
        stands on a comment-only line — to the next source line below it.
        When ``hits`` is given, the matching suppression token is
        recorded as ``(rel_path, comment_line, token)`` so
        ``--list-suppressions`` can report tokens masking nothing.
        """
        for at in (line, line - 1):
            rules = self._suppressions.get(at)
            if rules is None:
                continue
            if at == line - 1 and not self.lines[at - 1].lstrip().startswith("#"):
                continue  # trailing comment on the previous statement
            token = "all" if "all" in rules else (rule if rule in rules else None)
            if token is not None:
                if hits is not None:
                    hits.add((self.rel_path, at, token))
                return True
        return False

    def finding(self, rule: str, node: ast.AST | int, message: str) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        col = 0 if isinstance(node, int) else getattr(node, "col_offset", 0)
        return Finding(rule=rule, path=self.rel_path, line=line, col=col, message=message)


class Project:
    """All modules under one analysis root, keyed by dotted name.

    The root directory itself is treated as the ``repro`` package, so a
    fixture tree laid out like ``src/repro`` (e.g. ``fixtures/d4_bad``
    containing ``net/messages.py``) exercises module-targeted rules
    exactly as the real tree does.
    """

    PACKAGE = "repro"

    def __init__(self, root: Path, repo: Path | None = None, *, load: bool = True) -> None:
        self.root = Path(root)
        self.repo = Path(repo) if repo is not None else Path.cwd()
        self.modules: dict[str, ModuleInfo] = {}
        self.parse_errors: list[Finding] = []
        self._summaries: dict[str, "ModuleSummary"] | None = None
        self._graph: "ModuleGraph | None" = None
        if not load:
            return
        for path, module in self.iter_sources(self.root):
            loaded = load_module(path, module, self.repo)
            if isinstance(loaded, Finding):
                self.parse_errors.append(loaded)
            else:
                self.modules[module] = loaded

    @classmethod
    def iter_sources(cls, root: Path) -> list[tuple[Path, str]]:
        """``(path, dotted module name)`` for every source under ``root``,
        in sorted path order (the order that pins deterministic output)."""
        out: list[tuple[Path, str]] = []
        for path in sorted(Path(root).rglob("*.py")):
            rel = path.relative_to(root)
            parts = [cls.PACKAGE, *rel.with_suffix("").parts]
            if parts[-1] == "__init__":
                parts.pop()
            out.append((path, ".".join(parts)))
        return out

    # -- cross-file layers (built lazily, shared by all flow rules) -------

    def summaries(self) -> dict[str, "ModuleSummary"]:
        """Per-function summaries for every module, keyed by module name."""
        if self._summaries is None:
            from tools.reprolint.summaries import build_module_summary

            self._summaries = {
                name: build_module_summary(mod) for name, mod in self.modules.items()
            }
        return self._summaries

    def graph(self) -> "ModuleGraph":
        """The import/definition graph over all modules."""
        if self._graph is None:
            from tools.reprolint.graph import ModuleGraph

            self._graph = ModuleGraph(self.modules)
        return self._graph


def load_module(path: Path, module: str, repo: Path) -> ModuleInfo | Finding:
    """Parse one source file; an unparseable file is an E999 finding."""
    try:
        text = path.read_text(encoding="utf-8")
        return ModuleInfo(path, module, text, repo)
    except (SyntaxError, UnicodeDecodeError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        return Finding("E999", path.as_posix(), line, 0, f"unparseable module: {exc}")


class Rule:
    """Base class: subclass, set ``id``/``name``/``description``, override
    :meth:`check_module` and/or :meth:`check_project`."""

    id: str = ""
    name: str = ""
    description: str = ""

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def iter_rules() -> list[Rule]:
    """Registered rules in id order (importing the rule modules first)."""
    # registration side effects:
    from tools.reprolint import rules as _rules  # noqa: F401
    from tools.reprolint import rules_flow as _rules_flow  # noqa: F401

    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


@dataclass
class SuppressionAudit:
    """Which declared suppression tokens actually masked a finding.

    ``declared`` lists every ``# reprolint: disable=`` token as
    ``(rel_path, comment_line, token)``; ``used`` is the subset that
    suppressed at least one finding this run.  The difference is dead
    weight — suppressions left behind by code that no longer violates
    the rule (``--list-suppressions`` reports it).
    """

    declared: list[tuple[str, int, str]] = field(default_factory=list)
    used: set[tuple[str, int, str]] = field(default_factory=set)

    @property
    def stale(self) -> list[tuple[str, int, str]]:
        return sorted(entry for entry in self.declared if entry not in self.used)


def analyze(
    root: Path | str,
    *,
    repo: Path | str | None = None,
    select: Iterable[str] | None = None,
    jobs: int = 1,
) -> list[Finding]:
    """Run the registered rules over ``root``; suppressions applied.

    ``select`` restricts to the given rule ids (default: all); ``jobs``
    parallelizes per-file parsing and per-module analysis.  Parse errors
    surface as unsuppressable ``E999`` findings.
    """
    return analyze_full(root, repo=repo, select=select, jobs=jobs)[0]


def analyze_full(
    root: Path | str,
    *,
    repo: Path | str | None = None,
    select: Iterable[str] | None = None,
    jobs: int = 1,
) -> tuple[list[Finding], SuppressionAudit]:
    """:func:`analyze` plus the suppression-usage audit.

    With ``jobs > 1`` the per-file phase (parsing and every
    ``check_module``) fans out over a process pool; the cross-file phase
    (``check_project``) runs in the parent over the assembled project.
    Findings are sorted at the end either way, so parallel output is
    byte-identical to serial output (pinned by test).
    """
    root_p = Path(root)
    repo_p = Path(repo) if repo is not None else None
    wanted = tuple(sorted(select)) if select is not None else None
    audit = SuppressionAudit()

    if jobs > 1:
        project, findings = _scan_parallel(root_p, repo_p, wanted, jobs, audit)
    else:
        project, findings = _scan_serial(root_p, repo_p, wanted, audit)

    for mod in project.modules.values():
        for line, tokens in mod.suppressions.items():
            for token in sorted(tokens):
                audit.declared.append((mod.rel_path, line, token))

    for rule in iter_rules():
        if wanted is not None and rule.id not in wanted:
            continue
        for f in rule.check_project(project):
            mod = _module_for_path(project, f.path)
            if mod is None or not mod.suppressed(f.rule, f.line, audit.used):
                findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, audit


def _check_one_module(
    mod: ModuleInfo, wanted: tuple[str, ...] | None
) -> tuple[list[Finding], set[tuple[str, int, str]]]:
    """Per-module findings (suppressions applied) and suppression hits."""
    hits: set[tuple[str, int, str]] = set()
    kept: list[Finding] = []
    for rule in iter_rules():
        if wanted is not None and rule.id not in wanted:
            continue
        for f in rule.check_module(mod):
            if not mod.suppressed(f.rule, f.line, hits):
                kept.append(f)
    return kept, hits


def _scan_serial(
    root: Path,
    repo: Path | None,
    wanted: tuple[str, ...] | None,
    audit: SuppressionAudit,
) -> tuple[Project, list[Finding]]:
    project = Project(root, repo)
    findings: list[Finding] = list(project.parse_errors)
    for mod in project.modules.values():
        kept, hits = _check_one_module(mod, wanted)
        findings.extend(kept)
        audit.used.update(hits)
    return project, findings


def _parallel_worker(
    task: tuple[str, str, str | None, tuple[str, ...] | None],
) -> tuple[str, ModuleInfo | Finding, list[Finding], set[tuple[str, int, str]]]:
    """Process-pool unit: parse one file and run every per-module rule."""
    path_str, module, repo_str, wanted = task
    repo = Path(repo_str) if repo_str is not None else Path.cwd()
    loaded = load_module(Path(path_str), module, repo)
    if isinstance(loaded, Finding):
        return module, loaded, [], set()
    kept, hits = _check_one_module(loaded, wanted)
    return module, loaded, kept, hits


def _scan_parallel(
    root: Path,
    repo: Path | None,
    wanted: tuple[str, ...] | None,
    jobs: int,
    audit: SuppressionAudit,
) -> tuple[Project, list[Finding]]:
    import multiprocessing

    sources = Project.iter_sources(root)
    project = Project(root, repo, load=False)
    findings: list[Finding] = []
    tasks = [
        (str(path), module, str(project.repo), wanted) for path, module in sources
    ]
    # chunksize 1 keeps scheduling simple; result order follows input
    # order, so assembly (and therefore output) is deterministic.
    with multiprocessing.get_context().Pool(processes=jobs) as pool:
        results = pool.map(_parallel_worker, tasks, chunksize=1)
    for module, loaded, kept, hits in results:
        if isinstance(loaded, Finding):
            project.parse_errors.append(loaded)
        else:
            project.modules[module] = loaded
        findings.extend(kept)
        audit.used.update(hits)
    findings.extend(project.parse_errors)
    return project, findings


def _module_for_path(project: Project, rel_path: str) -> ModuleInfo | None:
    for mod in project.modules.values():
        if mod.rel_path == rel_path:
            return mod
    return None


# -- baseline ------------------------------------------------------------


def load_baseline(path: Path) -> Counter[str]:
    """Fingerprint multiset from a baseline file (empty if absent)."""
    if not path.exists():
        return Counter()
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"malformed baseline file {path}")
    return Counter({str(k): int(v) for k, v in data["findings"].items()})


def save_baseline(path: Path, findings: Iterable[Finding]) -> None:
    counts = Counter(f.fingerprint for f in findings)
    payload = {
        "comment": "grandfathered reprolint findings; regenerate with `make analyze-baseline`",
        "findings": {k: counts[k] for k in sorted(counts)},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def baseline_diff(
    findings: Iterable[Finding], baseline: Counter[str]
) -> tuple[list[Finding], list[str]]:
    """Split into (new findings, stale baseline fingerprints)."""
    remaining = Counter(baseline)
    new: list[Finding] = []
    for f in findings:
        if remaining[f.fingerprint] > 0:
            remaining[f.fingerprint] -= 1
        else:
            new.append(f)
    stale = sorted(k for k, v in remaining.items() if v > 0 for _ in range(v))
    return new, stale


# -- reporting -----------------------------------------------------------


def write_report(
    findings: list[Finding],
    *,
    fmt: str = "text",
    out: Callable[[str], None] = print,
) -> None:
    if fmt == "json":
        out(json.dumps([f.__dict__ for f in findings], indent=2))
        return
    for f in findings:
        out(f.render())
