# Convenience targets for the PROP reproduction.

.PHONY: install test bench figures examples lint all

# ruff (configured in pyproject.toml) when available; offline images
# fall back to the dependency-free subset checker in tools/lint.py.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples tools; \
	else \
		echo "ruff not installed; using tools/lint.py fallback"; \
		python tools/lint.py; \
	fi

install:
	pip install -e . || python setup.py develop  # fallback: offline envs without `wheel`

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

figures: bench
	@echo "regenerated series are under benchmarks/output/"

examples:
	python examples/quickstart.py
	python examples/gnutella_file_sharing.py
	python examples/churn_resilience.py
	python examples/custom_overlay.py
	python examples/dht_family_comparison.py
	python examples/parameter_study.py

all: install lint test bench
