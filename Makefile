# Convenience targets for the PROP reproduction.

.PHONY: install test bench bench-obs bench-oracle bench-live bench-check monitor-demo prof-demo figures examples report lint analyze analyze-baseline all

# ruff (configured in pyproject.toml) when available; offline images
# fall back to the dependency-free subset checker in tools/lint.py.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples tools; \
	else \
		echo "ruff not installed; using tools/lint.py fallback"; \
		python tools/lint.py; \
	fi

# Invariant analysis (docs/analysis.md): reprolint rules D1-D7 plus the
# flow/concurrency family F1/C1/C2/G1, the style lint, and mypy --strict
# on the deterministic kernel and the live/obs planes.  reprolint exits
# 1 on new findings and 2 on a stale baseline; ruff and mypy are
# optional on offline images, reprolint itself is dependency-free.
analyze:
	python -m tools.reprolint --jobs 4
	@$(MAKE) --no-print-directory lint
	@if command -v mypy >/dev/null 2>&1; then \
		mypy --strict -p repro.core -p repro.net -p repro.metrics \
			-p repro.topology -p repro.live -p repro.obs; \
	else \
		echo "mypy not installed; skipping strict typing gate"; \
	fi

analyze-baseline:
	python -m tools.reprolint --update-baseline

install:
	pip install -e . || python setup.py develop  # fallback: offline envs without `wheel`

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Tracing overhead on the Fig. 5 Gnutella workload: NullTracer vs full
# tracing, best-of-3, written to BENCH_obs.json (docs/observability.md).
bench-obs:
	PYTHONPATH=src python benchmarks/bench_obs_overhead.py

# Latency-oracle backends at paper scale: setup cost / resident state
# per backend plus the PROP-G convergence parity check (vivaldi within
# 15% of exact, both scored by the exact oracle).  Records land in
# benchmarks/history.jsonl for bench-check.
bench-oracle:
	pytest benchmarks/bench_oracle.py --benchmark-only

# Live-plane throughput: a 50-peer loopback-UDP swarm, recording
# msgs/s and exchanges/s (wall) into benchmarks/history.jsonl for
# bench-check.  Skips cleanly where loopback sockets are forbidden.
bench-live:
	PYTHONPATH=src python benchmarks/bench_live.py

# Noise-aware regression gate over benchmarks/history.jsonl: the newest
# record per bench vs the trailing median of its predecessors.  Exit
# codes: 0 pass, 1 regression, 2 no history.  REPORT_ONLY=1 reports
# without failing (PR CI).
bench-check:
	PYTHONPATH=src python -m repro.obs bench-check \
		$(if $(REPORT_ONLY),--report-only,)

# Kernel cost observatory end to end: a small profiled run over the
# message plane -> attribution table + kp.json, then the prof
# subcommand re-renders it and writes validated flamegraph exports
# (docs/observability.md "Kernel profiling").
prof-demo:
	mkdir -p benchmarks/output
	PYTHONPATH=src python -m repro run --preset ts-small --n 100 --policy G \
		--transport sim --duration 600 --sample-interval 300 --lookups 50 \
		--kernel-profile benchmarks/output/kernel_profile.json
	PYTHONPATH=src python -m repro.obs prof benchmarks/output/kernel_profile.json \
		--collapsed benchmarks/output/kernel_profile.collapsed.txt \
		--speedscope benchmarks/output/kernel_profile.speedscope.json
	@echo "wrote benchmarks/output/kernel_profile.speedscope.json"

# 60-second monitored run: live stderr line (phase, sim-time, ETA,
# latency, exchange tallies) with streaming consumers — no raw trace.
monitor-demo:
	PYTHONPATH=src python -m repro run --preset ts-small --n 100 --policy G \
		--duration 600 --sample-interval 60 --lookups 50 --monitor

figures: bench
	@echo "regenerated series are under benchmarks/output/"

# One traced run -> RunReport JSON -> markdown rendering, the
# docs/observability.md end-to-end path.
report:
	PYTHONPATH=src python -m repro run --preset ts-small --n 100 --policy G \
		--duration 600 --sample-interval 300 --lookups 50 \
		--report benchmarks/output/run_report.json
	PYTHONPATH=src python -m repro.obs render benchmarks/output/run_report.json \
		-o benchmarks/output/run_report.md
	@echo "rendered benchmarks/output/run_report.md"

examples:
	python examples/quickstart.py
	python examples/gnutella_file_sharing.py
	python examples/churn_resilience.py
	python examples/custom_overlay.py
	python examples/dht_family_comparison.py
	python examples/parameter_study.py

all: install lint test bench
