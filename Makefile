# Convenience targets for the PROP reproduction.

.PHONY: install test bench figures examples lint analyze analyze-baseline all

# ruff (configured in pyproject.toml) when available; offline images
# fall back to the dependency-free subset checker in tools/lint.py.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples tools; \
	else \
		echo "ruff not installed; using tools/lint.py fallback"; \
		python tools/lint.py; \
	fi

# Invariant analysis (docs/analysis.md): reprolint rules D1-D6, the
# style lint, and mypy --strict on the deterministic kernel.  reprolint
# exits 1 on new findings and 2 on a stale baseline; ruff and mypy are
# optional on offline images, reprolint itself is dependency-free.
analyze:
	python -m tools.reprolint
	@$(MAKE) --no-print-directory lint
	@if command -v mypy >/dev/null 2>&1; then \
		mypy --strict -p repro.core -p repro.net -p repro.metrics; \
	else \
		echo "mypy not installed; skipping strict typing gate"; \
	fi

analyze-baseline:
	python -m tools.reprolint --update-baseline

install:
	pip install -e . || python setup.py develop  # fallback: offline envs without `wheel`

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

figures: bench
	@echo "regenerated series are under benchmarks/output/"

examples:
	python examples/quickstart.py
	python examples/gnutella_file_sharing.py
	python examples/churn_resilience.py
	python examples/custom_overlay.py
	python examples/dht_family_comparison.py
	python examples/parameter_study.py

all: install lint test bench
