"""Legacy shim so `pip install -e .` works without the `wheel` package.

The offline environment ships setuptools 65 but no `wheel`, which breaks
PEP-517 editable installs; `pip install -e . --no-use-pep517` falls back
to `setup.py develop` through this file.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
