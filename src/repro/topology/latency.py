"""Latency oracles over a physical network.

The overlay and the PROP protocol constantly ask "what is the IP-level
latency between hosts a and b?".  Every consumer goes through the
:class:`LatencyOracleBase` protocol — ``between`` / ``to_many`` /
``pairwise`` / ``rows`` / ``sum_to`` / ``mean_pairwise`` / ``n`` — so
the latency *source* is pluggable:

* :class:`LatencyOracle` (this module) — the exact backend.  Dijkstra
  from the member hosts keeps the n x n shortest-path submatrix among
  them: precise, but O(n^2) memory.
* :class:`~repro.topology.vivaldi.VivaldiOracle` — d-dimensional
  synthetic coordinates fitted by spring relaxation over O(n*k) sampled
  pairs: O(n*dim) memory, approximate.
* :class:`~repro.topology.landmark.LandmarkOracle` — exact distances to
  m landmark hosts, triangulation for the rest: O(n*m) memory.

Hot-path note (per the HPC guides: vectorize, use views): the exact
matrix is a dense float64 ndarray; all protocol-side queries are plain
fancy-indexed reads, and the Var computation reduces over row views
without copies.  The protocol methods are thin enough that the exact
backend's fast paths stay a single vectorized expression.
"""

from __future__ import annotations

import abc

import numpy as np
import numpy.typing as npt
from scipy.sparse import csgraph

from repro.topology.transit_stub import PhysicalNetwork

__all__ = ["LatencyOracle", "LatencyOracleBase", "validate_hosts"]

FloatArray = npt.NDArray[np.float64]


def validate_hosts(network: PhysicalNetwork, hosts: np.ndarray) -> np.ndarray:
    """Canonicalize and validate a member-host array against ``network``.

    Shared by every oracle backend (and the cache's load path, so a
    cache hit revalidates exactly like a fresh construction).
    """
    hosts = np.asarray(hosts, dtype=np.int64)
    if hosts.ndim != 1 or hosts.size == 0:
        raise ValueError("hosts must be a non-empty 1-D array of host ids")
    if np.unique(hosts).size != hosts.size:
        raise ValueError("hosts must be unique")
    if int(hosts.min()) < 0 or int(hosts.max()) >= network.n:
        raise ValueError("host id out of range")
    return hosts


def shortest_path_rows(network: PhysicalNetwork, sources: np.ndarray) -> FloatArray:
    """Shortest-path latency from each of ``sources`` to every host.

    Returns a ``(len(sources), network.n)`` array.  The shared Dijkstra
    entry point of all backends; callers chunk ``sources`` when memory
    matters.
    """
    adj = network.adjacency()
    full = csgraph.dijkstra(adj, directed=False, indices=sources)
    return np.asarray(full, dtype=np.float64)


class LatencyOracleBase(abc.ABC):
    """Pairwise latency between a chosen subset of physical hosts.

    Works in *member index* space: member ``i`` is physical host
    ``hosts[i]``.  Subclasses implement :meth:`pairwise` (element-wise
    distances) and may override the derived methods with faster
    vectorized forms; every estimate must be symmetric, non-negative,
    finite, and zero on the diagonal.
    """

    #: Registry name of the backend ("exact", "vivaldi", "landmark").
    backend: str = "abstract"

    network: PhysicalNetwork
    hosts: np.ndarray

    @property
    def n(self) -> int:
        """Number of member hosts."""
        return int(self.hosts.size)

    # -- core ------------------------------------------------------------

    @abc.abstractmethod
    def pairwise(self, a: np.ndarray, b: np.ndarray) -> FloatArray:
        """Element-wise latencies ``d(a[k], b[k])`` for member arrays."""

    @abc.abstractmethod
    def state_nbytes(self) -> int:
        """Resident bytes of the backend's latency state (the scaling
        story: O(n^2) exact vs O(n*dim) coordinates vs O(n*m) landmark)."""

    # -- derived queries (override for speed) -----------------------------

    def between(self, i: int, j: int) -> float:
        """Latency (ms) between members ``i`` and ``j``."""
        a = np.asarray([i], dtype=np.intp)
        b = np.asarray([j], dtype=np.intp)
        return float(self.pairwise(a, b)[0])

    def to_many(self, i: int, others: np.ndarray | list[int]) -> FloatArray:
        """Vector of latencies from member ``i`` to each member in ``others``."""
        idx = np.asarray(others, dtype=np.intp)
        if idx.size == 0:
            return np.empty(0, dtype=np.float64)
        return self.pairwise(np.full(idx.shape, i, dtype=np.intp), idx)

    def rows(self, idx: np.ndarray | list[int]) -> FloatArray:
        """Latency rows (length ``n``) for members ``idx``."""
        sel = np.asarray(idx, dtype=np.intp)
        everyone = np.arange(self.n, dtype=np.intp)
        out = np.empty((sel.size, self.n), dtype=np.float64)
        for r, i in enumerate(sel):
            out[r] = self.to_many(int(i), everyone)
        return out

    def sum_to(self, i: int, others: np.ndarray | list[int]) -> float:
        """Sum of latencies from member ``i`` to each member in ``others``.

        This is the protocol's core quantity  ``sum_{x in N} d(i, x)``.
        """
        if len(others) == 0:
            return 0.0
        return float(self.to_many(i, others).sum())

    def mean_pairwise(self) -> float:
        """Mean latency over all member pairs, diagonal included.

        Matches the paper's Average Latency definition
        ``AL = (sum_{i,j} d(i,j)) / n^2`` with ``d(i,i) = 0``.
        Computed in row chunks so approximate backends never materialize
        an n x n matrix.
        """
        n = self.n
        total = 0.0
        chunk = max(1, min(n, 4_194_304 // max(n, 1)))
        sel = np.arange(n, dtype=np.intp)
        for lo in range(0, n, chunk):
            total += float(self.rows(sel[lo:lo + chunk]).sum())
        return total / float(n * n)

    def dense(self) -> FloatArray:
        """Full n x n estimate matrix.  O(n^2) memory — tests and parity
        checks only, never the simulation hot path."""
        return self.rows(np.arange(self.n, dtype=np.intp))

    def mean_physical_link(self) -> float:
        """Mean latency of *physical* links — the stretch denominator."""
        return self.network.mean_link_latency()


class LatencyOracle(LatencyOracleBase):
    """Exact shortest-path oracle (dense Dijkstra submatrix).

    Parameters
    ----------
    network:
        The physical substrate.
    hosts:
        Physical host ids participating in the overlay.  The oracle works
        in *member index* space: member ``i`` is physical host
        ``hosts[i]``, and ``matrix[i, j]`` is the shortest-path latency in
        milliseconds between members ``i`` and ``j``.
    """

    backend = "exact"

    def __init__(self, network: PhysicalNetwork, hosts: np.ndarray) -> None:
        hosts = validate_hosts(network, hosts)
        self.network = network
        self.hosts = hosts
        full = shortest_path_rows(network, hosts)
        self.matrix: FloatArray = np.ascontiguousarray(full[:, hosts])
        if not np.all(np.isfinite(self.matrix)):
            raise ValueError("physical network is disconnected across selected hosts")
        np.fill_diagonal(self.matrix, 0.0)

    @classmethod
    def from_matrix(
        cls, network: PhysicalNetwork, hosts: np.ndarray, matrix: np.ndarray
    ) -> "LatencyOracle":
        """Rebuild an oracle from a precomputed matrix (the cache-hit path).

        Runs the same host validation as ``__init__`` — a cache hit must
        never skip constructor checks — and verifies the matrix is a
        plausible latency submatrix for this member set (shape, dtype,
        finiteness, non-negativity, symmetry, zero diagonal).
        """
        hosts = validate_hosts(network, hosts)
        matrix = np.ascontiguousarray(np.asarray(matrix, dtype=np.float64))
        if matrix.shape != (hosts.size, hosts.size):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match {hosts.size} hosts"
            )
        if not np.all(np.isfinite(matrix)):
            raise ValueError("latency matrix must be finite")
        if np.any(matrix < 0) or np.any(np.diagonal(matrix) != 0.0):
            raise ValueError("latency matrix needs non-negative entries, zero diagonal")
        if not np.array_equal(matrix, matrix.T):
            raise ValueError("latency matrix must be symmetric (undirected substrate)")
        oracle = cls.__new__(cls)
        oracle.network = network
        oracle.hosts = hosts
        oracle.matrix = matrix
        return oracle

    # -- protocol fast paths ----------------------------------------------

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> FloatArray:
        """Element-wise latencies ``d(a[k], b[k])``."""
        return self.matrix[a, b]

    def between(self, i: int, j: int) -> float:
        """Latency (ms) between members ``i`` and ``j``."""
        return float(self.matrix[i, j])

    def to_many(self, i: int, others: np.ndarray | list[int]) -> FloatArray:
        """Vector of latencies from member ``i`` to each member in ``others``."""
        return self.matrix[i, np.asarray(others, dtype=np.intp)]

    def rows(self, idx: np.ndarray | list[int]) -> FloatArray:
        """View of the latency rows for members ``idx``."""
        return self.matrix[np.asarray(idx, dtype=np.intp)]

    def sum_to(self, i: int, others: np.ndarray | list[int]) -> float:
        """Sum of latencies from member ``i`` to each member in ``others``."""
        if len(others) == 0:
            return 0.0
        return float(self.matrix[i, np.asarray(others, dtype=np.intp)].sum())

    def mean_pairwise(self) -> float:
        """Mean latency over all member pairs, diagonal included."""
        return float(self.matrix.mean())

    def dense(self) -> FloatArray:
        return self.matrix

    def state_nbytes(self) -> int:
        return int(self.matrix.nbytes)
