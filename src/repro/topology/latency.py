"""Shortest-path latency oracle over a physical network.

The overlay and the PROP protocol constantly ask "what is the IP-level
latency between hosts a and b?".  Computing all-pairs shortest paths over
a ~6000-host physical graph would cost ~300 MB; instead the oracle runs
Dijkstra only from the hosts that actually join the overlay (n sources)
and keeps the n x n submatrix among them — the only distances the
simulation ever touches.

Hot-path note (per the HPC guides: vectorize, use views): the matrix is a
dense float64 ndarray; all protocol-side queries are plain fancy-indexed
reads, and the Var computation reduces over row views without copies.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csgraph

from repro.topology.transit_stub import PhysicalNetwork

__all__ = ["LatencyOracle"]


class LatencyOracle:
    """Pairwise latency between a chosen subset of physical hosts.

    Parameters
    ----------
    network:
        The physical substrate.
    hosts:
        Physical host ids participating in the overlay.  The oracle works
        in *member index* space: member ``i`` is physical host
        ``hosts[i]``, and ``matrix[i, j]`` is the shortest-path latency in
        milliseconds between members ``i`` and ``j``.
    """

    def __init__(self, network: PhysicalNetwork, hosts: np.ndarray) -> None:
        hosts = np.asarray(hosts, dtype=np.int64)
        if hosts.ndim != 1 or hosts.size == 0:
            raise ValueError("hosts must be a non-empty 1-D array of host ids")
        if np.unique(hosts).size != hosts.size:
            raise ValueError("hosts must be unique")
        if hosts.min() < 0 or hosts.max() >= network.n:
            raise ValueError("host id out of range")
        self.network = network
        self.hosts = hosts
        adj = network.adjacency()
        full = csgraph.dijkstra(adj, directed=False, indices=hosts)
        self.matrix = np.ascontiguousarray(full[:, hosts])
        if not np.all(np.isfinite(self.matrix)):
            raise ValueError("physical network is disconnected across selected hosts")
        np.fill_diagonal(self.matrix, 0.0)

    @property
    def n(self) -> int:
        """Number of member hosts."""
        return int(self.hosts.size)

    def between(self, i: int, j: int) -> float:
        """Latency (ms) between members ``i`` and ``j``."""
        return float(self.matrix[i, j])

    def rows(self, idx: np.ndarray | list[int]) -> np.ndarray:
        """View of the latency rows for members ``idx``."""
        return self.matrix[np.asarray(idx, dtype=np.intp)]

    def sum_to(self, i: int, others: np.ndarray | list[int]) -> float:
        """Sum of latencies from member ``i`` to each member in ``others``.

        This is the protocol's core quantity  ``sum_{x in N} d(i, x)``.
        """
        if len(others) == 0:
            return 0.0
        return float(self.matrix[i, np.asarray(others, dtype=np.intp)].sum())

    def mean_pairwise(self) -> float:
        """Mean latency over all member pairs, diagonal included.

        Matches the paper's Average Latency definition
        ``AL = (sum_{i,j} d(i,j)) / n^2`` with ``d(i,i) = 0``.
        """
        return float(self.matrix.mean())

    def mean_physical_link(self) -> float:
        """Mean latency of *physical* links — the stretch denominator."""
        return self.network.mean_link_latency()
