"""The two physical topology presets the paper evaluates on.

The conference text describes the presets qualitatively ("ts-large has a
larger backbone and sparser edge network than ts-small"; both contain
roughly the same number of hosts) but the OCR dropped the exact counts.
The parameters below reconstruct that contrast at the documented ~6000
host scale:

* ``ts-large``: 10 transit domains x 10 transit nodes, 3 stub domains per
  transit node, 20 hosts per stub domain -> 100 transit + 6000 stub.
  A big, 100-router backbone with many small edge networks: two random
  stub hosts almost always live in different transit domains, so
  exchanges move traffic across the expensive backbone — the regime where
  PROP helps most.
* ``ts-small``: 2 transit domains x 5 transit nodes, 6 stub domains per
  transit node, 100 hosts per stub domain -> 10 transit + 6000 stub.
  A tiny backbone with huge edge networks: most host pairs already share
  a domain, leaving less mismatch for PROP to repair.

Latency constants (5 / 20 / 100 ms for stub-stub / stub-transit /
transit-transit) follow the LTM paper (Liu et al., TPDS'05) and the
journal version of this paper.
"""

from __future__ import annotations

import numpy as np

from repro.netsim.rng import RngRegistry
from repro.topology.transit_stub import (
    LinkLatencies,
    PhysicalNetwork,
    TransitStubParams,
    generate_transit_stub,
)

__all__ = [
    "TS_LARGE",
    "TS_SMALL",
    "preset_params",
    "ts_large",
    "ts_small",
    "build_preset",
]

_PAPER_LATENCIES = LinkLatencies(stub_stub=5.0, stub_transit=20.0, transit_transit=100.0)

TS_LARGE = TransitStubParams(
    transit_domains=10,
    transit_nodes_per_domain=10,
    stub_domains_per_transit=3,
    stub_nodes_per_domain=20,
    latencies=_PAPER_LATENCIES,
)

TS_SMALL = TransitStubParams(
    transit_domains=2,
    transit_nodes_per_domain=5,
    stub_domains_per_transit=6,
    stub_nodes_per_domain=100,
    latencies=_PAPER_LATENCIES,
)

_PRESETS = {"ts-large": TS_LARGE, "ts-small": TS_SMALL}


def preset_params(name: str) -> TransitStubParams:
    """Look up transit-stub preset parameters (``ts-large`` / ``ts-small``)."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown transit-stub preset {name!r}; choose from {sorted(_PRESETS)}"
        ) from None


def build_preset(name: str, rng: np.random.Generator) -> PhysicalNetwork:
    """Generate a named preset topology.

    ``ts-large`` / ``ts-small`` are the paper's GT-ITM models;
    ``waxman`` is the flat-random robustness substrate (6000 hosts, all
    stub-tier).
    """
    if name == "waxman":
        from repro.topology.waxman import WaxmanParams, generate_waxman

        return generate_waxman(WaxmanParams(n=6000, alpha=0.08, beta=0.06), rng)
    return generate_transit_stub(preset_params(name), rng)


def ts_large(seed: int = 0) -> PhysicalNetwork:
    """Convenience constructor for the ``ts-large`` preset."""
    return build_preset("ts-large", RngRegistry(seed).stream("topology:ts-large"))


def ts_small(seed: int = 0) -> PhysicalNetwork:
    """Convenience constructor for the ``ts-small`` preset."""
    return build_preset("ts-small", RngRegistry(seed).stream("topology:ts-small"))
