"""Waxman flat random topology (robustness substrate).

GT-ITM generates flat random graphs as well as transit-stub hierarchies;
the classic flat model is Waxman's: nodes are placed uniformly in a
plane and each pair is connected with probability
``alpha * exp(-d / (beta * L))`` where ``d`` is their Euclidean distance
and ``L`` the plane diagonal.  Link latency is proportional to distance.

The paper evaluates on transit-stub only; this substrate lets the
ablation suite check that PROP's benefit is not an artifact of the
hierarchy (it is not — mismatch exists whenever the overlay ignores any
non-uniform latency geometry).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.transit_stub import PhysicalNetwork

__all__ = ["WaxmanParams", "generate_waxman"]


@dataclass(frozen=True)
class WaxmanParams:
    """Waxman graph parameters.

    ``alpha`` scales overall edge density; ``beta`` controls how sharply
    probability decays with distance (small beta = short links only).
    ``ms_per_unit`` converts plane distance (unit square) to link
    latency in milliseconds.
    """

    n: int
    alpha: float = 0.4
    beta: float = 0.15
    ms_per_unit: float = 100.0
    min_latency_ms: float = 1.0

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError("need at least two nodes")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.beta <= 0.0:
            raise ValueError("beta must be positive")
        if self.ms_per_unit <= 0.0 or self.min_latency_ms <= 0.0:
            raise ValueError("latency scales must be positive")


def generate_waxman(params: WaxmanParams, rng: np.random.Generator) -> PhysicalNetwork:
    """Generate a connected Waxman graph as a :class:`PhysicalNetwork`.

    Connectivity is guaranteed by adding a Euclidean nearest-unvisited
    chain on top of the probabilistic edges (the standard repair; it
    only ever adds short links, preserving the model's geometry).
    All nodes are stub-tier so an overlay may join from any of them.
    """
    n = params.n
    pos = rng.random((n, 2))
    diff = pos[:, None, :] - pos[None, :, :]
    dist = np.sqrt((diff ** 2).sum(axis=2))
    scale = float(np.sqrt(2.0))  # unit-square diagonal

    prob = params.alpha * np.exp(-dist / (params.beta * scale))
    draw = rng.random((n, n))
    upper = np.triu(np.ones((n, n), dtype=bool), k=1)
    adj = (draw < prob) & upper

    # connectivity repair: greedy nearest-neighbor chain over components
    u_list, v_list = np.nonzero(adj)
    parent = np.arange(n)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in zip(u_list, v_list):
        parent[find(int(a))] = find(int(b))
    roots = {find(i) for i in range(n)}
    while len(roots) > 1:
        # connect the two closest nodes in different components
        best = None
        best_d = np.inf
        comp = np.array([find(i) for i in range(n)])
        first_root = next(iter(roots))
        in_first = comp == first_root
        d_sub = dist[np.ix_(in_first, ~in_first)]
        i_idx = np.flatnonzero(in_first)
        j_idx = np.flatnonzero(~in_first)
        k = int(np.argmin(d_sub))
        a = int(i_idx[k // len(j_idx)])
        b = int(j_idx[k % len(j_idx)])
        adj[min(a, b), max(a, b)] = True
        parent[find(a)] = find(b)
        roots = {find(i) for i in range(n)}

    u, v = np.nonzero(adj)
    w = np.maximum(dist[u, v] * params.ms_per_unit, params.min_latency_ms)
    net = PhysicalNetwork(
        n=n,
        edges_u=u.astype(np.int32),
        edges_v=v.astype(np.int32),
        edges_w=w.astype(np.float64),
        tier=np.ones(n, dtype=np.int8),  # all stub: any node may join overlays
        domain=np.zeros(n, dtype=np.int32),
        params=None,
    )
    net.validate()
    return net
