"""Vivaldi-style synthetic-coordinate latency oracle.

The Dabek et al. (NSDI'04) line the paper's PNS discussion leans on:
every member gets a point in a low-dimensional Euclidean space plus a
non-negative *height* (the access-link cost that Euclidean coordinates
cannot express — exactly the stub-transit hop of a transit-stub
topology), and the latency estimate between two members is

    d(i, j) ~= ||x_i - x_j|| + h_i + h_j.

Coordinates are fitted by batch spring relaxation over O(n*k) sampled
member pairs whose true shortest-path latencies are measured with
chunked Dijkstra sweeps (bounded memory: one chunk of rows at a time,
only the sampled entries are kept).  Resident state is O(n*dim) — the
property that makes million-node oracles feasible where the exact
O(n^2) submatrix is the wall.

Determinism: sampling and coordinate initialization draw only from the
injected generator (the harness hands in the named ``oracle:vivaldi``
stream per reprolint D2), and the relaxation itself is pure vectorized
arithmetic in a fixed iteration order — same seed, same coordinates,
byte-identical estimates, serial or under any ``--workers`` count.

A held-out sample of measured pairs (never used for fitting) yields the
embedding-error distribution reported by :meth:`VivaldiOracle.error_summary`.
"""

from __future__ import annotations

import numpy as np

from repro.topology.latency import FloatArray, LatencyOracleBase, validate_hosts
from repro.topology.transit_stub import PhysicalNetwork

__all__ = ["VivaldiOracle"]

#: Dijkstra sources per sweep chunk: bounds the (chunk, n_hosts) scratch
#: rows to a few MB at the ~6000-host preset scale.
_CHUNK_SOURCES = 256


def _sample_partners(
    n: int, k: int, rng: np.random.Generator
) -> np.ndarray:
    """For each member, ``k`` distinct partner members (never itself).

    Returns an ``(n, k)`` int array.  Per-member draws keep the memory
    O(n*k); the loop is construction-time only, never the sim hot path.
    """
    if not 1 <= k <= n - 1:
        raise ValueError(f"need 1..{n - 1} partners per member, got {k}")
    partners = np.empty((n, k), dtype=np.intp)
    pool = np.arange(n - 1, dtype=np.intp)
    for i in range(n):
        draw = rng.choice(pool, size=k, replace=False)
        # skip self: indices >= i shift up by one
        partners[i] = np.where(draw >= i, draw + 1, draw)
    return partners


def _measure_pairs(
    network: PhysicalNetwork, hosts: np.ndarray, partners: np.ndarray
) -> FloatArray:
    """True shortest-path latency for every (i, partners[i]) pair.

    Chunked Dijkstra: each sweep materializes rows for a bounded batch
    of sources and keeps only the sampled columns, so peak memory is
    O(chunk * n_hosts) scratch + O(n * k) result.
    """
    from repro.topology.latency import shortest_path_rows

    n, k = partners.shape
    measured = np.empty((n, k), dtype=np.float64)
    for lo in range(0, n, _CHUNK_SOURCES):
        hi = min(lo + _CHUNK_SOURCES, n)
        rows = shortest_path_rows(network, hosts[lo:hi])
        cols = hosts[partners[lo:hi]]  # (chunk, k) physical ids
        measured[lo:hi] = np.take_along_axis(rows, cols, axis=1)
    if not np.all(np.isfinite(measured)):
        raise ValueError("physical network is disconnected across selected hosts")
    return measured


class VivaldiOracle(LatencyOracleBase):
    """Synthetic-coordinate latency oracle (O(n*dim) resident state).

    Parameters
    ----------
    network, hosts:
        As for the exact oracle; estimates live in member index space.
    rng:
        Injected seeded generator — the harness derives it from the
        named ``oracle:vivaldi`` stream, so fitting never perturbs any
        other component's draws.
    dim:
        Euclidean dimensionality of the coordinate space.
    neighbors:
        Sampled partners per member used for fitting (the ``k`` in the
        O(n*k) measurement budget).
    holdout:
        Extra measured partners per member excluded from fitting and
        used only for the reported error distribution.
    iterations:
        Batch relaxation sweeps over all sampled springs.
    step:
        Initial relaxation step; cools linearly to zero.
    """

    backend = "vivaldi"

    def __init__(
        self,
        network: PhysicalNetwork,
        hosts: np.ndarray,
        rng: np.random.Generator,
        *,
        dim: int = 4,
        neighbors: int = 32,
        holdout: int = 4,
        iterations: int = 256,
        step: float = 0.5,
    ) -> None:
        hosts = validate_hosts(network, hosts)
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if holdout < 1:
            raise ValueError(f"holdout must be >= 1, got {holdout}")
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if not 0.0 < step <= 1.0:
            raise ValueError(f"step must be in (0, 1], got {step}")
        n = int(hosts.size)
        if neighbors + holdout > n - 1:
            raise ValueError(
                f"neighbors+holdout = {neighbors + holdout} needs at least "
                f"{neighbors + holdout + 1} members, got {n}"
            )
        self.network = network
        self.hosts = hosts
        self.dim = int(dim)

        partners = _sample_partners(n, neighbors + holdout, rng)
        measured = _measure_pairs(network, hosts, partners)
        train_p, hold_p = partners[:, :neighbors], partners[:, neighbors:]
        train_m, hold_m = measured[:, :neighbors], measured[:, neighbors:]

        coords, height = _fit_springs(
            train_p, train_m, dim=dim, iterations=iterations, step=step, rng=rng
        )
        self.coords: FloatArray = coords
        self.height: FloatArray = height

        src = np.repeat(np.arange(n, dtype=np.intp), hold_p.shape[1])
        est = self.pairwise(src, hold_p.ravel())
        truth = hold_m.ravel()
        self.rel_errors: FloatArray = np.abs(est - truth) / np.maximum(truth, 1e-9)

    @classmethod
    def from_state(
        cls,
        network: PhysicalNetwork,
        hosts: np.ndarray,
        *,
        coords: np.ndarray,
        height: np.ndarray,
        rel_errors: np.ndarray,
    ) -> "VivaldiOracle":
        """Rebuild from fitted state (the cache-hit path).

        Host validation runs exactly as in ``__init__``; the state
        arrays are shape- and finiteness-checked before being trusted.
        """
        hosts = validate_hosts(network, hosts)
        coords = np.ascontiguousarray(np.asarray(coords, dtype=np.float64))
        height = np.ascontiguousarray(np.asarray(height, dtype=np.float64))
        rel_errors = np.asarray(rel_errors, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[0] != hosts.size:
            raise ValueError(f"coords shape {coords.shape} does not match hosts")
        if height.shape != (hosts.size,):
            raise ValueError(f"height shape {height.shape} does not match hosts")
        if not (np.all(np.isfinite(coords)) and np.all(np.isfinite(height))):
            raise ValueError("coordinate state must be finite")
        if np.any(height < 0):
            raise ValueError("heights must be non-negative")
        oracle = cls.__new__(cls)
        oracle.network = network
        oracle.hosts = hosts
        oracle.dim = int(coords.shape[1])
        oracle.coords = coords
        oracle.height = height
        oracle.rel_errors = rel_errors
        return oracle

    # -- protocol ---------------------------------------------------------

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> FloatArray:
        """Element-wise estimates ``||x_a - x_b|| + h_a + h_b`` (0 when a==b)."""
        diff = self.coords[a] - self.coords[b]
        est = np.sqrt(np.einsum("...i,...i->...", diff, diff))
        est += self.height[a] + self.height[b]
        return np.where(np.asarray(a) == np.asarray(b), 0.0, est)

    def to_many(self, i: int, others: np.ndarray | list[int]) -> FloatArray:
        idx = np.asarray(others, dtype=np.intp)
        if idx.size == 0:
            return np.empty(0, dtype=np.float64)
        diff = self.coords[idx] - self.coords[i]
        est = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        est += self.height[idx] + self.height[i]
        est[idx == i] = 0.0
        return est

    def state_nbytes(self) -> int:
        return int(self.coords.nbytes + self.height.nbytes)

    def error_summary(self) -> dict[str, float]:
        """Held-out embedding-error distribution (relative error)."""
        e = self.rel_errors
        return {
            "median_rel_error": float(np.median(e)),
            "p90_rel_error": float(np.percentile(e, 90)),
            "mean_rel_error": float(e.mean()),
        }


def _fit_springs(
    partners: np.ndarray,
    measured: FloatArray,
    *,
    dim: int,
    iterations: int,
    step: float,
    rng: np.random.Generator,
) -> tuple[FloatArray, FloatArray]:
    """Batch spring relaxation; returns (coords, height).

    Each sampled pair is a spring of rest length ``measured``; every
    sweep moves both endpoints along the spring axis by the per-node
    mean displacement (normalizing by incidence keeps the update stable
    regardless of k) with a linearly cooling step.  Heights absorb the
    residual a Euclidean embedding cannot: they climb when estimates
    run short and are clamped non-negative.
    """
    n, k = partners.shape
    src = np.repeat(np.arange(n, dtype=np.intp), k)
    dst = partners.ravel()
    rest = measured.ravel()

    # incidence count of each node over all springs (it appears k times
    # as source plus however often it was sampled as a partner)
    counts = (
        np.bincount(src, minlength=n) + np.bincount(dst, minlength=n)
    ).astype(np.float64)
    counts = np.maximum(counts, 1.0)

    scale = float(np.median(rest))
    coords = (scale * 0.1) * rng.standard_normal((n, dim))
    height = np.zeros(n, dtype=np.float64)

    for t in range(iterations):
        cool = step * (1.0 - t / iterations)
        diff = coords[src] - coords[dst]
        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        est = dist + height[src] + height[dst]
        err = rest - est  # > 0: push apart / raise heights
        unit = diff / np.maximum(dist, 1e-9)[:, None]
        force = (cool * err)[:, None] * unit

        move = np.zeros_like(coords)
        np.add.at(move, src, force)
        np.add.at(move, dst, -force)
        coords += move / counts[:, None]

        lift = np.zeros(n, dtype=np.float64)
        np.add.at(lift, src, err)
        np.add.at(lift, dst, err)
        height = np.maximum(height + 0.5 * cool * lift / counts, 0.0)

    return np.ascontiguousarray(coords), height
