"""Physical network substrate: GT-ITM-style transit-stub topologies.

The paper generates its physical Internet model with the GT-ITM tool
(Zegura et al., INFOCOM'96): a three-tier hierarchy of transit domains,
transit nodes, and stub domains, with per-tier link latencies.  This
package reimplements that construction (:mod:`~repro.topology.transit_stub`),
the two presets the paper evaluates on (:mod:`~repro.topology.presets`:
``ts-large`` and ``ts-small``), and a shortest-path latency oracle over
the result (:mod:`~repro.topology.latency`).
"""

from repro.topology.cache import cache_key, cached_oracle, valid_matrix
from repro.topology.latency import LatencyOracle
from repro.topology.waxman import WaxmanParams, generate_waxman
from repro.topology.presets import (
    TS_LARGE,
    TS_SMALL,
    build_preset,
    preset_params,
    ts_large,
    ts_small,
)
from repro.topology.transit_stub import (
    LinkLatencies,
    PhysicalNetwork,
    TransitStubParams,
    generate_transit_stub,
)

__all__ = [
    "LatencyOracle",
    "WaxmanParams",
    "cache_key",
    "cached_oracle",
    "valid_matrix",
    "generate_waxman",
    "LinkLatencies",
    "PhysicalNetwork",
    "TransitStubParams",
    "TS_LARGE",
    "TS_SMALL",
    "build_preset",
    "generate_transit_stub",
    "preset_params",
    "ts_large",
    "ts_small",
]
