"""Physical network substrate: GT-ITM-style transit-stub topologies.

The paper generates its physical Internet model with the GT-ITM tool
(Zegura et al., INFOCOM'96): a three-tier hierarchy of transit domains,
transit nodes, and stub domains, with per-tier link latencies.  This
package reimplements that construction (:mod:`~repro.topology.transit_stub`),
the two presets the paper evaluates on (:mod:`~repro.topology.presets`:
``ts-large`` and ``ts-small``), and pluggable latency oracles over the
result: the exact shortest-path backend (:mod:`~repro.topology.latency`),
Vivaldi synthetic coordinates (:mod:`~repro.topology.vivaldi`), and
landmark triangulation (:mod:`~repro.topology.landmark`), selected via
:func:`~repro.topology.factory.build_oracle` and memoized on disk by
:mod:`~repro.topology.cache`.
"""

from repro.topology.cache import cache_key, cached_oracle, valid_matrix
from repro.topology.factory import ORACLE_BACKENDS, build_oracle
from repro.topology.landmark import LandmarkOracle
from repro.topology.latency import LatencyOracle, LatencyOracleBase
from repro.topology.vivaldi import VivaldiOracle
from repro.topology.waxman import WaxmanParams, generate_waxman
from repro.topology.presets import (
    TS_LARGE,
    TS_SMALL,
    build_preset,
    preset_params,
    ts_large,
    ts_small,
)
from repro.topology.transit_stub import (
    LinkLatencies,
    PhysicalNetwork,
    TransitStubParams,
    generate_transit_stub,
)

__all__ = [
    "LandmarkOracle",
    "LatencyOracle",
    "LatencyOracleBase",
    "ORACLE_BACKENDS",
    "VivaldiOracle",
    "WaxmanParams",
    "build_oracle",
    "cache_key",
    "cached_oracle",
    "valid_matrix",
    "generate_waxman",
    "LinkLatencies",
    "PhysicalNetwork",
    "TransitStubParams",
    "TS_LARGE",
    "TS_SMALL",
    "build_preset",
    "generate_transit_stub",
    "preset_params",
    "ts_large",
    "ts_small",
]
