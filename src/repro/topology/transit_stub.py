"""Transit-stub physical topology generator.

Reimplementation of the GT-ITM transit-stub model the paper uses as its
physical network:

* A top level of ``transit_domains`` domains, each containing
  ``transit_nodes_per_domain`` transit (backbone) routers.  Transit nodes
  inside a domain form a connected random graph; the domains themselves
  are stitched into a connected top-level graph via inter-domain
  transit-transit links.
* Every transit node sponsors ``stub_domains_per_transit`` stub domains
  of ``stub_nodes_per_domain`` edge hosts each.  Each stub domain is a
  connected random graph attached to its sponsor transit node by a
  stub-transit link.

Link latencies follow the tier of the link: stub-stub, stub-transit, and
transit-transit (the paper's three constants; 5/20/100 ms in our presets,
the values used by the LTM baseline paper and the journal version — the
OCR of the conference text dropped the numerals).

Connected random intra-domain graphs are built as a ring plus random
chords.  GT-ITM itself uses flat random (Waxman) graphs re-sampled until
connected; the ring-plus-chords construction has the same qualitative
redundancy at the domain scale used here (3-100 nodes per domain) while
being deterministic in the number of edges, which keeps generation O(E).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

__all__ = [
    "LinkLatencies",
    "TransitStubParams",
    "PhysicalNetwork",
    "generate_transit_stub",
]

# Node tier codes stored in PhysicalNetwork.tier
TIER_TRANSIT = 0
TIER_STUB = 1


@dataclass(frozen=True)
class LinkLatencies:
    """Per-tier one-way link latencies in milliseconds."""

    stub_stub: float = 5.0
    stub_transit: float = 20.0
    transit_transit: float = 100.0

    def __post_init__(self) -> None:
        for name in ("stub_stub", "stub_transit", "transit_transit"):
            v = getattr(self, name)
            if v <= 0.0:
                raise ValueError(f"{name} latency must be positive, got {v}")


@dataclass(frozen=True)
class TransitStubParams:
    """Shape parameters of a transit-stub topology.

    ``extra_chords_frac`` controls intra-domain redundancy: each domain
    ring of k nodes receives ``floor(extra_chords_frac * k)`` extra
    random chord edges (k >= 4 only).  ``extra_interdomain_links`` adds
    that many random transit-transit links between distinct domains on
    top of the connecting ring of domains.
    """

    transit_domains: int
    transit_nodes_per_domain: int
    stub_domains_per_transit: int
    stub_nodes_per_domain: int
    latencies: LinkLatencies = field(default_factory=LinkLatencies)
    extra_chords_frac: float = 0.3
    extra_interdomain_links: int = 2

    def __post_init__(self) -> None:
        if self.transit_domains < 1:
            raise ValueError("need at least one transit domain")
        if self.transit_nodes_per_domain < 1:
            raise ValueError("need at least one transit node per domain")
        if self.stub_domains_per_transit < 0:
            raise ValueError("stub_domains_per_transit must be >= 0")
        if self.stub_nodes_per_domain < 1 and self.stub_domains_per_transit > 0:
            raise ValueError("stub domains must contain at least one node")
        if not 0.0 <= self.extra_chords_frac <= 2.0:
            raise ValueError("extra_chords_frac out of sane range [0, 2]")
        if self.extra_interdomain_links < 0:
            raise ValueError("extra_interdomain_links must be >= 0")

    @property
    def n_transit(self) -> int:
        return self.transit_domains * self.transit_nodes_per_domain

    @property
    def n_stub(self) -> int:
        return self.n_transit * self.stub_domains_per_transit * self.stub_nodes_per_domain

    @property
    def n_hosts(self) -> int:
        return self.n_transit + self.n_stub


@dataclass
class PhysicalNetwork:
    """An undirected weighted physical graph.

    Attributes
    ----------
    n:
        Number of hosts (transit + stub).
    edges_u, edges_v, edges_w:
        Parallel arrays describing the undirected edges and their
        latencies in milliseconds.
    tier:
        ``tier[i]`` is ``TIER_TRANSIT`` (0) or ``TIER_STUB`` (1).
    domain:
        Domain label per node.  Transit nodes carry their transit domain
        index; stub nodes carry ``transit_domains + stub_domain_index``
        so that labels are unique across tiers.
    params:
        The generating parameters (None for hand-built networks).
    """

    n: int
    edges_u: np.ndarray
    edges_v: np.ndarray
    edges_w: np.ndarray
    tier: np.ndarray
    domain: np.ndarray
    params: TransitStubParams | None = None

    @property
    def n_edges(self) -> int:
        return int(self.edges_u.shape[0])

    @property
    def stub_hosts(self) -> np.ndarray:
        """Indices of stub-tier hosts (the overlay joins from these)."""
        return np.flatnonzero(self.tier == TIER_STUB)

    @property
    def transit_hosts(self) -> np.ndarray:
        return np.flatnonzero(self.tier == TIER_TRANSIT)

    def mean_link_latency(self) -> float:
        """Mean latency over physical links — the stretch denominator."""
        return float(np.mean(self.edges_w))

    def adjacency(self) -> sparse.csr_matrix:
        """Symmetric CSR adjacency matrix weighted by latency."""
        u, v, w = self.edges_u, self.edges_v, self.edges_w
        data = np.concatenate([w, w])
        rows = np.concatenate([u, v])
        cols = np.concatenate([v, u])
        mat = sparse.coo_matrix((data, (rows, cols)), shape=(self.n, self.n))
        # Duplicate (u, v) entries would be summed by COO->CSR conversion,
        # corrupting latencies; generation guarantees uniqueness but guard
        # hand-built networks too by taking the minimum duplicate.
        mat.sum_duplicates()
        return mat.tocsr()

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        if self.edges_u.shape != self.edges_v.shape or self.edges_u.shape != self.edges_w.shape:
            raise ValueError("edge arrays must have identical shapes")
        if self.n_edges and (self.edges_u.min() < 0
                             or max(self.edges_u.max(), self.edges_v.max()) >= self.n):
            raise ValueError("edge endpoint out of range")
        if np.any(self.edges_u == self.edges_v):
            raise ValueError("self-loop in physical network")
        if np.any(self.edges_w <= 0):
            raise ValueError("non-positive link latency")
        if self.tier.shape != (self.n,) or self.domain.shape != (self.n,):
            raise ValueError("tier/domain arrays must have one entry per host")


class _EdgeAccumulator:
    """Collects unique undirected edges during generation."""

    def __init__(self) -> None:
        self._seen: set[tuple[int, int]] = set()
        self.u: list[int] = []
        self.v: list[int] = []
        self.w: list[float] = []

    def add(self, a: int, b: int, w: float) -> bool:
        if a == b:
            return False
        key = (a, b) if a < b else (b, a)
        if key in self._seen:
            return False
        self._seen.add(key)
        self.u.append(key[0])
        self.v.append(key[1])
        self.w.append(w)
        return True

    def has(self, a: int, b: int) -> bool:
        return ((a, b) if a < b else (b, a)) in self._seen


def _connect_domain(acc: _EdgeAccumulator, nodes: np.ndarray, latency: float,
                    chords_frac: float, rng: np.random.Generator) -> None:
    """Wire ``nodes`` into a connected ring plus random chords."""
    k = len(nodes)
    if k == 1:
        return
    if k == 2:
        acc.add(int(nodes[0]), int(nodes[1]), latency)
        return
    order = rng.permutation(nodes)
    for i in range(k):
        acc.add(int(order[i]), int(order[(i + 1) % k]), latency)
    n_chords = int(chords_frac * k) if k >= 4 else 0
    attempts = 0
    added = 0
    # Rejection-sample chords; cap attempts so degenerate tiny domains
    # cannot loop forever.
    while added < n_chords and attempts < 20 * n_chords + 20:
        a, b = rng.choice(nodes, size=2, replace=False)
        if acc.add(int(a), int(b), latency):
            added += 1
        attempts += 1


def generate_transit_stub(params: TransitStubParams, rng: np.random.Generator) -> PhysicalNetwork:
    """Generate a connected transit-stub physical network.

    The construction is connected by design: each domain is internally
    connected (ring), each stub domain hangs off its sponsor transit node,
    and transit domains are stitched by a ring of inter-domain links.
    """
    n_transit = params.n_transit
    n = params.n_hosts
    tier = np.empty(n, dtype=np.int8)
    domain = np.empty(n, dtype=np.int32)
    tier[:n_transit] = TIER_TRANSIT
    tier[n_transit:] = TIER_STUB

    acc = _EdgeAccumulator()
    lat = params.latencies

    # --- transit tier -------------------------------------------------
    transit_domain_nodes: list[np.ndarray] = []
    for d in range(params.transit_domains):
        lo = d * params.transit_nodes_per_domain
        hi = lo + params.transit_nodes_per_domain
        nodes = np.arange(lo, hi)
        domain[lo:hi] = d
        transit_domain_nodes.append(nodes)
        _connect_domain(acc, nodes, lat.transit_transit, params.extra_chords_frac, rng)

    # Stitch transit domains into a ring (connected top level), then add
    # extra random inter-domain links for path diversity.
    nd = params.transit_domains
    if nd > 1:
        for d in range(nd):
            a = int(rng.choice(transit_domain_nodes[d]))
            b = int(rng.choice(transit_domain_nodes[(d + 1) % nd]))
            acc.add(a, b, lat.transit_transit)
        extra = 0
        attempts = 0
        while extra < params.extra_interdomain_links and attempts < 100:
            d1, d2 = rng.choice(nd, size=2, replace=False)
            a = int(rng.choice(transit_domain_nodes[d1]))
            b = int(rng.choice(transit_domain_nodes[d2]))
            if acc.add(a, b, lat.transit_transit):
                extra += 1
            attempts += 1

    # --- stub tier ------------------------------------------------------
    next_node = n_transit
    stub_domain_id = params.transit_domains
    for t in range(n_transit):
        for _ in range(params.stub_domains_per_transit):
            nodes = np.arange(next_node, next_node + params.stub_nodes_per_domain)
            domain[nodes] = stub_domain_id
            _connect_domain(acc, nodes, lat.stub_stub, params.extra_chords_frac, rng)
            gateway = int(rng.choice(nodes))
            acc.add(gateway, t, lat.stub_transit)
            next_node += params.stub_nodes_per_domain
            stub_domain_id += 1

    net = PhysicalNetwork(
        n=n,
        edges_u=np.asarray(acc.u, dtype=np.int32),
        edges_v=np.asarray(acc.v, dtype=np.int32),
        edges_w=np.asarray(acc.w, dtype=np.float64),
        tier=tier,
        domain=domain,
        params=params,
    )
    net.validate()
    return net
