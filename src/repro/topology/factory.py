"""Oracle backend registry and construction.

One seam for every consumer that needs a latency source — the harness,
the CLI, the cache, and the benchmarks all resolve ``--oracle
{exact,vivaldi,landmark}`` through :func:`build_oracle`, so adding a
backend is one registry entry plus a class.

The Vivaldi fit draws from the named ``oracle:vivaldi`` stream derived
from the experiment's master seed (reprolint D2: every stochastic
component owns a named stream) — constructing the oracle can never
perturb membership, overlay, workload, or protocol draws.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.netsim.rng import derive_seed
from repro.topology.landmark import LandmarkOracle
from repro.topology.latency import LatencyOracle, LatencyOracleBase
from repro.topology.transit_stub import PhysicalNetwork
from repro.topology.vivaldi import VivaldiOracle

__all__ = ["ORACLE_BACKENDS", "VIVALDI_STREAM", "build_oracle", "oracle_cache_params"]

#: Selectable latency-oracle backends, in documentation order.
ORACLE_BACKENDS = ("exact", "vivaldi", "landmark")

#: Named RNG stream feeding the Vivaldi fit (reprolint D2).
VIVALDI_STREAM = "oracle:vivaldi"

#: Backend construction parameters and their defaults; anything else in
#: ``options`` is rejected so typos never silently fall back to defaults.
_OPTION_KEYS: dict[str, frozenset[str]] = {
    "exact": frozenset(),
    "vivaldi": frozenset({"dim", "neighbors", "holdout", "iterations", "step"}),
    "landmark": frozenset({"per_domain"}),
}


def _check_options(backend: str, options: Mapping[str, Any]) -> dict[str, Any]:
    allowed = _OPTION_KEYS[backend]
    unknown = sorted(set(options) - allowed)
    if unknown:
        raise ValueError(
            f"unknown {backend!r} oracle option(s) {unknown}; "
            f"allowed: {sorted(allowed) or 'none'}"
        )
    return dict(options)


def build_oracle(
    backend: str,
    network: PhysicalNetwork,
    hosts: np.ndarray,
    *,
    seed: int = 0,
    options: Mapping[str, Any] | None = None,
) -> LatencyOracleBase:
    """Construct the latency oracle for ``backend``.

    ``seed`` feeds only the Vivaldi fit (via its own named stream); the
    exact and landmark backends are RNG-free and ignore it.
    """
    if backend not in ORACLE_BACKENDS:
        raise ValueError(
            f"unknown oracle backend {backend!r}; choose from {ORACLE_BACKENDS}"
        )
    opts = _check_options(backend, options or {})
    if backend == "exact":
        return LatencyOracle(network, hosts)
    if backend == "vivaldi":
        rng = np.random.Generator(np.random.PCG64(derive_seed(seed, VIVALDI_STREAM)))
        return VivaldiOracle(network, hosts, rng, **opts)
    return LandmarkOracle(network, hosts, **opts)


def oracle_cache_params(
    backend: str,
    *,
    seed: int = 0,
    options: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Canonical parameter dict a cache key must cover for ``backend``.

    The exact and landmark backends are seed-independent, so their keys
    deliberately exclude the seed — every experiment seed shares one
    cache entry.  Vivaldi results depend on the fit stream, so its key
    includes the seed.
    """
    if backend not in ORACLE_BACKENDS:
        raise ValueError(
            f"unknown oracle backend {backend!r}; choose from {ORACLE_BACKENDS}"
        )
    params = _check_options(backend, options or {})
    if backend == "vivaldi":
        params["seed"] = int(seed)
    return params
