"""Landmark (triangulation) latency oracle.

The tiered exact mode for transit-stub presets: keep *exact* Dijkstra
distances from every member to ``m`` landmark hosts — chosen per
transit domain, so every backbone region is anchored — and estimate any
member pair by triangulation through the best landmark:

    d(i, j) ~= min_k ( d(L_k, i) + d(L_k, j) ).

On a transit-stub topology a cross-domain route necessarily crosses the
backbone; with landmarks in each transit domain some ``L_k`` sits on
(or next to) the true shortest path and the triangle estimate is exact
or near-exact for exactly the expensive pairs PROP cares about.
Same-domain pairs are overestimated (the detour through the landmark),
which is the backend's documented bias.

Resident state is the (m, n) landmark-distance matrix — O(n*m) with
``m << n`` — and construction runs Dijkstra from the m landmarks only,
never from all n members.

Landmark choice is deterministic (lowest-index transit hosts per
domain; index-spread fallback on flat substrates like Waxman), so the
backend needs no RNG at all: same network, same member set, same
estimates — serial or parallel.
"""

from __future__ import annotations

import numpy as np

from repro.topology.latency import FloatArray, LatencyOracleBase, validate_hosts
from repro.topology.transit_stub import TIER_TRANSIT, PhysicalNetwork

__all__ = ["LandmarkOracle", "choose_landmarks"]


def choose_landmarks(network: PhysicalNetwork, per_domain: int) -> np.ndarray:
    """Deterministic landmark host ids: ``per_domain`` per transit domain.

    Transit hosts are grouped by their domain label and the
    lowest-indexed ``per_domain`` of each group are taken.  Substrates
    without a transit tier (e.g. Waxman) fall back to hosts spread
    evenly across the index space — the same count a one-domain
    transit-stub graph would get times eight, to compensate for the
    missing hierarchy.
    """
    if per_domain < 1:
        raise ValueError(f"per_domain must be >= 1, got {per_domain}")
    transit = np.flatnonzero(network.tier == TIER_TRANSIT)
    if transit.size == 0:
        count = min(network.n, per_domain * 8)
        spread = np.linspace(0, network.n - 1, num=count)
        return np.unique(spread.astype(np.int64))
    picked: list[np.ndarray] = []
    for dom in np.unique(network.domain[transit]):
        members = transit[network.domain[transit] == dom]
        picked.append(np.sort(members)[:per_domain])
    return np.concatenate(picked).astype(np.int64)


class LandmarkOracle(LatencyOracleBase):
    """Triangulated latency oracle over per-domain landmarks.

    Parameters
    ----------
    network, hosts:
        As for the exact oracle; estimates live in member index space.
    per_domain:
        Landmarks kept per transit domain (``m = per_domain * domains``).
    """

    backend = "landmark"

    def __init__(
        self,
        network: PhysicalNetwork,
        hosts: np.ndarray,
        *,
        per_domain: int = 4,
    ) -> None:
        hosts = validate_hosts(network, hosts)
        landmarks = choose_landmarks(network, per_domain)
        self._init_from(network, hosts, landmarks, None)

    def _init_from(
        self,
        network: PhysicalNetwork,
        hosts: np.ndarray,
        landmarks: np.ndarray,
        landmark_matrix: FloatArray | None,
    ) -> None:
        from repro.topology.latency import shortest_path_rows

        if landmark_matrix is None:
            rows = shortest_path_rows(network, landmarks)
            landmark_matrix = np.ascontiguousarray(rows[:, hosts])
        if not np.all(np.isfinite(landmark_matrix)):
            raise ValueError("physical network is disconnected across selected hosts")
        if np.any(landmark_matrix < 0):
            raise ValueError("landmark distances must be non-negative")
        self.network = network
        self.hosts = hosts
        self.landmarks: np.ndarray = landmarks
        #: (m, n): exact distance from landmark k to member i.
        self.landmark_matrix: FloatArray = landmark_matrix

    @classmethod
    def from_state(
        cls,
        network: PhysicalNetwork,
        hosts: np.ndarray,
        *,
        landmarks: np.ndarray,
        landmark_matrix: np.ndarray,
    ) -> "LandmarkOracle":
        """Rebuild from stored landmark distances (the cache-hit path).

        Host validation runs exactly as in ``__init__``; the distance
        matrix is shape- and finiteness-checked before being trusted.
        """
        hosts = validate_hosts(network, hosts)
        landmarks = np.asarray(landmarks, dtype=np.int64)
        if landmarks.ndim != 1 or landmarks.size == 0:
            raise ValueError("landmarks must be a non-empty 1-D array")
        if int(landmarks.min()) < 0 or int(landmarks.max()) >= network.n:
            raise ValueError("landmark id out of range")
        matrix = np.ascontiguousarray(np.asarray(landmark_matrix, dtype=np.float64))
        if matrix.shape != (landmarks.size, hosts.size):
            raise ValueError(
                f"landmark matrix shape {matrix.shape} does not match "
                f"{landmarks.size} landmarks x {hosts.size} hosts"
            )
        oracle = cls.__new__(cls)
        oracle._init_from(network, hosts, landmarks, matrix)
        return oracle

    @property
    def m(self) -> int:
        """Number of landmarks."""
        return int(self.landmarks.size)

    # -- protocol ---------------------------------------------------------

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> FloatArray:
        """Element-wise triangle estimates (0 when a==b)."""
        lm = self.landmark_matrix
        est = (lm[:, a] + lm[:, b]).min(axis=0)
        return np.where(np.asarray(a) == np.asarray(b), 0.0, est)

    def to_many(self, i: int, others: np.ndarray | list[int]) -> FloatArray:
        idx = np.asarray(others, dtype=np.intp)
        if idx.size == 0:
            return np.empty(0, dtype=np.float64)
        lm = self.landmark_matrix
        est = (lm[:, idx] + lm[:, i][:, None]).min(axis=0)
        est[idx == i] = 0.0
        return est

    def state_nbytes(self) -> int:
        return int(self.landmark_matrix.nbytes + self.landmarks.nbytes)
