"""Disk cache for latency-oracle matrices.

At the evaluation's top scale (n = 5000 members over the 6100-host
ts-large graph) the Dijkstra submatrix costs tens of seconds — by far
the most expensive setup step, and byte-identical across runs with the
same topology and membership.  :func:`cached_oracle` memoizes it on
disk, keyed by the topology's edge list and the member set, so repeated
benchmark invocations skip straight to simulation.

The cache is content-addressed (SHA-256 over the exact inputs): a
changed generator, preset, or membership can never serve a stale
matrix.  Corrupt or unreadable cache files are silently regenerated.
"""

from __future__ import annotations

import hashlib
import pathlib

import numpy as np

from repro.topology.latency import LatencyOracle
from repro.topology.transit_stub import PhysicalNetwork

__all__ = ["cache_key", "cached_oracle"]


def cache_key(network: PhysicalNetwork, hosts: np.ndarray) -> str:
    """Content hash of everything the oracle matrix depends on."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(network.edges_u).tobytes())
    h.update(np.ascontiguousarray(network.edges_v).tobytes())
    h.update(np.ascontiguousarray(network.edges_w).tobytes())
    h.update(np.ascontiguousarray(np.asarray(hosts, dtype=np.int64)).tobytes())
    h.update(str(network.n).encode())
    return h.hexdigest()[:32]


def cached_oracle(
    network: PhysicalNetwork,
    hosts: np.ndarray,
    cache_dir: str | pathlib.Path,
) -> LatencyOracle:
    """A :class:`LatencyOracle`, loading its matrix from disk when cached."""
    cache_dir = pathlib.Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"oracle-{cache_key(network, hosts)}.npy"

    if path.exists():
        try:
            matrix = np.load(path)
            hosts_arr = np.asarray(hosts, dtype=np.int64)
            if matrix.shape == (hosts_arr.size, hosts_arr.size):
                oracle = LatencyOracle.__new__(LatencyOracle)
                oracle.network = network
                oracle.hosts = hosts_arr
                oracle.matrix = matrix
                return oracle
        except (OSError, ValueError):
            pass  # fall through and regenerate

    oracle = LatencyOracle(network, hosts)
    tmp = path.with_suffix(".tmp.npy")
    np.save(tmp, oracle.matrix)
    tmp.replace(path)
    return oracle
