"""Disk cache for latency-oracle matrices.

At the evaluation's top scale (n = 5000 members over the 6100-host
ts-large graph) the Dijkstra submatrix costs tens of seconds — by far
the most expensive setup step, and byte-identical across runs with the
same topology and membership.  :func:`cached_oracle` memoizes it on
disk, keyed by the topology's edge list and the member set, so repeated
benchmark invocations skip straight to simulation.

The cache is content-addressed (SHA-256 over the exact inputs): a
changed generator, preset, or membership can never serve a stale
matrix.  Corrupt or unreadable cache files are silently regenerated.

The cache is safe under concurrent use by parallel experiment workers
(``repro.harness.parallel``): writers stage into a temp file whose name
is unique per process and publish with an atomic rename, so two workers
building the same world can never interleave bytes or serve each other
a half-written file — the last completed write wins and both are
byte-identical anyway.  Loads validate the matrix (shape, dtype,
finiteness, non-negativity, zero diagonal) before trusting it.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import uuid

import numpy as np

from repro.topology.latency import LatencyOracle
from repro.topology.transit_stub import PhysicalNetwork

__all__ = ["cache_key", "cached_oracle", "valid_matrix"]


def cache_key(network: PhysicalNetwork, hosts: np.ndarray) -> str:
    """Content hash of everything the oracle matrix depends on."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(network.edges_u).tobytes())
    h.update(np.ascontiguousarray(network.edges_v).tobytes())
    h.update(np.ascontiguousarray(network.edges_w).tobytes())
    h.update(np.ascontiguousarray(np.asarray(hosts, dtype=np.int64)).tobytes())
    h.update(str(network.n).encode())
    return h.hexdigest()[:32]


def valid_matrix(matrix: object, n: int) -> bool:
    """Is ``matrix`` a plausible ``n x n`` latency submatrix?

    Guards the loaded-from-disk path against truncated or foreign files
    that happen to unpickle: a latency matrix is a finite, non-negative
    float array with a zero diagonal.
    """
    if not isinstance(matrix, np.ndarray):
        return False
    if matrix.shape != (n, n) or not np.issubdtype(matrix.dtype, np.floating):
        return False
    if not np.all(np.isfinite(matrix)) or matrix.size == 0:
        return False
    if np.any(matrix < 0) or np.any(np.diagonal(matrix) != 0.0):
        return False
    return True


def cached_oracle(
    network: PhysicalNetwork,
    hosts: np.ndarray,
    cache_dir: str | pathlib.Path,
) -> LatencyOracle:
    """A :class:`LatencyOracle`, loading its matrix from disk when cached.

    Concurrency-safe: parallel workers racing on the same key each write
    their own uniquely-named temp file and publish it atomically, so a
    reader never observes a partial matrix.
    """
    cache_dir = pathlib.Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"oracle-{cache_key(network, hosts)}.npy"
    hosts_arr = np.asarray(hosts, dtype=np.int64)

    if path.exists():
        try:
            matrix = np.load(path, allow_pickle=False)
        except (OSError, ValueError):
            matrix = None  # fall through and regenerate
        if valid_matrix(matrix, hosts_arr.size):
            oracle = LatencyOracle.__new__(LatencyOracle)
            oracle.network = network
            oracle.hosts = hosts_arr
            oracle.matrix = matrix
            return oracle

    oracle = LatencyOracle(network, hosts)
    # Unique per process/call: two workers computing the same entry must
    # never np.save into the same temp file, and os.replace publishes
    # the finished matrix atomically (last writer wins, contents equal).
    tmp = path.with_name(f"{path.stem}.{os.getpid()}-{uuid.uuid4().hex[:8]}.tmp.npy")
    try:
        with open(tmp, "wb") as fh:
            np.save(fh, oracle.matrix)
        os.replace(tmp, path)
    except OSError:
        # Cache write failure (full/read-only disk) must not fail the
        # run — the freshly computed oracle is still good.
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
    return oracle
