"""Disk cache for latency-oracle state, keyed by backend and parameters.

At the evaluation's top scale (n = 5000 members over the 6100-host
ts-large graph) the exact Dijkstra submatrix costs tens of seconds — by
far the most expensive setup step, and byte-identical across runs with
the same topology and membership.  :func:`cached_oracle` memoizes
per-backend oracle state on disk: the dense matrix for ``exact``, the
fitted coordinates for ``vivaldi``, the landmark-distance matrix for
``landmark``.

The cache is content-addressed (SHA-256 over the exact inputs): the
topology's edge list, the member set, the backend name, and the
backend's construction parameters (including the fit seed for Vivaldi).
A changed generator, preset, membership, backend, or tuning knob can
never serve a stale or foreign entry.  Corrupt or unreadable cache
files are silently regenerated.

Cache hits are rebuilt through each backend's validating classmethod
(:meth:`LatencyOracle.from_matrix`, ``VivaldiOracle.from_state``,
``LandmarkOracle.from_state``) — never ``__new__`` — so host validation
and any state checks added to a constructor also guard the loaded path.

The cache is safe under concurrent use by parallel experiment workers
(``repro.harness.parallel``): writers stage into a temp file whose name
is unique per process and publish with an atomic rename, so two workers
building the same world can never interleave bytes or serve each other
a half-written file — the last completed write wins and both are
byte-identical anyway.  Loads validate the state (shape, dtype,
finiteness, non-negativity, symmetry, zero diagonal) before trusting it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import uuid
from typing import Any, Mapping

import numpy as np

from repro.topology.factory import build_oracle, oracle_cache_params
from repro.topology.landmark import LandmarkOracle
from repro.topology.latency import LatencyOracle, LatencyOracleBase
from repro.topology.transit_stub import PhysicalNetwork
from repro.topology.vivaldi import VivaldiOracle

__all__ = ["cache_key", "cached_oracle", "valid_matrix"]


def cache_key(
    network: PhysicalNetwork,
    hosts: np.ndarray,
    backend: str = "exact",
    params: Mapping[str, Any] | None = None,
) -> str:
    """Content hash of everything the oracle state depends on."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(network.edges_u).tobytes())
    h.update(np.ascontiguousarray(network.edges_v).tobytes())
    h.update(np.ascontiguousarray(network.edges_w).tobytes())
    h.update(np.ascontiguousarray(np.asarray(hosts, dtype=np.int64)).tobytes())
    h.update(str(network.n).encode())
    h.update(backend.encode())
    h.update(json.dumps(dict(params or {}), sort_keys=True).encode())
    return h.hexdigest()[:32]


def valid_matrix(matrix: object, n: int) -> bool:
    """Is ``matrix`` a plausible ``n x n`` latency submatrix?

    Guards the loaded-from-disk path against truncated or foreign files
    that happen to unpickle: a latency matrix is a finite, non-negative,
    *symmetric* float array with a zero diagonal.  Asymmetry matters: a
    corrupt-but-plausible file would otherwise skew every Var
    computation on an undirected substrate.
    """
    if not isinstance(matrix, np.ndarray):
        return False
    if matrix.shape != (n, n) or not np.issubdtype(matrix.dtype, np.floating):
        return False
    if not np.all(np.isfinite(matrix)):
        return False
    if np.any(matrix < 0) or np.any(np.diagonal(matrix) != 0.0):
        return False
    if not np.array_equal(matrix, matrix.T):
        return False
    return True


def _load_cached(
    path: pathlib.Path,
    network: PhysicalNetwork,
    hosts: np.ndarray,
    backend: str,
) -> LatencyOracleBase | None:
    """Reconstruct an oracle from a cache file; ``None`` on any defect."""
    try:
        if backend == "exact":
            matrix = np.load(path, allow_pickle=False)
            if not valid_matrix(matrix, hosts.size):
                return None
            return LatencyOracle.from_matrix(network, hosts, matrix)
        with np.load(path, allow_pickle=False) as bundle:
            if backend == "vivaldi":
                return VivaldiOracle.from_state(
                    network,
                    hosts,
                    coords=bundle["coords"],
                    height=bundle["height"],
                    rel_errors=bundle["rel_errors"],
                )
            return LandmarkOracle.from_state(
                network,
                hosts,
                landmarks=bundle["landmarks"],
                landmark_matrix=bundle["landmark_matrix"],
            )
    except (OSError, ValueError, KeyError):
        return None  # fall through and regenerate


def _oracle_state(oracle: LatencyOracleBase) -> dict[str, np.ndarray]:
    """The arrays that fully determine a backend's estimates."""
    if isinstance(oracle, LatencyOracle):
        return {"matrix": oracle.matrix}
    if isinstance(oracle, VivaldiOracle):
        return {
            "coords": oracle.coords,
            "height": oracle.height,
            "rel_errors": oracle.rel_errors,
        }
    if isinstance(oracle, LandmarkOracle):
        return {
            "landmarks": oracle.landmarks,
            "landmark_matrix": oracle.landmark_matrix,
        }
    raise TypeError(f"uncacheable oracle type {type(oracle).__name__}")


def cached_oracle(
    network: PhysicalNetwork,
    hosts: np.ndarray,
    cache_dir: str | pathlib.Path,
    *,
    backend: str = "exact",
    seed: int = 0,
    options: Mapping[str, Any] | None = None,
) -> LatencyOracleBase:
    """A latency oracle, loading its state from disk when cached.

    Concurrency-safe: parallel workers racing on the same key each write
    their own uniquely-named temp file and publish it atomically, so a
    reader never observes a partial matrix.
    """
    params = oracle_cache_params(backend, seed=seed, options=options)
    cache_dir = pathlib.Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    suffix = "npy" if backend == "exact" else "npz"
    path = cache_dir / f"oracle-{cache_key(network, hosts, backend, params)}.{suffix}"
    hosts_arr = np.asarray(hosts, dtype=np.int64)

    if path.exists():
        cached = _load_cached(path, network, hosts_arr, backend)
        if cached is not None:
            return cached

    oracle = build_oracle(backend, network, hosts_arr, seed=seed, options=options)
    state = _oracle_state(oracle)
    # Unique per process/call: two workers computing the same entry must
    # never save into the same temp file, and os.replace publishes the
    # finished state atomically (last writer wins, contents equal).
    tmp = path.with_name(f"{path.stem}.{os.getpid()}-{uuid.uuid4().hex[:8]}.tmp.{suffix}")
    try:
        with open(tmp, "wb") as fh:
            if backend == "exact":
                np.save(fh, state["matrix"])
            else:
                np.savez(fh, **state)
        os.replace(tmp, path)
    except OSError:
        # Cache write failure (full/read-only disk) must not fail the
        # run — the freshly computed oracle is still good.
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
    return oracle
