"""``python -m repro.live`` entry point."""

from repro.live.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
