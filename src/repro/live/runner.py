"""Harness-compatible entry point for the live plane.

:func:`run_live_experiment` runs an
:class:`~repro.harness.experiment.ExperimentConfig` with
``transport="udp"`` over a loopback swarm and returns the standard
:class:`~repro.harness.experiment.ExperimentResult` — same sampling
cadence, same metric definitions, same RNG streams for the measurement
workload — so live results drop into every existing comparison,
persistence and reporting path.  ``run_experiment`` delegates here
automatically; calling this directly is equivalent.

What *cannot* match the simulator: message timing.  The engine's RNG
draws happen in wall-clock arrival order, so the exchange *sequence*
diverges run to run while the *trajectory* (cumulative exchanges,
latency improvement) stays statistically aligned — that alignment is
pinned by ``tests/integration/test_live_parity.py``.

Two operational caveats, accepted by design: metric sampling runs on the
event loop thread, so a large ``lookups_per_sample`` stalls the peers
for the sampling instant (protocol timers then fire late, which the
engine treats as any other delay); and datagrams the kernel drops under
load are repaired by protocol timeouts, exactly like injected loss.
"""

from __future__ import annotations

import asyncio
from typing import Any

import numpy as np

from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentResult,
    sample_lookup_latency,
)
from repro.live.swarm import ChurnSchedule, Swarm
from repro.metrics.stretch import stretch as stretch_metric

__all__ = ["run_live_experiment"]


def run_live_experiment(
    config: ExperimentConfig,
    *,
    measure_lookups: bool = True,
    profiler: Any = None,
    consumers: Any = None,
    sample_hook: Any = None,
    churn_schedule: ChurnSchedule | None = None,
) -> ExperimentResult:
    """Run ``config`` on a loopback swarm; mirror of ``run_experiment``.

    Must be called from outside any running event loop (it owns one via
    :func:`asyncio.run`).  ``churn_schedule`` adds staged join/leave
    bursts on top of the config's Poisson churn.
    """
    if config.transport != "udp":
        raise ValueError(
            f"run_live_experiment needs transport='udp', got {config.transport!r}"
        )
    if consumers and not (config.trace or config.trace_streaming):
        raise ValueError("consumers need config.trace or config.trace_streaming")
    return asyncio.run(
        _run(config, measure_lookups, profiler, consumers, sample_hook, churn_schedule)
    )


async def _run(
    config: ExperimentConfig,
    measure_lookups: bool,
    profiler: Any,
    consumers: Any,
    sample_hook: Any,
    churn_schedule: ChurnSchedule | None,
) -> ExperimentResult:
    from contextlib import AbstractContextManager, nullcontext

    def _stage(name: str) -> AbstractContextManager[Any]:
        return profiler.stage(name) if profiler is not None else nullcontext()

    swarm = Swarm(
        config,
        churn_schedule=churn_schedule,
        consumers=list(consumers) if consumers else None,
    )
    with _stage("build_world"):
        await swarm.start()
    world = swarm.world
    engine = swarm.engine
    assert world is not None and engine is not None  # set by start()

    n_samples = int(np.floor(config.duration / config.sample_interval)) + 1
    times = np.arange(n_samples) * config.sample_interval

    link_stretch_series = np.empty(n_samples)
    stretch_series = np.full(n_samples, np.nan)
    lookup_series = np.full(n_samples, np.nan)
    probes = np.zeros(n_samples, dtype=np.int64)
    messages = np.zeros(n_samples, dtype=np.int64)
    exchanges = np.zeros(n_samples, dtype=np.int64)

    def _sample(i: int, t: float) -> None:
        with _stage("sample"):
            link_stretch_series[i] = stretch_metric(world.overlay)
            if measure_lookups:
                mean_lookup, mean_direct = sample_lookup_latency(world)
                lookup_series[i] = mean_lookup
                stretch_series[i] = (
                    mean_lookup / mean_direct if mean_direct > 0 else np.nan
                )
        probes[i] = engine.counters.probes
        messages[i] = engine.counters.total_messages
        exchanges[i] = engine.counters.exchanges
        if world.tracer is not None and lookup_series[i] == lookup_series[i]:
            for consumer in world.tracer.consumers:
                on_sample = getattr(consumer, "on_sample", None)
                if on_sample is not None:
                    on_sample(float(t), float(lookup_series[i]))
        if sample_hook is not None:
            status = None
            if world.tracer is not None:
                for consumer in world.tracer.consumers:
                    get_status = getattr(consumer, "status", None)
                    if callable(get_status):
                        status = get_status()
                        break
            sample_hook(float(t), status)

    try:
        # the t=0 sample precedes any protocol activity: the engines are
        # armed only by launch(), after it completes
        _sample(0, 0.0)
        swarm.launch()
        for i in range(1, n_samples):
            with _stage("simulate"):
                await swarm.run_until(float(times[i]))
            _sample(i, float(times[i]))
    finally:
        report = await swarm.close()

    return ExperimentResult(
        config=config,
        times=times,
        stretch=stretch_series,
        link_stretch=link_stretch_series,
        lookup_latency=lookup_series,
        probes=probes,
        messages=messages,
        exchanges=exchanges,
        final_counters=engine.counters,
        net_stats=report.net_stats,
        net_counters=report.net_counters,
        trace=(
            world.tracer.events
            if world.tracer is not None and not world.tracer.streaming
            else None
        ),
        profile=dict(profiler.timings) if profiler is not None else None,
        consumers=(
            list(world.tracer.consumers)
            if world.tracer is not None and world.tracer.consumers
            else None
        ),
    )
