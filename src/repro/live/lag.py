"""Event-loop scheduling-lag sampler for the live plane.

A live swarm's protocol timers are only as punctual as the asyncio loop
that fires them: when handlers or codec work monopolize the loop, every
``call_later`` fires late and the deployment silently drifts from the
protocol schedule it claims to follow.  :class:`LoopLagSampler` measures
that drift directly — it asks the loop to call back after a fixed
interval and records how late the callback actually runs — and feeds the
summary into the telemetry snapshots, so an operator watching the JSONL
stream sees loop saturation as a number, not as mysteriously slow
convergence.

Wall-clock reads here are by design: the whole module measures real
scheduling behavior (``repro.live`` is on the reprolint D1 allowlist).
"""

from __future__ import annotations

import asyncio
from typing import Any

__all__ = ["LoopLagSampler"]


class LoopLagSampler:
    """Periodically measures how late ``call_later`` callbacks fire.

    The sampler never raises from its timer callback (the event-loop
    discipline of this package) and is cheap: one ``loop.time()`` read
    and three float updates per interval.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, interval: float = 0.05) -> None:
        if interval <= 0.0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._loop = loop
        self.interval = float(interval)
        self.samples = 0
        self.total_lag = 0.0
        self.max_lag = 0.0
        self._expected = 0.0
        self._handle: asyncio.TimerHandle | None = None
        self._running = False

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._running:
            return
        self._running = True
        self._expected = self._loop.time() + self.interval
        self._handle = self._loop.call_later(self.interval, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        now = self._loop.time()
        lag = now - self._expected
        if lag < 0.0:  # clocks can fire marginally early; lag is one-sided
            lag = 0.0
        self.samples += 1
        self.total_lag += lag
        if lag > self.max_lag:
            self.max_lag = lag
        self._expected = now + self.interval
        self._handle = self._loop.call_later(self.interval, self._tick)

    def stop(self) -> None:
        """Stop sampling and cancel the pending timer (idempotent)."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def stats(self) -> dict[str, Any]:
        """Summary for a telemetry snapshot (empty-safe)."""
        mean_ms = (self.total_lag / self.samples) * 1e3 if self.samples else 0.0
        return {
            "mean_ms": round(mean_ms, 3),
            "max_ms": round(self.max_lag * 1e3, 3),
            "samples": self.samples,
        }
