"""``python -m repro.live`` — run, load-test, or bench the live plane.

Three subcommands:

* ``run`` — one live deployment through the standard harness metrics
  (the ``--transport udp`` path of ``python -m repro run``, with the
  live-only knobs surfaced);
* ``swarm`` — the orchestrator directly: N peers, optional Poisson
  churn, staged join/leave bursts and lookup load, reported as a
  :class:`~repro.live.swarm.SwarmReport`;
* ``bench`` — a short fixed-shape throughput run printing one JSON
  record (``benchmarks/bench_live.py`` wraps this shape into the
  bench-history gate).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import TYPE_CHECKING, Any, Sequence

from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig
from repro.workloads.churn import ChurnConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.live.swarm import SwarmReport

__all__ = ["main", "build_parser", "swarm_metrics"]


def _add_common(p: argparse.ArgumentParser, *, n_default: int) -> None:
    p.add_argument("--n", type=int, default=n_default,
                   help=f"number of peers (default: {n_default})")
    p.add_argument("--preset", choices=["ts-large", "ts-small", "waxman"],
                   default="ts-small",
                   help="physical topology preset (default: ts-small)")
    p.add_argument("--seed", type=int, default=0, help="master seed (default: 0)")
    p.add_argument("--policy", choices=["G", "O"], default="G",
                   help="PROP policy (default: G)")
    p.add_argument("--duration", type=float, default=600.0,
                   help="protocol seconds to run (default: 600)")
    p.add_argument("--speedup", type=float, default=60.0,
                   help="protocol seconds per wall second (default: 60)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.live",
        description="asyncio deployment plane: PROP peers over loopback UDP",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="one live deployment with harness metrics")
    _add_common(run, n_default=50)
    run.add_argument("--sample-interval", type=float, default=120.0,
                     help="metric sampling period in protocol seconds (default: 120)")
    run.add_argument("--lookups", type=int, default=200,
                     help="lookups measured per sample (default: 200)")
    run.add_argument("--rate", type=float, default=0.0,
                     help="traffic-generator lookups per protocol second "
                          "(default: 0 = off)")

    swarm = sub.add_parser("swarm", help="drive a swarm under churn and load")
    _add_common(swarm, n_default=50)
    swarm.add_argument("--rate", type=float, default=1.0,
                       help="lookups per protocol second (default: 1)")
    swarm.add_argument("--spares", type=int, default=0,
                       help="spare hosts for churn replacement (default: 0)")
    swarm.add_argument("--churn-rate", type=float, default=0.0,
                       help="Poisson churn events per node per protocol second "
                            "(default: 0; needs --spares)")
    swarm.add_argument("--churn-stages", type=str, default=None, metavar="T:K,...",
                       help="staged bursts, e.g. '120:5,300:10' replaces 5 "
                            "peers at t=120 and 10 at t=300 (needs --spares)")
    swarm.add_argument("--monitor", action="store_true",
                       help="stream events to the convergence monitor and "
                            "print its final status")
    swarm.add_argument("--telemetry", type=str, default=None, metavar="PATH",
                       help="append periodic TelemetrySnapshot JSONL records "
                            "(registry metrics, open-span gauges, per-peer "
                            "wire bytes) to PATH")
    swarm.add_argument("--telemetry-interval", type=float, default=60.0,
                       metavar="SECONDS",
                       help="protocol seconds between telemetry snapshots "
                            "(default: 60)")
    swarm.add_argument("--trace", type=str, default=None, metavar="PATH",
                       help="write the buffered event trace (spans included) "
                            "as JSONL to PATH; analyze with "
                            "python -m repro.obs spans/critpath")

    bench = sub.add_parser("bench", help="fixed-shape throughput run, JSON output")
    _add_common(bench, n_default=50)

    return parser


def _config(args: argparse.Namespace, **extra: Any) -> ExperimentConfig:
    return ExperimentConfig(
        seed=args.seed,
        preset=args.preset,
        n_overlay=args.n,
        prop=PROPConfig(policy=args.policy),
        transport="udp",
        duration=args.duration,
        sample_interval=min(args.duration, getattr(args, "sample_interval", args.duration)),
        live_speedup=args.speedup,
        **extra,
    )


def swarm_metrics(report: "SwarmReport") -> dict[str, float]:
    """The bench-facing metric dict for one finished swarm run."""
    return {
        "msgs_per_s": round(report.msgs_per_wall_s, 2),
        "exchanges_per_s": round(report.exchanges_per_wall_s, 4),
        "datagrams_sent": float(report.datagrams_sent),
        "exchanges": float(report.exchanges),
        "wall_seconds": round(report.wall_seconds, 3),
    }


def _require_loopback() -> None:
    from repro.live.transport import udp_loopback_available

    if not udp_loopback_available():
        raise SystemExit("error: UDP loopback is unavailable in this environment")


def _cmd_run(args: argparse.Namespace) -> int:
    _require_loopback()
    from repro.harness.reporting import format_series
    from repro.live.runner import run_live_experiment

    config = _config(
        args,
        lookups_per_sample=args.lookups,
        live_lookup_rate=args.rate,
    )
    print(
        f"running live PROP-{args.policy} swarm: {args.n} peers on {args.preset}, "
        f"{args.duration:.0f} protocol s at {args.speedup:g}x "
        f"(~{args.duration / args.speedup:.1f} wall s) ...",
        file=sys.stderr,
    )
    result = run_live_experiment(config)
    print(
        format_series(
            f"live / PROP-{args.policy}",
            result.times,
            {
                "stretch": result.stretch,
                "lookup latency (ms)": result.lookup_latency,
                "link stretch": result.link_stretch,
            },
        )
    )
    print(f"\nprobes: {result.probes[-1]}  exchanges: {result.exchanges[-1]}")
    print(f"lookup latency: {result.initial_lookup_latency:.1f} ms -> "
          f"{result.final_lookup_latency:.1f} ms")
    return 0


def _cmd_swarm(args: argparse.Namespace) -> int:
    _require_loopback()
    import asyncio

    from repro.live.swarm import ChurnSchedule, Swarm

    schedule = None
    if args.churn_stages:
        schedule = ChurnSchedule.parse(args.churn_stages)
    churn = None
    if args.churn_rate > 0.0:
        churn = ChurnConfig(rate_per_node=args.churn_rate)
    if (schedule or churn) and args.spares <= 0:
        raise SystemExit("error: churn needs --spares > 0")
    if args.trace and args.monitor:
        raise SystemExit("error: --trace needs the buffered tracer; "
                         "drop --monitor (streaming discards events)")
    config = _config(
        args,
        live_lookup_rate=args.rate,
        n_spare=args.spares,
        churn=churn,
        trace=bool(args.trace),
        trace_streaming=args.monitor,
    )
    print(
        f"swarming {args.n} peers for {args.duration:.0f} protocol s "
        f"at {args.speedup:g}x ...",
        file=sys.stderr,
    )
    swarm = Swarm(
        config,
        churn_schedule=schedule,
        telemetry=args.telemetry,
        telemetry_interval=args.telemetry_interval,
    )
    report = asyncio.run(swarm.run())
    print(report.summary())
    if args.telemetry:
        print(f"telemetry: {swarm.telemetry_written} snapshots -> "
              f"{args.telemetry}", file=sys.stderr)
    if args.trace and swarm.tracer is not None:
        from repro.obs.trace import write_events_jsonl

        write_events_jsonl(swarm.tracer.events, args.trace)
        print(f"trace: {len(swarm.tracer.events)} events -> {args.trace}",
              file=sys.stderr)
    if args.monitor and swarm.tracer is not None:
        from repro.obs.monitor import format_status

        for consumer in swarm.tracer.consumers:
            get_status = getattr(consumer, "status", None)
            if callable(get_status):
                print(format_status(get_status()), file=sys.stderr)
                break
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    _require_loopback()
    import asyncio

    from repro.live.swarm import Swarm

    config = _config(args, live_lookup_rate=0.0)
    report = asyncio.run(Swarm(config).run())
    record = {
        "n_peers": report.n_peers,
        "duration": report.duration,
        "speedup": report.speedup,
        **swarm_metrics(report),
    }
    print(json.dumps(record, sort_keys=True))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "swarm":
        return _cmd_swarm(args)
    if args.command == "bench":
        return _cmd_bench(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
