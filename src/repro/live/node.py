"""One peer's datagram endpoint.

A :class:`PeerNode` owns one UDP socket bound to an ephemeral loopback
port — the live plane's unit of "actual peer": every protocol message
between two slots leaves one peer's socket and arrives on another's
through the kernel network stack, never through an in-process shortcut.
The node knows nothing about the protocol; it hands raw datagrams to the
callback :class:`~repro.live.transport.UdpTransport` installed, which
owns decoding, telemetry and handler dispatch.
"""

from __future__ import annotations

import asyncio
from typing import Callable

__all__ = ["PeerNode"]

DatagramSink = Callable[[int, bytes], None]


class _PeerProtocol(asyncio.DatagramProtocol):
    """Datagram glue: forward every received payload to the node's sink."""

    def __init__(self, slot: int, sink: DatagramSink) -> None:
        self._slot = slot
        self._sink = sink
        self.errors = 0
        self.sink_errors = 0

    def datagram_received(self, data: bytes, addr: tuple[str, int]) -> None:
        # counted-never-raised: an exception escaping this callback would
        # detach the transport via the loop's exception handler
        try:
            self._sink(self._slot, data)
        except Exception:
            self.sink_errors += 1

    def error_received(self, exc: OSError) -> None:
        # ICMP-reported send failure (e.g. peer socket already closed
        # during shutdown); the protocol's timeout machinery recovers
        self.errors += 1


class PeerNode:
    """A slot's live endpoint: one bound UDP socket on the event loop.

    Build with :meth:`create` (binding is asynchronous); address lookup,
    sending and closing are synchronous thereafter.
    """

    def __init__(
        self,
        slot: int,
        transport: asyncio.DatagramTransport,
        protocol: _PeerProtocol,
    ) -> None:
        self.slot = slot
        self._transport = transport
        self._protocol = protocol
        sock = transport.get_extra_info("sockname")
        self.address: tuple[str, int] = (sock[0], sock[1])

    @classmethod
    async def create(
        cls,
        loop: asyncio.AbstractEventLoop,
        slot: int,
        sink: DatagramSink,
        *,
        host: str = "127.0.0.1",
    ) -> "PeerNode":
        """Bind ``slot``'s endpoint on an ephemeral ``host`` port."""
        transport, protocol = await loop.create_datagram_endpoint(
            lambda: _PeerProtocol(slot, sink), local_addr=(host, 0)
        )
        return cls(slot, transport, protocol)

    @property
    def receive_errors(self) -> int:
        """ICMP-reported socket errors seen by this endpoint."""
        return self._protocol.errors

    @property
    def sink_errors(self) -> int:
        """Exceptions the datagram sink raised (counted, never raised)."""
        return self._protocol.sink_errors

    def sendto(self, data: bytes, address: tuple[str, int]) -> None:
        """Transmit one datagram from this peer's socket (non-blocking)."""
        self._transport.sendto(data, address)

    def close(self) -> None:
        self._transport.close()
