"""repro.live — the asyncio deployment plane.

Everything below :mod:`repro.net` is transport-agnostic by design; this
package supplies the *real* backend: peers are UDP endpoints on an
asyncio event loop, protocol timers are wall-clock timers, and messages
are length-prefixed datagrams encoded by :mod:`repro.live.codec`.  The
same :class:`~repro.net.engine.MessagePROPEngine` state machine that
runs deterministically over :class:`~repro.net.transport.SimTransport`
runs here unchanged — the deployment plane swaps the clock and the wire,
never the protocol.

Module map:

* :mod:`repro.live.codec` — versioned length-prefixed wire format for
  every :mod:`repro.net.messages` dataclass;
* :mod:`repro.live.clock` — :class:`LiveScheduler`, the wall-clock
  drop-in for the :class:`~repro.netsim.engine.Simulator` scheduling
  vocabulary (``now`` / ``schedule`` / ``schedule_at``), with a
  ``speedup`` factor mapping protocol seconds onto wall seconds;
* :mod:`repro.live.node` — :class:`PeerNode`, one peer's datagram
  endpoint;
* :mod:`repro.live.lag` — :class:`LoopLagSampler`, the event-loop
  scheduling-lag probe feeding the telemetry snapshots;
* :mod:`repro.live.transport` — :class:`UdpTransport`, the
  :class:`~repro.net.transport.Transport` implementation over loopback
  UDP sockets;
* :mod:`repro.live.traffic` — :class:`TrafficGenerator`, sustained
  lookups/s against the live overlay;
* :mod:`repro.live.swarm` — :class:`Swarm`: spawn N peers, bootstrap
  membership from the topology presets, staged join/leave churn;
* :mod:`repro.live.runner` — :func:`run_live_experiment`, the
  harness-compatible entry point behind ``--transport udp``.

This package is the one place in ``src/repro`` sanctioned to read wall
clocks (reprolint rule D1 scopes its no-wall-clock invariant to exclude
``repro.live``); randomness remains seeded-stream-only everywhere.
"""

from repro.live.clock import LiveScheduler
from repro.live.codec import CodecError, WIRE_VERSION, decode, encode, encoded_size
from repro.live.lag import LoopLagSampler
from repro.live.node import PeerNode
from repro.live.runner import run_live_experiment
from repro.live.swarm import ChurnSchedule, Swarm, SwarmReport
from repro.live.traffic import TrafficGenerator
from repro.live.transport import UdpTransport, udp_loopback_available

__all__ = [
    "ChurnSchedule",
    "CodecError",
    "LiveScheduler",
    "LoopLagSampler",
    "PeerNode",
    "Swarm",
    "SwarmReport",
    "TrafficGenerator",
    "UdpTransport",
    "WIRE_VERSION",
    "decode",
    "encode",
    "encoded_size",
    "run_live_experiment",
    "udp_loopback_available",
]
