"""Wall-clock scheduling behind the simulator's vocabulary.

:class:`LiveScheduler` is the deployment plane's drop-in for the three
calls the protocol layer makes on a
:class:`~repro.netsim.engine.Simulator` — ``now``, ``schedule`` and
``schedule_at`` — plus ``every`` for periodic processes.  The existing
timer-policy abstraction (:class:`~repro.core.timer_policy.MarkovTimer`
computing *delays*, the engine turning delays into scheduled callbacks)
is what makes the swap possible: the engine never asks "what time is
it" except through ``sim.now``, and never sleeps except through
``sim.schedule``, so replacing the event queue with
``loop.call_later`` converts the whole state machine to wall time
without touching a line of protocol code.

Time is reported in **protocol seconds**: ``now`` is the wall time since
construction multiplied by ``speedup``, and a ``schedule(delay)`` fires
after ``delay / speedup`` wall seconds.  ``speedup=60`` runs the paper's
60-second probe timer once per wall second, so an hour-long deployment
plays out in a minute while every protocol-visible number (timer values,
timeouts, trace timestamps, sample times) stays in the same unit as the
simulator — which is what lets the sim-vs-real parity harness compare
trajectories point for point.

Callbacks run on the owning asyncio event loop (single-threaded, like
the simulator's inline execution); handles expose ``cancel()`` exactly
as :class:`~repro.netsim.events.EventHandle` does.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

__all__ = ["LivePeriodic", "LiveScheduler"]


class LiveScheduler:
    """Protocol-seconds scheduler over an asyncio event loop.

    Parameters
    ----------
    loop:
        The event loop whose clock and ``call_later`` drive everything.
    speedup:
        Protocol seconds per wall second (``> 0``).  ``1.0`` is real
        time; the default ``60.0`` compresses the paper's minute-scale
        probe timers into seconds.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, speedup: float = 60.0) -> None:
        if speedup <= 0.0:
            raise ValueError(f"speedup must be positive, got {speedup}")
        self._loop = loop
        self.speedup = float(speedup)
        self._t0 = loop.time()
        self.events_scheduled = 0

    @property
    def now(self) -> float:
        """Protocol time elapsed since the scheduler was created."""
        return (self._loop.time() - self._t0) * self.speedup

    def wall_deadline(self, t: float) -> float:
        """The ``loop.time()`` reading at protocol time ``t``."""
        return self._t0 + t / self.speedup

    def reset_epoch(self) -> None:
        """Re-zero protocol time at the current instant.

        The swarm calls this at launch so protocol t=0 marks the moment
        the engines arm, not scheduler construction — setup work (socket
        binding, substrate building) must not consume protocol time.
        Only legal before anything is scheduled: moving the epoch under
        armed timers would skew every pending deadline.
        """
        if self.events_scheduled:
            raise RuntimeError("cannot reset the epoch with timers scheduled")
        self._t0 = self._loop.time()

    # -- the Simulator scheduling vocabulary ------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> asyncio.TimerHandle:
        """Run ``callback(*args)`` after ``delay`` protocol seconds."""
        if delay < 0.0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.events_scheduled += 1
        return self._loop.call_later(delay / self.speedup, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> asyncio.TimerHandle:
        """Run ``callback(*args)`` at absolute protocol time ``time``.

        Unlike the simulator (whose clock only advances between events),
        wall time moves while a callback runs, so a deadline computed
        from a slightly stale ``now`` may already have passed — it is
        clamped to "immediately" rather than rejected.
        """
        return self.schedule(max(0.0, time - self.now), callback, *args)

    def every(self, period: float, callback: Callable[[], None]) -> "LivePeriodic":
        """Start a periodic process firing every ``period`` protocol seconds."""
        return LivePeriodic(self, period, callback)


class LivePeriodic:
    """Repeating callback on a :class:`LiveScheduler` (mutable period),
    mirroring :class:`~repro.netsim.engine.PeriodicProcess`."""

    __slots__ = ("_scheduler", "_callback", "period", "_handle", "_stopped")

    def __init__(
        self, scheduler: LiveScheduler, period: float, callback: Callable[[], None]
    ) -> None:
        if period <= 0.0:
            raise ValueError(f"period must be positive, got {period}")
        self._scheduler = scheduler
        self._callback = callback
        self.period = float(period)
        self._stopped = False
        self._handle = scheduler.schedule(self.period, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._handle = self._scheduler.schedule(self.period, self._fire)

    def stop(self) -> None:
        self._stopped = True
        self._handle.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped
