"""The :class:`~repro.net.transport.Transport` implementation over UDP.

:class:`UdpTransport` gives the message plane a real network backend:
every slot is a :class:`~repro.live.node.PeerNode` with its own loopback
socket, ``send`` encodes the message with :mod:`repro.live.codec` and
transmits it *from the source slot's socket to the destination slot's
address*, and delivery happens when the kernel hands the datagram to the
destination endpoint.  The engine sees the exact interface
:class:`~repro.net.transport.SimTransport` provides — ``stats``,
``tracer``, ``register`` / ``unregister`` / ``send`` — so
:class:`~repro.net.engine.MessagePROPEngine` runs over it unchanged.

Semantics that differ from the simulated transport, by nature of a real
stack:

* **Latency is physical.**  There is no oracle lookup on the send path;
  a loopback datagram arrives in microseconds.  Protocol timers run in
  protocol seconds (via :class:`~repro.live.clock.LiveScheduler`), so
  wire latency is effectively zero on the protocol timescale — the live
  analogue of ``latency_scale=0``.  ``extra_delay_ms`` is still honored
  (in protocol milliseconds) by deferring the transmit on the scheduler.
* **Loss is real and silent.**  The kernel may drop datagrams under
  buffer pressure and nothing reports it, so ``stats.in_flight`` is an
  upper bound (a lost datagram is never ``record_delivery``-ed and the
  gauge stays high).  The engine's per-stage timeouts absorb such losses
  exactly as they absorb injected ones.
* **Decode failures are counted, not raised.**  A truncated or
  alien datagram increments ``codec_errors`` (and ``misrouted`` when a
  valid frame arrives on the wrong slot's socket) and is dropped;
  a malformed packet must never kill the event loop.  The same
  counted-never-raised contract covers handler dispatch
  (``handler_errors``) — reprolint rule C2 enforces the pattern on
  every event-loop callback in this package.
"""

from __future__ import annotations

import asyncio
import socket
import time

from repro.live.clock import LiveScheduler
from repro.live.codec import CodecError, decode, encode
from repro.live.node import PeerNode
from repro.net.messages import Message
from repro.net.transport import Handler, TransportStats, trace_tag
from repro.obs.events import (
    MsgDeliverEvent,
    MsgSendEvent,
    SpanEndEvent,
    SpanStartEvent,
)
from repro.obs.trace import NULL_TRACER, TracerLike

__all__ = ["UdpTransport", "udp_loopback_available"]

_MS = 1e-3  # extra_delay_ms is protocol milliseconds; scheduler speaks seconds


def udp_loopback_available(timeout: float = 1.0) -> bool:
    """Can this environment round-trip a datagram over 127.0.0.1?

    The CI smoke test and the live test suite gate on this instead of
    failing in sandboxes that forbid loopback sockets.
    """
    a = b = None
    try:
        a = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        b = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        a.bind(("127.0.0.1", 0))
        b.bind(("127.0.0.1", 0))
        b.sendto(b"prop", a.getsockname())
        a.settimeout(timeout)
        data, _ = a.recvfrom(16)
        return data == b"prop"
    except OSError:
        return False
    finally:
        for s in (a, b):
            if s is not None:
                s.close()


class UdpTransport:
    """Loopback-UDP message plane: one socket per slot, kernel delivery.

    Build with :meth:`create` (endpoint binding is asynchronous); the
    instance then satisfies the :class:`~repro.net.transport.Transport`
    protocol synchronously.  All sockets share one event loop and one
    :class:`~repro.live.clock.LiveScheduler`.
    """

    def __init__(
        self,
        scheduler: LiveScheduler,
        nodes: list[PeerNode],
        *,
        tracer: TracerLike | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.nodes = nodes
        self.tracer: TracerLike = tracer if tracer is not None else NULL_TRACER
        self.stats = TransportStats()
        self.codec_errors = 0
        self.misrouted = 0
        self.handler_errors = 0
        self.wire_bytes_sent = 0
        #: Per-peer wire-byte counters (slot -> bytes), fed to the
        #: telemetry exporter; sent is keyed by the source slot,
        #: received by the destination slot.
        self.wire_bytes_out: dict[int, int] = {}
        self.wire_bytes_in: dict[int, int] = {}
        #: Opt-in handler timing (the swarm enables it with telemetry):
        #: slot -> message type -> cumulative handler nanoseconds.
        #: Wall-clock reads are sanctioned here (repro.live is on the D1
        #: allowlist) and never reach protocol state.
        self.profile_callbacks = False
        self.callback_ns: dict[int, dict[str, int]] = {}
        self._handlers: dict[int, Handler] = {}
        self._closed = False

    @classmethod
    async def create(
        cls,
        scheduler: LiveScheduler,
        n_slots: int,
        *,
        tracer: TracerLike | None = None,
        host: str = "127.0.0.1",
    ) -> "UdpTransport":
        """Bind one endpoint per slot and assemble the transport."""
        if n_slots <= 0:
            raise ValueError(f"n_slots must be positive, got {n_slots}")
        loop = asyncio.get_running_loop()
        transport = cls(scheduler, [], tracer=tracer)
        for slot in range(n_slots):
            transport.nodes.append(
                await PeerNode.create(loop, slot, transport._on_datagram, host=host)
            )
        return transport

    @property
    def n_slots(self) -> int:
        return len(self.nodes)

    # -- the Transport protocol -------------------------------------------

    def register(self, slot: int, handler: Handler) -> None:
        self._handlers[slot] = handler

    def unregister(self, slot: int) -> None:
        self._handlers.pop(slot, None)

    def send(self, msg: Message, extra_delay_ms: float = 0.0) -> None:
        """Encode ``msg`` and transmit it src-socket -> dst-address."""
        if self._closed:
            return
        self.stats.record_send(msg)
        if self.tracer.enabled:
            self.tracer.emit(MsgSendEvent, mtype=msg.type_name, src=msg.src,
                             dst=msg.dst, tag=trace_tag(msg))
            if msg.span_id >= 0:
                # open the in-flight span; real datagram loss leaves it
                # half-open, which the span analyzer reports as such
                self.tracer.emit(SpanStartEvent, trace=msg.trace_id,
                                 span=msg.span_id, parent=msg.parent_id,
                                 name=f"msg:{msg.type_name}", node=msg.src)
        if extra_delay_ms > 0.0:
            self.scheduler.schedule(extra_delay_ms * _MS, self._transmit, msg)
        else:
            self._transmit(msg)

    def _transmit(self, msg: Message) -> None:
        if self._closed:
            return
        data = encode(msg)
        self.wire_bytes_sent += len(data)
        self.wire_bytes_out[msg.src] = (
            self.wire_bytes_out.get(msg.src, 0) + len(data)
        )
        self.nodes[msg.src].sendto(data, self.nodes[msg.dst].address)

    # -- receive path ------------------------------------------------------

    def _on_datagram(self, slot: int, data: bytes) -> None:
        if self._closed:
            return
        try:
            msg = decode(data)
        except CodecError:
            self.codec_errors += 1
            return
        if msg.dst != slot:
            self.misrouted += 1
            return
        self.stats.record_delivery(msg)
        self.wire_bytes_in[slot] = self.wire_bytes_in.get(slot, 0) + len(data)
        if self.tracer.enabled:
            self.tracer.emit(MsgDeliverEvent, mtype=msg.type_name, src=msg.src,
                             dst=msg.dst, tag=trace_tag(msg))
        handler = self._handlers.get(slot)
        if handler is not None:
            started = time.perf_counter_ns() if self.profile_callbacks else 0
            # counted-never-raised: a handler failure must not unwind into
            # the datagram callback and kill the event loop
            try:
                handler(msg)
            except Exception:
                self.handler_errors += 1
            if self.profile_callbacks:
                elapsed = time.perf_counter_ns() - started
                per_slot = self.callback_ns.setdefault(slot, {})
                per_slot[msg.type_name] = per_slot.get(msg.type_name, 0) + elapsed
        # closed after the handler, mirroring SimTransport: the handler's
        # proc span is on the books before this trace can look complete
        if self.tracer.enabled and msg.span_id >= 0:
            self.tracer.emit(SpanEndEvent, trace=msg.trace_id,
                             span=msg.span_id, status="ok")

    def close(self) -> None:
        """Stop accepting traffic and close every peer socket."""
        if self._closed:
            return
        self._closed = True
        for node in self.nodes:
            node.close()
