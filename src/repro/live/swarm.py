"""The swarm orchestrator: N live peers running PROP end to end.

:class:`Swarm` assembles a complete deployment from an
:class:`~repro.harness.experiment.ExperimentConfig` with
``transport="udp"``: the seed-determined substrate (identical to the
simulated plane's, via
:func:`~repro.harness.experiment.build_substrate`), one
:class:`~repro.live.transport.UdpTransport` endpoint per peer, a
:class:`~repro.net.engine.MessagePROPEngine` driving every slot's state
machine on the shared :class:`~repro.live.clock.LiveScheduler`, plus the
optional load pieces — Poisson churn (``config.churn``), staged
join/leave bursts (:class:`ChurnSchedule`) and a
:class:`~repro.live.traffic.TrafficGenerator` at
``config.live_lookup_rate`` lookups per protocol second.

Lifecycle::

    swarm = Swarm(config)
    async with swarm:            # start() ... close()
        swarm.launch()           # protocol t=0: arm engines, churn, load
        await swarm.run_until(config.duration)
    report = swarm.report        # SwarmReport after close

or the one-call form ``report = await swarm.run()``.  The harness entry
point :func:`repro.live.runner.run_live_experiment` drives the granular
lifecycle so it can interleave metric sampling exactly like
:func:`~repro.harness.experiment.run_experiment`.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.harness.experiment import (
    ExperimentConfig,
    World,
    build_substrate,
    monitor_consumers,
)
from repro.live.clock import LiveScheduler
from repro.live.lag import LoopLagSampler
from repro.live.traffic import TrafficGenerator, single_lookup
from repro.live.transport import UdpTransport
from repro.net.engine import MessagePROPEngine, NetCounters
from repro.net.transport import TransportStats
from repro.obs.registry import (
    MetricsRegistry,
    absorb_net_counters,
    absorb_protocol_counters,
    absorb_transport_stats,
)
from repro.obs.spans import SpanAssembler
from repro.obs.telemetry import TelemetryExporter, TelemetrySnapshot
from repro.obs.trace import TraceConsumer, Tracer
from repro.workloads.churn import ChurnConfig, ChurnProcess

__all__ = ["ChurnSchedule", "Swarm", "SwarmReport"]


@dataclass(frozen=True)
class ChurnSchedule:
    """Staged join/leave bursts: ``k`` slot replacements at each time.

    The continuous Poisson process (``config.churn``) models steady
    turnover; stages model the flash events (a popular-content burst, a
    network incident) the adaptivity experiments ask about.  Each stage
    ``(t, k)`` replaces ``k`` random slots' hosts with spares at protocol
    time ``t``.
    """

    stages: tuple[tuple[float, int], ...] = ()

    def __post_init__(self) -> None:
        for t, k in self.stages:
            if t < 0.0 or k <= 0:
                raise ValueError(f"bad churn stage ({t}, {k}): need t >= 0, k > 0")

    @property
    def total_replacements(self) -> int:
        return sum(k for _, k in self.stages)

    @classmethod
    def parse(cls, spec: str) -> "ChurnSchedule":
        """Parse ``"t1:k1,t2:k2,..."`` (e.g. ``"120:5,600:10"``)."""
        stages: list[tuple[float, int]] = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                t_str, k_str = part.split(":")
                stages.append((float(t_str), int(k_str)))
            except ValueError:
                raise ValueError(
                    f"bad churn stage {part!r}; expected time:count"
                ) from None
        return cls(stages=tuple(stages))


@dataclass
class SwarmReport:
    """What a finished swarm run measured."""

    n_peers: int
    duration: float  # protocol seconds actually run
    speedup: float
    wall_seconds: float
    probes: int
    exchanges: int
    protocol_messages: int  # legacy walk+collect+notify counters
    datagrams_sent: int
    datagrams_delivered: int
    wire_bytes: int
    codec_errors: int
    churn_events: int
    lookups: int
    mean_lookup_ms: float
    net_stats: TransportStats
    net_counters: NetCounters
    lookup_samples: list[tuple[float, float]] = field(default_factory=list)

    @property
    def msgs_per_wall_s(self) -> float:
        return self.datagrams_sent / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def exchanges_per_wall_s(self) -> float:
        return self.exchanges / self.wall_seconds if self.wall_seconds else 0.0

    def summary(self) -> str:
        lines = [
            f"swarm: {self.n_peers} peers, {self.duration:.0f} protocol s "
            f"at {self.speedup:g}x ({self.wall_seconds:.1f} wall s)",
            f"  probes {self.probes}  exchanges {self.exchanges}  "
            f"protocol msgs {self.protocol_messages}",
            f"  datagrams {self.datagrams_sent} sent / "
            f"{self.datagrams_delivered} delivered  "
            f"({self.wire_bytes} wire bytes, {self.codec_errors} codec errors)",
            f"  throughput {self.msgs_per_wall_s:.0f} msgs/s  "
            f"{self.exchanges_per_wall_s:.2f} exchanges/s (wall)",
        ]
        if self.churn_events:
            lines.append(f"  churn events {self.churn_events}")
        if self.lookups:
            lines.append(
                f"  load {self.lookups} lookups, mean {self.mean_lookup_ms:.1f} ms"
            )
        return "\n".join(lines)


class Swarm:
    """Spawn-and-drive orchestrator for a loopback PROP deployment.

    Parameters
    ----------
    config:
        Must have ``transport="udp"`` and a PROP policy; the substrate
        (preset, overlay, oracle, heterogeneity) is built exactly as the
        simulated plane builds it.
    churn_schedule:
        Optional staged join/leave bursts on top of any Poisson churn in
        the config; both need ``config.n_spare > 0``.
    consumers:
        Extra :class:`~repro.obs.trace.TraceConsumer` subscribers; with
        ``config.trace_streaming`` the standard monitor set is attached
        automatically (same wiring as the simulated harness).
    host:
        Bind address for the peer sockets (default loopback).
    telemetry:
        Optional JSONL path; when set, a
        :class:`~repro.obs.telemetry.TelemetrySnapshot` is appended
        every ``telemetry_interval`` protocol seconds (plus a final one
        at close) — registry metrics, open-span gauges and the per-peer
        wire-byte counters, flushed line by line so the file can be
        tailed while the swarm runs.
    telemetry_interval:
        Snapshot period in protocol seconds (default 60).
    """

    def __init__(
        self,
        config: ExperimentConfig,
        *,
        churn_schedule: ChurnSchedule | None = None,
        consumers: list[TraceConsumer] | None = None,
        host: str = "127.0.0.1",
        telemetry: str | Path | None = None,
        telemetry_interval: float = 60.0,
    ) -> None:
        if config.transport != "udp":
            raise ValueError(f"Swarm needs transport='udp', got {config.transport!r}")
        if config.prop is None:
            raise ValueError("Swarm runs PROP; set config.prop")
        if churn_schedule is not None and churn_schedule.stages and config.n_spare == 0:
            raise ValueError("churn_schedule needs n_spare > 0 replacement hosts")
        if telemetry is not None and telemetry_interval <= 0.0:
            raise ValueError(
                f"telemetry_interval must be positive, got {telemetry_interval}"
            )
        self.config = config
        self.churn_schedule = churn_schedule
        self._extra_consumers = list(consumers) if consumers else []
        self._host = host
        self.world: World | None = None
        self.scheduler: LiveScheduler | None = None
        self.transport: UdpTransport | None = None
        self.engine: MessagePROPEngine | None = None
        self.churn: ChurnProcess | None = None
        self.traffic: TrafficGenerator | None = None
        self.tracer: Tracer | None = None
        self.report: SwarmReport | None = None
        self.telemetry_interval = float(telemetry_interval)
        self.telemetry_written = 0
        self._telemetry = (
            TelemetryExporter(telemetry) if telemetry is not None else None
        )
        self._span_gauges: SpanAssembler | None = None
        self._lag: LoopLagSampler | None = None
        self._launched = False
        self._wall_start = 0.0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Build the substrate and bind every peer endpoint (no traffic yet)."""
        if self.scheduler is not None:
            raise RuntimeError("swarm already started")
        config = self.config
        loop = asyncio.get_running_loop()
        substrate = build_substrate(config)
        scheduler = LiveScheduler(loop, config.live_speedup)
        self.scheduler = scheduler

        tracer: Tracer | None = None
        if config.trace or config.trace_streaming or self._telemetry is not None:
            # telemetry without tracing still needs the event bus for the
            # span gauges; stream in that case so memory stays bounded
            tracer = Tracer(
                clock=lambda: scheduler.now,
                streaming=config.trace_streaming or not config.trace,
                consumers=monitor_consumers(config) if config.trace_streaming else (),
            )
            for consumer in self._extra_consumers:
                tracer.add_consumer(consumer)
            if self._telemetry is not None:
                self._span_gauges = SpanAssembler(keep_trees=False)
                tracer.add_consumer(self._span_gauges)
        self.tracer = tracer

        self.transport = await UdpTransport.create(
            scheduler, substrate.overlay.n_slots, tracer=tracer, host=self._host
        )
        if self._telemetry is not None:
            # telemetry runs pay for loop-lag sampling and per-callback
            # timing; un-telemetered swarms keep the untouched hot path
            self.transport.profile_callbacks = True
            self._lag = LoopLagSampler(loop)
        assert config.prop is not None  # __init__ invariant
        self.engine = MessagePROPEngine(
            substrate.overlay, config.prop, scheduler, substrate.rngs,
            self.transport, net=config.net, tracer=tracer,
        )

        needs_churn = config.churn is not None or (
            self.churn_schedule is not None and self.churn_schedule.stages
        )
        if needs_churn:
            self.churn = ChurnProcess(
                substrate.overlay,
                config.churn if config.churn is not None else ChurnConfig(0.0),
                scheduler,
                substrate.rngs.stream("churn"),
                substrate.spare_hosts,
                on_replace=self.engine.reset_slot,
                tracer=tracer,
            )

        if config.live_lookup_rate > 0.0:
            traffic_rng = substrate.rngs.stream("live:traffic")
            overlay = substrate.overlay
            het = substrate.het

            def one_lookup() -> float:
                node_delay = (
                    het.slot_delays(overlay.embedding) if het is not None else None
                )
                return single_lookup(
                    overlay, traffic_rng,
                    node_delay=node_delay,
                    ttl=config.flood_ttl,
                    retry_timeout=config.retry_timeout,
                )

            on_sample = None
            if tracer is not None:
                monitors = [
                    c for c in tracer.consumers if hasattr(c, "on_sample")
                ]
                if monitors:
                    def on_sample(t: float, ms: float) -> None:
                        for m in monitors:
                            m.on_sample(t, ms)

            self.traffic = TrafficGenerator(
                scheduler, one_lookup, config.live_lookup_rate, on_sample=on_sample
            )

        self.world = World(
            config=config,
            rngs=substrate.rngs,
            sim=scheduler,  # duck-typed: LiveScheduler speaks the Simulator vocabulary
            oracle=substrate.oracle,
            overlay=substrate.overlay,
            het=substrate.het,
            engine=self.engine,
            ltm=None,
            churn=self.churn,
            spare_hosts=substrate.spare_hosts,
            transport=self.transport,  # duck-typed: UdpTransport
            tracer=tracer,
        )

    def launch(self) -> None:
        """Protocol t=0: arm the engines, churn processes and load."""
        if self.scheduler is None or self.engine is None:
            raise RuntimeError("start() the swarm before launching")
        if self._launched:
            raise RuntimeError("swarm already launched")
        self._launched = True
        self.scheduler.reset_epoch()
        self._wall_start = self.scheduler.wall_deadline(0.0)
        self.engine.start()
        if self.churn is not None:
            self.churn.start()
        if self.traffic is not None:
            self.traffic.start()
        if self.churn_schedule is not None and self.churn is not None:
            for t, k in self.churn_schedule.stages:
                self.scheduler.schedule_at(t, self._churn_stage, k)
        if self._telemetry is not None:
            self.scheduler.schedule(self.telemetry_interval, self._telemetry_tick)
        if self._lag is not None:
            self._lag.start()

    def _telemetry_snapshot(self) -> TelemetrySnapshot:
        assert (self.scheduler is not None and self.engine is not None
                and self.transport is not None and self._telemetry is not None)
        registry = MetricsRegistry()
        absorb_protocol_counters(registry, self.engine.counters)
        absorb_net_counters(registry, self.engine.net_counters)
        absorb_transport_stats(registry, self.transport.stats)
        gauges = self._span_gauges
        return TelemetrySnapshot(
            time=self.scheduler.now,
            seq=self._telemetry.written,
            metrics=registry.snapshot(),
            open_spans=gauges.open_spans if gauges is not None else 0,
            open_traces=gauges.open_traces if gauges is not None else 0,
            spans_completed=gauges.completed if gauges is not None else 0,
            wire_bytes_out=dict(self.transport.wire_bytes_out),
            wire_bytes_in=dict(self.transport.wire_bytes_in),
            loop_lag=self._lag.stats() if self._lag is not None else {},
            callback_ms={
                slot: {cat: round(ns / 1e6, 3) for cat, ns in per_slot.items()}
                for slot, per_slot in self.transport.callback_ns.items()
            },
        )

    def _telemetry_tick(self) -> None:
        # close() nulls the exporter after the final snapshot, so a tick
        # that fires during teardown is a no-op
        if self._telemetry is None or self.scheduler is None:
            return
        self._telemetry.write(self._telemetry_snapshot())
        self.telemetry_written = self._telemetry.written
        self.scheduler.schedule(self.telemetry_interval, self._telemetry_tick)

    def _churn_stage(self, k: int) -> None:
        assert self.churn is not None  # scheduled only when churn exists
        for _ in range(k):
            self.churn.replace_random_slot()

    async def run_until(self, t: float) -> None:
        """Let the swarm run until protocol time ``t``."""
        if not self._launched:
            raise RuntimeError("launch() the swarm before running")
        assert self.scheduler is not None
        loop = asyncio.get_running_loop()
        delay = self.scheduler.wall_deadline(t) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)

    async def close(self) -> SwarmReport:
        """Stop load, shut every socket, and compile the report."""
        if self.scheduler is None or self.engine is None or self.transport is None:
            raise RuntimeError("swarm was never started")
        if self.traffic is not None:
            self.traffic.stop()
        # drain datagrams already queued on the loop before the sockets go
        await asyncio.sleep(0)
        duration = self.scheduler.now if self._launched else 0.0
        loop = asyncio.get_running_loop()
        wall = loop.time() - self._wall_start if self._launched else 0.0
        self.engine.finalize_trace()
        self.transport.close()
        if self._lag is not None:
            self._lag.stop()
        if self._telemetry is not None:
            # final snapshot after finalize_trace (in-flight roots are
            # closed end-of-run) but before the tracer flushes the span
            # assembler, so it still shows genuinely half-open spans
            self._telemetry.write(self._telemetry_snapshot())
            self.telemetry_written = self._telemetry.written
            self._telemetry.close()
            self._telemetry = None
        if self.tracer is not None:
            self.tracer.close(duration)
        stats = self.transport.stats
        counters = self.engine.counters
        self.report = SwarmReport(
            n_peers=self.transport.n_slots,
            duration=duration,
            speedup=self.scheduler.speedup,
            wall_seconds=wall,
            probes=counters.probes,
            exchanges=counters.exchanges,
            protocol_messages=counters.total_messages,
            datagrams_sent=stats.total_sent,
            datagrams_delivered=stats.total_delivered,
            wire_bytes=self.transport.wire_bytes_sent,
            codec_errors=self.transport.codec_errors,
            churn_events=self.churn.events if self.churn is not None else 0,
            lookups=self.traffic.lookups if self.traffic is not None else 0,
            mean_lookup_ms=(
                self.traffic.mean_latency_ms
                if self.traffic is not None else math.nan
            ),
            net_stats=stats,
            net_counters=self.engine.net_counters,
            lookup_samples=list(self.traffic.samples) if self.traffic else [],
        )
        return self.report

    async def __aenter__(self) -> "Swarm":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    async def run(self) -> SwarmReport:
        """One-call lifecycle: start, launch, run the full duration, close."""
        async with self:
            self.launch()
            await self.run_until(self.config.duration)
        assert self.report is not None  # set by close()
        return self.report
