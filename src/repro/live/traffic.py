"""Sustained lookup load against the live overlay.

:class:`TrafficGenerator` issues lookups at a fixed rate (in protocol
time) while the swarm runs, recording each lookup's latency as a
``(protocol_time, latency_ms)`` sample.  This is the "measure under
load, not just at convergence" half of the live plane: the per-lookup
series feeds :class:`~repro.obs.monitor.ConvergenceMonitor` via
``on_sample``, so the same dashboards that watch a simulated run watch a
deployment.

The generator draws sources and targets from its own named RNG stream
(``live:traffic`` by convention), so enabling load never perturbs the
protocol's or the measurement harness's draws — the parity gate depends
on that separation.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.live.clock import LivePeriodic, LiveScheduler
from repro.overlay.base import Overlay
from repro.overlay.can import CANOverlay
from repro.overlay.gnutella import GnutellaOverlay
from repro.workloads.lookups import uniform_keys, uniform_pairs

__all__ = ["TrafficGenerator", "single_lookup"]

SampleSink = Callable[[float, float], None]


def single_lookup(
    overlay: Overlay,
    rng: np.random.Generator,
    *,
    node_delay: np.ndarray | None = None,
    ttl: int | None = None,
    retry_timeout: float | None = None,
) -> float:
    """One uniformly-drawn lookup's latency (ms) on the current overlay.

    The per-query form of the harness's
    :func:`~repro.harness.experiment.sample_lookup_latency` batch: same
    workload distributions, one draw at a time, cheap enough to run on
    the event loop between protocol callbacks.
    """
    if isinstance(overlay, GnutellaOverlay):
        pairs = uniform_pairs(overlay.n_slots, 1, rng)
        return float(
            overlay.mean_lookup_latency(
                pairs, node_delay=node_delay, ttl=ttl, retry_timeout=retry_timeout
            )
        )
    if isinstance(overlay, CANOverlay):
        pairs = uniform_pairs(overlay.n_slots, 1, rng)
        point = overlay.zones[int(pairs[0, 1])].center()
        return float(overlay.lookup_latency(int(pairs[0, 0]), point, node_delay))
    # key-routed DHTs (chord / pastry / kademlia) share the space/lookup API
    queries = uniform_keys(overlay.n_slots, overlay.space, 1, rng)
    return float(
        overlay.lookup_latency(int(queries[0, 0]), int(queries[0, 1]), node_delay)
    )


class TrafficGenerator:
    """Fixed-rate lookup driver on a :class:`LiveScheduler`.

    Parameters
    ----------
    scheduler:
        The swarm's clock; one lookup fires every ``1 / rate`` protocol
        seconds.
    lookup:
        Zero-argument callable returning one lookup's latency in ms
        (typically a closure over :func:`single_lookup`).
    rate:
        Lookups per protocol second (``> 0``).
    on_sample:
        Optional sink called ``(protocol_time, latency_ms)`` per lookup —
        the hook :class:`~repro.obs.monitor.ConvergenceMonitor` plugs
        into.
    keep_samples:
        Retain the full ``(t, ms)`` series (default); disable for very
        long runs where the aggregate counters suffice.
    """

    def __init__(
        self,
        scheduler: LiveScheduler,
        lookup: Callable[[], float],
        rate: float,
        *,
        on_sample: SampleSink | None = None,
        keep_samples: bool = True,
    ) -> None:
        if rate <= 0.0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._scheduler = scheduler
        self._lookup = lookup
        self.rate = float(rate)
        self._on_sample = on_sample
        self._keep = keep_samples
        self.lookups = 0
        self.total_ms = 0.0
        self.samples: list[tuple[float, float]] = []
        self._process: LivePeriodic | None = None

    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError("traffic generator already started")
        self._process = self._scheduler.every(1.0 / self.rate, self._tick)

    def _tick(self) -> None:
        t = self._scheduler.now
        ms = self._lookup()
        self.lookups += 1
        if math.isfinite(ms):
            self.total_ms += ms
            if self._keep:
                self.samples.append((t, ms))
            if self._on_sample is not None:
                self._on_sample(t, ms)

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()

    @property
    def mean_latency_ms(self) -> float:
        return self.total_ms / self.lookups if self.lookups else float("nan")
