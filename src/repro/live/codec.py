"""Length-prefixed wire codec for the :mod:`repro.net.messages` grammar.

Every datagram is one encoded message::

    +--------+--------+---------+---------+----------------------+
    | u8 ver | u8 tag | i32 src | i32 dst | payload fields ...   |
    +--------+--------+---------+---------+----------------------+

``ver`` is :data:`WIRE_VERSION` (a peer refuses frames from a different
protocol revision), ``tag`` indexes :data:`~repro.net.messages.MSG_TYPES`
(the closed wire grammar), and ``src``/``dst`` are the overlay *slots*
the message travels between — the same slot addressing the simulated
transport uses, so a decoded message is byte-for-byte the dataclass the
engine would have received in the simulator.

Payload fields are encoded in dataclass declaration order, each by its
annotated type: ``int`` as a big-endian i64, ``float`` as an f64,
``bool`` as one byte, ``str`` as a u16 length plus UTF-8 bytes, and
``tuple[int, ...]`` as a u16 count plus i32 elements.  The field specs
are derived from the dataclasses themselves at import time, so adding a
message type (or a field) extends the codec automatically — the
round-trip property test in ``tests/live/test_codec.py`` pins this.

:func:`frame` / :func:`unframe` add and strip a u32 length prefix for
stream transports (TCP); UDP datagrams carry :func:`encode` output
directly, one message per datagram.

Relation to :meth:`Message.size_bytes() <repro.net.messages.Message.size_bytes>`:
``size_bytes`` is the *telemetry model* of the paper's §4.3 accounting
(a 28-byte nominal header plus 4 bytes per integer), while
:func:`encoded_size` is the actual loopback wire cost of this codec
(10-byte header, 8-byte integers, explicit length counts).  They are
deliberately distinct — the model stays comparable to the paper's
closed forms; the codec favors an unambiguous self-describing layout —
but both grow identically per list element modulo word size, which the
property test asserts.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import fields
from typing import get_type_hints

from repro.net.messages import MSG_TYPES, Message

__all__ = [
    "CodecError",
    "GRAMMAR_FINGERPRINT",
    "MESSAGE_CLASSES",
    "WIRE_KINDS",
    "WIRE_VERSION",
    "decode",
    "encode",
    "encoded_size",
    "frame",
    "grammar_fingerprint",
    "unframe",
]

#: Protocol revision stamped on every frame; bump on any layout change.
#: v2: every message carries the span-context ids (trace_id, span_id,
#: parent_id) — three i64 payload fields inherited from ``Message``
#: (docs/protocol.md, "Wire causality context").
WIRE_VERSION = 2

#: Declared wire encodings: grammar annotation text -> codec kind.  This
#: is the codec's contract with the message grammar — reprolint rule G1
#: statically checks that every payload field annotation appears here
#: and that every kind has an explicit arm in encode() AND decode().
WIRE_KINDS: dict[str, str] = {
    "bool": "bool",
    "int": "int",
    "float": "float",
    "str": "str",
    "tuple[int, ...]": "int_tuple",
}

#: Acknowledged grammar fingerprint, "<WIRE_VERSION>:<sha256[:16]>" over
#: every message's name and annotated payload fields in wire-tag order.
#: Rule G1 recomputes this from the grammar source; when it stops
#: matching, the grammar changed — update it (the new value is in the
#: finding) and bump WIRE_VERSION above.
GRAMMAR_FINGERPRINT = "2:7155b7741ba3710f"

_HEADER = struct.Struct("!BBii")  # version, type tag, src slot, dst slot
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_U16 = struct.Struct("!H")
_I32 = struct.Struct("!i")
_U32 = struct.Struct("!I")


class CodecError(ValueError):
    """A frame that cannot be encoded or decoded."""


#: Runtime mirror of :data:`WIRE_KINDS`, keyed by the resolved hint
#: object instead of the annotation text.
_HINT_KINDS: dict[object, str] = {
    bool: "bool",
    int: "int",
    float: "float",
    str: "str",
    tuple[int, ...]: "int_tuple",
}


def _field_specs(cls: type[Message]) -> tuple[tuple[str, str], ...]:
    """(name, kind) per payload field, in dataclass declaration order."""
    hints = get_type_hints(cls)
    specs: list[tuple[str, str]] = []
    for f in fields(cls):
        if f.name in ("src", "dst"):
            continue  # addressed in the header
        hint = hints[f.name]
        kind = _HINT_KINDS.get(hint)
        if kind is None:  # pragma: no cover - a new field type needs a codec rule
            raise CodecError(
                f"{cls.__name__}.{f.name}: no wire encoding for {hint!r}"
            )
        specs.append((f.name, kind))
    return tuple(specs)


def grammar_fingerprint() -> str:
    """The live grammar's fingerprint, ``"<version>:<sha256[:16]>"``.

    Hashes every message's wire name and annotated payload fields in
    wire-tag order — the same canonical string reprolint rule G1 derives
    statically from the grammar source, so the checked-in
    :data:`GRAMMAR_FINGERPRINT` is pinned from both sides.
    """
    parts = []
    for name in MSG_TYPES:
        cls = MESSAGE_CLASSES[name]
        spec = " ".join(
            f"{f.name}:{f.type}"
            for f in fields(cls)
            if f.name not in ("src", "dst")
        )
        parts.append(f"{name} {spec}".rstrip())
    digest = hashlib.sha256(";".join(parts).encode("utf-8")).hexdigest()[:16]
    return f"{WIRE_VERSION}:{digest}"


def _message_classes() -> dict[str, type[Message]]:
    """The concrete grammar, keyed by ``type_name``, tag order pinned
    by :data:`~repro.net.messages.MSG_TYPES`."""
    by_name: dict[str, type[Message]] = {}
    stack = [Message]
    while stack:
        cls = stack.pop()
        for sub in cls.__subclasses__():
            by_name[sub.type_name] = sub
            stack.append(sub)
    missing = [t for t in MSG_TYPES if t not in by_name]
    if missing:  # pragma: no cover - grammar/codec drift guard
        raise CodecError(f"MSG_TYPES without a message class: {missing}")
    return {t: by_name[t] for t in MSG_TYPES}


#: type_name -> class, in wire-tag order (index = tag byte).
MESSAGE_CLASSES: dict[str, type[Message]] = _message_classes()
_TAG_OF = {name: i for i, name in enumerate(MSG_TYPES)}
_CLASS_OF_TAG = tuple(MESSAGE_CLASSES[name] for name in MSG_TYPES)
_SPECS_OF = {cls: _field_specs(cls) for cls in _CLASS_OF_TAG}


def encode(msg: Message) -> bytes:
    """One message as a self-contained datagram payload."""
    tag = _TAG_OF.get(msg.type_name)
    if tag is None:
        raise CodecError(f"message type {msg.type_name!r} is not in the wire grammar")
    parts = [_HEADER.pack(WIRE_VERSION, tag, msg.src, msg.dst)]
    for name, kind in _SPECS_OF[type(msg)]:
        value = getattr(msg, name)
        if kind == "bool":
            parts.append(b"\x01" if value else b"\x00")
        elif kind == "int":
            parts.append(_I64.pack(value))
        elif kind == "float":
            parts.append(_F64.pack(value))
        elif kind == "str":
            raw = value.encode("utf-8")
            if len(raw) > 0xFFFF:
                raise CodecError(f"string field {name} too long ({len(raw)} bytes)")
            parts.append(_U16.pack(len(raw)))
            parts.append(raw)
        elif kind == "int_tuple":
            if len(value) > 0xFFFF:
                raise CodecError(f"slot list {name} too long ({len(value)} slots)")
            parts.append(_U16.pack(len(value)))
            parts.append(struct.pack(f"!{len(value)}i", *value))
        else:  # pragma: no cover - G1 pins WIRE_KINDS to the arms above
            raise CodecError(f"field {name}: unhandled wire kind {kind!r}")
    return b"".join(parts)


def decode(data: bytes) -> Message:
    """Rebuild the message a datagram carries (inverse of :func:`encode`)."""
    if len(data) < _HEADER.size:
        raise CodecError(f"frame truncated: {len(data)} bytes < header")
    version, tag, src, dst = _HEADER.unpack_from(data)
    if version != WIRE_VERSION:
        raise CodecError(f"wire version {version} != {WIRE_VERSION}")
    if tag >= len(_CLASS_OF_TAG):
        raise CodecError(f"unknown message tag {tag}")
    cls = _CLASS_OF_TAG[tag]
    offset = _HEADER.size
    payload: dict[str, object] = {"src": src, "dst": dst}
    try:
        for name, kind in _SPECS_OF[cls]:
            if kind == "bool":
                payload[name] = data[offset] != 0
                offset += 1
            elif kind == "int":
                payload[name] = _I64.unpack_from(data, offset)[0]
                offset += _I64.size
            elif kind == "float":
                payload[name] = _F64.unpack_from(data, offset)[0]
                offset += _F64.size
            elif kind == "str":
                (length,) = _U16.unpack_from(data, offset)
                offset += _U16.size
                raw = data[offset:offset + length]
                if len(raw) != length:
                    raise CodecError(f"string field {name} truncated")
                payload[name] = raw.decode("utf-8")
                offset += length
            elif kind == "int_tuple":
                (count,) = _U16.unpack_from(data, offset)
                offset += _U16.size
                payload[name] = struct.unpack_from(f"!{count}i", data, offset)
                offset += _I32.size * count
            else:  # pragma: no cover - G1 pins WIRE_KINDS to the arms above
                raise CodecError(f"field {name}: unhandled wire kind {kind!r}")
    except struct.error as exc:
        raise CodecError(f"frame truncated decoding {cls.__name__}: {exc}") from None
    if offset != len(data):
        raise CodecError(
            f"{len(data) - offset} trailing bytes after {cls.__name__} payload"
        )
    return cls(**payload)  # type: ignore[arg-type]


def encoded_size(msg: Message) -> int:
    """Actual wire bytes of ``msg`` under this codec (see module docs
    for how this relates to the telemetry model ``size_bytes()``)."""
    return len(encode(msg))


def frame(msg: Message) -> bytes:
    """``encode(msg)`` behind a u32 length prefix, for stream transports."""
    body = encode(msg)
    return _U32.pack(len(body)) + body


def unframe(buffer: bytes) -> tuple[Message | None, bytes]:
    """Pop one framed message off ``buffer``.

    Returns ``(message, rest)`` when a complete frame is present, else
    ``(None, buffer)`` — the stream reader's accumulate-and-retry loop.
    """
    if len(buffer) < _U32.size:
        return None, buffer
    (length,) = _U32.unpack_from(buffer)
    end = _U32.size + length
    if len(buffer) < end:
        return None, buffer
    return decode(buffer[_U32.size:end]), buffer[end:]
