"""Identifier-space helpers shared by the structured overlays.

Chord and Pastry both work in a circular identifier space of size
``2**bits``; these helpers implement the modular arithmetic (clockwise
distance, half-open ring intervals) and unique random id assignment.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "unique_ids",
    "ring_distance_cw",
    "ring_between",
    "digits_of",
    "common_prefix_len",
]


def unique_ids(n: int, bits: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``n`` distinct identifiers uniformly from ``[0, 2**bits)``.

    Raises :class:`ValueError` when the space is too small to hold ``n``
    distinct ids.
    """
    space = 1 << bits
    if n > space:
        raise ValueError(f"cannot draw {n} unique ids from a {space}-point space")
    if n > space // 2:
        # Dense regime: permute the whole space rather than reject-sample.
        return rng.permutation(space)[:n].astype(np.int64)
    ids: set[int] = set()
    out = np.empty(n, dtype=np.int64)
    filled = 0
    while filled < n:
        draw = rng.integers(0, space, size=n - filled)
        for x in draw:
            xi = int(x)
            if xi not in ids:
                ids.add(xi)
                out[filled] = xi
                filled += 1
                if filled == n:
                    break
    return out


def ring_distance_cw(a: int, b: int, bits: int) -> int:
    """Clockwise distance from ``a`` to ``b`` on the ``2**bits`` ring."""
    space = 1 << bits
    return (b - a) % space


def ring_between(x: int, a: int, b: int, bits: int) -> bool:
    """True iff ``x`` lies in the half-open clockwise interval ``(a, b]``.

    This is Chord's ``in (a, b]`` predicate: the interval wraps around
    zero when ``b <= a``; the degenerate interval ``(a, a]`` is the whole
    ring (standard Chord convention — a single node owns everything).
    """
    space = 1 << bits
    return (x - a) % space <= (b - a) % space and x != a or a == b


def digits_of(x: int, base_bits: int, n_digits: int) -> tuple[int, ...]:
    """Big-endian base-``2**base_bits`` digits of ``x`` (Pastry ids)."""
    base = 1 << base_bits
    out = []
    for i in range(n_digits - 1, -1, -1):
        out.append((x >> (i * base_bits)) % base)
    return tuple(out)


def common_prefix_len(a: tuple[int, ...], b: tuple[int, ...]) -> int:
    """Length of the shared digit prefix of two digit tuples."""
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return n
