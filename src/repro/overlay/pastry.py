"""Pastry DHT overlay (protocol-independence extension).

A compact Pastry (Rowstron & Druschel, Middleware'01) simulator: ids are
sequences of base-``2**b`` digits, each node keeps a prefix routing table
(one row per prefix length, one entry per digit value) and a leaf set of
the ``L`` numerically closest nodes.  Routing forwards to the leaf-set
owner when the key is within leaf range, otherwise to the routing-table
entry sharing a longer prefix, with the standard "rare case" fallback to
any known node numerically closer to the key.

The paper's claim exercised here: PROP-G "can be deployed effortlessly on
both unstructured and structured P2P systems" — the PROP engine runs on
Pastry exactly as on Chord because both are just logical graphs with an
embedding.  Plain Pastry fills routing-table slots with an arbitrary
qualifying node; passing ``proximity_aware=True`` fills them with the
physically closest qualifying node instead (Pastry's built-in PNS),
used by the combination benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.overlay.base import Overlay
from repro.overlay.ids import common_prefix_len, digits_of, unique_ids
from repro.topology.latency import LatencyOracle

__all__ = ["PastryOverlay"]


class PastryOverlay(Overlay):
    """Pastry prefix-routing overlay."""

    supports_rewiring = False  # edges are a function of the identifier set

    def __init__(
        self,
        oracle: LatencyOracle,
        embedding: np.ndarray,
        ids: np.ndarray,
        *,
        base_bits: int = 4,
        n_digits: int = 8,
        leaf_set_size: int = 8,
        proximity_aware: bool = False,
    ) -> None:
        super().__init__(oracle, embedding)
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape != (self.n_slots,):
            raise ValueError("need exactly one id per slot")
        if np.unique(ids).size != ids.size:
            raise ValueError("ids must be distinct")
        self.ids = ids
        self.base_bits = base_bits
        self.n_digits = n_digits
        self.space = 1 << (base_bits * n_digits)
        if ids.min() < 0 or ids.max() >= self.space:
            raise ValueError("id out of identifier space")
        self.leaf_set_size = leaf_set_size
        self.proximity_aware = proximity_aware
        self.digits = [digits_of(int(x), base_bits, n_digits) for x in ids]
        # ring order of slots by id, for leaf sets
        self._order = np.argsort(ids)
        self._rank = np.empty(self.n_slots, dtype=np.intp)
        self._rank[self._order] = np.arange(self.n_slots)
        self.leaf_sets: list[list[int]] = []
        self.routing_tables: list[dict[tuple[int, int], int]] = []
        self._build_leaf_sets()
        self._leaf_lookup = [frozenset(s) for s in self.leaf_sets]
        self._build_routing_tables()
        self._build_edges()

    @classmethod
    def build(
        cls,
        oracle: LatencyOracle,
        rng: np.random.Generator,
        *,
        base_bits: int = 4,
        n_digits: int = 8,
        leaf_set_size: int = 8,
        proximity_aware: bool = False,
        embedding: np.ndarray | None = None,
    ) -> "PastryOverlay":
        n = oracle.n if embedding is None else len(embedding)
        ids = unique_ids(n, base_bits * n_digits, rng)
        if embedding is None:
            embedding = rng.permutation(n).astype(np.intp)
        return cls(
            oracle,
            embedding,
            ids,
            base_bits=base_bits,
            n_digits=n_digits,
            leaf_set_size=leaf_set_size,
            proximity_aware=proximity_aware,
        )

    # -- construction ----------------------------------------------------

    def _build_leaf_sets(self) -> None:
        n = self.n_slots
        half = min(self.leaf_set_size // 2, (n - 1) // 2)
        for i in range(n):
            r = int(self._rank[i])
            leaves = []
            for off in range(1, half + 1):
                leaves.append(int(self._order[(r + off) % n]))
                leaves.append(int(self._order[(r - off) % n]))
            self.leaf_sets.append(sorted(set(leaves) - {i}))

    def _build_routing_tables(self) -> None:
        """Fill routing tables by grouping slots per (row, digit) cell.

        Plain Pastry: an arbitrary qualifying node (first by slot order).
        Proximity-aware: the qualifying node closest to the owner in
        physical latency.
        """
        n = self.n_slots
        base = 1 << self.base_bits
        # index: prefix tuple -> slots having that prefix
        by_prefix: dict[tuple[int, ...], list[int]] = {}
        for s in range(n):
            d = self.digits[s]
            for l in range(self.n_digits + 1):
                by_prefix.setdefault(d[:l], []).append(s)

        emb = self.embedding
        oracle = self.oracle
        for i in range(n):
            di = self.digits[i]
            table: dict[tuple[int, int], int] = {}
            for row in range(self.n_digits):
                for digit in range(base):
                    if digit == di[row]:
                        continue
                    cand = by_prefix.get(di[:row] + (digit,))
                    if not cand:
                        continue
                    if self.proximity_aware:
                        c = np.asarray(cand, dtype=np.intp)
                        best = int(c[np.argmin(oracle.to_many(int(emb[i]), emb[c]))])
                    else:
                        best = cand[0]
                    table[(row, digit)] = best
            self.routing_tables.append(table)

    def _build_edges(self) -> None:
        for i in range(self.n_slots):
            for j in self.leaf_sets[i]:
                if i != j and not self.has_edge(i, j):
                    self.add_edge(i, j)
            for j in self.routing_tables[i].values():
                if i != j and not self.has_edge(i, j):
                    self.add_edge(i, j)

    # -- routing -----------------------------------------------------------

    def _id_distance(self, a: int, key: int) -> int:
        d = abs(a - key)
        return min(d, self.space - d)

    def owner_of_key(self, key: int) -> int:
        """Slot numerically closest to ``key`` (ties to the lower id)."""
        key %= self.space
        dists = np.abs(self.ids - key)
        dists = np.minimum(dists, self.space - dists)
        best = np.flatnonzero(dists == dists.min())
        return int(best[np.argmin(self.ids[best])])

    def route(self, src: int, key: int) -> list[int]:
        """Pastry prefix routing from ``src`` to the key's owner slot."""
        key %= self.space
        dest = self.owner_of_key(key)
        key_digits = digits_of(key, self.base_bits, self.n_digits)
        path = [src]
        cur = src
        guard = 4 * self.n_digits + self.n_slots
        while cur != dest:
            nxt = None
            # Leaf-set rule: when the key's owner is already in our leaf
            # set, deliver directly (the numerically-closest-leaf case of
            # the Pastry algorithm; the prefix metric may *decrease* on
            # this final hop, e.g. across a digit boundary like 0x7F/0x80).
            if dest in self._leaf_lookup[cur]:
                path.append(dest)
                break
            l = common_prefix_len(self.digits[cur], key_digits)
            if l < self.n_digits:
                entry = self.routing_tables[cur].get((l, key_digits[l]))
                if entry is not None:
                    nxt = entry
            if nxt is None:
                # Rare case: the routing-table cell is empty.  Forward to
                # any known node (leaf set or table) that shares a prefix
                # at least as long and is numerically closer to the key.
                cur_dist = self._id_distance(int(self.ids[cur]), key)
                best = None
                best_key = (l, -cur_dist)
                for j in list(self.leaf_sets[cur]) + list(self.routing_tables[cur].values()):
                    lj = common_prefix_len(self.digits[j], key_digits)
                    dj = self._id_distance(int(self.ids[j]), key)
                    if (lj, -dj) > best_key:
                        best = j
                        best_key = (lj, -dj)
                nxt = best
            if nxt is None or nxt == cur:
                raise RuntimeError("Pastry routing stuck — state tables incomplete")
            path.append(nxt)
            cur = nxt
            guard -= 1
            if guard <= 0:
                raise RuntimeError("Pastry routing failed to converge")
        return path

    def path_latency(self, path: list[int], node_delay: np.ndarray | None = None) -> float:
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self.latency(a, b)
        if node_delay is not None:
            for s in path[1:]:
                total += float(node_delay[s])
        return total

    def lookup_latency(self, src: int, key: int, node_delay: np.ndarray | None = None) -> float:
        return self.path_latency(self.route(src, key), node_delay)

    def copy(self) -> "PastryOverlay":
        clone = PastryOverlay.__new__(PastryOverlay)
        Overlay.__init__(clone, self.oracle, self.embedding.copy())
        for attr in ("ids", "base_bits", "n_digits", "space", "leaf_set_size",
                     "proximity_aware", "digits", "_order", "_rank",
                     "leaf_sets", "routing_tables", "_leaf_lookup"):
            setattr(clone, attr, getattr(self, attr))
        clone._adj = [set(s) for s in self._adj]
        clone._n_edges = self._n_edges
        return clone
