"""CAN (Content-Addressable Network) DHT overlay.

A from-scratch CAN (Ratnasamy et al., SIGCOMM'01) simulator: the key
space is the d-dimensional unit torus, each node owns a rectangular zone,
and joins split the zone containing a random point along its widest
dimension.  Neighbors are zones that abut along a (d-1)-dimensional face
(with wrap-around); routing greedily forwards toward the zone nearest the
target point under the torus metric.

Like every overlay here, CAN is a logical graph over slots plus an
embedding — PROP-G makes two hosts swap zones (their "positions"), the
logical zone adjacency staying fixed.  The paper singles CAN out as a
symmetric system ("there is even no increase [in routing state] in some
symmetrical systems like Gnutella or CAN"), which this adjacency is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.overlay.base import Overlay
from repro.topology.latency import LatencyOracle

__all__ = ["Zone", "CANOverlay"]


@dataclass
class Zone:
    """A half-open axis-aligned box ``[lo, hi)`` in the unit torus."""

    lo: np.ndarray
    hi: np.ndarray

    def contains(self, p: np.ndarray) -> bool:
        return bool(np.all(self.lo <= p) and np.all(p < self.hi))

    def volume(self) -> float:
        return float(np.prod(self.hi - self.lo))

    def center(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0

    def split(self) -> tuple["Zone", "Zone"]:
        """Halve along the widest dimension; returns (lower, upper)."""
        widths = self.hi - self.lo
        dim = int(np.argmax(widths))
        mid = (self.lo[dim] + self.hi[dim]) / 2.0
        lo2 = self.lo.copy()
        lo2[dim] = mid
        hi1 = self.hi.copy()
        hi1[dim] = mid
        return Zone(self.lo.copy(), hi1), Zone(lo2, self.hi.copy())


def _intervals_abut_torus(alo: float, ahi: float, blo: float, bhi: float) -> bool:
    """1-D abutment on the unit torus: a's end touches b's start or v.v."""
    return (
        ahi == blo
        or bhi == alo
        or (ahi == 1.0 and blo == 0.0)
        or (bhi == 1.0 and alo == 0.0)
    )


def _intervals_overlap(alo: float, ahi: float, blo: float, bhi: float) -> bool:
    """1-D open-interval overlap (positive-measure intersection)."""
    return ahi > blo and bhi > alo


def _torus_delta(a: float, b: float) -> float:
    d = abs(a - b)
    return min(d, 1.0 - d)


class CANOverlay(Overlay):
    """CAN overlay: rectangular zones on the unit torus."""

    supports_rewiring = False  # edges are a function of the zone tiling

    def __init__(self, oracle: LatencyOracle, embedding: np.ndarray,
                 zones: list[Zone], dims: int) -> None:
        super().__init__(oracle, embedding)
        if len(zones) != self.n_slots:
            raise ValueError("need exactly one zone per slot")
        self.zones = zones
        self.dims = int(dims)
        self._build_edges()

    @classmethod
    def build(
        cls,
        oracle: LatencyOracle,
        rng: np.random.Generator,
        *,
        dims: int = 2,
        embedding: np.ndarray | None = None,
        join_points: np.ndarray | None = None,
    ) -> "CANOverlay":
        """Build a CAN by sequential point joins.

        Slot ``i`` is the ``i``-th joiner; slot 0 initially owns the whole
        torus.  Each join picks a point — uniform random by default (the
        hash-based CAN the paper optimizes), or supplied per *member
        host* via ``join_points`` (shape ``(oracle.n, dims)``; the
        topologically-aware-CAN baseline derives these from landmarks,
        see :func:`repro.baselines.tacan.tacan_join_points`).  The zone
        owner splits along its widest dimension and the new node takes
        the half containing the point (the original-CAN convention).
        """
        n = oracle.n if embedding is None else len(embedding)
        if dims < 1:
            raise ValueError("dims must be >= 1")
        if embedding is None:
            embedding = rng.permutation(n).astype(np.intp)
        embedding = np.asarray(embedding, dtype=np.intp)
        if join_points is not None:
            join_points = np.asarray(join_points, dtype=np.float64)
            if join_points.shape != (oracle.n, dims):
                raise ValueError(
                    f"join_points must be shaped ({oracle.n}, {dims}), got {join_points.shape}"
                )
            if np.any(join_points < 0.0) or np.any(join_points >= 1.0):
                raise ValueError("join_points must lie in [0, 1)")
        zones: list[Zone] = [Zone(np.zeros(dims), np.ones(dims))]
        for i in range(1, n):
            if join_points is None:
                p = rng.random(dims)
            else:
                p = join_points[embedding[i]]
            owner = next(k for k, z in enumerate(zones) if z.contains(p))
            low, high = zones[owner].split()
            if high.contains(p):
                zones[owner] = low
                zones.append(high)
            else:
                zones[owner] = high
                zones.append(low)
        return cls(oracle, embedding, zones, dims)

    def _adjacent(self, a: int, b: int) -> bool:
        """Zones share a (d-1)-face: abut in one dim, overlap in the rest."""
        za, zb = self.zones[a], self.zones[b]
        abut_dim = -1
        for k in range(self.dims):
            abuts = _intervals_abut_torus(za.lo[k], za.hi[k], zb.lo[k], zb.hi[k])
            overlaps = _intervals_overlap(za.lo[k], za.hi[k], zb.lo[k], zb.hi[k])
            if overlaps:
                continue
            if abuts:
                if abut_dim >= 0:
                    return False  # touch only at a corner
                abut_dim = k
            else:
                return False
        if self.dims == 1:
            return abut_dim >= 0
        return abut_dim >= 0

    def _build_edges(self) -> None:
        n = self.n_slots
        for a in range(n):
            for b in range(a + 1, n):
                if self._adjacent(a, b):
                    self.add_edge(a, b)

    # -- routing ------------------------------------------------------------

    def point_distance_to_zone(self, p: np.ndarray, slot: int) -> float:
        """Torus L2 distance from point ``p`` to the box of ``slot``."""
        z = self.zones[slot]
        total = 0.0
        for k in range(self.dims):
            x = p[k]
            if z.lo[k] <= x < z.hi[k]:
                continue
            d = min(
                _torus_delta(x, z.lo[k]),
                # hi is excluded but measures the boundary distance
                _torus_delta(x, z.hi[k]),
            )
            total += d * d
        return float(np.sqrt(total))

    def owner_of_point(self, p: np.ndarray) -> int:
        p = np.asarray(p, dtype=np.float64) % 1.0
        for slot, z in enumerate(self.zones):
            if z.contains(p):
                return slot
        raise RuntimeError(f"no zone contains point {p} — zones do not tile the torus")

    def route(self, src: int, point: np.ndarray) -> list[int]:
        """Greedy route from ``src`` to the zone owning ``point``.

        Moves to the neighbor whose zone is nearest the target; a visited
        set plus best-unvisited fallback guarantees termination even in
        pathological corner configurations.
        """
        p = np.asarray(point, dtype=np.float64) % 1.0
        dest = self.owner_of_point(p)
        path = [src]
        cur = src
        visited = {src}
        while cur != dest:
            best = None
            best_d = np.inf
            # sorted: the strict `d < best_d` keeps the first of equally
            # near zones, so tie-breaks must not follow set-iteration order
            for nb in sorted(self._adj[cur]):
                if nb in visited:
                    continue
                d = self.point_distance_to_zone(p, nb)
                if d < best_d:
                    best_d = d
                    best = nb
            if best is None:
                raise RuntimeError("CAN routing trapped — adjacency is broken")
            path.append(best)
            visited.add(best)
            cur = best
        return path

    def path_latency(self, path: list[int], node_delay: np.ndarray | None = None) -> float:
        """Link latencies along the path plus processing at receivers."""
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self.latency(a, b)
        if node_delay is not None:
            for s in path[1:]:
                total += float(node_delay[s])
        return total

    def lookup_latency(self, src: int, point: np.ndarray,
                       node_delay: np.ndarray | None = None) -> float:
        return self.path_latency(self.route(src, point), node_delay)

    def total_zone_volume(self) -> float:
        """Sum of zone volumes — must equal 1 (zones tile the torus)."""
        return float(sum(z.volume() for z in self.zones))

    def copy(self) -> "CANOverlay":
        clone = CANOverlay.__new__(CANOverlay)
        Overlay.__init__(clone, self.oracle, self.embedding.copy())
        clone.zones = self.zones
        clone.dims = self.dims
        clone._adj = [set(s) for s in self._adj]
        clone._n_edges = self._n_edges
        return clone
