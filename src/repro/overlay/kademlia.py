"""Kademlia DHT overlay (protocol-independence extension).

The XOR-metric DHT (Maymounkov & Mazières, IPTPS'02) behind the large
deployed networks (BitTorrent Mainline, eDonkey/Kad).  The paper argues
PROP-G runs on *any* structured overlay; Kademlia is the strongest
practical test of that claim because its routing table is organized by
identifier prefix rather than ring arithmetic:

* node ids live in ``[0, 2**bits)``; distance is ``a XOR b``;
* node ``u``'s table has one *k-bucket* per prefix length: bucket ``i``
  holds up to ``k`` nodes whose distance to ``u`` is in
  ``[2^(bits-1-i), 2^(bits-i))`` (i.e. they share exactly ``i`` leading
  bits with ``u``);
* lookup greedily queries the closest known node to the target until no
  closer node exists; the owner of a key is the node with minimum XOR
  distance.

As everywhere in this library, the logical graph (bucket contents) is a
pure function of the identifier set, so PROP-G = embedding swap leaves
it untouched; PROP-O is refused (``supports_rewiring = False``).

Bucket filling is deterministic: each bucket takes the ``k`` candidates
with smallest XOR distance (real Kademlia prefers long-lived contacts;
distance is the natural stand-in in a static membership snapshot).
"""

from __future__ import annotations

import numpy as np

from repro.overlay.base import Overlay
from repro.overlay.ids import unique_ids
from repro.topology.latency import LatencyOracle

__all__ = ["KademliaOverlay"]


class KademliaOverlay(Overlay):
    """Kademlia XOR-metric overlay."""

    supports_rewiring = False  # buckets are a function of the identifier set

    def __init__(
        self,
        oracle: LatencyOracle,
        embedding: np.ndarray,
        ids: np.ndarray,
        bits: int,
        *,
        k: int = 8,
    ) -> None:
        super().__init__(oracle, embedding)
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape != (self.n_slots,):
            raise ValueError("need exactly one id per slot")
        if np.unique(ids).size != ids.size:
            raise ValueError("ids must be distinct")
        if ids.min() < 0 or ids.max() >= (1 << bits):
            raise ValueError("id out of identifier space")
        if k < 1:
            raise ValueError("bucket size k must be >= 1")
        self.ids = ids
        self.bits = int(bits)
        self.space = 1 << bits
        self.k = int(k)
        # buckets[u][i] = slots sharing exactly i leading bits with u,
        # truncated to the k XOR-closest.
        self.buckets: list[list[list[int]]] = []
        self._build_buckets()
        self._build_edges()

    @classmethod
    def build(
        cls,
        oracle: LatencyOracle,
        rng: np.random.Generator,
        *,
        bits: int | None = None,
        k: int = 8,
        embedding: np.ndarray | None = None,
    ) -> "KademliaOverlay":
        n = oracle.n if embedding is None else len(embedding)
        if bits is None:
            bits = max(16, int(np.ceil(np.log2(max(n, 2)))) + 4)
        ids = unique_ids(n, bits, rng)
        if embedding is None:
            embedding = rng.permutation(n).astype(np.intp)
        return cls(oracle, embedding, ids, bits, k=k)

    # -- construction ----------------------------------------------------

    def _bucket_index(self, u: int, other: int) -> int:
        """Shared-prefix length of the two slots' ids (= bucket index)."""
        x = int(self.ids[u]) ^ int(self.ids[other])
        return self.bits - x.bit_length()

    def _build_buckets(self) -> None:
        n = self.n_slots
        ids = self.ids
        self.buckets = []
        for u in range(n):
            per_prefix: dict[int, list[int]] = {}
            xor = ids ^ int(ids[u])
            for v in range(n):
                if v == u:
                    continue
                i = self.bits - int(xor[v]).bit_length()
                per_prefix.setdefault(i, []).append(v)
            table: list[list[int]] = [[] for _ in range(self.bits)]
            for i, members in per_prefix.items():
                members.sort(key=lambda v: int(xor[v]))
                table[i] = members[: self.k]
            self.buckets.append(table)

    def _build_edges(self) -> None:
        for u in range(self.n_slots):
            for bucket in self.buckets[u]:
                for v in bucket:
                    if not self.has_edge(u, v):
                        self.add_edge(u, v)

    # -- routing -----------------------------------------------------------

    def _xor(self, slot: int, key: int) -> int:
        return int(self.ids[slot]) ^ (key % self.space)

    def owner_of_key(self, key: int) -> int:
        """Slot with minimum XOR distance to ``key``."""
        d = self.ids ^ np.int64(key % self.space)
        return int(np.argmin(d))

    def known_contacts(self, slot: int) -> list[int]:
        """All slots in ``slot``'s routing table (bucket union)."""
        out: list[int] = []
        for bucket in self.buckets[slot]:
            out.extend(bucket)
        return out

    def route(self, src: int, key: int) -> list[int]:
        """Greedy XOR-descent from ``src`` to the key's owner.

        Each hop moves to the strictly XOR-closer contact of the current
        node; Kademlia guarantees such a contact exists whenever the
        current node is not the owner, because the bucket covering the
        key's prefix region is non-empty in a full table.
        """
        key = key % self.space
        dest = self.owner_of_key(key)
        path = [src]
        cur = src
        guard = self.bits + self.n_slots
        while cur != dest:
            cur_d = self._xor(cur, key)
            best = None
            best_d = cur_d
            for v in self.known_contacts(cur):
                d = self._xor(v, key)
                if d < best_d:
                    best = v
                    best_d = d
            if best is None:
                raise RuntimeError(
                    f"slot {cur}: no XOR-closer contact toward key {key} — "
                    "bucket table incomplete"
                )
            path.append(best)
            cur = best
            guard -= 1
            if guard <= 0:
                raise RuntimeError("Kademlia routing failed to converge")
        return path

    def path_latency(self, path: list[int], node_delay: np.ndarray | None = None) -> float:
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self.latency(a, b)
        if node_delay is not None:
            for s in path[1:]:
                total += float(node_delay[s])
        return total

    def lookup_latency(self, src: int, key: int, node_delay: np.ndarray | None = None) -> float:
        return self.path_latency(self.route(src, key), node_delay)

    def lookup_latencies(
        self,
        queries: np.ndarray,
        node_delay: np.ndarray | None = None,
    ) -> np.ndarray:
        queries = np.asarray(queries)
        if queries.ndim != 2 or queries.shape[1] != 2:
            raise ValueError("queries must be (k, 2) rows of (src, key)")
        out = np.empty(len(queries))
        for i, (src, key) in enumerate(queries):
            out[i] = self.lookup_latency(int(src), int(key), node_delay)
        return out

    def mean_lookup_latency(
        self,
        queries: np.ndarray,
        node_delay: np.ndarray | None = None,
    ) -> float:
        return float(self.lookup_latencies(queries, node_delay).mean())

    def copy(self) -> "KademliaOverlay":
        clone = KademliaOverlay.__new__(KademliaOverlay)
        Overlay.__init__(clone, self.oracle, self.embedding.copy())
        for attr in ("ids", "bits", "space", "k", "buckets"):
            setattr(clone, attr, getattr(self, attr))
        clone._adj = [set(s) for s in self._adj]
        clone._n_edges = self._n_edges
        return clone
