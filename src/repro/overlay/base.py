"""Overlay = logical graph + physical embedding.

The central modelling decision of this reproduction (see DESIGN.md §2):
an overlay network is

* a **logical graph** over slots ``0..n-1`` — the ring-with-fingers of
  Chord, the zone adjacency of CAN, the random graph of Gnutella; and
* an **embedding** array mapping each slot to a *member host* index in a
  :class:`~repro.topology.latency.LatencyOracle`.

The paper's two exchange primitives map onto this split exactly:

* **PROP-G** swaps two entries of the embedding.  The logical topology is
  untouched, which *is* Theorem 2 (isomorphism) by construction, and
  connectivity persistence (Theorem 1) is trivial.
* **PROP-O** rewires ``m`` logical edges between two slots.  Degrees are
  preserved by trading equal numbers of edges, and connectivity is
  preserved because exchanged neighbors never lie on the probe walk path
  (the Theorem 1 argument).

Hot-path note: edge latency queries go through the oracle protocol
(:class:`~repro.topology.latency.LatencyOracleBase`) — on the exact
backend these are dense fancy-indexed reads, and the per-slot neighbor
latency sum used by the Var test is a single vectorized reduction over
a row view (no copies), per the HPC guide idioms.  Approximate backends
(Vivaldi coordinates, landmark triangulation) drop in behind the same
five calls with O(n*dim) state instead of O(n^2).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx
import numpy as np

from repro.topology.latency import LatencyOracleBase

__all__ = ["Overlay"]


class Overlay:
    """A logical overlay graph embedded into a physical network.

    Parameters
    ----------
    oracle:
        Pairwise latency oracle among member hosts.
    embedding:
        ``embedding[slot]`` is the member-host index occupying ``slot``.
        Must be a permutation-free injection into ``range(oracle.n)``
        (two slots can never share a host).
    """

    #: Whether the overlay tolerates free edge rewiring (PROP-O, LTM).
    #: Structured overlays derive their edges from identifiers/zones, so
    #: rewiring would silently corrupt routing — they override to False
    #: and only position exchange (PROP-G) may be deployed on them, which
    #: is exactly the paper's protocol-applicability matrix.
    supports_rewiring: bool = True

    def __init__(self, oracle: LatencyOracleBase, embedding: np.ndarray | Iterable[int]) -> None:
        emb = np.array(list(embedding) if not isinstance(embedding, np.ndarray) else embedding,
                       dtype=np.intp)
        if emb.ndim != 1 or emb.size == 0:
            raise ValueError("embedding must be a non-empty 1-D array")
        if np.unique(emb).size != emb.size:
            raise ValueError("embedding must map slots to distinct hosts")
        if emb.min() < 0 or emb.max() >= oracle.n:
            raise ValueError("embedding refers to a host outside the oracle")
        self.oracle = oracle
        self.embedding = emb
        self.n_slots = int(emb.size)
        self._adj: list[set[int]] = [set() for _ in range(self.n_slots)]
        self._n_edges = 0
        # Version counters let cached views (edge arrays for the
        # vectorized flooding model) invalidate themselves lazily.
        self.topology_version = 0
        self.embedding_version = 0
        self._edge_cache: tuple[int, np.ndarray, np.ndarray] | None = None

    # -- construction ----------------------------------------------------

    def add_edge(self, a: int, b: int) -> None:
        """Insert undirected logical edge (a, b)."""
        self._check_slot(a)
        self._check_slot(b)
        if a == b:
            raise ValueError(f"self-loop at slot {a}")
        if b in self._adj[a]:
            raise ValueError(f"duplicate edge ({a}, {b})")
        self._adj[a].add(b)
        self._adj[b].add(a)
        self._n_edges += 1
        self.topology_version += 1

    def remove_edge(self, a: int, b: int) -> None:
        """Delete undirected logical edge (a, b)."""
        if b not in self._adj[a]:
            raise ValueError(f"edge ({a}, {b}) not present")
        self._adj[a].discard(b)
        self._adj[b].discard(a)
        self._n_edges -= 1
        self.topology_version += 1

    def has_edge(self, a: int, b: int) -> bool:
        return b in self._adj[a]

    # -- queries -----------------------------------------------------------

    @property
    def n_edges(self) -> int:
        return self._n_edges

    def neighbors(self, slot: int) -> frozenset[int]:
        """Neighbor set of ``slot`` (immutable snapshot view)."""
        return frozenset(self._adj[slot])

    def neighbor_list(self, slot: int) -> list[int]:
        """Neighbors of ``slot`` as a sorted list.

        Deterministic order is load-bearing: this list feeds walk
        forwarding draws, PROP-O candidate ranking, and queue
        synchronization, so set-iteration order must never reach a
        protocol decision (reprolint rule D3).
        """
        return sorted(self._adj[slot])

    def degree(self, slot: int) -> int:
        return len(self._adj[slot])

    def degree_sequence(self) -> np.ndarray:
        return np.asarray([len(s) for s in self._adj], dtype=np.int64)

    def min_degree(self) -> int:
        """δ(G) — the default PROP-O exchange size ``m``."""
        return int(min(len(s) for s in self._adj))

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield each undirected edge once as (a, b) with a < b."""
        for a, nbrs in enumerate(self._adj):
            for b in nbrs:
                if a < b:
                    yield (a, b)

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Edges as parallel (u, v) arrays, cached per topology version."""
        cache = self._edge_cache
        if cache is not None and cache[0] == self.topology_version:
            return cache[1], cache[2]
        if self._n_edges:
            pairs = np.fromiter(
                (x for e in self.iter_edges() for x in e),
                dtype=np.intp,
                count=2 * self._n_edges,
            ).reshape(-1, 2)
            u, v = pairs[:, 0].copy(), pairs[:, 1].copy()
        else:
            u = np.empty(0, dtype=np.intp)
            v = np.empty(0, dtype=np.intp)
        self._edge_cache = (self.topology_version, u, v)
        return u, v

    # -- latency -----------------------------------------------------------

    def latency(self, a: int, b: int) -> float:
        """Physical latency (ms) between the hosts at slots ``a`` and ``b``."""
        emb = self.embedding
        return self.oracle.between(int(emb[a]), int(emb[b]))

    def latencies_from(self, slot: int, others: Iterable[int]) -> np.ndarray:
        """Vector of latencies from ``slot`` to each slot in ``others``."""
        others = np.asarray(list(others), dtype=np.intp)
        if others.size == 0:
            return np.empty(0, dtype=np.float64)
        emb = self.embedding
        return self.oracle.to_many(int(emb[slot]), emb[others])

    def neighbor_latency_sum(self, slot: int) -> float:
        """``sum_{i in N(slot)} d(slot, i)`` — the Var building block."""
        nbrs = self._adj[slot]
        if not nbrs:
            return 0.0
        emb = self.embedding
        # order-independent: commutative sum over one oracle row; per-run
        # order is fixed by the (seed-determined) edge insertion history
        idx = np.fromiter(nbrs, dtype=np.intp, count=len(nbrs))  # reprolint: disable=D3
        return self.oracle.sum_to(int(emb[slot]), emb[idx])

    def mean_logical_edge_latency(self) -> float:
        """Mean latency over logical edges — the stretch numerator."""
        if self._n_edges == 0:
            return 0.0
        u, v = self.edge_arrays()
        emb = self.embedding
        return float(self.oracle.pairwise(emb[u], emb[v]).mean())

    def total_neighbor_latency(self) -> float:
        """``sum_slots sum_{i in N(slot)} d(slot, i)`` (each edge twice).

        The monotone objective PROP descends: every accepted exchange
        strictly reduces this quantity (Section 4.2 of the paper).
        """
        if self._n_edges == 0:
            return 0.0
        u, v = self.edge_arrays()
        emb = self.embedding
        return 2.0 * float(self.oracle.pairwise(emb[u], emb[v]).sum())

    # -- mutation primitives used by PROP ---------------------------------

    def swap_embedding(self, a: int, b: int) -> None:
        """PROP-G primitive: the hosts at slots ``a`` and ``b`` trade places."""
        self._check_slot(a)
        self._check_slot(b)
        emb = self.embedding
        emb[a], emb[b] = emb[b], emb[a]
        self.embedding_version += 1

    def rewire(self, old_a: int, old_b: int, new_a: int, new_b: int) -> None:
        """Single cut-add: remove edge (old_a, old_b), insert (new_a, new_b)."""
        self.remove_edge(old_a, old_b)
        self.add_edge(new_a, new_b)

    def replace_host(self, slot: int, host: int) -> int:
        """Churn primitive: a new host takes over ``slot``; returns the
        departed host.  The logical graph is untouched — this is the
        leave-plus-join composition of the churn model (DESIGN.md §5)."""
        self._check_slot(slot)
        host = int(host)
        if not 0 <= host < self.oracle.n:
            raise ValueError(f"host {host} outside the oracle")
        departed = int(self.embedding[slot])
        if host != departed and bool(np.any(self.embedding == host)):
            raise ValueError(f"host {host} already occupies a slot")
        self.embedding[slot] = host
        self.embedding_version += 1
        return departed

    def host_at(self, slot: int) -> int:
        """Member-host index occupying ``slot``."""
        return int(self.embedding[slot])

    def exchange_compatible(self, u: int, v: int, policy: str) -> bool:
        """May slots ``u`` and ``v`` peer-exchange under ``policy``?

        Overlays with per-slot structure constraints override this —
        e.g. the two-tier Gnutella restricts PROP-O trades to same-role
        pairs so leaf/ultrapeer invariants survive.  The engine treats an
        incompatible probe as a failed attempt.
        """
        return True

    def slot_of_host(self) -> np.ndarray:
        """Inverse embedding: ``result[host] = slot`` (-1 if host unused)."""
        inv = np.full(self.oracle.n, -1, dtype=np.intp)
        inv[self.embedding] = np.arange(self.n_slots, dtype=np.intp)
        return inv

    # -- structural membership (join/leave extensions) -----------------------

    def append_slot(self, host: int) -> int:
        """Add a new, initially isolated slot occupied by ``host``.

        Used by overlay-level join operations; the caller wires the new
        slot's edges afterwards.  Returns the new slot index.
        """
        host = int(host)
        if not 0 <= host < self.oracle.n:
            raise ValueError(f"host {host} outside the oracle")
        if np.any(self.embedding == host):
            raise ValueError(f"host {host} already occupies a slot")
        self.embedding = np.append(self.embedding, np.intp(host))
        self._adj.append(set())
        self.n_slots += 1
        self.topology_version += 1
        self.embedding_version += 1
        return self.n_slots - 1

    def pop_slot(self, slot: int) -> int:
        """Remove ``slot`` entirely, returning the host that occupied it.

        The slot must be isolated (callers cut or patch its edges first —
        see :meth:`GnutellaOverlay.leave`).  The last slot is renumbered
        into the vacated index, so callers holding slot references must
        treat this as invalidating them (the same contract as
        ``list.pop`` with swap-remove).
        """
        self._check_slot(slot)
        if self._adj[slot]:
            raise ValueError(f"slot {slot} still has {len(self._adj[slot])} edges")
        host = int(self.embedding[slot])
        last = self.n_slots - 1
        if slot != last:
            # move the last slot into the hole, rewriting its edges
            for nbr in sorted(self._adj[last]):
                self._adj[nbr].discard(last)
                self._adj[nbr].add(slot)
            self._adj[slot] = self._adj[last]
            self.embedding[slot] = self.embedding[last]
        self._adj.pop()
        self.embedding = self.embedding[:last]
        self.n_slots = last
        self.topology_version += 1
        self.embedding_version += 1
        return host

    # -- views / export ------------------------------------------------------

    def to_networkx(self) -> nx.Graph:
        """Logical graph as a :class:`networkx.Graph` (slots as nodes)."""
        g = nx.Graph()
        g.add_nodes_from(range(self.n_slots))
        g.add_edges_from(self.iter_edges())
        return g

    def is_connected(self) -> bool:
        """BFS connectivity check on the logical graph."""
        if self.n_slots == 0:
            return True
        seen = bytearray(self.n_slots)
        stack = [0]
        seen[0] = 1
        count = 1
        adj = self._adj
        while stack:
            x = stack.pop()
            # order-independent: BFS reachability count, no decision made
            for y in adj[x]:  # reprolint: disable=D3
                if not seen[y]:
                    seen[y] = 1
                    count += 1
                    stack.append(y)
        return count == self.n_slots

    def copy(self) -> "Overlay":
        """Deep copy sharing the oracle (cheap: only graph + embedding)."""
        clone = Overlay(self.oracle, self.embedding.copy())
        clone._adj = [set(s) for s in self._adj]
        clone._n_edges = self._n_edges
        return clone

    # -- internals ----------------------------------------------------------

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.n_slots:
            raise IndexError(f"slot {slot} out of range [0, {self.n_slots})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n_slots={self.n_slots}, n_edges={self._n_edges})"
