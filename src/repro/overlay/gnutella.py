"""Gnutella-like unstructured overlay.

First-generation file-sharing systems (Gnutella, Kazaa) build an
unconstrained random graph and locate objects by TTL-scoped flooding.
This module provides:

* :meth:`GnutellaOverlay.build` — a connected random graph with a
  heavy-tailed degree distribution and a guaranteed minimum degree.  When
  per-host capacities are supplied, powerful hosts receive proportionally
  more connections, reproducing the measured power-law-like character of
  the real Gnutella network (Ripeanu et al.) that the paper's PROP-O
  analysis leans on ("powerful nodes own more connections").
* a flooding lookup-latency model: the latency of a flooded query is the
  latency of the fastest path from querier to target within the flood
  scope, optionally adding per-node processing delays (the Fig. 7
  heterogeneity experiment).  Exact min-latency paths are computed with
  Dijkstra (scipy, C speed); a hop-bounded Bellman-Ford variant models
  small TTLs faithfully.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from repro.overlay.base import Overlay
from repro.topology.latency import LatencyOracle

__all__ = ["GnutellaOverlay"]


class GnutellaOverlay(Overlay):
    """Unstructured overlay with flooding-based lookups."""

    DEFAULT_TTL = 7

    @classmethod
    def build(
        cls,
        oracle: LatencyOracle,
        rng: np.random.Generator,
        *,
        min_degree: int = 4,
        mean_extra_degree: float = 2.0,
        capacity_weight: np.ndarray | None = None,
        embedding: np.ndarray | None = None,
    ) -> "GnutellaOverlay":
        """Construct a connected unstructured overlay over all oracle members.

        Parameters
        ----------
        min_degree:
            Hard lower bound on every node's degree (paper experiments use
            δ(G) = 4 as the default PROP-O exchange size).
        mean_extra_degree:
            Mean of the geometric surplus degree on top of ``min_degree``
            — the heavy-ish tail.
        capacity_weight:
            Optional per-*slot* positive weights; higher-weight slots
            attract proportionally more surplus edges (fast nodes become
            hubs).  Length must equal the member count.
        embedding:
            Optional explicit slot->host mapping; defaults to identity
            (slot i is host i), matching "a new node randomly chooses some
            existing nodes … as its logical neighbors" since hosts are
            already a random sample of the physical network.
        """
        n = oracle.n if embedding is None else len(embedding)
        if n < min_degree + 1:
            raise ValueError(f"need more than min_degree+1={min_degree + 1} nodes, got {n}")
        if embedding is None:
            embedding = np.arange(n, dtype=np.intp)
        ov = cls(oracle, embedding)

        # Target surplus degrees: geometric tail, scaled by capacity.
        surplus = rng.geometric(1.0 / (1.0 + mean_extra_degree), size=n) - 1
        if capacity_weight is not None:
            w = np.asarray(capacity_weight, dtype=np.float64)
            if w.shape != (n,) or np.any(w <= 0):
                raise ValueError("capacity_weight must be positive with one entry per slot")
            scale = w / w.mean()
            surplus = np.rint(surplus * scale).astype(np.int64)
        target = np.maximum(min_degree, min_degree + surplus)

        # 1. Random attachment tree => connected.
        order = rng.permutation(n)
        for i in range(1, n):
            a = int(order[i])
            b = int(order[rng.integers(0, i)])
            ov.add_edge(a, b)

        # 2. Fill remaining stubs by weighted random pairing.
        deficit = target - ov.degree_sequence()
        stubs: list[int] = [s for s in range(n) for _ in range(max(0, int(deficit[s])))]
        rng.shuffle(stubs)
        misses = 0
        while len(stubs) >= 2 and misses < 10 * n:
            a = stubs.pop()
            b = stubs.pop()
            if a == b or ov.has_edge(a, b):
                stubs.extend((a, b))
                rng.shuffle(stubs)
                misses += 1
                continue
            ov.add_edge(a, b)

        # 3. Top up any node still under min_degree.
        for s in range(n):
            guard = 0
            while ov.degree(s) < min_degree and guard < 10 * n:
                t = int(rng.integers(0, n))
                if t != s and not ov.has_edge(s, t):
                    ov.add_edge(s, t)
                guard += 1
            if ov.degree(s) < min_degree:
                raise RuntimeError(f"could not reach min_degree at slot {s}")
        return ov

    # -- structural membership ---------------------------------------------

    def join(self, host: int, rng: np.random.Generator, *, degree: int | None = None) -> int:
        """A new host joins, connecting to random existing peers.

        Mirrors the paper's description of unstructured joins ("a new
        node randomly chooses some existing nodes of the system as its
        logical neighbors").  ``degree`` defaults to the overlay's
        current minimum degree.  Returns the new slot.
        """
        if degree is None:
            degree = self.min_degree()
        if not 1 <= degree <= self.n_slots:
            raise ValueError(f"degree must be in [1, {self.n_slots}], got {degree}")
        slot = self.append_slot(host)
        peers = rng.choice(slot, size=degree, replace=False)
        for p in peers:
            self.add_edge(slot, int(p))
        return slot

    def leave(self, slot: int) -> int:
        """A peer departs gracefully, handing its neighbors to each other.

        Connectivity is preserved by chaining the departing peer's
        neighbors (n1-n2, n2-n3, …) where not already adjacent — the
        standard unstructured-overlay repair.  Returns the departed
        host.  Note the swap-remove renumbering contract of
        :meth:`Overlay.pop_slot`.
        """
        nbrs = sorted(self._adj[slot])
        for a, b in zip(nbrs, nbrs[1:]):
            if not self.has_edge(a, b):
                self.add_edge(a, b)
        for x in sorted(self._adj[slot]):
            self.remove_edge(slot, x)
        return self.pop_slot(slot)

    # -- flooding lookup model -------------------------------------------

    def _directed_weights(
        self, node_delay: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Directed edge list (tail, head, weight) of the logical graph.

        ``weight(u -> v) = d(u, v) + node_delay[v]``: a query forwarded to
        ``v`` pays the link latency plus ``v``'s processing delay.  The
        querier's own processing is not charged (it issues, not forwards).
        ``node_delay`` is indexed by *slot*.
        """
        u, v = self.edge_arrays()
        emb = self.embedding
        w = self.oracle.pairwise(emb[u], emb[v])
        tails = np.concatenate([u, v])
        heads = np.concatenate([v, u])
        weights = np.concatenate([w, w])
        if node_delay is not None:
            nd = np.asarray(node_delay, dtype=np.float64)
            if nd.shape != (self.n_slots,):
                raise ValueError("node_delay must have one entry per slot")
            weights = weights + nd[heads]
        return tails, heads, weights

    def lookup_latency_matrix(
        self,
        sources: np.ndarray | list[int],
        node_delay: np.ndarray | None = None,
        ttl: int | None = None,
    ) -> np.ndarray:
        """Min lookup latency from each source slot to every slot.

        Returns a ``(len(sources), n_slots)`` matrix.  With ``ttl=None``
        the flood scope is unbounded (exact Dijkstra — the regime of the
        paper's default TTL=7 floods, which reach the whole overlay at
        these sizes).  With an integer ``ttl`` a hop-bounded Bellman-Ford
        models small scopes exactly; unreached slots get ``inf``.
        """
        sources = np.asarray(sources, dtype=np.intp)
        tails, heads, weights = self._directed_weights(node_delay)
        if ttl is None:
            mat = sparse.coo_matrix(
                (weights, (tails, heads)), shape=(self.n_slots, self.n_slots)
            ).tocsr()
            return csgraph.dijkstra(mat, directed=True, indices=sources)
        if ttl < 0:
            raise ValueError(f"ttl must be >= 0, got {ttl}")
        dist = np.full((sources.size, self.n_slots), np.inf)
        dist[np.arange(sources.size), sources] = 0.0
        if tails.size == 0:
            return dist
        for _ in range(ttl):
            cand = dist[:, tails] + weights  # (k, 2E)
            new = dist.copy()
            np.minimum.at(new, (slice(None), heads), cand)
            if np.array_equal(new, dist):
                break
            dist = new
        return dist

    def lookup_latency(
        self,
        src: int,
        dst: int,
        node_delay: np.ndarray | None = None,
        ttl: int | None = None,
        charge_destination: bool = False,
    ) -> float:
        """Latency of one flooded lookup (``inf`` if out of flood scope).

        A lookup completes when the query first reaches the node holding
        the object, so the destination's own processing delay (object
        retrieval, not routing) is excluded unless ``charge_destination``.
        """
        val = float(self.lookup_latency_matrix([src], node_delay, ttl)[0, dst])
        if node_delay is not None and not charge_destination and src != dst and np.isfinite(val):
            val -= float(node_delay[dst])
        return val

    def mean_lookup_latency(
        self,
        pairs: np.ndarray,
        node_delay: np.ndarray | None = None,
        ttl: int | None = None,
        charge_destination: bool = False,
        retry_timeout: float | None = None,
    ) -> float:
        """Mean latency over ``pairs`` — rows of (src_slot, dst_slot).

        This is the paper's Gnutella metric ("the average lookup latency
        derived from … lookup operations").  Pairs sharing a source are
        batched into a single Dijkstra run.

        Lookups whose target lies outside the flood scope (finite ``ttl``
        only) do not complete on the first flood.  With ``retry_timeout``
        set, the querier re-floods at a larger scope after the timeout —
        Gnutella's expanding-ring requery — and the lookup costs
        ``retry_timeout`` plus the unbounded-flood latency.  Without it,
        failed lookups are simply excluded from the average (``inf`` if
        every lookup fails); use :meth:`lookup_success_rate` to observe
        the failure fraction.
        """
        vals = self._lookup_values(pairs, node_delay, ttl, charge_destination)
        failed = ~np.isfinite(vals)
        if retry_timeout is not None and ttl is not None and failed.any():
            retry = self._lookup_values(
                np.asarray(pairs)[failed], node_delay, None, charge_destination
            )
            vals = vals.copy()
            vals[failed] = retry_timeout + retry
        reached = vals[np.isfinite(vals)]
        if reached.size == 0:
            return float("inf")
        return float(np.mean(reached))

    def lookup_latencies(
        self,
        pairs: np.ndarray,
        node_delay: np.ndarray | None = None,
        ttl: int | None = None,
        charge_destination: bool = False,
    ) -> np.ndarray:
        """Per-lookup latency vector (``inf`` for out-of-scope targets).

        The distribution behind :meth:`mean_lookup_latency` — used for
        percentile reporting (tail latency is what heterogeneity hurts
        first).
        """
        return self._lookup_values(pairs, node_delay, ttl, charge_destination)

    def replica_lookup_latency(
        self,
        src: int,
        holders: np.ndarray | list[int],
        node_delay: np.ndarray | None = None,
        ttl: int | None = None,
        charge_destination: bool = False,
    ) -> float:
        """Latency of a flooded lookup for a *replicated* object.

        Real file-sharing queries succeed at the first replica the flood
        reaches: the latency is the minimum over the holder set.  Returns
        ``inf`` when no holder lies inside the flood scope; ``0`` when
        the querier holds the object itself.
        """
        holders = np.asarray(holders, dtype=np.intp)
        if holders.size == 0:
            raise ValueError("need at least one holder")
        if np.any(holders == src):
            return 0.0
        row = self.lookup_latency_matrix([src], node_delay, ttl)[0]
        vals = row[holders]
        if node_delay is not None and not charge_destination:
            vals = vals - np.asarray(node_delay, dtype=np.float64)[holders]
        return float(vals.min())

    def mean_replica_lookup_latency(
        self,
        queries: list[tuple[int, np.ndarray]],
        node_delay: np.ndarray | None = None,
        ttl: int | None = None,
    ) -> float:
        """Mean latency over (src, holder-set) queries; failures excluded.

        Failed lookups (no holder in scope) are excluded from the mean,
        matching :meth:`mean_lookup_latency`; all-failed returns ``inf``.
        """
        vals = np.array([
            self.replica_lookup_latency(src, holders, node_delay, ttl)
            for src, holders in queries
        ])
        reached = vals[np.isfinite(vals)]
        return float(reached.mean()) if reached.size else float("inf")

    def walk_search_latency(
        self,
        src: int,
        dst: int,
        rng: np.random.Generator,
        *,
        walkers: int = 16,
        max_steps: int = 128,
        node_delay: np.ndarray | None = None,
    ) -> float:
        """Latency of a k-walker random-walk search (extension).

        The successor of flooding in later unstructured systems: ``k``
        independent walkers step to uniform random neighbors; the search
        completes when the first walker reaches ``dst``.  Returns the
        first-arrival time, or ``inf`` when no walker finds the target
        within ``max_steps`` steps.  Walk searches trade the flood's
        message explosion for latency — and benefit from PROP exactly as
        floods do, since every step is a physical link crossing.
        """
        if walkers < 1 or max_steps < 1:
            raise ValueError("walkers and max_steps must be >= 1")
        if src == dst:
            return 0.0
        emb = self.embedding
        oracle = self.oracle
        best = np.inf
        for _ in range(walkers):
            t = 0.0
            cur = src
            for _ in range(max_steps):
                nbrs = self._adj[cur]
                if not nbrs:
                    break
                nxt = self.neighbor_list(cur)[int(rng.integers(0, len(nbrs)))]
                t += oracle.between(int(emb[cur]), int(emb[nxt]))
                cur = nxt
                if cur == dst:
                    best = min(best, t)
                    break
                # destination processing excluded (same convention as
                # flooding lookups); forwarders pay theirs
                if node_delay is not None:
                    t += float(node_delay[cur])
                if t >= best:
                    break  # this walker can no longer win
        return best

    def flood_traffic(self, src: int, ttl: int) -> int:
        """Message count of one TTL-scoped flood from ``src``.

        Gnutella flooding: every node that receives the query with
        remaining TTL forwards it to all neighbors except the sender, so
        the message count is ``deg(src)`` plus ``deg(v) - 1`` for every
        node ``v`` reached at hop distance ``1 <= d < ttl``.  This is
        LTM's original cost metric ("reduce … unnecessary traffic");
        note it depends only on the logical topology, so PROP-G leaves
        it exactly unchanged while LTM's cuts reduce it.
        """
        if ttl < 1:
            raise ValueError(f"ttl must be >= 1, got {ttl}")
        from repro.metrics.graphstats import hop_distance_matrix

        hops = hop_distance_matrix(self, np.array([src]))[0]
        deg = self.degree_sequence()
        total = int(deg[src])
        forwarders = np.flatnonzero((hops >= 1) & (hops < ttl))
        total += int((deg[forwarders] - 1).sum())
        return total

    def lookup_success_rate(
        self,
        pairs: np.ndarray,
        ttl: int | None = None,
    ) -> float:
        """Fraction of lookups whose target lies inside the flood scope."""
        vals = self._lookup_values(pairs, None, ttl, True)
        return float(np.mean(np.isfinite(vals)))

    def _lookup_values(
        self,
        pairs: np.ndarray,
        node_delay: np.ndarray | None,
        ttl: int | None,
        charge_destination: bool,
    ) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.intp)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("pairs must be an (k, 2) array of (src, dst) slots")
        srcs, inverse = np.unique(pairs[:, 0], return_inverse=True)
        mat = self.lookup_latency_matrix(srcs, node_delay, ttl)
        vals = mat[inverse, pairs[:, 1]]
        if node_delay is not None and not charge_destination:
            vals = vals - np.asarray(node_delay, dtype=np.float64)[pairs[:, 1]]
        return vals

    def copy(self) -> "GnutellaOverlay":
        clone = GnutellaOverlay(self.oracle, self.embedding.copy())
        clone._adj = [set(s) for s in self._adj]
        clone._n_edges = self._n_edges
        return clone
