"""Chord DHT overlay.

A from-scratch Chord (Stoica et al., SIGCOMM'01) simulator: circular
identifier space of size ``2**bits``, per-node finger tables pointing at
``successor(id + 2^k)``, successor/predecessor links, and the standard
greedy closest-preceding-finger lookup.

Representation: slots are stored in **ring order** (slot ``i`` holds the
``i``-th smallest identifier), so the successor of slot ``i`` is simply
``(i + 1) % n``.  The logical graph (fingers + successor + predecessor,
taken as undirected edges — the paper's "routing tables extended to
record both successor nodes and predecessor ones") is a pure function of
the identifier set and never changes; PROP-G swaps which *host* owns
which identifier via the embedding, exactly the paper's "exchange node
identifiers" operation.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.overlay.base import Overlay
from repro.overlay.ids import unique_ids
from repro.topology.latency import LatencyOracle

__all__ = ["ChordOverlay"]


class ChordOverlay(Overlay):
    """Chord ring with finger tables over a latency oracle."""

    supports_rewiring = False  # edges are a function of the identifier set

    def __init__(
        self,
        oracle: LatencyOracle,
        embedding: np.ndarray,
        ids: np.ndarray,
        bits: int,
    ) -> None:
        super().__init__(oracle, embedding)
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape != (self.n_slots,):
            raise ValueError("need exactly one id per slot")
        if np.any(np.diff(ids) <= 0):
            raise ValueError("ids must be strictly increasing in slot order")
        if ids.min() < 0 or ids.max() >= (1 << bits):
            raise ValueError("id out of identifier space")
        self.ids = ids
        self.bits = int(bits)
        self.space = 1 << bits
        # fingers[i]: distinct finger target slots of slot i, sorted by
        # clockwise id-distance from i (ascending).  Includes the
        # successor (finger 0).
        self.fingers: list[list[int]] = []
        self._build_fingers()
        self._build_edges()

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        oracle: LatencyOracle,
        rng: np.random.Generator,
        *,
        bits: int | None = None,
        embedding: np.ndarray | None = None,
    ) -> "ChordOverlay":
        """Build a Chord ring over all oracle members with random ids.

        The hash-based identifier assignment is modelled by drawing
        distinct uniform ids and a random slot->host embedding — ids
        carry no physical locality, which is precisely the mismatch
        PROP repairs.
        """
        n = oracle.n if embedding is None else len(embedding)
        if bits is None:
            bits = max(16, int(np.ceil(np.log2(max(n, 2)))) + 4)
        ids = np.sort(unique_ids(n, bits, rng))
        if embedding is None:
            embedding = rng.permutation(n).astype(np.intp)
        return cls(oracle, embedding, ids, bits)

    def _successor_index_of_id(self, key: int) -> int:
        """Slot owning ``key``: the first slot with id >= key (cyclic)."""
        i = bisect.bisect_left(self.ids, key % self.space)
        return i % self.n_slots

    def _build_fingers(self) -> None:
        n = self.n_slots
        ids = self.ids
        self.fingers = []
        for i in range(n):
            targets: list[int] = []
            seen: set[int] = set()
            for k in range(self.bits):
                start = (int(ids[i]) + (1 << k)) % self.space
                j = self._successor_index_of_id(start)
                if j != i and j not in seen:
                    seen.add(j)
                    targets.append(j)
            # sort by clockwise distance so closest-preceding scans can
            # walk from the farthest finger backwards
            targets.sort(key=lambda j: (int(ids[j]) - int(ids[i])) % self.space)
            self.fingers.append(targets)

    def _build_edges(self) -> None:
        for i, targets in enumerate(self.fingers):
            for j in targets:
                if not self.has_edge(i, j):
                    self.add_edge(i, j)
        # successor links are finger 0 and therefore already present for
        # n >= 2; predecessor links are the reverse direction of the
        # successor's finger and come in via undirectedness.

    # -- routing ------------------------------------------------------------

    def successor_slot(self, slot: int) -> int:
        return (slot + 1) % self.n_slots

    def predecessor_slot(self, slot: int) -> int:
        return (slot - 1) % self.n_slots

    def owner_of_key(self, key: int) -> int:
        """Slot responsible for ``key`` (its successor on the ring)."""
        return self._successor_index_of_id(key)

    def _cw(self, from_id: int, to_id: int) -> int:
        return (to_id - from_id) % self.space

    def route(self, src: int, key: int) -> list[int]:
        """Greedy Chord lookup path from slot ``src`` to the owner of ``key``.

        Returns the slot path including both endpoints.  Uses the classic
        algorithm: hop to the successor when the key falls in
        ``(id, id_successor]``, otherwise to the closest preceding finger.
        """
        key = key % self.space
        dest = self.owner_of_key(key)
        path = [src]
        cur = src
        hops_guard = 4 * self.n_slots
        while cur != dest:
            ids = self.ids
            cur_id = int(ids[cur])
            key_cw = self._cw(cur_id, key)
            succ = self.successor_slot(cur)
            if self._cw(cur_id, int(ids[succ])) >= key_cw:
                # key lies in (cur, successor] so the successor owns it
                nxt = succ
            else:
                nxt = succ
                # scan fingers from farthest: first one strictly inside
                # (cur_id, key) wins
                for j in reversed(self.fingers[cur]):
                    if 0 < self._cw(cur_id, int(ids[j])) < key_cw:
                        nxt = j
                        break
            path.append(nxt)
            cur = nxt
            hops_guard -= 1
            if hops_guard <= 0:
                raise RuntimeError("Chord routing failed to converge")
        return path

    # -- structural membership (join/leave extension) ----------------------

    def with_join(self, host: int, node_id: int) -> "ChordOverlay":
        """A new ring with ``host`` joined under identifier ``node_id``.

        Chord's join semantics: the newcomer takes over the key range
        ``(predecessor_id, node_id]`` from the current owner of
        ``node_id``; every other host keeps its identifier.  Slots are
        ring positions, so joining shifts slot indices at and after the
        insertion point — the returned overlay is a *new* object (the
        O(n·bits) finger rebuild is the honest cost of a join in a
        static-snapshot simulator; deployed Chord amortizes it through
        stabilization).
        """
        host = int(host)
        node_id = int(node_id) % self.space
        if np.any(self.embedding == host):
            raise ValueError(f"host {host} already in the ring")
        if node_id in set(self.ids.tolist()):
            raise ValueError(f"identifier {node_id} already taken")
        pos = int(np.searchsorted(self.ids, node_id))
        new_ids = np.insert(self.ids, pos, node_id)
        new_emb = np.insert(self.embedding, pos, host)
        return ChordOverlay(self.oracle, new_emb, new_ids, self.bits)

    def with_leave(self, slot: int) -> "ChordOverlay":
        """A new ring without ``slot``; its keys pass to the successor.

        Raises when only two nodes remain (a one-node "ring" owns
        everything trivially but has no overlay left to simulate).
        """
        self._check_slot(slot)
        if self.n_slots <= 2:
            raise ValueError("cannot shrink below two nodes")
        new_ids = np.delete(self.ids, slot)
        new_emb = np.delete(self.embedding, slot)
        return ChordOverlay(self.oracle, new_emb, new_ids, self.bits)

    # -- failure-aware routing (successor-list extension) -----------------

    def successor_list(self, slot: int, size: int) -> list[int]:
        """The next ``size`` slots clockwise — Chord's successor list.

        Real deployments keep this list for fault tolerance ("most
        structured systems selectively record several predecessor
        nodes … to improve fault resilience", Section 3.2); routing can
        skip a dead successor by jumping to the next list entry.
        """
        if not 1 <= size < self.n_slots:
            raise ValueError(f"size must be in [1, {self.n_slots}), got {size}")
        return [(slot + k) % self.n_slots for k in range(1, size + 1)]

    def owner_of_key_alive(self, key: int, alive: np.ndarray) -> int:
        """First *alive* slot at or after ``key`` (its surviving owner)."""
        start = self._successor_index_of_id(key)
        n = self.n_slots
        for off in range(n):
            cand = (start + off) % n
            if alive[cand]:
                return cand
        raise RuntimeError("no alive slot in the ring")

    def route_with_failures(
        self,
        src: int,
        key: int,
        alive: np.ndarray,
        *,
        successor_list_size: int = 8,
    ) -> list[int]:
        """Greedy lookup that skips failed nodes.

        ``alive`` is a boolean mask per slot; ``src`` must be alive.  At
        each step the farthest *alive* finger strictly preceding the key
        is taken; when no finger helps, the successor list is scanned
        for the first alive entry.  Raises :class:`RuntimeError` when a
        node's entire successor list is dead (the standard Chord failure
        condition).
        """
        alive = np.asarray(alive, dtype=bool)
        if alive.shape != (self.n_slots,):
            raise ValueError("alive mask must have one entry per slot")
        if not alive[src]:
            raise ValueError(f"source slot {src} is not alive")
        key = key % self.space
        dest = self.owner_of_key_alive(key, alive)
        ids = self.ids
        path = [src]
        cur = src
        guard = 4 * self.n_slots
        while cur != dest:
            cur_id = int(ids[cur])
            key_cw = self._cw(cur_id, key)
            nxt = None
            for j in reversed(self.fingers[cur]):
                if alive[j] and 0 < self._cw(cur_id, int(ids[j])) < key_cw:
                    nxt = j
                    break
            if nxt is None:
                for j in self.successor_list(cur, min(successor_list_size, self.n_slots - 1)):
                    if alive[j]:
                        nxt = j
                        break
            if nxt is None:
                raise RuntimeError(
                    f"slot {cur}: entire successor list dead — ring broken"
                )
            path.append(nxt)
            cur = nxt
            guard -= 1
            if guard <= 0:
                raise RuntimeError("failure-aware routing failed to converge")
        return path

    def path_latency(self, path: list[int], node_delay: np.ndarray | None = None) -> float:
        """Latency of a slot path: link latencies plus processing delays.

        ``node_delay`` (per slot) is charged at every node that receives
        the message, i.e. all path members except the source.
        """
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self.latency(a, b)
        if node_delay is not None:
            for s in path[1:]:
                total += float(node_delay[s])
        return total

    def lookup_latency(self, src: int, key: int, node_delay: np.ndarray | None = None) -> float:
        """End-to-end latency of a lookup for ``key`` issued at ``src``."""
        return self.path_latency(self.route(src, key), node_delay)

    def lookup_latencies(
        self,
        queries: np.ndarray,
        node_delay: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-lookup latency vector over (src_slot, key) rows."""
        queries = np.asarray(queries)
        if queries.ndim != 2 or queries.shape[1] != 2:
            raise ValueError("queries must be (k, 2) rows of (src, key)")
        out = np.empty(len(queries))
        for i, (src, key) in enumerate(queries):
            out[i] = self.lookup_latency(int(src), int(key), node_delay)
        return out

    def mean_lookup_latency(
        self,
        queries: np.ndarray,
        node_delay: np.ndarray | None = None,
    ) -> float:
        """Mean lookup latency over ``queries`` — rows of (src_slot, key)."""
        return float(self.lookup_latencies(queries, node_delay).mean())

    def copy(self) -> "ChordOverlay":
        clone = ChordOverlay.__new__(ChordOverlay)
        Overlay.__init__(clone, self.oracle, self.embedding.copy())
        clone.ids = self.ids
        clone.bits = self.bits
        clone.space = self.space
        clone.fingers = self.fingers
        clone._adj = [set(s) for s in self._adj]
        clone._n_edges = self._n_edges
        return clone
