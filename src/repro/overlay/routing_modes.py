"""Recursive vs iterative DHT lookup latency.

Deployed DHTs route in one of two styles (the distinction Dabek et al.,
NSDI'04 — the paper's reference [6] — analyzes):

* **recursive** — the query is forwarded hop by hop; total latency is
  the sum of the inter-hop link latencies (plus processing at each
  receiver).  This is the default everywhere in this library.
* **iterative** — the *querier* contacts each routing step directly and
  waits for the answer before the next step: every intermediate step
  costs a round trip querier<->node, and the final step one way to the
  owner.  Iterative lookups are easier to secure and debug but pay much
  more latency on mismatched topologies — which makes location-aware
  placement matter even more.

Both functions take a slot path as produced by the overlays' ``route``
methods.
"""

from __future__ import annotations

import numpy as np

from repro.overlay.base import Overlay

__all__ = ["recursive_path_latency", "iterative_path_latency"]


def recursive_path_latency(
    overlay: Overlay,
    path: list[int],
    node_delay: np.ndarray | None = None,
) -> float:
    """Hop-by-hop forwarding: sum of link latencies along the path."""
    total = 0.0
    for a, b in zip(path, path[1:]):
        total += overlay.latency(a, b)
    if node_delay is not None:
        for s in path[1:]:
            total += float(node_delay[s])
    return total


def iterative_path_latency(
    overlay: Overlay,
    path: list[int],
    node_delay: np.ndarray | None = None,
) -> float:
    """Querier-driven stepping: RTT to every intermediate, one way to the end.

    ``path[0]`` is the querier.  Each node contacted pays its processing
    delay once (it must handle the request before answering).
    """
    if len(path) < 2:
        return 0.0
    src = path[0]
    total = 0.0
    for s in path[1:-1]:
        total += 2.0 * overlay.latency(src, s)
    total += overlay.latency(src, path[-1])
    if node_delay is not None:
        for s in path[1:]:
            total += float(node_delay[s])
    return total
