"""Two-tier (ultrapeer/leaf) Gnutella overlay — the deployed 0.6 design.

Modern unstructured networks are not flat: a minority of capable nodes
("ultrapeers") form the flooding mesh, while the majority ("leaves")
hang off a few ultrapeers and never forward queries.  The paper's flat
Gnutella is the 0.4 design; this extension checks that PROP's story
survives the architecture that actually shipped:

* **PROP-O** trades edges between position-compatible peers; roles are
  properties of the *position* here, so degree- and role-structure are
  preserved by construction.
* **PROP-G** swaps hosts across positions — including a slow host into
  an ultrapeer position, the structural version of the Fig. 7 capacity
  mismatch.

Flooding is restricted to the ultrapeer mesh: a query starts at any
node, but only ultrapeers forward.  The lookup model mirrors
:class:`~repro.overlay.gnutella.GnutellaOverlay` with that forwarding
restriction.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from repro.overlay.gnutella import GnutellaOverlay
from repro.topology.latency import LatencyOracle

__all__ = ["UltrapeerGnutellaOverlay"]

ROLE_LEAF = 0
ROLE_ULTRAPEER = 1


class UltrapeerGnutellaOverlay(GnutellaOverlay):
    """Gnutella 0.6: ultrapeer mesh plus leaf attachments."""

    def __init__(self, oracle: LatencyOracle, embedding: np.ndarray, roles: np.ndarray) -> None:
        super().__init__(oracle, embedding)
        roles = np.asarray(roles, dtype=np.int8)
        if roles.shape != (self.n_slots,):
            raise ValueError("need exactly one role per slot")
        if not np.all(np.isin(roles, (ROLE_LEAF, ROLE_ULTRAPEER))):
            raise ValueError("roles must be ROLE_LEAF or ROLE_ULTRAPEER")
        if int((roles == ROLE_ULTRAPEER).sum()) < 2:
            raise ValueError("need at least two ultrapeers")
        self.roles = roles

    @classmethod
    def build_two_tier(
        cls,
        oracle: LatencyOracle,
        rng: np.random.Generator,
        *,
        ultrapeer_fraction: float = 0.2,
        ultrapeer_min_degree: int = 4,
        ultrapeer_mean_extra: float = 3.0,
        leaf_degree: int = 2,
        capacity_weight: np.ndarray | None = None,
        embedding: np.ndarray | None = None,
    ) -> "UltrapeerGnutellaOverlay":
        """Build the two-tier overlay.

        Ultrapeer *positions* are chosen by capacity when
        ``capacity_weight`` (per slot) is given — the highest-capacity
        slots become ultrapeers, matching deployed election — otherwise
        uniformly at random.  Every leaf attaches to ``leaf_degree``
        distinct ultrapeers.
        """
        n = oracle.n if embedding is None else len(embedding)
        if embedding is None:
            embedding = np.arange(n, dtype=np.intp)
        n_up = max(2, int(round(ultrapeer_fraction * n)))
        if not 0.0 < ultrapeer_fraction < 1.0:
            raise ValueError("ultrapeer_fraction must be in (0, 1)")
        if not 1 <= leaf_degree <= n_up:
            raise ValueError(f"leaf_degree must be in [1, {n_up}]")

        roles = np.full(n, ROLE_LEAF, dtype=np.int8)
        if capacity_weight is not None:
            w = np.asarray(capacity_weight, dtype=np.float64)
            if w.shape != (n,):
                raise ValueError("capacity_weight must have one entry per slot")
            ups = np.argsort(w)[::-1][:n_up]
        else:
            ups = rng.choice(n, size=n_up, replace=False)
        roles[ups] = ROLE_ULTRAPEER

        ov = cls(oracle, np.asarray(embedding, dtype=np.intp), roles)

        # ultrapeer mesh: random attachment tree + geometric surplus
        ups = np.flatnonzero(roles == ROLE_ULTRAPEER)
        order = rng.permutation(ups)
        for i in range(1, len(order)):
            ov.add_edge(int(order[i]), int(order[rng.integers(0, i)]))
        surplus = rng.geometric(1.0 / (1.0 + ultrapeer_mean_extra), size=len(ups)) - 1
        target = np.maximum(ultrapeer_min_degree, ultrapeer_min_degree + surplus)
        for idx, u in enumerate(ups):
            guard = 0
            while ov.degree(int(u)) < target[idx] and guard < 10 * len(ups):
                v = int(rng.choice(ups))
                if v != u and not ov.has_edge(int(u), v):
                    ov.add_edge(int(u), v)
                guard += 1

        # leaves attach to leaf_degree distinct ultrapeers
        for leaf in np.flatnonzero(roles == ROLE_LEAF):
            chosen = rng.choice(ups, size=leaf_degree, replace=False)
            for u in chosen:
                ov.add_edge(int(leaf), int(u))
        return ov

    # -- role views -------------------------------------------------------

    @property
    def ultrapeer_slots(self) -> np.ndarray:
        return np.flatnonzero(self.roles == ROLE_ULTRAPEER)

    @property
    def leaf_slots(self) -> np.ndarray:
        return np.flatnonzero(self.roles == ROLE_LEAF)

    def is_ultrapeer(self, slot: int) -> bool:
        return bool(self.roles[slot] == ROLE_ULTRAPEER)

    def exchange_compatible(self, u: int, v: int, policy: str) -> bool:
        """PROP-O trades must stay within one role.

        A same-role trade can only move edges whose role signature
        already exists (leaf-ultra or ultra-ultra); a cross-role trade
        could hand a leaf another leaf as neighbor.  PROP-G swaps
        positions wholesale and preserves every edge's role signature,
        so it is unrestricted.
        """
        if policy == "O":
            return bool(self.roles[u] == self.roles[v])
        return True

    # -- two-tier flooding --------------------------------------------------

    def lookup_latency_matrix(
        self,
        sources: np.ndarray | list[int],
        node_delay: np.ndarray | None = None,
        ttl: int | None = None,
    ) -> np.ndarray:
        """Min lookup latency with forwarding restricted to ultrapeers.

        Directed edges exist out of every ultrapeer; a leaf has outgoing
        edges only when it is the querier.  TTL bounds work as in the
        flat overlay (hop-limited Bellman-Ford).
        """
        sources = np.asarray(sources, dtype=np.intp)
        tails, heads, weights = self._directed_weights(node_delay)
        forwarder = self.roles[tails] == ROLE_ULTRAPEER

        out = np.empty((sources.size, self.n_slots))
        for row, src in enumerate(sources):
            keep = forwarder | (tails == src)
            t, h, w = tails[keep], heads[keep], weights[keep]
            if ttl is None:
                mat = sparse.coo_matrix(
                    (w, (t, h)), shape=(self.n_slots, self.n_slots)
                ).tocsr()
                out[row] = csgraph.dijkstra(mat, directed=True, indices=[int(src)])[0]
            else:
                dist = np.full(self.n_slots, np.inf)
                dist[src] = 0.0
                for _ in range(ttl):
                    cand = dist[t] + w
                    new = dist.copy()
                    np.minimum.at(new, h, cand)
                    if np.array_equal(new, dist):
                        break
                    dist = new
                out[row] = dist
        return out

    def copy(self) -> "UltrapeerGnutellaOverlay":
        clone = UltrapeerGnutellaOverlay.__new__(UltrapeerGnutellaOverlay)
        GnutellaOverlay.__init__(clone, self.oracle, self.embedding.copy())
        clone.roles = self.roles
        clone._adj = [set(s) for s in self._adj]
        clone._n_edges = self._n_edges
        return clone
