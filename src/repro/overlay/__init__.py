"""Overlay substrates: unstructured (Gnutella) and structured (Chord, CAN, Pastry).

Every overlay is a *logical graph over slots* plus an *embedding* that
maps each slot to a physical member host (:mod:`repro.overlay.base`).
PROP-G acts on the embedding (position swap — Theorem 2's isomorphism is
then true by construction); PROP-O acts on the logical edges of
unstructured overlays (degree-preserving rewiring).
"""

from repro.overlay.base import Overlay
from repro.overlay.can import CANOverlay, Zone
from repro.overlay.chord import ChordOverlay
from repro.overlay.gnutella import GnutellaOverlay
from repro.overlay.kademlia import KademliaOverlay
from repro.overlay.ids import (
    ring_between,
    ring_distance_cw,
    unique_ids,
)
from repro.overlay.pastry import PastryOverlay
from repro.overlay.routing_modes import iterative_path_latency, recursive_path_latency
from repro.overlay.ultrapeer import UltrapeerGnutellaOverlay

__all__ = [
    "CANOverlay",
    "ChordOverlay",
    "GnutellaOverlay",
    "KademliaOverlay",
    "Overlay",
    "PastryOverlay",
    "UltrapeerGnutellaOverlay",
    "Zone",
    "iterative_path_latency",
    "recursive_path_latency",
    "ring_between",
    "ring_distance_cw",
    "unique_ids",
]
