"""Benchmark history: append-only records and a noise-aware gate.

Every ``bench_*`` runner appends one schema-versioned JSON line to
``benchmarks/history.jsonl`` — bench id, config fingerprint, seed,
headline metrics, git revision, and a timestamp *passed in by the
caller* (wall clocks never run inside the sim; the bench harness, which
lives outside ``src/repro``, stamps its own records).  The file is the
bench trajectory across PRs that one-shot ``BENCH_*.json`` snapshots
cannot give.

``python -m repro.obs bench-check`` is the gate.  For each bench id it
takes the newest record as the candidate and compares every numeric
metric against the **trailing median** of the previous ``window``
records — a median, not the single previous value, so one noisy run
neither hides nor manufactures a regression.  All metrics follow the
lower-is-better convention (seconds, ratios, hop counts); a metric whose
relative delta exceeds ``threshold`` is a regression and the command
exits non-zero (1).  Missing or empty history exits 2 so CI can
distinguish "no baseline yet" from "regressed".
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass
from pathlib import Path
from statistics import median
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "HISTORY_SCHEMA",
    "CheckResult",
    "append_record",
    "check_history",
    "current_git_rev",
    "history_record",
    "load_history",
    "render_check",
]

#: Schema tag stamped on every history line.
HISTORY_SCHEMA = "repro.bench-history/1"

#: Default history location, relative to the repo root.
DEFAULT_HISTORY = Path("benchmarks") / "history.jsonl"

#: Trailing-median window (records per bench) and regression threshold.
DEFAULT_WINDOW = 5
DEFAULT_THRESHOLD = 0.10


def current_git_rev(cwd: str | Path | None = None) -> str:
    """The current git revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def history_record(
    bench: str,
    *,
    fingerprint: str,
    seed: int,
    metrics: Mapping[str, float],
    git_rev: str,
    timestamp: float,
) -> dict[str, Any]:
    """Build one history line.  ``timestamp`` is supplied by the caller."""
    if not bench:
        raise ValueError("bench id must be non-empty")
    clean: dict[str, float] = {}
    for name in sorted(metrics):
        value = float(metrics[name])
        clean[name] = value
    return {
        "schema_version": HISTORY_SCHEMA,
        "bench": str(bench),
        "fingerprint": str(fingerprint),
        "seed": int(seed),
        "metrics": clean,
        "git_rev": str(git_rev),
        "timestamp": float(timestamp),
    }


def append_record(path: str | Path, record: Mapping[str, Any]) -> Path:
    """Append one record to the history file (created on first use)."""
    if record.get("schema_version") != HISTORY_SCHEMA:
        raise ValueError(
            f"record schema {record.get('schema_version')!r} != {HISTORY_SCHEMA!r}"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    with path.open("a", encoding="utf-8") as fh:
        fh.write(line + "\n")
    return path


def load_history(path: str | Path) -> list[dict[str, Any]]:
    """Read the history file, oldest first.  Missing file → empty list.

    Lines with an unrecognized ``schema_version`` are skipped (forward
    compatibility), malformed JSON raises — an append-only file should
    never be half-written.
    """
    path = Path(path)
    if not path.exists():
        return []
    records: list[dict[str, Any]] = []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: malformed history line") from exc
        if record.get("schema_version") == HISTORY_SCHEMA:
            records.append(record)
    return records


@dataclass(frozen=True)
class CheckResult:
    """Verdict for one (bench, metric) pair."""

    bench: str
    metric: str
    current: float
    baseline: float | None
    rel_delta: float | None
    status: str  # "ok" | "improved" | "regression" | "no-baseline"


def check_history(
    records: Sequence[Mapping[str, Any]],
    *,
    window: int = DEFAULT_WINDOW,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[CheckResult]:
    """Gate the newest record of each bench against its trailing median.

    For every bench id the newest record is the candidate; each of its
    numeric metrics is compared to the median of that metric over the
    previous ``window`` records (lower is better).  Relative delta above
    ``threshold`` → ``"regression"``, below ``-threshold`` →
    ``"improved"``, otherwise ``"ok"``; metrics with no prior values
    report ``"no-baseline"``.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    if threshold <= 0:
        raise ValueError("threshold must be > 0")
    by_bench: dict[str, list[Mapping[str, Any]]] = {}
    for record in records:
        by_bench.setdefault(str(record["bench"]), []).append(record)

    results: list[CheckResult] = []
    for bench in sorted(by_bench):
        chain = by_bench[bench]
        candidate, baselines = chain[-1], chain[:-1]
        metrics = candidate.get("metrics", {})
        for name in sorted(metrics):
            current = float(metrics[name])
            prior = [
                float(r["metrics"][name])
                for r in baselines
                if name in r.get("metrics", {})
            ][-window:]
            if not prior:
                results.append(
                    CheckResult(bench, name, current, None, None, "no-baseline")
                )
                continue
            base = median(prior)
            scale = abs(base) if base != 0 else 1.0
            rel = (current - base) / scale
            if rel > threshold:
                status = "regression"
            elif rel < -threshold:
                status = "improved"
            else:
                status = "ok"
            results.append(CheckResult(bench, name, current, base, rel, status))
    return results


def render_check(
    results: Iterable[CheckResult], *, threshold: float = DEFAULT_THRESHOLD
) -> str:
    """Human-readable verdict table for :func:`check_history` output."""
    results = list(results)
    rows = [("bench", "metric", "current", "baseline", "delta", "status")]
    for r in results:
        rows.append(
            (
                r.bench,
                r.metric,
                f"{r.current:.6g}",
                "-" if r.baseline is None else f"{r.baseline:.6g}",
                "-" if r.rel_delta is None else f"{r.rel_delta:+.1%}",
                r.status,
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    n_reg = sum(1 for r in results if r.status == "regression")
    verdict = (
        f"{n_reg} regression(s) above {threshold:.0%}"
        if n_reg
        else f"no regressions above {threshold:.0%}"
    )
    return "\n".join(lines) + "\n" + verdict
