"""The live telemetry exporter: periodic JSONL snapshots of a run.

A long-running deployment (``repro.live``) cannot wait for the final
report to find out how it is doing.  :class:`TelemetrySnapshot` is one
periodic observation — the full :class:`~repro.obs.registry.
MetricsRegistry` snapshot, the span-assembler liveness gauges (open
spans / open traces / completed trees) and the per-peer wire-byte
counters — and :class:`TelemetryExporter` appends snapshots to a JSONL
file, flushing each line so an operator can ``tail -f`` the file while
the swarm runs.

This module is deliberately ignorant of the live plane: the swarm (or
any other driver) builds the snapshot from whatever surfaces it owns and
hands it over.  Snapshots serialize canonically (sorted keys, compact
separators) so two runs of the same seed produce diffable telemetry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, IO, Mapping

__all__ = ["TelemetryExporter", "TelemetrySnapshot", "load_telemetry"]


@dataclass(frozen=True)
class TelemetrySnapshot:
    """One periodic observation of a running deployment.

    ``metrics`` is a :meth:`~repro.obs.registry.MetricsRegistry.snapshot`
    mapping (counters and gauges as scalars, histograms as dicts).  The
    span gauges come from a streaming
    :class:`~repro.obs.spans.SpanAssembler`; the wire-byte maps from the
    transport's per-peer counters (slot -> bytes).

    ``loop_lag`` is the event-loop scheduling-lag summary from a
    :class:`~repro.live.lag.LoopLagSampler` (``mean_ms`` / ``max_ms`` /
    ``samples``); ``callback_ms`` maps peer slot -> message category ->
    cumulative handler milliseconds.  Both default empty so snapshots
    from drivers without those surfaces serialize unchanged.
    """

    time: float  # protocol seconds
    seq: int  # snapshot ordinal within the run, starting at 0
    metrics: Mapping[str, Any]
    open_spans: int = 0
    open_traces: int = 0
    spans_completed: int = 0
    wire_bytes_out: Mapping[int, int] = field(default_factory=dict)
    wire_bytes_in: Mapping[int, int] = field(default_factory=dict)
    loop_lag: Mapping[str, Any] = field(default_factory=dict)
    callback_ms: Mapping[int, Mapping[str, float]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (peer keys stringified, stable ordering)."""
        return {
            "time": round(self.time, 6),
            "seq": self.seq,
            "metrics": dict(self.metrics),
            "spans": {
                "open": self.open_spans,
                "open_traces": self.open_traces,
                "completed": self.spans_completed,
            },
            "wire_bytes": {
                "out": {str(k): self.wire_bytes_out[k]
                        for k in sorted(self.wire_bytes_out)},
                "in": {str(k): self.wire_bytes_in[k]
                       for k in sorted(self.wire_bytes_in)},
            },
            "loop_lag": {k: self.loop_lag[k] for k in sorted(self.loop_lag)},
            "callbacks": {
                str(slot): {cat: self.callback_ms[slot][cat]
                            for cat in sorted(self.callback_ms[slot])}
                for slot in sorted(self.callback_ms)
            },
        }

    def to_json_line(self) -> str:
        """Canonical single-line form (the JSONL record)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


class TelemetryExporter:
    """Append-only JSONL sink for :class:`TelemetrySnapshot` records.

    The file is created lazily on the first :meth:`write` (a run that
    never snapshots leaves nothing behind) and every line is flushed
    immediately — the whole point is that the file is readable while
    the producing run is still alive.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.written = 0
        self._fh: IO[str] | None = None

    def write(self, snapshot: TelemetrySnapshot) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w", encoding="utf-8")
        self._fh.write(snapshot.to_json_line() + "\n")
        self._fh.flush()
        self.written += 1

    def close(self) -> None:
        """Close the file handle (idempotent; no final record written)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def load_telemetry(path: str | Path) -> list[dict[str, Any]]:
    """Parse an exported telemetry file back into snapshot dicts."""
    out: list[dict[str, Any]] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out
