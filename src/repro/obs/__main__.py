"""``python -m repro.obs`` — the trace/report analyzer CLI.

Subcommands:

* ``timeline TRACE.jsonl`` — reconstruct the two-phase exchange
  timelines from a trace, flagging half-open exchanges and late
  replies.  Exits non-zero when the exactly-once invariant is broken.
* ``spans TRACE.jsonl`` — reassemble the causal span trees (one per
  probe cycle), flagging orphan roots and instrumentation bugs with
  the same exit-code discipline; ``--json-out`` writes the summary.
* ``critpath TRACE.jsonl`` — per-cycle critical-path decomposition:
  transit vs. process vs. timer back-off vs. wait, attributed per hop.
* ``diff A.json B.json`` — metric-by-metric comparison of two run
  reports.
* ``render REPORT.json [-o OUT.md]`` — render a run report to
  markdown (stdout by default).
* ``bench-check [HISTORY.jsonl]`` — gate the newest record of every
  bench in the history file against its trailing median.  Exit codes:
  0 pass, 1 regression, 2 missing/empty history (``--report-only``
  reports regressions but still exits 0, for PR CI).
* ``prof PROFILE.json`` — render a kernel profile (from ``repro run
  --kernel-profile``) as a top-N attribution table; ``--collapsed`` /
  ``--speedscope`` write flamegraph exports.  ``prof diff A.json
  B.json`` prints the per-category A/B deltas.  Exit codes: 0 ok,
  1 category mismatch against the closed registry, 2 unreadable or
  truncated profile.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.obs.analyze import load_trace, reconstruct_timelines, render_timelines
from repro.obs.bench_history import (
    DEFAULT_HISTORY,
    DEFAULT_THRESHOLD,
    DEFAULT_WINDOW,
    check_history,
    load_history,
    render_check,
)
from repro.obs.report import diff_reports, load_report, render_markdown
from repro.obs.spans import (
    assemble_spans,
    dump_analysis,
    render_critical_paths,
    render_span_trees,
)


def _cmd_timeline(args: argparse.Namespace) -> int:
    analysis = reconstruct_timelines(load_trace(args.trace))
    print(render_timelines(analysis, limit=args.limit))
    return 0 if analysis.clean else 1


def _cmd_spans(args: argparse.Namespace) -> int:
    analysis = assemble_spans(load_trace(args.trace))
    print(render_span_trees(analysis, limit=args.limit))
    if args.json_out is not None:
        dump_analysis(analysis, args.json_out)
        print(f"wrote {args.json_out}", file=sys.stderr)
    return 0 if analysis.clean else 1


def _cmd_critpath(args: argparse.Namespace) -> int:
    analysis = assemble_spans(load_trace(args.trace))
    print(render_critical_paths(analysis, limit=args.limit))
    if args.json_out is not None:
        dump_analysis(analysis, args.json_out)
        print(f"wrote {args.json_out}", file=sys.stderr)
    return 0 if analysis.clean else 1


def _cmd_diff(args: argparse.Namespace) -> int:
    print(diff_reports(load_report(args.a), load_report(args.b)))
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    text = render_markdown(load_report(args.report))
    if args.output is None:
        print(text, end="")
    else:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text, encoding="utf-8")
        print(f"wrote {out}")
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    records = load_history(args.history)
    if not records:
        print(f"bench-check: no usable history at {args.history}", file=sys.stderr)
        return 2
    results = check_history(
        records, window=args.window, threshold=args.threshold
    )
    print(render_check(results, threshold=args.threshold))
    regressed = any(r.status == "regression" for r in results)
    if regressed and args.report_only:
        print("bench-check: report-only mode, not failing", file=sys.stderr)
        return 0
    return 1 if regressed else 0


def _cmd_prof(args: argparse.Namespace) -> int:
    from repro.obs.prof import (
        CategoryMismatchError,
        KernelProfile,
        ProfileError,
        diff_table,
        validate_speedscope,
    )

    paths = args.paths
    diff_mode = paths and paths[0] == "diff"
    if diff_mode:
        paths = paths[1:]
        if len(paths) != 2:
            print("prof diff takes exactly two profile paths", file=sys.stderr)
            return 2
    elif len(paths) != 1:
        print("prof takes one profile path (or 'diff A B')", file=sys.stderr)
        return 2
    try:
        profiles = [KernelProfile.load(p) for p in paths]
        if diff_mode:
            print(diff_table(profiles[0], profiles[1]))
            return 0
        profile = profiles[0]
        print(profile.table(top=args.top))
        if args.collapsed is not None:
            Path(args.collapsed).write_text(profile.collapsed(), encoding="utf-8")
            print(f"wrote {args.collapsed}", file=sys.stderr)
        if args.speedscope is not None:
            doc = profile.speedscope(name=str(paths[0]))
            validate_speedscope(doc)
            Path(args.speedscope).write_text(
                json.dumps(doc, indent=1) + "\n", encoding="utf-8")
            print(f"wrote {args.speedscope}", file=sys.stderr)
    except CategoryMismatchError as exc:
        print(f"prof: {exc}", file=sys.stderr)
        return 1
    except ProfileError as exc:
        print(f"prof: {exc}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Analyze repro trace files and run reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_timeline = sub.add_parser(
        "timeline", help="reconstruct 2PC exchange timelines from a trace"
    )
    p_timeline.add_argument("trace", help="JSONL trace file (from --trace)")
    p_timeline.add_argument(
        "--limit", type=int, default=40,
        help="max timelines to print (default 40; -1 for all)",
    )
    p_timeline.set_defaults(func=_cmd_timeline)

    p_spans = sub.add_parser(
        "spans", help="reassemble causal span trees from a trace"
    )
    p_spans.add_argument("trace", help="JSONL trace file (from --trace)")
    p_spans.add_argument(
        "--limit", type=int, default=10,
        help="max trees to print (default 10; -1 for all)",
    )
    p_spans.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="also write the JSON analysis summary to PATH",
    )
    p_spans.set_defaults(func=_cmd_spans)

    p_crit = sub.add_parser(
        "critpath", help="critical-path decomposition per probe cycle"
    )
    p_crit.add_argument("trace", help="JSONL trace file (from --trace)")
    p_crit.add_argument(
        "--limit", type=int, default=10,
        help="max paths to print (default 10; -1 for all)",
    )
    p_crit.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="also write the JSON analysis summary to PATH",
    )
    p_crit.set_defaults(func=_cmd_critpath)

    p_diff = sub.add_parser("diff", help="diff two run reports")
    p_diff.add_argument("a", help="baseline report JSON")
    p_diff.add_argument("b", help="comparison report JSON")
    p_diff.set_defaults(func=_cmd_diff)

    p_render = sub.add_parser("render", help="render a run report to markdown")
    p_render.add_argument("report", help="report JSON (from --report)")
    p_render.add_argument("-o", "--output", default=None, help="output .md path")
    p_render.set_defaults(func=_cmd_render)

    p_check = sub.add_parser(
        "bench-check", help="gate benchmark history against trailing medians"
    )
    p_check.add_argument(
        "history", nargs="?", default=str(DEFAULT_HISTORY),
        help=f"history JSONL (default {DEFAULT_HISTORY})",
    )
    p_check.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW,
        help=f"trailing records per metric for the median (default {DEFAULT_WINDOW})",
    )
    p_check.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help=f"relative regression threshold (default {DEFAULT_THRESHOLD})",
    )
    p_check.add_argument(
        "--report-only", action="store_true",
        help="print the verdict but exit 0 even on regression (PR CI)",
    )
    p_check.set_defaults(func=_cmd_bench_check)

    p_prof = sub.add_parser(
        "prof", help="render or diff kernel profiles (--kernel-profile output)"
    )
    p_prof.add_argument(
        "paths", nargs="+", metavar="PROFILE",
        help="profile JSON path, or 'diff' followed by two paths",
    )
    p_prof.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="show only the N widest categories (default: all)",
    )
    p_prof.add_argument(
        "--collapsed", default=None, metavar="PATH",
        help="write collapsed-stack text for flamegraph tooling",
    )
    p_prof.add_argument(
        "--speedscope", default=None, metavar="PATH",
        help="write a speedscope-compatible JSON profile",
    )
    p_prof.set_defaults(func=_cmd_prof)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "limit", None) is not None and args.limit < 0:
        args.limit = None
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `... timeline t.jsonl | head`
        sys.stderr.close()  # suppress the interpreter's epipe warning
        return 0


if __name__ == "__main__":
    sys.exit(main())
