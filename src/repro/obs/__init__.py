"""repro.obs — structured event tracing, unified metrics, run reports.

Five layers, each usable alone:

* :mod:`repro.obs.events` / :mod:`repro.obs.trace` — the typed event
  schema and the :class:`Tracer` event bus the engines and transports
  emit into (``NullTracer`` when off: one attribute check, zero cost;
  ``streaming=True`` dispatches to subscribers and discards raw events);
* :mod:`repro.obs.live` / :mod:`repro.obs.monitor` — the active half:
  windowed online aggregators and the convergence detectors behind the
  CLI's ``--monitor`` progress line;
* :mod:`repro.obs.registry` — the unified :class:`MetricsRegistry`
  that absorbs the legacy ProtocolCounters / NetCounters /
  TransportStats surfaces into one namespace;
* :mod:`repro.obs.report` / :mod:`repro.obs.analyze` /
  :mod:`repro.obs.spans` — per-run :class:`RunReport` artifacts and the
  ``python -m repro.obs`` trace analyzers (2PC timelines, causal span
  trees, critical paths);
* :mod:`repro.obs.telemetry` — the live deployment plane's periodic
  JSONL snapshot exporter;
* :mod:`repro.obs.prof` — the kernel profiling plane:
  :class:`KernelProfiler` attributes wall-clock nanoseconds to a closed
  category registry at the simulator's dispatch point, exporting
  attribution tables, collapsed stacks and speedscope JSON (the one
  obs module sanctioned to read wall clocks);
* :mod:`repro.obs.bench_history` — append-only benchmark history and
  the ``bench-check`` regression gate.

This package never imports from the harness or the engines — they
import it.
"""

from repro.obs.analyze import (
    ExchangeTimeline,
    TraceAnalysis,
    load_trace,
    reconstruct_timelines,
    render_timelines,
)
from repro.obs.bench_history import (
    HISTORY_SCHEMA,
    CheckResult,
    append_record,
    check_history,
    current_git_rev,
    history_record,
    load_history,
    render_check,
)
from repro.obs.events import (
    EVENT_TYPES,
    ChurnJoin,
    ChurnLeave,
    Event,
    ExchangeAbortEvent,
    ExchangeCommitEvent,
    ExchangePrepareEvent,
    ExchangeTimeoutEvent,
    MsgDeliverEvent,
    MsgDropEvent,
    MsgSendEvent,
    MsgTimeoutEvent,
    ProbeEvent,
    SpanEndEvent,
    SpanStartEvent,
    VarCollectEvent,
    event_from_dict,
    event_to_dict,
    events_from_jsonl,
    events_to_jsonl,
)
from repro.obs.live import (
    HistStat,
    MeanStat,
    Window,
    WindowedCounts,
    WindowedHistogram,
    WindowedMean,
    replay,
)
from repro.obs.monitor import (
    ConvergenceMonitor,
    ExchangeEfficacy,
    MonitorStatus,
    ThrashDetector,
    format_status,
)
from repro.obs.registry import (
    NET_TABLE_COLUMNS,
    VAR_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    absorb_net_counters,
    absorb_protocol_counters,
    absorb_transport_stats,
    net_summary_rows,
    percentile_from_buckets,
    registry_from_result,
)
from repro.obs.prof import (
    CATEGORIES,
    CategoryMismatchError,
    KernelProfile,
    KernelProfiler,
    PROFILE_SCHEMA,
    ProfileError,
    StageProfiler,
    classify_event,
    diff_table,
    merge_profiles,
    validate_speedscope,
)
from repro.obs.report import (
    REPORT_SCHEMA,
    RunReport,
    build_replicate_report,
    build_run_report,
    config_fingerprint,
    diff_reports,
    load_report,
    render_markdown,
    save_report,
)
from repro.obs.spans import (
    CriticalSegment,
    Span,
    SpanAnalysis,
    SpanAssembler,
    SpanTree,
    analysis_to_dict,
    assemble_spans,
    critical_path,
    dump_analysis,
    path_totals,
    render_critical_paths,
    render_span_trees,
)
from repro.obs.telemetry import (
    TelemetryExporter,
    TelemetrySnapshot,
    load_telemetry,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    TraceConsumer,
    Tracer,
    TracerLike,
    write_events_jsonl,
)

__all__ = [
    "CATEGORIES",
    "CategoryMismatchError",
    "CheckResult",
    "ChurnJoin",
    "ChurnLeave",
    "ConvergenceMonitor",
    "Counter",
    "CriticalSegment",
    "EVENT_TYPES",
    "Event",
    "ExchangeAbortEvent",
    "ExchangeCommitEvent",
    "ExchangeEfficacy",
    "ExchangePrepareEvent",
    "ExchangeTimeline",
    "ExchangeTimeoutEvent",
    "Gauge",
    "HISTORY_SCHEMA",
    "HistStat",
    "Histogram",
    "KernelProfile",
    "KernelProfiler",
    "MeanStat",
    "MetricsRegistry",
    "MonitorStatus",
    "MsgDeliverEvent",
    "MsgDropEvent",
    "MsgSendEvent",
    "MsgTimeoutEvent",
    "NET_TABLE_COLUMNS",
    "NULL_TRACER",
    "NullTracer",
    "PROFILE_SCHEMA",
    "ProbeEvent",
    "ProfileError",
    "REPORT_SCHEMA",
    "RunReport",
    "Span",
    "SpanAnalysis",
    "SpanAssembler",
    "SpanEndEvent",
    "SpanStartEvent",
    "SpanTree",
    "StageProfiler",
    "TelemetryExporter",
    "TelemetrySnapshot",
    "ThrashDetector",
    "TraceAnalysis",
    "TraceConsumer",
    "Tracer",
    "TracerLike",
    "VAR_BUCKETS",
    "VarCollectEvent",
    "Window",
    "WindowedCounts",
    "WindowedHistogram",
    "WindowedMean",
    "absorb_net_counters",
    "absorb_protocol_counters",
    "absorb_transport_stats",
    "analysis_to_dict",
    "append_record",
    "assemble_spans",
    "build_replicate_report",
    "build_run_report",
    "check_history",
    "classify_event",
    "config_fingerprint",
    "critical_path",
    "current_git_rev",
    "diff_reports",
    "diff_table",
    "dump_analysis",
    "event_from_dict",
    "event_to_dict",
    "events_from_jsonl",
    "events_to_jsonl",
    "format_status",
    "history_record",
    "load_history",
    "load_report",
    "load_telemetry",
    "load_trace",
    "merge_profiles",
    "net_summary_rows",
    "path_totals",
    "percentile_from_buckets",
    "reconstruct_timelines",
    "registry_from_result",
    "render_check",
    "render_critical_paths",
    "render_markdown",
    "render_span_trees",
    "render_timelines",
    "replay",
    "save_report",
    "validate_speedscope",
    "write_events_jsonl",
]
