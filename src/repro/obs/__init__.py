"""repro.obs — structured event tracing, unified metrics, run reports.

Three layers, each usable alone:

* :mod:`repro.obs.events` / :mod:`repro.obs.trace` — the typed event
  schema and the :class:`Tracer` event bus the engines and transports
  emit into (``NullTracer`` when off: one attribute check, zero cost);
* :mod:`repro.obs.registry` — the unified :class:`MetricsRegistry`
  that absorbs the legacy ProtocolCounters / NetCounters /
  TransportStats surfaces into one namespace;
* :mod:`repro.obs.report` / :mod:`repro.obs.analyze` — per-run
  :class:`RunReport` artifacts and the ``python -m repro.obs`` trace
  analyzer.

This package never imports from the harness or the engines — they
import it.
"""

from repro.obs.analyze import (
    ExchangeTimeline,
    TraceAnalysis,
    load_trace,
    reconstruct_timelines,
    render_timelines,
)
from repro.obs.events import (
    EVENT_TYPES,
    ChurnJoin,
    ChurnLeave,
    Event,
    ExchangeAbortEvent,
    ExchangeCommitEvent,
    ExchangePrepareEvent,
    ExchangeTimeoutEvent,
    MsgDeliverEvent,
    MsgDropEvent,
    MsgSendEvent,
    MsgTimeoutEvent,
    ProbeEvent,
    VarCollectEvent,
    event_from_dict,
    event_to_dict,
    events_from_jsonl,
    events_to_jsonl,
)
from repro.obs.registry import (
    NET_TABLE_COLUMNS,
    VAR_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    absorb_net_counters,
    absorb_protocol_counters,
    absorb_transport_stats,
    net_summary_rows,
    registry_from_result,
)
from repro.obs.report import (
    REPORT_SCHEMA,
    RunReport,
    build_run_report,
    config_fingerprint,
    diff_reports,
    load_report,
    render_markdown,
    save_report,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer, TracerLike

__all__ = [
    "EVENT_TYPES",
    "NET_TABLE_COLUMNS",
    "NULL_TRACER",
    "REPORT_SCHEMA",
    "VAR_BUCKETS",
    "ChurnJoin",
    "ChurnLeave",
    "Counter",
    "Event",
    "ExchangeAbortEvent",
    "ExchangeCommitEvent",
    "ExchangePrepareEvent",
    "ExchangeTimeline",
    "ExchangeTimeoutEvent",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MsgDeliverEvent",
    "MsgDropEvent",
    "MsgSendEvent",
    "MsgTimeoutEvent",
    "NullTracer",
    "ProbeEvent",
    "RunReport",
    "TraceAnalysis",
    "Tracer",
    "TracerLike",
    "VarCollectEvent",
    "absorb_net_counters",
    "absorb_protocol_counters",
    "absorb_transport_stats",
    "build_run_report",
    "config_fingerprint",
    "diff_reports",
    "event_from_dict",
    "event_to_dict",
    "events_from_jsonl",
    "events_to_jsonl",
    "load_report",
    "load_trace",
    "net_summary_rows",
    "reconstruct_timelines",
    "registry_from_result",
    "render_markdown",
    "render_timelines",
    "save_report",
]
