"""Kernel cost observatory: the wall-clock profiling plane.

The simulation core is wall-clock-free by design (reprolint D1): sim
time is the only time protocol code may observe.  Knowing where the
*real* seconds go — timer firing, message dispatch, Var collection,
heap churn, metric sampling — is an observability concern, so the
profiling plane lives here and is sanctioned explicitly in reprolint's
``WALLCLOCK_ALLOW`` (deterministic by *exclusion*: nothing in this
module feeds back into protocol state, so wall-clock reads here cannot
perturb a run).

Design mirrors the Tracer's zero-cost-when-off contract:

* ``Simulator.profiler`` is ``None`` by default and the dispatch loop
  pays exactly one attribute check per ``run_until`` call.
* With a :class:`KernelProfiler` attached, every event popped at the
  engine's single dispatch point is attributed by
  :func:`classify_event` to a **closed category registry**
  (:data:`CATEGORIES`): timer fires by timer kind, message deliveries
  by wire type, churn, plus harness stages (world build, metric
  sampling).  Unrecognized callbacks land in ``event:other`` — the
  registry never grows at runtime, so profiles from different runs are
  always comparable.
* The attribution **exactly partitions** the profiled wall time: all
  arithmetic is integer nanoseconds and the ``untracked`` residual is
  computed as ``total_ns - sum(categories)``, so
  ``sum(categories) + untracked == total`` holds to the nanosecond
  (pinned by test).

Beyond category seconds the profiler samples event-heap telemetry per
``run_until`` window (live size, corpse ratio, cumulative
pushes/pops/cancels) and, opt-in, tracemalloc allocation deltas per
category.

Export surfaces: :meth:`KernelProfile.table` (top-N attribution),
:meth:`KernelProfile.collapsed` (collapsed-stack text for classic
flamegraph tooling), and :meth:`KernelProfile.speedscope` (a
speedscope-compatible ``sampled`` profile, checked by
:func:`validate_speedscope`).  ``python -m repro.obs prof`` renders all
three and ``prof diff`` compares two profiles category-by-category.

:class:`StageProfiler` — the harness's original coarse profiler — now
lives here too; ``repro.harness.profiler`` re-exports it unchanged.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping

__all__ = [
    "CATEGORIES",
    "CategoryMismatchError",
    "KernelProfile",
    "KernelProfiler",
    "PROFILE_SCHEMA",
    "ProfileError",
    "StageProfiler",
    "classify_event",
    "diff_table",
    "merge_profiles",
    "validate_speedscope",
    "wall_monotonic",
    "wall_perf_ns",
]

PROFILE_SCHEMA = "repro.kernel-prof/1"

#: Wire grammar, mirrored from :data:`repro.net.messages.MSG_TYPES`.
#: Mirrored rather than imported because the obs package never imports
#: from the engines (they import it); a test pins the two in sync.
_MSG_TYPE_NAMES = (
    "WALK",
    "VAR_PROBE",
    "VAR_REPLY",
    "EXCHANGE_PREPARE",
    "EXCHANGE_COMMIT",
    "EXCHANGE_ABORT",
    "NOTIFY",
)

#: The closed category registry.  ``deliver:<T>`` covers message
#: delivery by wire type (Var collection = VAR_PROBE/VAR_REPLY, the
#: exchange 2PC phases = EXCHANGE_*), ``timer:*`` covers timer fires by
#: kind, ``build``/``sample`` are harness stages, ``event:other`` is
#: the in-window catch-all and ``untracked`` the arithmetic residual.
CATEGORIES: tuple[str, ...] = (
    "build",
    "sample",
    "timer:probe",
    "timer:walk",
    "timer:vote",
    "timer:prepared",
    "timer:periodic",
    "timer:round",
    "churn",
    *(f"deliver:{name}" for name in _MSG_TYPE_NAMES),
    "event:other",
    "untracked",
)

_CATEGORY_SET = frozenset(CATEGORIES)

#: Scheduled-callback name -> category.  These are the engine-plane
#: callbacks that reach the simulator's dispatch point; anything not
#: listed is ``event:other`` (the registry is closed on purpose).
_TIMER_BY_NAME: dict[str, str] = {
    "_probe_cycle": "timer:probe",
    "_walk_timeout": "timer:walk",
    "_vote_timeout": "timer:vote",
    "_prepared_timeout": "timer:prepared",
    "_fire": "timer:periodic",
    "_round": "timer:round",
    "_churn_event": "churn",
}

_DELIVER_BY_TYPE: dict[str, str] = {
    name: f"deliver:{name}" for name in _MSG_TYPE_NAMES
}


class ProfileError(Exception):
    """A profile artifact could not be read (truncated, wrong schema…)."""


class CategoryMismatchError(ProfileError):
    """A profile names categories outside the closed registry, or two
    profiles being diffed disagree on their category sets."""


# -- sanctioned wall-clock reads ----------------------------------------

def wall_monotonic() -> float:
    """Monotonic wall seconds for presentation-side use (ETA display).

    CLI code must route wall-clock reads through here instead of
    importing :mod:`time` directly: this module is the D1 allowlist
    entry, so the sanctioned surface stays greppable and explicit.
    """
    return time.monotonic()


def wall_perf_ns() -> int:
    """High-resolution wall nanoseconds (``perf_counter_ns``)."""
    return time.perf_counter_ns()


# -- classification -----------------------------------------------------

def classify_event(callback: Callable[..., None], args: tuple[Any, ...]) -> str:
    """Map a dispatched event to its registry category.

    Message deliveries are recognized by the transport's ``_deliver``
    callback carrying the message as ``args[0]``; timer fires by the
    callback's name.  The return value is always a member of
    :data:`CATEGORIES`.
    """
    name = getattr(callback, "__name__", "")
    if name == "_deliver" and args:
        cat = _DELIVER_BY_TYPE.get(getattr(args[0], "type_name", ""))
        if cat is not None:
            return cat
    return _TIMER_BY_NAME.get(name, "event:other")


# -- the profiler -------------------------------------------------------

class KernelProfiler:
    """Attributes wall-clock nanoseconds to the closed category registry.

    Lifecycle: the harness creates one, assigns it to
    ``Simulator.profiler``, and the engine brackets each ``run_until``
    with :meth:`begin_window`/:meth:`end_window` and each dispatched
    event with :meth:`begin_event`/:meth:`end_event`.  Harness stages
    outside the dispatch loop (world build, metric sampling) go through
    :meth:`stage`, which accrues into both the category and the total
    so the partition invariant holds globally.

    All accumulation is integer nanoseconds; the ``untracked`` residual
    (window time not inside any event) is exact by construction.
    """

    def __init__(self, *, trace_malloc: bool = False) -> None:
        self.category_ns: dict[str, int] = {}
        self.category_counts: dict[str, int] = {}
        self.total_ns = 0
        self.events = 0
        self.windows = 0
        self.heap_samples: list[dict[str, float]] = []
        self.trace_malloc = trace_malloc
        self.alloc_bytes: dict[str, int] = {}
        self._window_start = 0
        self._event_start = 0
        self._event_alloc = 0

    # -- window bracketing (one window per run_until call) --------------

    def begin_window(self) -> None:
        if self.trace_malloc and not tracemalloc.is_tracing():
            tracemalloc.start()
        self._window_start = time.perf_counter_ns()

    def end_window(self, sim: Any) -> None:
        self.total_ns += time.perf_counter_ns() - self._window_start
        self.windows += 1
        queue = getattr(sim, "queue", None)
        if queue is None:
            return
        heap_size = queue.heap_size
        live = len(queue)
        self.heap_samples.append(
            {
                "t": sim.now,
                "live": live,
                "heap": heap_size,
                "corpse_ratio": round((heap_size - live) / heap_size, 6) if heap_size else 0.0,
                "pushes": queue.pushes,
                "pops": queue.pops,
                "cancels": queue.cancels,
            }
        )

    # -- per-event bracketing (engine dispatch point) --------------------

    def begin_event(self) -> None:
        if self.trace_malloc:
            self._event_alloc = tracemalloc.get_traced_memory()[0]
        self._event_start = time.perf_counter_ns()

    def end_event(self, callback: Callable[..., None], args: tuple[Any, ...]) -> None:
        elapsed = time.perf_counter_ns() - self._event_start
        category = classify_event(callback, args)
        self.category_ns[category] = self.category_ns.get(category, 0) + elapsed
        self.category_counts[category] = self.category_counts.get(category, 0) + 1
        self.events += 1
        if self.trace_malloc:
            delta = tracemalloc.get_traced_memory()[0] - self._event_alloc
            self.alloc_bytes[category] = self.alloc_bytes.get(category, 0) + delta

    # -- harness stages --------------------------------------------------

    @contextmanager
    def stage(self, category: str) -> Iterator[None]:
        """Time a harness-side block under a registry category.

        Stage time accrues into both the category and the grand total,
        so the partition invariant covers stage categories too.
        """
        if category not in _CATEGORY_SET:
            raise ValueError(f"unknown profile category {category!r}")
        started = time.perf_counter_ns()
        try:
            yield
        finally:
            elapsed = time.perf_counter_ns() - started
            self.category_ns[category] = self.category_ns.get(category, 0) + elapsed
            self.category_counts[category] = self.category_counts.get(category, 0) + 1
            self.total_ns += elapsed

    # -- finalization ----------------------------------------------------

    def finish(self, *, sim_seconds: float | None = None) -> "KernelProfile":
        """Freeze the accumulated state into a :class:`KernelProfile`."""
        tracked = sum(self.category_ns.values())
        heap: dict[str, Any] = {}
        if self.heap_samples:
            last = self.heap_samples[-1]
            heap = {
                "final_live": last["live"],
                "final_heap": last["heap"],
                "final_corpse_ratio": last["corpse_ratio"],
                "max_heap": max(s["heap"] for s in self.heap_samples),
                "pushes": last["pushes"],
                "pops": last["pops"],
                "cancels": last["cancels"],
            }
            if sim_seconds:
                heap["pushes_per_sim_s"] = round(last["pushes"] / sim_seconds, 3)
                heap["pops_per_sim_s"] = round(last["pops"] / sim_seconds, 3)
                heap["cancels_per_sim_s"] = round(last["cancels"] / sim_seconds, 3)
        return KernelProfile(
            total_ns=self.total_ns,
            untracked_ns=self.total_ns - tracked,
            events=self.events,
            windows=self.windows,
            sim_seconds=sim_seconds,
            categories=dict(sorted(self.category_ns.items())),
            counts=dict(sorted(self.category_counts.items())),
            heap=heap,
            alloc_bytes=dict(sorted(self.alloc_bytes.items())) if self.trace_malloc else None,
        )


# -- the frozen artifact ------------------------------------------------

@dataclass
class KernelProfile:
    """A finished profile: category nanoseconds plus heap telemetry.

    The JSON form (:meth:`to_dict`/:meth:`save`) is the interchange
    format consumed by ``python -m repro.obs prof``; loading validates
    the category set against the closed registry.
    """

    total_ns: int
    untracked_ns: int
    events: int
    windows: int
    sim_seconds: float | None
    categories: dict[str, int]
    counts: dict[str, int]
    heap: dict[str, Any] = field(default_factory=dict)
    alloc_bytes: dict[str, int] | None = None
    schema_version: str = PROFILE_SCHEMA

    def seconds(self, category: str) -> float:
        return self.categories.get(category, 0) / 1e9

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "schema_version": self.schema_version,
            "total_ns": self.total_ns,
            "untracked_ns": self.untracked_ns,
            "events": self.events,
            "windows": self.windows,
            "sim_seconds": self.sim_seconds,
            "categories": dict(sorted(self.categories.items())),
            "counts": dict(sorted(self.counts.items())),
            "heap": self.heap,
        }
        if self.alloc_bytes is not None:
            doc["alloc_bytes"] = dict(sorted(self.alloc_bytes.items()))
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "KernelProfile":
        if not isinstance(doc, Mapping):
            raise ProfileError("profile document is not an object")
        schema = doc.get("schema_version")
        if schema != PROFILE_SCHEMA:
            raise ProfileError(f"unsupported profile schema {schema!r}")
        missing = [k for k in ("total_ns", "untracked_ns", "categories", "counts") if k not in doc]
        if missing:
            raise ProfileError(f"profile missing fields: {', '.join(missing)}")
        categories = dict(doc["categories"])
        unknown = sorted(set(categories) - _CATEGORY_SET)
        if unknown:
            raise CategoryMismatchError(
                f"profile names categories outside the registry: {', '.join(unknown)}"
            )
        return cls(
            total_ns=int(doc["total_ns"]),
            untracked_ns=int(doc["untracked_ns"]),
            events=int(doc.get("events", 0)),
            windows=int(doc.get("windows", 0)),
            sim_seconds=doc.get("sim_seconds"),
            categories=categories,
            counts=dict(doc["counts"]),
            heap=dict(doc.get("heap", {})),
            alloc_bytes=dict(doc["alloc_bytes"]) if doc.get("alloc_bytes") is not None else None,
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n",
                        encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "KernelProfile":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ProfileError(f"cannot read profile {path}: {exc}") from exc
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProfileError(f"profile {path} is not valid JSON (truncated?): {exc}") from exc
        return cls.from_dict(doc)

    # -- export surfaces -------------------------------------------------

    def table(self, top: int | None = None) -> str:
        """Top-N attribution table, widest category first."""
        rows = sorted(self.categories.items(), key=lambda kv: (-kv[1], kv[0]))
        rows.append(("untracked", self.untracked_ns))
        if top is not None:
            rows = rows[:top]
        total = self.total_ns or 1
        lines = [f"{'category':<26} {'seconds':>10} {'share':>7} {'events':>9}"]
        for category, ns in rows:
            share = 100.0 * ns / total
            count = self.counts.get(category, 0)
            lines.append(f"{category:<26} {ns / 1e9:>10.4f} {share:>6.1f}% {count:>9}")
        lines.append(f"{'total':<26} {self.total_ns / 1e9:>10.4f} {100.0:>6.1f}% {self.events:>9}")
        if self.heap:
            lines.append("")
            lines.append("event heap: " + ", ".join(
                f"{k}={self.heap[k]}" for k in sorted(self.heap)))
        return "\n".join(lines)

    def collapsed(self) -> str:
        """Collapsed-stack text (``frame;frame count``) for flamegraph tools."""
        lines = [
            f"kernel;{category} {ns}"
            for category, ns in sorted(self.categories.items())
            if ns > 0
        ]
        lines.append(f"kernel;untracked {self.untracked_ns}")
        return "\n".join(lines) + "\n"

    def speedscope(self, name: str = "repro kernel profile") -> dict[str, Any]:
        """A speedscope ``sampled`` profile: one sample per category."""
        rows = [(c, ns) for c, ns in sorted(self.categories.items()) if ns > 0]
        rows.append(("untracked", self.untracked_ns))
        frames = [{"name": category} for category, _ in rows]
        weights = [ns for _, ns in rows]
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "nanoseconds",
                    "startValue": 0,
                    "endValue": self.total_ns,
                    "samples": [[i] for i in range(len(rows))],
                    "weights": weights,
                }
            ],
        }


def validate_speedscope(doc: Any) -> None:
    """Check ``doc`` against the speedscope file-format schema.

    Hand-rolled (the repo takes no jsonschema dependency) but covers
    every constraint the viewer relies on for ``sampled`` profiles.
    Raises :class:`ProfileError` on the first violation.
    """
    if not isinstance(doc, dict):
        raise ProfileError("speedscope document must be an object")
    if doc.get("$schema") != "https://www.speedscope.app/file-format-schema.json":
        raise ProfileError("missing or wrong $schema")
    shared = doc.get("shared")
    if not isinstance(shared, dict) or not isinstance(shared.get("frames"), list):
        raise ProfileError("shared.frames must be a list")
    frames = shared["frames"]
    for i, frame in enumerate(frames):
        if not isinstance(frame, dict) or not isinstance(frame.get("name"), str):
            raise ProfileError(f"frame {i} must be an object with a string name")
    profiles = doc.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        raise ProfileError("profiles must be a non-empty list")
    for p, profile in enumerate(profiles):
        if not isinstance(profile, dict):
            raise ProfileError(f"profile {p} must be an object")
        if profile.get("type") != "sampled":
            raise ProfileError(f"profile {p}: only 'sampled' profiles are emitted")
        samples = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(samples, list) or not isinstance(weights, list):
            raise ProfileError(f"profile {p}: samples and weights must be lists")
        if len(samples) != len(weights):
            raise ProfileError(f"profile {p}: samples/weights length mismatch")
        for s, sample in enumerate(samples):
            if not isinstance(sample, list):
                raise ProfileError(f"profile {p} sample {s} must be a frame-index stack")
            for idx in sample:
                if not isinstance(idx, int) or not 0 <= idx < len(frames):
                    raise ProfileError(
                        f"profile {p} sample {s}: frame index {idx} out of range")
        for key in ("startValue", "endValue"):
            if not isinstance(profile.get(key), (int, float)):
                raise ProfileError(f"profile {p}: {key} must be a number")


def diff_table(before: KernelProfile, after: KernelProfile) -> str:
    """Category-by-category A/B delta table.

    Both profiles must cover the same category set (the registry is
    closed, so two honest profiles from any two revisions do); a
    mismatch raises :class:`CategoryMismatchError`.
    """
    before_keys = set(before.categories)
    after_keys = set(after.categories)
    if before_keys != after_keys:
        only_a = sorted(before_keys - after_keys)
        only_b = sorted(after_keys - before_keys)
        parts = []
        if only_a:
            parts.append(f"only in A: {', '.join(only_a)}")
        if only_b:
            parts.append(f"only in B: {', '.join(only_b)}")
        raise CategoryMismatchError("profiles disagree on categories (" + "; ".join(parts) + ")")
    rows = [(c, before.categories[c], after.categories[c]) for c in sorted(before_keys)]
    rows.append(("untracked", before.untracked_ns, after.untracked_ns))
    rows.append(("total", before.total_ns, after.total_ns))
    rows.sort(key=lambda r: -(abs(r[2] - r[1])))
    lines = [f"{'category':<26} {'A (s)':>10} {'B (s)':>10} {'delta (s)':>10} {'ratio':>7}"]
    for category, a_ns, b_ns in rows:
        delta = (b_ns - a_ns) / 1e9
        ratio = f"{b_ns / a_ns:>7.3f}" if a_ns else "    n/a"
        lines.append(
            f"{category:<26} {a_ns / 1e9:>10.4f} {b_ns / 1e9:>10.4f} {delta:>+10.4f} {ratio}")
    return "\n".join(lines)


# -- the original coarse stage profiler (relocated from the harness) ----

class StageProfiler:
    """Accumulates wall-clock seconds per named stage.

    The harness's original coarse profiler: stages are free-form names
    (``build_world``, ``simulate``, ``sample``…) and re-entering a
    stage adds to its total.  Kept as the parallel-sweep profile
    currency — worker profiles are plain ``dict[str, float]`` and merge
    with :func:`merge_profiles`.
    """

    def __init__(self) -> None:
        self.timings: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time the enclosed block, accumulating into ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.timings[name] = self.timings.get(name, 0.0) + elapsed


def merge_profiles(profiles: Iterable[Mapping[str, float] | None]) -> dict[str, float]:
    """Stage-wise sum of several workers' profiles (``None`` entries skipped)."""
    merged: dict[str, float] = {}
    for profile in profiles:
        if not profile:
            continue
        for name, seconds in profile.items():
            merged[name] = merged.get(name, 0.0) + float(seconds)
    return dict(sorted(merged.items()))
