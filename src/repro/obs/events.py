"""Typed trace events.

Every observable protocol decision is one frozen dataclass stamped with
the *simulation* time it happened at (wall clocks never appear here —
the trace of a run is as deterministic as the run itself, reprolint D1).
The schema is closed: :data:`EVENT_TYPES` maps every wire tag to its
class, and the JSONL form round-trips losslessly through
:func:`event_to_dict` / :func:`event_from_dict`.

Three event families:

* **protocol plane** — ``PROBE`` (a probe cycle launched),
  ``VAR_COLLECT`` (Var evaluated for a candidate pair), and the
  two-phase exchange lifecycle ``EXCHANGE_PREPARE`` /
  ``EXCHANGE_COMMIT`` / ``EXCHANGE_ABORT`` / ``EXCHANGE_TIMEOUT``.
  The analyzer invariant: every PREPARE resolves as exactly one of
  COMMIT, ABORT, or TIMEOUT (no half-open exchanges).
* **message plane** — ``MSG_SEND`` / ``MSG_DELIVER`` / ``MSG_DROP`` /
  ``MSG_TIMEOUT``; ``tag`` carries the message's exchange id or cycle
  number when it has one (``-1`` otherwise) so the analyzer can join
  message events to protocol events.
* **membership** — ``CHURN_LEAVE`` / ``CHURN_JOIN`` around each slot
  replacement.
* **causality** — ``SPAN_START`` / ``SPAN_END`` bracket one unit of
  causally attributed work (a probe cycle, one message in flight, a
  handler invocation, a timer wait).  ``trace``/``span``/``parent`` are
  the ids the wire context carries; :mod:`repro.obs.spans` reassembles
  them into trees.

Inline engines (no 2PC) emit commits with ``xid = -1``; the analyzer
treats those as instantaneous exchanges with no prepare to match.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Iterable

__all__ = [
    "EVENT_TYPES",
    "ChurnJoin",
    "ChurnLeave",
    "Event",
    "ExchangeAbortEvent",
    "ExchangeCommitEvent",
    "ExchangePrepareEvent",
    "ExchangeTimeoutEvent",
    "MsgDeliverEvent",
    "MsgDropEvent",
    "MsgSendEvent",
    "MsgTimeoutEvent",
    "ProbeEvent",
    "SpanEndEvent",
    "SpanStartEvent",
    "VarCollectEvent",
    "event_from_dict",
    "event_to_dict",
    "events_from_jsonl",
    "events_to_jsonl",
]


@dataclass(frozen=True)
class Event:
    """Base trace record: something happened at simulated ``time``."""

    time: float

    #: Wire tag; concrete subclasses override.
    etype: ClassVar[str] = "EVENT"


# -- protocol plane -------------------------------------------------------


@dataclass(frozen=True)
class ProbeEvent(Event):
    """A probe cycle launched at node ``u`` (first hop ``s``)."""

    u: int
    s: int
    cycle: int

    etype: ClassVar[str] = "PROBE"


@dataclass(frozen=True)
class VarCollectEvent(Event):
    """Var evaluated for the candidate pair ``(u, v)``."""

    u: int
    v: int
    cycle: int
    var: float
    policy: str

    etype: ClassVar[str] = "VAR_COLLECT"


@dataclass(frozen=True)
class ExchangePrepareEvent(Event):
    """Two-phase exchange ``xid`` proposed by initiator ``u`` to ``v``."""

    xid: int
    u: int
    v: int
    var: float

    etype: ClassVar[str] = "EXCHANGE_PREPARE"


@dataclass(frozen=True)
class ExchangeCommitEvent(Event):
    """Exchange applied.  ``xid = -1`` for inline (non-2PC) engines."""

    xid: int
    u: int
    v: int
    var: float
    traded: int

    etype: ClassVar[str] = "EXCHANGE_COMMIT"


@dataclass(frozen=True)
class ExchangeAbortEvent(Event):
    """Exchange ``xid`` resolved as aborted (``reason`` says why)."""

    xid: int
    u: int
    v: int
    reason: str

    etype: ClassVar[str] = "EXCHANGE_ABORT"


@dataclass(frozen=True)
class ExchangeTimeoutEvent(Event):
    """Exchange ``xid`` abandoned: no vote arrived within the retries."""

    xid: int
    u: int
    v: int

    etype: ClassVar[str] = "EXCHANGE_TIMEOUT"


# -- message plane --------------------------------------------------------


@dataclass(frozen=True)
class MsgSendEvent(Event):
    """A message handed to the transport.  ``tag`` is its xid/cycle."""

    mtype: str
    src: int
    dst: int
    tag: int

    etype: ClassVar[str] = "MSG_SEND"


@dataclass(frozen=True)
class MsgDeliverEvent(Event):
    """A message delivered to its destination handler."""

    mtype: str
    src: int
    dst: int
    tag: int

    etype: ClassVar[str] = "MSG_DELIVER"


@dataclass(frozen=True)
class MsgDropEvent(Event):
    """A message that will never arrive (loss / partition)."""

    mtype: str
    src: int
    dst: int
    tag: int
    reason: str

    etype: ClassVar[str] = "MSG_DROP"


@dataclass(frozen=True)
class MsgTimeoutEvent(Event):
    """An await stage expired at ``u``: ``kind`` is ``walk`` (no
    VAR_REPLY in time) or ``vote-retry`` (PREPARE resent)."""

    kind: str
    u: int
    tag: int

    etype: ClassVar[str] = "MSG_TIMEOUT"


# -- causality ------------------------------------------------------------


@dataclass(frozen=True)
class SpanStartEvent(Event):
    """Span ``span`` of trace ``trace`` opened at node ``node``.

    ``parent`` is the causing span (``-1`` for a root); ``name``
    categorizes the work: ``cycle`` (a probe cycle root),
    ``msg:<TYPE>`` (one message in flight), ``proc:<TYPE>`` (the
    receive-side handler), or ``timer:<kind>`` (a timeout wait)."""

    trace: int
    span: int
    parent: int
    name: str
    node: int

    etype: ClassVar[str] = "SPAN_START"


@dataclass(frozen=True)
class SpanEndEvent(Event):
    """Span ``span`` of trace ``trace`` closed with ``status``
    (``ok``, ``drop``, ``fail``, ``churn``, or ``end-of-run``)."""

    trace: int
    span: int
    status: str

    etype: ClassVar[str] = "SPAN_END"


# -- membership -----------------------------------------------------------


@dataclass(frozen=True)
class ChurnLeave(Event):
    """Host ``host`` departed from overlay slot ``slot``."""

    slot: int
    host: int

    etype: ClassVar[str] = "CHURN_LEAVE"


@dataclass(frozen=True)
class ChurnJoin(Event):
    """Host ``host`` took over overlay slot ``slot``."""

    slot: int
    host: int

    etype: ClassVar[str] = "CHURN_JOIN"


#: The closed event schema: wire tag -> event class.
EVENT_TYPES: dict[str, type[Event]] = {
    cls.etype: cls
    for cls in (
        ProbeEvent,
        VarCollectEvent,
        ExchangePrepareEvent,
        ExchangeCommitEvent,
        ExchangeAbortEvent,
        ExchangeTimeoutEvent,
        MsgSendEvent,
        MsgDeliverEvent,
        MsgDropEvent,
        MsgTimeoutEvent,
        SpanStartEvent,
        SpanEndEvent,
        ChurnLeave,
        ChurnJoin,
    )
}


# -- serialization --------------------------------------------------------


def event_to_dict(event: Event) -> dict[str, Any]:
    """JSON-ready dict: ``{"e": tag, "t": time, ...payload}``."""
    out: dict[str, Any] = {"e": event.etype, "t": event.time}
    for f in fields(event):
        if f.name != "time":
            out[f.name] = getattr(event, f.name)
    return out


def event_from_dict(data: dict[str, Any]) -> Event:
    """Inverse of :func:`event_to_dict`; raises on unknown tags."""
    payload = dict(data)
    tag = payload.pop("e", None)
    cls = EVENT_TYPES.get(str(tag))
    if cls is None:
        raise ValueError(f"unknown event tag {tag!r}")
    payload["time"] = payload.pop("t")
    return cls(**payload)


def events_to_jsonl(events: Iterable[Event]) -> str:
    """One canonical JSON object per line (sorted keys, no spaces).

    The canonical form is what the determinism tests compare
    byte-for-byte: same config + seed must yield the identical string.
    """
    lines = [
        json.dumps(event_to_dict(ev), sort_keys=True, separators=(",", ":"))
        for ev in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def events_from_jsonl(text: str) -> list[Event]:
    """Parse a JSONL trace back into typed events (blank lines skipped)."""
    return [
        event_from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]
