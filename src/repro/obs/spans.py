"""Causal span trees and critical-path analysis over the message plane.

The engine threads a ``(trace_id, span_id, parent_id)`` context through
every protocol message (:mod:`repro.net.messages`) and brackets each
unit of attributable work with ``SPAN_START`` / ``SPAN_END`` events:
the probe-cycle root (``cycle``), every message in flight
(``msg:<TYPE>``), every receive-side handler (``proc:<TYPE>``) and the
retry timers (``timer:<kind>``).  :class:`SpanAssembler` is the
streaming :class:`~repro.obs.trace.TraceConsumer` that folds that event
stream back into **span trees** — one tree per probe cycle, edges being
causality (a child was *caused by* its parent, not *contained in* it;
a NOTIFY fan-out keeps running after its cycle root already closed).

Memory stays O(open spans): a trace's state is dropped the moment its
tree completes (root closed and no span of the trace still open), so an
arbitrarily long run holds only the trees still in flight plus whatever
the caller asked to keep.

Liveness flags, with the same exit-code discipline as the 2PC timeline
analyzer (:mod:`repro.obs.analyze`):

* **orphan roots** — a root span that never closed: the engine failed
  to resolve a probe cycle (``finalize_trace`` closes every in-flight
  root with ``end-of-run``, so a truncated or buggy trace is the only
  way to get one) — these fail the analysis.
* **half-open spans** — a non-root span opened but never closed.  In
  the simulator that is only the run horizon cutting off in-flight
  messages (injected drops close their span with status ``drop``);
  over real UDP a kernel-dropped datagram is silent and its ``msg:``
  span stays half-open — *measured* real-world loss, reported but not
  an error.
* **unmatched ends / double closes / detached spans** — a ``SPAN_END``
  with no matching start, a second end for the same span, or a span
  whose parent never appeared: instrumentation bugs.

:func:`critical_path` decomposes one completed tree into the segments
that actually determined the root's duration — the chain to the
latest-finishing descendant, each hop categorized as ``transit``
(``msg:`` spans), ``process`` (``proc:`` spans), ``timer`` (waits
ending in a ``timer:`` span, i.e. retry back-off) or ``wait`` (time at
a node not covered by any child).  Segments are clamped to the root's
window and sum exactly to the root duration, so percentages are
well-defined — the per-hop attribution the paper's locality argument is
about: a location-aware overlay should shrink the ``transit`` share.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.obs.events import Event, SpanEndEvent, SpanStartEvent

__all__ = [
    "CriticalSegment",
    "Span",
    "SpanAnalysis",
    "SpanAssembler",
    "SpanTree",
    "analysis_to_dict",
    "assemble_spans",
    "critical_path",
    "dump_analysis",
    "path_totals",
    "render_critical_paths",
    "render_span_trees",
]

#: Critical-path segment categories, in rendering order.
CATEGORIES = ("transit", "process", "timer", "wait")


@dataclass
class Span:
    """One unit of causally attributed work."""

    trace: int
    span: int
    parent: int
    name: str
    node: int
    start: float
    end: float | None = None
    status: str = ""
    children: list["Span"] = field(default_factory=list)

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start


@dataclass
class SpanTree:
    """One assembled trace: the root span plus every descendant.

    ``complete`` means the root closed *and* no span of the trace was
    still open — a tree flushed at end-of-run with half-open message
    spans (real datagram loss) is kept but marked incomplete.
    """

    trace: int
    root: Span
    n_spans: int
    complete: bool

    @property
    def depth(self) -> int:
        """Longest root-to-leaf chain (a root alone has depth 1)."""
        def walk(span: Span) -> int:
            return 1 + max((walk(c) for c in span.children), default=0)
        return walk(self.root)


@dataclass
class SpanAnalysis:
    """Everything :class:`SpanAssembler` derives from one trace stream."""

    trees: list[SpanTree] = field(default_factory=list)
    #: Root spans that never closed — a protocol/instrumentation bug.
    orphans: list[tuple[int, int]] = field(default_factory=list)  # (trace, span)
    #: Non-root spans that never closed — horizon cutoff or real loss.
    half_open: list[tuple[int, int]] = field(default_factory=list)
    unmatched_ends: list[tuple[int, int]] = field(default_factory=list)
    double_closed: list[tuple[int, int]] = field(default_factory=list)
    #: Spans whose parent never appeared (attached under the root).
    detached: list[tuple[int, int]] = field(default_factory=list)

    @property
    def root_status_counts(self) -> dict[str, int]:
        counts: Counter[str] = Counter()
        for tree in self.trees:
            counts[tree.root.status or "open"] += 1
        return dict(counts)

    @property
    def complete_trees(self) -> list[SpanTree]:
        return [t for t in self.trees if t.complete]

    @property
    def clean(self) -> bool:
        """True when every root closed and no instrumentation bug showed.

        ``half_open`` spans do not fail the analysis — over real UDP
        they are measured loss, and in the simulator only the run
        horizon produces them.
        """
        return (not self.orphans and not self.unmatched_ends
                and not self.double_closed and not self.detached)


class _TraceState:
    """Assembly state of one still-incomplete trace."""

    __slots__ = ("spans", "open_count", "root")

    def __init__(self) -> None:
        self.spans: dict[int, Span] = {}
        self.open_count = 0
        self.root: Span | None = None


class SpanAssembler:
    """Streaming consumer reassembling span trees from the event bus.

    Parameters
    ----------
    keep_trees:
        Buffer completed trees for :meth:`result` (the analyzer path).
        Telemetry gauges set this False and read only the counters, so
        a live swarm pays O(open spans), never O(run).
    on_tree:
        Optional callback invoked with each tree the moment it
        completes (before it is buffered or discarded).
    """

    def __init__(
        self,
        *,
        keep_trees: bool = True,
        on_tree: Callable[[SpanTree], None] | None = None,
    ) -> None:
        self.keep_trees = keep_trees
        self.on_tree = on_tree
        self.completed = 0
        self.root_statuses: Counter[str] = Counter()
        self._active: dict[int, _TraceState] = {}
        self._analysis = SpanAnalysis()
        self._finished = False

    # -- gauges (the telemetry exporter reads these live) -----------------

    @property
    def open_spans(self) -> int:
        """Spans started but not yet ended, across all active traces."""
        return sum(state.open_count for state in self._active.values())

    @property
    def open_traces(self) -> int:
        """Traces whose tree has not completed yet."""
        return len(self._active)

    # -- TraceConsumer ----------------------------------------------------

    def on_event(self, event: Event) -> None:
        if isinstance(event, SpanStartEvent):
            state = self._active.get(event.trace)
            if state is None:
                state = self._active[event.trace] = _TraceState()
            span = Span(trace=event.trace, span=event.span,
                        parent=event.parent, name=event.name,
                        node=event.node, start=event.time)
            state.spans[event.span] = span
            state.open_count += 1
            if event.parent < 0:
                state.root = span
        elif isinstance(event, SpanEndEvent):
            state = self._active.get(event.trace)
            span = None if state is None else state.spans.get(event.span)
            if state is None or span is None:
                self._analysis.unmatched_ends.append((event.trace, event.span))
                return
            if span.end is not None:
                self._analysis.double_closed.append((event.trace, event.span))
                return
            span.end = event.time
            span.status = event.status
            state.open_count -= 1
            if (state.root is not None and state.root.end is not None
                    and state.open_count == 0):
                self._emit(event.trace, state, complete=True)

    def finish(self, end_time: float) -> None:
        """Flush still-open traces: open roots become orphans, open
        non-root spans are recorded half-open."""
        if self._finished:
            return
        self._finished = True
        for trace in sorted(self._active):
            state = self._active[trace]
            for span_id in sorted(state.spans):
                span = state.spans[span_id]
                if span.open:
                    bucket = (self._analysis.orphans if span.parent < 0
                              else self._analysis.half_open)
                    bucket.append((trace, span_id))
            if state.root is not None:
                self._emit(trace, state, complete=False)
            else:
                # no root ever appeared: every span is detached
                for span_id in sorted(state.spans):
                    self._analysis.detached.append((trace, span_id))
        self._active.clear()
        self._analysis.trees.sort(key=lambda t: (t.root.start, t.trace))

    # -- assembly ---------------------------------------------------------

    def _emit(self, trace: int, state: _TraceState, *, complete: bool) -> None:
        root = state.root
        assert root is not None
        for span_id in sorted(state.spans):
            span = state.spans[span_id]
            if span is root:
                continue
            parent = state.spans.get(span.parent)
            if parent is None:
                # causality gap (should not happen in sim): keep the
                # span visible under the root and flag it
                self._analysis.detached.append((trace, span_id))
                parent = root
            parent.children.append(span)
        for span in state.spans.values():
            span.children.sort(key=lambda s: (s.start, s.span))
        tree = SpanTree(trace=trace, root=root, n_spans=len(state.spans),
                        complete=complete)
        self.completed += complete
        self.root_statuses[root.status or "open"] += 1
        if self.on_tree is not None:
            self.on_tree(tree)
        if self.keep_trees:
            self._analysis.trees.append(tree)
        if not self._finished:
            del self._active[trace]

    def result(self) -> SpanAnalysis:
        """The finished analysis (call after :meth:`finish`)."""
        if not self._finished:
            raise RuntimeError("SpanAssembler.result() before finish()")
        return self._analysis


def assemble_spans(events: Iterable[Event],
                   end_time: float | None = None) -> SpanAnalysis:
    """Fold a buffered trace into a :class:`SpanAnalysis`.

    ``end_time`` defaults to the last event's timestamp (0.0 for an
    empty trace) — the post-mortem analogue of the streaming path.
    """
    assembler = SpanAssembler()
    last = 0.0
    for ev in events:
        assembler.on_event(ev)
        last = ev.time
    assembler.finish(end_time if end_time is not None else last)
    return assembler.result()


# -- critical path --------------------------------------------------------


@dataclass(frozen=True)
class CriticalSegment:
    """One stretch of the chain that determined the root's duration."""

    category: str  # "transit" | "process" | "timer" | "wait"
    name: str
    node: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def critical_path(tree: SpanTree) -> list[CriticalSegment]:
    """Decompose a completed tree into its dominating segments.

    Follows the chain from the root to its latest-finishing descendant
    (ties broken by span id, so the decomposition is deterministic),
    clamps every span to the root's window, and attributes the gaps: a
    gap closed by a ``timer:`` span is retry back-off, any other gap is
    ``wait`` at the initiator.  The segments partition
    ``[root.start, root.end]`` exactly.
    """
    root = tree.root
    if root.end is None:
        raise ValueError(f"trace {tree.trace}: root span never closed")

    def latest_end(span: Span) -> float:
        assert span.end is not None
        return max(
            min(span.end, root.end),
            max((latest_end(c) for c in span.children if c.end is not None),
                default=0.0),
        )

    chain: list[Span] = []
    current = root
    while True:
        candidates = [c for c in current.children
                      if c.end is not None and c.start <= root.end]
        if not candidates:
            break
        current = max(candidates, key=lambda c: (latest_end(c), -c.span))
        chain.append(current)

    segments: list[CriticalSegment] = []
    cursor = root.start
    for span in chain:
        assert span.end is not None
        start = max(span.start, cursor)
        end = min(span.end, root.end)
        if span.start > cursor:
            category = "timer" if span.name.startswith("timer:") else "wait"
            segments.append(CriticalSegment(
                category=category, name=f"before {span.name}",
                node=span.node, start=cursor, end=min(span.start, root.end)))
            cursor = min(span.start, root.end)
        if end > start:
            segments.append(CriticalSegment(
                category=_category(span.name), name=span.name,
                node=span.node, start=start, end=end))
            cursor = end
    if cursor < root.end:
        segments.append(CriticalSegment(category="wait", name="at root",
                                        node=root.node, start=cursor,
                                        end=root.end))
    return segments


def _category(name: str) -> str:
    if name.startswith("msg:"):
        return "transit"
    if name.startswith("proc:"):
        return "process"
    if name.startswith("timer:"):
        return "timer"
    return "wait"


def path_totals(segments: Sequence[CriticalSegment]) -> dict[str, float]:
    """Per-category seconds of one critical path (every category keyed)."""
    totals = dict.fromkeys(CATEGORIES, 0.0)
    for seg in segments:
        totals[seg.category] += seg.duration
    return totals


# -- rendering ------------------------------------------------------------


def _render_span(span: Span, depth: int, lines: list[str]) -> None:
    pad = "  " * depth
    if span.end is None:
        window = f"[{span.start:.3f}s → …]"
        status = "OPEN"
    else:
        window = f"[{span.start:.3f}s → {span.end:.3f}s]"
        status = span.status
    lines.append(f"{pad}{span.name} @n{span.node} {window} {status}")
    for child in span.children:
        _render_span(child, depth + 1, lines)


def render_span_trees(analysis: SpanAnalysis, *, limit: int | None = 10) -> str:
    """Text rendering for ``python -m repro.obs spans``."""
    lines: list[str] = []
    statuses = ", ".join(f"{k}: {v}" for k, v in
                         sorted(analysis.root_status_counts.items()))
    lines.append(
        f"{len(analysis.trees)} span trees "
        f"({len(analysis.complete_trees)} complete) — roots {statuses or '-'}"
    )
    if analysis.orphans:
        lines.append(f"ORPHAN roots (never closed): {analysis.orphans[:20]}"
                     + (" …" if len(analysis.orphans) > 20 else ""))
    if analysis.half_open:
        lines.append(f"{len(analysis.half_open)} half-open spans "
                     "(in flight at run end, or lost on the real wire)")
    if analysis.unmatched_ends:
        lines.append(f"INSTRUMENTATION BUG: ends without start: "
                     f"{analysis.unmatched_ends[:20]}")
    if analysis.double_closed:
        lines.append(f"INSTRUMENTATION BUG: spans closed twice: "
                     f"{analysis.double_closed[:20]}")
    if analysis.detached:
        lines.append(f"DETACHED spans (parent unknown): {analysis.detached[:20]}")
    shown = analysis.trees
    if limit is not None and len(shown) > limit:
        lines.append(f"(showing first {limit} of {len(shown)} trees)")
        shown = shown[:limit]
    for tree in shown:
        flag = "" if tree.complete else "  [INCOMPLETE]"
        lines.append(f"trace {tree.trace} — {tree.n_spans} spans, "
                     f"depth {tree.depth}{flag}")
        _render_span(tree.root, 1, lines)
    return "\n".join(lines)


def render_critical_paths(analysis: SpanAnalysis, *,
                          limit: int | None = 10) -> str:
    """Text rendering for ``python -m repro.obs critpath``."""
    lines: list[str] = []
    complete = analysis.complete_trees
    grand = dict.fromkeys(CATEGORIES, 0.0)
    per_tree: list[tuple[SpanTree, list[CriticalSegment], dict[str, float]]] = []
    for tree in complete:
        segments = critical_path(tree)
        totals = path_totals(segments)
        for cat in CATEGORIES:
            grand[cat] += totals[cat]
        per_tree.append((tree, segments, totals))
    total_s = sum(grand.values())
    share = ", ".join(
        f"{cat} {grand[cat]:.3f}s"
        + (f" ({100.0 * grand[cat] / total_s:.1f}%)" if total_s > 0 else "")
        for cat in CATEGORIES
    )
    lines.append(f"{len(complete)} complete trees "
                 f"({len(analysis.trees) - len(complete)} incomplete skipped) "
                 f"— critical path: {share}")
    shown = per_tree
    if limit is not None and len(shown) > limit:
        lines.append(f"(showing first {limit} of {len(shown)} paths)")
        shown = shown[:limit]
    for tree, segments, totals in shown:
        root = tree.root
        assert root.end is not None
        lines.append(
            f"trace {tree.trace}: {root.name} @n{root.node} "
            f"{root.end - root.start:.3f}s — "
            + ", ".join(f"{cat} {totals[cat]:.3f}s" for cat in CATEGORIES)
        )
        for seg in segments:
            lines.append(f"  {seg.start:>10.3f}s {seg.duration:>8.3f}s "
                         f"{seg.category:<8} {seg.name:<24} n{seg.node}")
    return "\n".join(lines)


def analysis_to_dict(analysis: SpanAnalysis) -> dict[str, Any]:
    """JSON-ready summary for ``--json-out`` (and the CI artifact)."""
    grand = dict.fromkeys(CATEGORIES, 0.0)
    depths: list[int] = []
    for tree in analysis.complete_trees:
        depths.append(tree.depth)
        for cat, secs in path_totals(critical_path(tree)).items():
            grand[cat] += secs
    return {
        "trees": len(analysis.trees),
        "complete": len(analysis.complete_trees),
        "root_status_counts": analysis.root_status_counts,
        "max_depth": max(depths, default=0),
        "orphans": len(analysis.orphans),
        "half_open": len(analysis.half_open),
        "unmatched_ends": len(analysis.unmatched_ends),
        "double_closed": len(analysis.double_closed),
        "detached": len(analysis.detached),
        "critical_path_seconds": {k: round(v, 6) for k, v in grand.items()},
        "clean": analysis.clean,
    }


def dump_analysis(analysis: SpanAnalysis, path: str | Path) -> None:
    """Write the JSON summary to ``path``."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(analysis_to_dict(analysis), indent=2,
                              sort_keys=True) + "\n", encoding="utf-8")
