"""Trace analysis: 2PC exchange timelines and protocol liveness flags.

:func:`reconstruct_timelines` folds a trace back into per-exchange
timelines — for every ``EXCHANGE_PREPARE`` the matching outcome
(``COMMIT`` / ``ABORT`` / ``TIMEOUT``) and the sim-time between the
two.  The protocol's safety story says each prepare resolves exactly
once; a prepare with no outcome (``half_open``) or with more than one
(``over_resolved``) is a protocol bug, and the analyzer is the tool
that finds it in a fault-injection run.

Liveness flags:

* **half-open exchanges** — PREPARE with no COMMIT/ABORT/TIMEOUT;
* **late replies** — a ``VAR_REPLY`` delivered for a cycle whose
  walk already timed out (the initiator discards it; frequent late
  replies mean ``reply_timeout`` is tuned too tight for the loss
  profile);
* **inline commits** — ``EXCHANGE_COMMIT`` with ``xid = -1`` from the
  non-message engines, listed separately (no prepare to match).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.events import (
    Event,
    ExchangeAbortEvent,
    ExchangeCommitEvent,
    ExchangePrepareEvent,
    ExchangeTimeoutEvent,
    MsgDeliverEvent,
    MsgTimeoutEvent,
    events_from_jsonl,
)

__all__ = [
    "ExchangeTimeline",
    "TraceAnalysis",
    "load_trace",
    "reconstruct_timelines",
    "render_timelines",
]


@dataclass(frozen=True)
class ExchangeTimeline:
    """One two-phase exchange from proposal to resolution."""

    xid: int
    u: int
    v: int
    var: float
    prepare_time: float
    outcome: str  # "commit" | "abort" | "timeout" | "half-open"
    outcome_time: float | None = None
    reason: str = ""

    @property
    def resolution_seconds(self) -> float | None:
        if self.outcome_time is None:
            return None
        return self.outcome_time - self.prepare_time


@dataclass
class TraceAnalysis:
    """Everything :func:`reconstruct_timelines` derives from one trace."""

    timelines: list[ExchangeTimeline] = field(default_factory=list)
    half_open: list[int] = field(default_factory=list)  # unresolved xids
    over_resolved: list[int] = field(default_factory=list)  # >1 outcome
    orphan_outcomes: list[int] = field(default_factory=list)  # outcome, no prepare
    late_replies: list[tuple[float, int, int]] = field(default_factory=list)
    inline_commits: int = 0

    @property
    def outcome_counts(self) -> dict[str, int]:
        counts = {"commit": 0, "abort": 0, "timeout": 0, "half-open": 0}
        for tl in self.timelines:
            counts[tl.outcome] += 1
        return counts

    @property
    def clean(self) -> bool:
        """True when every prepare resolved exactly once."""
        return not self.half_open and not self.over_resolved and not self.orphan_outcomes


def load_trace(path: str | Path) -> list[Event]:
    """Read a JSONL trace file back into typed events."""
    return events_from_jsonl(Path(path).read_text(encoding="utf-8"))


def reconstruct_timelines(events: Iterable[Event]) -> TraceAnalysis:
    """Fold a trace into per-exchange timelines (see module docs)."""
    analysis = TraceAnalysis()
    prepares: dict[int, ExchangePrepareEvent] = {}
    outcomes: dict[int, tuple[str, float, str]] = {}
    walk_timeouts: set[tuple[int, int]] = set()  # (origin u, cycle)

    for ev in events:
        if isinstance(ev, ExchangePrepareEvent):
            prepares[ev.xid] = ev
        elif isinstance(ev, ExchangeCommitEvent):
            if ev.xid < 0:
                analysis.inline_commits += 1
            else:
                _record_outcome(analysis, outcomes, ev.xid, "commit", ev.time, "")
        elif isinstance(ev, ExchangeAbortEvent):
            if ev.xid >= 0:  # inline engines abort with xid=-1 (no prepare)
                _record_outcome(analysis, outcomes, ev.xid, "abort", ev.time, ev.reason)
        elif isinstance(ev, ExchangeTimeoutEvent):
            if ev.xid >= 0:
                _record_outcome(analysis, outcomes, ev.xid, "timeout", ev.time, "")
        elif isinstance(ev, MsgTimeoutEvent):
            if ev.kind == "walk":
                walk_timeouts.add((ev.u, ev.tag))
        elif isinstance(ev, MsgDeliverEvent):
            if ev.mtype == "VAR_REPLY" and (ev.dst, ev.tag) in walk_timeouts:
                analysis.late_replies.append((ev.time, ev.dst, ev.tag))

    for xid in sorted(prepares):
        prep = prepares[xid]
        outcome = outcomes.get(xid)
        if outcome is None:
            analysis.half_open.append(xid)
            analysis.timelines.append(
                ExchangeTimeline(
                    xid=xid, u=prep.u, v=prep.v, var=prep.var,
                    prepare_time=prep.time, outcome="half-open",
                )
            )
            continue
        kind, at, reason = outcome
        analysis.timelines.append(
            ExchangeTimeline(
                xid=xid, u=prep.u, v=prep.v, var=prep.var,
                prepare_time=prep.time, outcome=kind, outcome_time=at,
                reason=reason,
            )
        )
    analysis.orphan_outcomes = sorted(set(outcomes) - set(prepares))
    return analysis


def _record_outcome(
    analysis: TraceAnalysis,
    outcomes: dict[int, tuple[str, float, str]],
    xid: int,
    kind: str,
    time: float,
    reason: str,
) -> None:
    if xid in outcomes:
        if xid not in analysis.over_resolved:
            analysis.over_resolved.append(xid)
        return
    outcomes[xid] = (kind, time, reason)


def render_timelines(analysis: TraceAnalysis, *, limit: int | None = 40) -> str:
    """Text rendering for ``python -m repro.obs timeline``."""
    lines: list[str] = []
    counts = analysis.outcome_counts
    total = len(analysis.timelines)
    lines.append(
        f"{total} two-phase exchanges: {counts['commit']} committed, "
        f"{counts['abort']} aborted, {counts['timeout']} timed out, "
        f"{counts['half-open']} half-open"
    )
    if analysis.inline_commits:
        lines.append(f"{analysis.inline_commits} inline commits (no 2PC, xid=-1)")
    if analysis.late_replies:
        lines.append(f"{len(analysis.late_replies)} late VAR_REPLYs "
                     "(walk already timed out)")
    if analysis.over_resolved:
        lines.append(f"PROTOCOL BUG: xids resolved twice: {analysis.over_resolved}")
    if analysis.orphan_outcomes:
        lines.append(f"PROTOCOL BUG: outcomes without prepare: {analysis.orphan_outcomes}")
    if analysis.half_open:
        lines.append(f"HALF-OPEN xids: {analysis.half_open}")
    shown: Sequence[ExchangeTimeline] = analysis.timelines
    if limit is not None and len(shown) > limit:
        lines.append(f"(showing first {limit} of {len(shown)} timelines)")
        shown = shown[:limit]
    if shown:
        header = (f"{'xid':>6} {'u':>5} {'v':>5} {'var':>10} "
                  f"{'prepared':>10} {'outcome':>9} {'resolved':>10} {'reason':<12}")
        lines += [header, "-" * len(header)]
        for tl in shown:
            resolved = f"{tl.outcome_time:.3f}" if tl.outcome_time is not None else "-"
            lines.append(
                f"{tl.xid:>6} {tl.u:>5} {tl.v:>5} {tl.var:>10.2f} "
                f"{tl.prepare_time:>10.3f} {tl.outcome:>9} {resolved:>10} "
                f"{tl.reason:<12}"
            )
    return "\n".join(lines)
