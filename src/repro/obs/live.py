"""Streaming trace consumers: windowed online aggregators.

The passive half of ``repro.obs`` buffers every event and analyzes the
trace post-mortem; this module is the active half's foundation.  A
:class:`~repro.obs.trace.TraceConsumer` subscribes to the tracer bus and
folds events into per-window aggregate state as they happen, so a
``streaming=True`` tracer retains O(windows) of memory instead of
O(events) — the property that makes hour-long n=1000 traced runs (and
bigger) affordable.

Windows are fixed sim-time buckets ``[k·width, (k+1)·width)``.  Events
arrive in nondecreasing simulation time (the simulator guarantees it;
the aggregators enforce it), so a window can be sealed the moment the
first event of a later window arrives — there is never more than one
open window per aggregator.  Empty windows are skipped: the ``windows``
list holds one :class:`Window` per bucket that actually saw events,
tagged with its bucket index.

Aggregates are deliberately *deterministic* in the event stream: the
same run produces identical ``windows`` lists whether events were
streamed live or replayed from a buffered trace
(:func:`replay`), serially or from a worker process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.obs.events import Event
from repro.obs.trace import TraceConsumer

__all__ = [
    "HistStat",
    "MeanStat",
    "Window",
    "WindowedCounts",
    "WindowedHistogram",
    "WindowedMean",
    "replay",
]


@dataclass(frozen=True)
class Window:
    """One sealed aggregation bucket: ``[start, end)`` holding ``value``."""

    index: int
    start: float
    end: float
    value: Any


@dataclass(frozen=True)
class MeanStat:
    """Count/total pair (the online form of a mean)."""

    count: int
    total: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass(frozen=True)
class HistStat:
    """Fixed-bucket histogram snapshot (same shape as registry histograms)."""

    edges: tuple[float, ...]
    counts: tuple[int, ...]
    count: int
    total: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _WindowedAggregator:
    """Shared window bookkeeping; subclasses define the per-window state.

    Subclasses implement ``_accepts`` (event filter), ``_new_state``,
    ``_add`` (fold one event in) and ``_snapshot`` (freeze the state
    into the sealed :class:`Window`'s value).
    """

    def __init__(self, width: float) -> None:
        width = float(width)
        if width <= 0.0:
            raise ValueError(f"window width must be > 0, got {width}")
        self.width = width
        self.windows: list[Window] = []
        self._index: int | None = None
        self._state: Any = None

    # -- TraceConsumer interface -----------------------------------------

    def on_event(self, event: Event) -> None:
        if not self._accepts(event):
            return
        index = int(event.time // self.width)
        if self._index is None:
            self._open(index)
        elif index > self._index:
            self._seal()
            self._open(index)
        elif index < self._index:
            raise ValueError(
                f"event at t={event.time} arrived after window {self._index} "
                "opened; consumers require nondecreasing event times"
            )
        self._add(self._state, event)

    def finish(self, end_time: float) -> None:
        self._seal()

    # -- window bookkeeping ----------------------------------------------

    def _open(self, index: int) -> None:
        self._index = index
        self._state = self._new_state()

    def _seal(self) -> None:
        if self._index is None:
            return
        self.windows.append(
            Window(
                index=self._index,
                start=self._index * self.width,
                end=(self._index + 1) * self.width,
                value=self._snapshot(self._state),
            )
        )
        self._index = None
        self._state = None

    # -- subclass hooks ---------------------------------------------------

    def _accepts(self, event: Event) -> bool:
        return True

    def _new_state(self) -> Any:
        raise NotImplementedError

    def _add(self, state: Any, event: Event) -> None:
        raise NotImplementedError

    def _snapshot(self, state: Any) -> Any:
        raise NotImplementedError


class WindowedCounts(_WindowedAggregator):
    """Per-window event counts keyed by event type.

    Each sealed window's value is a ``{etype: count}`` dict (sorted
    keys, so two runs' windows compare field-for-field).  ``totals()``
    folds the sealed windows into whole-run counts.
    """

    def _new_state(self) -> dict[str, int]:
        return {}

    def _add(self, state: dict[str, int], event: Event) -> None:
        state[event.etype] = state.get(event.etype, 0) + 1

    def _snapshot(self, state: dict[str, int]) -> dict[str, int]:
        return dict(sorted(state.items()))

    def totals(self) -> dict[str, int]:
        """Whole-run counts over the sealed windows."""
        out: dict[str, int] = {}
        for window in self.windows:
            for etype, count in window.value.items():
                out[etype] = out.get(etype, 0) + count
        return dict(sorted(out.items()))


class WindowedMean(_WindowedAggregator):
    """Per-window online mean of one numeric payload field.

    ``etype`` filters the stream (e.g. ``"VAR_COLLECT"``) and ``field``
    names the payload attribute to average (e.g. ``"var"``).  Sealed
    windows carry a :class:`MeanStat`.
    """

    def __init__(self, width: float, etype: str, field: str) -> None:
        super().__init__(width)
        self.etype = str(etype)
        self.field = str(field)

    def _accepts(self, event: Event) -> bool:
        return event.etype == self.etype

    def _new_state(self) -> list[float]:
        return [0, 0.0]  # count, total

    def _add(self, state: list[float], event: Event) -> None:
        state[0] += 1
        state[1] += float(getattr(event, self.field))

    def _snapshot(self, state: list[float]) -> MeanStat:
        return MeanStat(count=int(state[0]), total=state[1])


class WindowedHistogram(_WindowedAggregator):
    """Per-window fixed-bucket histogram of one numeric payload field.

    ``edges`` are upper bounds plus an implicit overflow bucket — fixed
    at construction, so every window (and every run) is comparable
    bucket for bucket.  Sealed windows carry a :class:`HistStat`.
    """

    def __init__(
        self, width: float, etype: str, field: str, edges: Sequence[float]
    ) -> None:
        super().__init__(width)
        self.etype = str(etype)
        self.field = str(field)
        self.edges = tuple(float(e) for e in edges)
        if not self.edges or list(self.edges) != sorted(self.edges):
            raise ValueError("histogram edges must be sorted and non-empty")

    def _accepts(self, event: Event) -> bool:
        return event.etype == self.etype

    def _new_state(self) -> list[Any]:
        return [[0] * (len(self.edges) + 1), 0, 0.0]  # counts, count, total

    def _add(self, state: list[Any], event: Event) -> None:
        value = float(getattr(event, self.field))
        counts = state[0]
        state[1] += 1
        state[2] += value
        for i, edge in enumerate(self.edges):
            if value <= edge:
                counts[i] += 1
                return
        counts[-1] += 1

    def _snapshot(self, state: list[Any]) -> HistStat:
        return HistStat(
            edges=self.edges,
            counts=tuple(state[0]),
            count=int(state[1]),
            total=float(state[2]),
        )


def replay(
    events: Iterable[Event],
    consumers: Sequence[TraceConsumer],
    *,
    end_time: float | None = None,
) -> Sequence[TraceConsumer]:
    """Feed a buffered trace through ``consumers`` as if streamed live.

    The equivalence bridge between the two tracer modes: replaying a
    buffered run's events yields aggregates identical to a
    ``streaming=True`` run of the same seed.  ``end_time`` defaults to
    the last event's timestamp (0.0 for an empty trace).
    """
    last = 0.0
    for event in events:
        for consumer in consumers:
            consumer.on_event(event)
        last = event.time
    final = float(end_time) if end_time is not None else last
    for consumer in consumers:
        consumer.finish(final)
    return consumers
