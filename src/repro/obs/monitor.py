"""Online convergence detectors fed by streaming trace consumers.

PROP's headline claim is a *trajectory* — the overlay converges toward
the underlay after a bounded warm-up — so monitoring has to watch the
run in flight, not sample it once.  This module holds the detectors:

* :class:`ExchangeEfficacy` — of the exchanges that committed, what
  fraction demonstrably reduced the pair's Var (the next ``VAR_COLLECT``
  observed for the same unordered pair came in below the committed
  value)?  A healthy run trends high; a run whose exchanges stop paying
  off has converged (or is thrashing).
* :class:`ThrashDetector` — the pathological counterpart: the same
  unordered pair committing again within ``k`` probe cycles, i.e.
  neighbors being swapped back and forth instead of settling.
* :class:`ConvergenceMonitor` — the composite consumer the harness
  installs: tallies exchange outcomes, delegates to the two detectors
  above, accepts latency samples via :meth:`ConvergenceMonitor.on_sample`
  and runs plateau detection on them through
  :func:`repro.metrics.convergence.convergence_epoch`.  Its
  :meth:`ConvergenceMonitor.status` snapshot backs the CLI's
  ``--monitor`` progress line.

Everything here runs on simulation time only.  Wall-clock concerns
(ETA, refresh cadence) live with the CLI renderer, which is the one
place allowed to look at a real clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.convergence import convergence_epoch
from repro.obs.events import Event

__all__ = [
    "ConvergenceMonitor",
    "ExchangeEfficacy",
    "MonitorStatus",
    "ThrashDetector",
    "format_status",
]


def _pair(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u <= v else (v, u)


class ExchangeEfficacy:
    """Fraction of committed exchanges that reduced the pair's Var.

    Each ``EXCHANGE_COMMIT`` opens a pending entry keyed by the
    unordered ``(u, v)`` pair, holding the Var the exchange committed
    at.  The next ``VAR_COLLECT`` observed for that pair resolves it:
    *effective* when the newly evaluated Var is strictly below the
    committed one.  Commits whose pair is never probed again stay
    unresolved and do not count either way.
    """

    def __init__(self) -> None:
        self.commits = 0
        self.resolved = 0
        self.effective = 0
        self._pending: dict[tuple[int, int], float] = {}

    def on_event(self, event: Event) -> None:
        if event.etype == "EXCHANGE_COMMIT":
            self.commits += 1
            self._pending[_pair(event.u, event.v)] = event.var  # type: ignore[attr-defined]
        elif event.etype == "VAR_COLLECT":
            pair = _pair(event.u, event.v)  # type: ignore[attr-defined]
            committed = self._pending.pop(pair, None)
            if committed is not None:
                self.resolved += 1
                if event.var < committed:  # type: ignore[attr-defined]
                    self.effective += 1

    def finish(self, end_time: float) -> None:
        pass

    @property
    def pending(self) -> int:
        return len(self._pending)

    @property
    def efficacy(self) -> float | None:
        """Effective fraction of resolved commits (None before any resolve)."""
        return self.effective / self.resolved if self.resolved else None


class ThrashDetector:
    """Same unordered pair committing again within ``k`` probe cycles.

    Probe cycles are the protocol's own clock (``cycle`` on PROBE /
    VAR_COLLECT events is globally increasing); a pair that commits at
    cycle ``c`` and again by ``c + k`` is oscillating — exchanging
    neighbors back instead of converging.
    """

    def __init__(self, k: int = 3) -> None:
        if k < 1:
            raise ValueError("thrash window k must be >= 1")
        self.k = int(k)
        self.commits = 0
        self.thrashes = 0
        self.thrash_pairs: list[tuple[int, int]] = []
        self._cycle = 0
        self._last_commit: dict[tuple[int, int], int] = {}

    def on_event(self, event: Event) -> None:
        etype = event.etype
        if etype in ("PROBE", "VAR_COLLECT"):
            cycle = event.cycle  # type: ignore[attr-defined]
            if cycle > self._cycle:
                self._cycle = cycle
        elif etype == "EXCHANGE_COMMIT":
            self.commits += 1
            pair = _pair(event.u, event.v)  # type: ignore[attr-defined]
            last = self._last_commit.get(pair)
            if last is not None and self._cycle - last <= self.k:
                self.thrashes += 1
                self.thrash_pairs.append(pair)
            self._last_commit[pair] = self._cycle

    def finish(self, end_time: float) -> None:
        pass


@dataclass(frozen=True)
class MonitorStatus:
    """One snapshot of a monitored run, ready for rendering."""

    phase: str
    sim_time: float
    duration: float
    latency_ms: float | None
    commits: int
    aborts: int
    timeouts: int
    efficacy: float | None
    thrashes: int
    plateau_time: float | None


class ConvergenceMonitor:
    """Composite streaming consumer behind the CLI's ``--monitor``.

    Parameters
    ----------
    duration:
        The run's configured duration (for the progress fraction).
    warmup_end:
        Sim time at which the warm-up phase nominally ends (from the
        experiment's phase breakdown); before it ``status().phase`` is
        ``"warmup"``, after it ``"maintenance"``.
    rel_tol, window:
        Plateau parameters forwarded to
        :func:`repro.metrics.convergence.convergence_epoch` over the
        latency samples fed via :meth:`on_sample`.
    thrash_cycles:
        ``k`` for the :class:`ThrashDetector`.
    """

    def __init__(
        self,
        duration: float,
        *,
        warmup_end: float = 0.0,
        rel_tol: float = 0.01,
        window: int = 3,
        thrash_cycles: int = 3,
    ) -> None:
        self.duration = float(duration)
        self.warmup_end = float(warmup_end)
        self.rel_tol = float(rel_tol)
        self.window = int(window)
        self.efficacy = ExchangeEfficacy()
        self.thrash = ThrashDetector(thrash_cycles)
        self.commits = 0
        self.aborts = 0
        self.timeouts = 0
        self.sample_times: list[float] = []
        self.samples: list[float] = []
        self.sim_time = 0.0
        self.finished = False

    # -- TraceConsumer interface -----------------------------------------

    def on_event(self, event: Event) -> None:
        if event.time > self.sim_time:
            self.sim_time = event.time
        etype = event.etype
        if etype == "EXCHANGE_COMMIT":
            self.commits += 1
        elif etype == "EXCHANGE_ABORT":
            self.aborts += 1
        elif etype == "EXCHANGE_TIMEOUT":
            self.timeouts += 1
        self.efficacy.on_event(event)
        self.thrash.on_event(event)

    def finish(self, end_time: float) -> None:
        if end_time > self.sim_time:
            self.sim_time = end_time
        self.efficacy.finish(end_time)
        self.thrash.finish(end_time)
        self.finished = True

    # -- sample feed (driven by the harness sampling loop) ----------------

    def on_sample(self, t: float, latency_ms: float) -> None:
        """Record one average-latency sample at sim time ``t``."""
        if t > self.sim_time:
            self.sim_time = t
        self.sample_times.append(float(t))
        self.samples.append(float(latency_ms))

    # -- snapshots ---------------------------------------------------------

    @property
    def plateau_time(self) -> float | None:
        """Sim time the latency series first plateaus (None until it does)."""
        if len(self.samples) < self.window + 2:
            return None
        return convergence_epoch(
            self.sample_times, self.samples, rel_tol=self.rel_tol, window=self.window
        )

    def status(self) -> MonitorStatus:
        if self.finished:
            phase = "done"
        elif self.sim_time < self.warmup_end:
            phase = "warmup"
        else:
            phase = "maintenance"
        return MonitorStatus(
            phase=phase,
            sim_time=self.sim_time,
            duration=self.duration,
            latency_ms=self.samples[-1] if self.samples else None,
            commits=self.commits,
            aborts=self.aborts,
            timeouts=self.timeouts,
            efficacy=self.efficacy.efficacy,
            thrashes=self.thrash.thrashes,
            plateau_time=self.plateau_time,
        )


def format_status(status: MonitorStatus, *, eta_seconds: float | None = None) -> str:
    """Render one ``--monitor`` progress line (no trailing newline).

    ``eta_seconds`` is the caller's wall-clock estimate; the monitor
    itself never reads a real clock.
    """
    parts = [
        f"[{status.phase}]",
        f"t={status.sim_time:.0f}/{status.duration:.0f}s",
    ]
    if status.latency_ms is not None:
        parts.append(f"lat {status.latency_ms:.1f}ms")
    parts.append(
        f"exch {status.commits}c/{status.aborts}a/{status.timeouts}t"
    )
    if status.efficacy is not None:
        parts.append(f"eff {status.efficacy:.2f}")
    if status.thrashes:
        parts.append(f"thrash {status.thrashes}")
    if status.plateau_time is not None:
        parts.append(f"plateau@{status.plateau_time:.0f}s")
    if eta_seconds is not None:
        parts.append(f"eta ~{max(0.0, eta_seconds):.0f}s")
    return "  ".join(parts)
