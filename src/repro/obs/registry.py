"""The unified metrics registry.

Before this module existed the repo had three disconnected telemetry
surfaces: :class:`~repro.core.protocol.ProtocolCounters` (probe/exchange
tallies), :class:`~repro.net.engine.NetCounters` (fault-visible
outcomes), and :class:`~repro.net.transport.TransportStats` (wire-level
sends/drops).  Each kept its own naming and the CLI printed overlapping
numbers from two of them.  :class:`MetricsRegistry` is the single
namespace they all land in: counters, gauges, and fixed-bucket
histograms keyed by dotted metric names.

The legacy dataclasses stay exactly as they are — the §4.3 closed-form
tests read them directly — and the ``absorb_*`` adapters copy them into
the registry at reporting time.  One object, one snapshot, one table.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NET_TABLE_COLUMNS",
    "VAR_BUCKETS",
    "absorb_net_counters",
    "absorb_protocol_counters",
    "absorb_transport_stats",
    "net_summary_rows",
    "percentile_from_buckets",
    "registry_from_result",
]

#: Fixed bucket edges for Var histograms (ms of latency-sum improvement).
VAR_BUCKETS: tuple[float, ...] = (0.0, 10.0, 50.0, 100.0, 250.0, 500.0, 1000.0)


def percentile_from_buckets(
    edges: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Estimate the ``q``-th percentile (0..100) of a bucketed sample.

    Standard fixed-bucket estimation (the histogram keeps no raw
    values): find the bucket holding the target rank and interpolate
    linearly between its edges.  The estimate is clamped to the finite
    edge range — the underflow bucket reports the first edge, the
    overflow bucket the last — so it is exact only up to the bucket
    resolution, which is the price of O(buckets) memory.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q / 100.0 * total
    cum = 0.0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        if cum + c >= target:
            if i == 0:
                return float(edges[0])
            if i == len(edges):
                return float(edges[-1])
            lo, hi = float(edges[i - 1]), float(edges[i])
            return lo + (hi - lo) * (target - cum) / c
        cum += c
    return float(edges[-1])


@dataclass
class Counter:
    """Monotonically increasing integer metric."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {n})")
        self.value += n


@dataclass
class Gauge:
    """Point-in-time float metric (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Fixed-bucket histogram: ``edges`` are the upper bounds, plus a
    final overflow bucket.  Edges are fixed at creation so two runs'
    histograms are always comparable bucket for bucket."""

    name: str
    edges: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.edges or list(self.edges) != sorted(self.edges):
            raise ValueError(f"histogram {self.name} needs sorted, non-empty edges")
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.total += value
        self.count += 1
        for i, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-interpolated percentile estimate (``q`` in 0..100)."""
        return percentile_from_buckets(self.edges, self.counts, q)


class MetricsRegistry:
    """Get-or-create registry of named metrics with a canonical snapshot."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- creation --------------------------------------------------------

    def counter(self, name: str) -> Counter:
        self._check_free(name, self._counters)
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        self._check_free(name, self._gauges)
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str, edges: Sequence[float] = VAR_BUCKETS) -> Histogram:
        self._check_free(name, self._histograms)
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram(name, tuple(float(e) for e in edges))
            self._histograms[name] = hist
        elif hist.edges != tuple(float(e) for e in edges):
            raise ValueError(f"histogram {name} re-registered with different edges")
        return hist

    def _check_free(self, name: str, own: Mapping[str, Any]) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if table is not own and name in table:
                raise ValueError(f"metric name {name!r} already used with another kind")

    # -- reading ---------------------------------------------------------

    def names(self) -> list[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def snapshot(self) -> dict[str, Any]:
        """Canonical JSON-ready view, keys sorted for diffability."""
        out: dict[str, Any] = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].value
        for name in sorted(self._gauges):
            out[name] = self._gauges[name].value
        for name in sorted(self._histograms):
            h = self._histograms[name]
            out[name] = {
                "edges": list(h.edges),
                "counts": list(h.counts),
                "count": h.count,
                "sum": h.total,
            }
        return dict(sorted(out.items()))


# -- adapters over the legacy telemetry surfaces --------------------------


def absorb_protocol_counters(
    registry: MetricsRegistry, counters: Any, *, prefix: str = "prop"
) -> None:
    """Copy a :class:`ProtocolCounters`-shaped object into the registry.

    Integer fields become counters; ``var_history`` lands in a fixed
    :data:`VAR_BUCKETS` histogram (negative Vars fall in the first
    bucket — a failed opportunity, still an observation).
    """
    for f in fields(counters):
        value = getattr(counters, f.name)
        if isinstance(value, bool) or not isinstance(value, int):
            continue
        registry.counter(f"{prefix}.{f.name}").inc(value)
    history = getattr(counters, "var_history", None)
    if history:
        hist = registry.histogram(f"{prefix}.var", VAR_BUCKETS)
        for var in history:
            hist.observe(float(var))


def absorb_net_counters(
    registry: MetricsRegistry, net_counters: Any, *, prefix: str = "net"
) -> None:
    """Copy :class:`NetCounters` (timeouts / retries / rejects)."""
    for f in fields(net_counters):
        value = getattr(net_counters, f.name)
        if isinstance(value, int) and not isinstance(value, bool):
            registry.counter(f"{prefix}.{f.name}").inc(value)


def absorb_transport_stats(
    registry: MetricsRegistry, stats: Any, *, prefix: str = "transport"
) -> None:
    """Copy :class:`TransportStats` (wire-level message telemetry)."""
    registry.counter(f"{prefix}.sent").inc(int(stats.total_sent))
    registry.counter(f"{prefix}.delivered").inc(int(stats.total_delivered))
    registry.counter(f"{prefix}.dropped").inc(int(stats.total_dropped))
    registry.counter(f"{prefix}.bytes_sent").inc(int(stats.bytes_sent))
    registry.gauge(f"{prefix}.max_in_flight").set(float(stats.max_in_flight))
    for mtype in sorted(stats.sent):
        registry.counter(f"{prefix}.sent.{mtype}").inc(stats.sent[mtype])
    for mtype in sorted(stats.dropped):
        registry.counter(f"{prefix}.dropped.{mtype}").inc(stats.dropped[mtype])
    for reason in sorted(stats.drop_reasons):
        registry.counter(f"{prefix}.drop_reason.{reason}").inc(stats.drop_reasons[reason])


def registry_from_result(result: Any) -> MetricsRegistry:
    """One registry absorbing every telemetry surface a result carries.

    ``result`` is an :class:`~repro.harness.experiment.ExperimentResult`
    (typed as Any to keep :mod:`repro.obs` import-free of the harness).
    """
    registry = MetricsRegistry()
    if getattr(result, "final_counters", None) is not None:
        absorb_protocol_counters(registry, result.final_counters)
    if getattr(result, "net_counters", None) is not None:
        absorb_net_counters(registry, result.net_counters)
    if getattr(result, "net_stats", None) is not None:
        absorb_transport_stats(registry, result.net_stats)
    return registry


# -- the merged CLI table -------------------------------------------------

#: The pinned column set of the CLI's net-plane summary table.
NET_TABLE_COLUMNS: tuple[str, str] = ("metric", "value")


def net_summary_rows(registry: MetricsRegistry) -> list[list[Any]]:
    """Rows for the one merged net-plane table the CLI prints.

    Sourced exclusively from the registry, so ``transport.*`` (wire
    telemetry) and ``net.*`` (protocol-visible fault outcomes) appear
    once each — the NetCounters-vs-TransportStats double-reporting the
    old two-line summary had is structurally impossible here.
    """
    snap = registry.snapshot()
    rows: list[list[Any]] = []
    for name, value in snap.items():
        if not (name.startswith("net.") or name.startswith("transport.")):
            continue
        if isinstance(value, dict):
            continue  # histograms have no single-cell rendering
        rows.append([name, value])
    return rows


def _as_flat_items(snapshot: Mapping[str, Any]) -> Iterable[tuple[str, float]]:
    """Scalar view of a snapshot.

    Histograms flatten to count/sum plus the p50/p95/p99 estimates
    recomputed from their buckets — that is how reports (render, diff,
    replicate aggregation) export tail percentiles without widening the
    snapshot wire format.
    """
    for name, value in snapshot.items():
        if isinstance(value, dict):
            yield f"{name}.count", float(value.get("count", 0))
            yield f"{name}.sum", float(value.get("sum", 0.0))
            edges, counts = value.get("edges"), value.get("counts")
            if edges and counts:
                for q in (50, 95, 99):
                    yield (f"{name}.p{q}",
                           percentile_from_buckets(edges, counts, float(q)))
        else:
            yield name, float(value)
