"""The event bus: :class:`Tracer` and the zero-cost :class:`NullTracer`.

Instrumentation sites follow one pattern::

    if self.tracer.enabled:
        self.tracer.emit(ProbeEvent, u=u, s=s, cycle=cycle)

With the default :class:`NullTracer` the hot path pays exactly one
attribute check — the event object is never constructed.  A real
:class:`Tracer` stamps each event with the simulation clock it was
handed at construction and, in the default **buffered** mode, appends it
to an in-memory list; the list is plain picklable dataclasses, so a
worker process can ship its trace back through
:mod:`repro.harness.parallel` unchanged.

**Streaming** mode (``streaming=True``) is the active half of the
observability plane: each event is dispatched to the registered
:class:`TraceConsumer` subscribers and then *discarded*, so a long run
retains O(windows) of aggregate state instead of O(events) of raw
trace.  Consumers observe the identical event sequence in either mode —
the byte-determinism guarantee extends to what subscribers see, which is
what makes streaming aggregates comparable to post-mortem replays of a
buffered trace (:func:`repro.obs.live.replay`).

The tracer deliberately has no I/O of its own beyond
:meth:`Tracer.write_jsonl` / :func:`write_events_jsonl`; keeping events
in memory until the run ends is what makes the serial and multi-process
traces byte-identical (workers cannot interleave writes into one file).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Protocol

from repro.obs.events import Event, events_to_jsonl

__all__ = [
    "NullTracer",
    "TraceConsumer",
    "Tracer",
    "TracerLike",
    "NULL_TRACER",
    "write_events_jsonl",
]


class TracerLike(Protocol):
    """What instrumented code needs from a tracer."""

    enabled: bool

    def emit(self, event_cls: type[Event], **payload: object) -> None:
        """Record one event (no-op when tracing is off)."""
        ...  # pragma: no cover - protocol signature


class TraceConsumer(Protocol):
    """A streaming subscriber on the tracer bus.

    Consumers receive every event in emission order (nondecreasing
    simulation time) and a final :meth:`finish` when the run ends, so
    windowed aggregators can flush their last open window.  Consumer
    state must be picklable: worker processes ship their consumers back
    whole, exactly as buffered tracers ship their event lists.
    """

    def on_event(self, event: Event) -> None:
        """Observe one event."""
        ...  # pragma: no cover - protocol signature

    def finish(self, end_time: float) -> None:
        """The run ended at simulated ``end_time``; flush open state."""
        ...  # pragma: no cover - protocol signature


class NullTracer:
    """Tracing disabled: ``enabled`` is False and ``emit`` is a no-op.

    Instrumentation sites guard on ``enabled`` before building the
    event, so a disabled run never pays for payload construction.
    """

    enabled: bool = False

    def emit(self, event_cls: type[Event], **payload: object) -> None:
        pass


#: Shared default instance — the tracer is stateless when disabled.
NULL_TRACER = NullTracer()


def write_events_jsonl(events: Iterable[Event], path: str | Path) -> Path:
    """Write ``events`` to ``path`` in canonical JSONL form.

    The single write path for traces: parent directories are created,
    the content is exactly :func:`~repro.obs.events.events_to_jsonl`.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(events_to_jsonl(events), encoding="utf-8")
    return path


class Tracer:
    """Sim-time-stamped event collector with optional streaming dispatch.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulation time;
        typically ``lambda: sim.now``.  Defaults to a constant 0.0 for
        unit tests that construct events outside a simulation.
    streaming:
        When True, events are dispatched to ``consumers`` and then
        discarded instead of buffered — memory stays bounded by the
        consumers' aggregate state (O(windows)) for arbitrarily long
        runs.  ``events`` stays empty in this mode.
    consumers:
        Initial :class:`TraceConsumer` subscribers.  Consumers are
        notified in registration order on every emit, in both modes.
    """

    enabled: bool = True

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        *,
        streaming: bool = False,
        consumers: Iterable[TraceConsumer] = (),
    ) -> None:
        self._clock: Callable[[], float] = clock if clock is not None else lambda: 0.0
        self.streaming = bool(streaming)
        self.consumers: list[TraceConsumer] = list(consumers)
        self.events: list[Event] = []
        self._closed = False

    def add_consumer(self, consumer: TraceConsumer) -> None:
        """Subscribe ``consumer`` to every subsequent event."""
        self.consumers.append(consumer)

    def emit(self, event_cls: type[Event], **payload: object) -> None:
        # Hot path: when streaming with no subscribers the event would
        # be constructed and immediately discarded, so skip construction
        # entirely; consumers observe identical sequences either way.
        consumers = self.consumers
        if self.streaming:
            if not consumers:
                return
            event = event_cls(time=self._clock(), **payload)  # type: ignore[arg-type]
            for consumer in consumers:
                consumer.on_event(event)
            return
        event = event_cls(time=self._clock(), **payload)  # type: ignore[arg-type]
        if consumers:
            for consumer in consumers:
                consumer.on_event(event)
        self.events.append(event)

    def close(self, end_time: float | None = None) -> None:
        """Notify consumers the run ended (idempotent).

        ``end_time`` defaults to the clock's current reading; pass the
        run's final sample time explicitly so window flushes do not
        depend on where the clock happened to stop.
        """
        if self._closed:
            return
        self._closed = True
        final = float(end_time) if end_time is not None else float(self._clock())
        for consumer in self.consumers:
            consumer.finish(final)

    def __len__(self) -> int:
        return len(self.events)

    def to_jsonl(self) -> str:
        """The canonical JSONL form of the collected trace."""
        return events_to_jsonl(self.events)

    def write_jsonl(self, path: str | Path) -> Path:
        """Write the trace to ``path``; parent directories are created."""
        return write_events_jsonl(self.events, path)
