"""The event bus: :class:`Tracer` and the zero-cost :class:`NullTracer`.

Instrumentation sites follow one pattern::

    if self.tracer.enabled:
        self.tracer.emit(ProbeEvent, u=u, s=s, cycle=cycle)

With the default :class:`NullTracer` the hot path pays exactly one
attribute check — the event object is never constructed.  A real
:class:`Tracer` stamps each event with the simulation clock it was
handed at construction and appends it to an in-memory list; the list is
plain picklable dataclasses, so a worker process can ship its trace
back through :mod:`repro.harness.parallel` unchanged.

The tracer deliberately has no I/O of its own beyond
:meth:`Tracer.write_jsonl`; keeping events in memory until the run ends
is what makes the serial and multi-process traces byte-identical
(workers cannot interleave writes into one file).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Protocol

from repro.obs.events import Event, events_to_jsonl

__all__ = ["NullTracer", "Tracer", "TracerLike", "NULL_TRACER"]


class TracerLike(Protocol):
    """What instrumented code needs from a tracer."""

    enabled: bool

    def emit(self, event_cls: type[Event], **payload: object) -> None:
        """Record one event (no-op when tracing is off)."""
        ...  # pragma: no cover - protocol signature


class NullTracer:
    """Tracing disabled: ``enabled`` is False and ``emit`` is a no-op.

    Instrumentation sites guard on ``enabled`` before building the
    event, so a disabled run never pays for payload construction.
    """

    enabled: bool = False

    def emit(self, event_cls: type[Event], **payload: object) -> None:
        pass


#: Shared default instance — the tracer is stateless when disabled.
NULL_TRACER = NullTracer()


class Tracer:
    """In-memory, sim-time-stamped event collector.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulation time;
        typically ``lambda: sim.now``.  Defaults to a constant 0.0 for
        unit tests that construct events outside a simulation.
    """

    enabled: bool = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock: Callable[[], float] = clock if clock is not None else lambda: 0.0
        self.events: list[Event] = []

    def emit(self, event_cls: type[Event], **payload: object) -> None:
        self.events.append(event_cls(time=self._clock(), **payload))  # type: ignore[arg-type]

    def __len__(self) -> int:
        return len(self.events)

    def to_jsonl(self) -> str:
        """The canonical JSONL form of the collected trace."""
        return events_to_jsonl(self.events)

    def write_jsonl(self, path: str | Path) -> Path:
        """Write the trace to ``path``; parent directories are created."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path
