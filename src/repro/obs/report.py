"""Per-run reports.

A :class:`RunReport` is the machine-readable record of one experiment —
the muBench-style artifact that downstream analysis consumes without
re-running the simulation: the config fingerprint and seed that
reproduce it, the final unified metrics snapshot, the per-phase
sim-time breakdown, trace event totals, and (when the opt-in profiler
ran) the merged wall-clock stage timings.

Reports serialize to JSON (``save_report`` / ``load_report``), render
to markdown (``render_markdown`` — ``make report``), and diff against
each other (``diff_reports`` — ``python -m repro.obs diff``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections import Counter as _TallyCounter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.obs.registry import _as_flat_items, registry_from_result

__all__ = [
    "REPORT_SCHEMA",
    "RunReport",
    "build_replicate_report",
    "build_run_report",
    "config_fingerprint",
    "diff_reports",
    "load_report",
    "render_markdown",
    "save_report",
]

REPORT_SCHEMA = "repro.run-report/1"


def _jsonable(value: Any) -> Any:
    """Nested dataclasses / tuples -> plain JSON values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and callable(value.item):  # numpy scalars
        return value.item()
    return value


def config_fingerprint(config: Any) -> str:
    """Stable sha256 over the canonical JSON form of a config."""
    canon = json.dumps(_jsonable(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


@dataclass
class RunReport:
    """The per-run measurement record (see module docs)."""

    fingerprint: str
    seed: int
    duration: float
    metrics: dict[str, Any]
    phases: dict[str, float]
    event_counts: dict[str, int] = field(default_factory=dict)
    profile: dict[str, float] = field(default_factory=dict)
    samples: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"schema": REPORT_SCHEMA, **_jsonable(self)}


def _phase_breakdown(config: Any) -> dict[str, float]:
    """Sim-time split between warm-up and maintenance.

    Warm-up is the fixed-period phase: ``MAX_INIT_TRIAL`` probe cycles
    at ``INIT_TIMER`` seconds each (Section 3.2); everything after is
    Markov-timer maintenance.  Runs without an optimizer are all
    "measurement" time.
    """
    duration = float(config.duration)
    prop = getattr(config, "prop", None)
    if prop is None:
        return {"measurement": duration}
    warmup = min(duration, float(prop.max_init_trial) * float(prop.init_timer))
    return {"warmup": warmup, "maintenance": duration - warmup}


def build_run_report(result: Any, *, profile: Mapping[str, float] | None = None) -> RunReport:
    """Assemble the report for one ExperimentResult.

    ``profile`` overrides the result's own ``profile`` attribute when
    given (e.g. merged timings from several workers).
    """
    config = result.config
    registry = registry_from_result(result)
    event_counts: dict[str, int] = {}
    trace = getattr(result, "trace", None)
    if trace:
        event_counts = dict(sorted(_TallyCounter(ev.etype for ev in trace).items()))
    timings = profile if profile is not None else getattr(result, "profile", None)
    samples = {
        "initial_lookup_latency_ms": float(result.lookup_latency[0]),
        "final_lookup_latency_ms": float(result.lookup_latency[-1]),
        "initial_link_stretch": float(result.link_stretch[0]),
        "final_link_stretch": float(result.link_stretch[-1]),
    }
    return RunReport(
        fingerprint=config_fingerprint(config),
        seed=int(config.seed),
        duration=float(config.duration),
        metrics=registry.snapshot(),
        phases=_phase_breakdown(config),
        event_counts=event_counts,
        profile=dict(timings) if timings else {},
        samples={k: v for k, v in samples.items() if v == v},  # drop NaNs
    )


def build_replicate_report(summary: Any) -> RunReport:
    """Assemble one aggregate report for a replicated run.

    ``summary`` is a :class:`repro.harness.replicate.ReplicationSummary`
    (duck-typed, like :func:`registry_from_result`).  The result is an
    *ordinary* :class:`RunReport` — metrics are per-metric means over
    the per-seed reports (plus a ``replicate.n_replicas`` marker), trace
    event counts are summed, and the samples block carries the
    cross-seed spread — so the existing ``diff`` / ``render`` machinery
    applies to replicated runs unchanged.
    """
    per_seed = [build_run_report(result) for result in summary.results]
    if not per_seed:
        raise ValueError("replication summary has no results")
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for rep in per_seed:
        for name, value in _as_flat_items(rep.metrics):
            sums[name] = sums.get(name, 0.0) + value
            counts[name] = counts.get(name, 0) + 1
    metrics: dict[str, Any] = {name: sums[name] / counts[name] for name in sorted(sums)}
    metrics["replicate.n_replicas"] = float(summary.n_replicas)
    event_counts: dict[str, int] = {}
    for rep in per_seed:
        for name, count in rep.event_counts.items():
            event_counts[name] = event_counts.get(name, 0) + count
    latency = summary.lookup_latency
    samples = {
        "final_lookup_latency_ms_mean": float(latency.mean[-1]),
        "final_lookup_latency_ms_std": float(latency.std[-1]),
        "final_lookup_latency_ms_min": float(latency.low[-1]),
        "final_lookup_latency_ms_max": float(latency.high[-1]),
        "improvement_ratio_mean": float(summary.mean_improvement()),
        "improvement_ratio_std": float(summary.std_improvement()),
    }
    config = summary.config
    return RunReport(
        fingerprint=config_fingerprint(config),
        seed=int(summary.seeds[0]),
        duration=float(config.duration),
        metrics=metrics,
        phases=_phase_breakdown(config),
        event_counts=dict(sorted(event_counts.items())),
        samples={k: v for k, v in samples.items() if v == v},  # drop NaNs
    )


# -- persistence ----------------------------------------------------------


def save_report(report: RunReport, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report.to_dict(), indent=1, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_report(path: str | Path) -> RunReport:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.pop("schema", None) != REPORT_SCHEMA:
        raise ValueError(f"{path} is not a run report ({REPORT_SCHEMA})")
    return RunReport(**data)


# -- rendering ------------------------------------------------------------


def render_markdown(report: RunReport) -> str:
    """Human-readable markdown rendering (``make report``)."""
    lines = [
        "# Run report",
        "",
        f"- config fingerprint: `{report.fingerprint}`",
        f"- seed: {report.seed}",
        f"- simulated duration: {report.duration:.0f} s",
        "",
        "## Phases (simulated seconds)",
        "",
        "| phase | seconds |",
        "| --- | ---: |",
    ]
    for name, seconds in report.phases.items():
        lines.append(f"| {name} | {seconds:.0f} |")
    if report.samples:
        lines += ["", "## Headline samples", "", "| sample | value |", "| --- | ---: |"]
        for name, value in report.samples.items():
            lines.append(f"| {name} | {value:.3f} |")
    lines += ["", "## Metrics", "", "| metric | value |", "| --- | ---: |"]
    for name, value in _as_flat_items(report.metrics):
        rendered = f"{value:.3f}" if value != int(value) else f"{int(value)}"
        lines.append(f"| {name} | {rendered} |")
    if report.event_counts:
        lines += ["", "## Trace events", "", "| event | count |", "| --- | ---: |"]
        for name, count in report.event_counts.items():
            lines.append(f"| {name} | {count} |")
    if report.profile:
        lines += ["", "## Wall-clock profile (seconds, merged over workers)",
                  "", "| stage | seconds |", "| --- | ---: |"]
        for name, seconds in sorted(report.profile.items()):
            lines.append(f"| {name} | {seconds:.3f} |")
    return "\n".join(lines) + "\n"


# -- diffing --------------------------------------------------------------


def _diff_rows(a: Mapping[str, float], b: Mapping[str, float],
               *, prefix: str = "") -> list[str]:
    """Rows for every key differing between two scalar mappings.

    A key present in only one run still shows its *value* — a metric
    appearing or vanishing between runs (a new drop reason, a counter
    that never fired) is exactly the kind of change a diff exists to
    surface, so "a only" alone would hide the interesting number.
    """
    rows: list[str] = []
    for name in sorted(set(a) | set(b)):
        va, vb = a.get(name), b.get(name)
        label = f"{prefix}{name}"
        if va is None:
            rows.append(f"{label:<40} {'-':>14} {vb:>14.3f} {'(b only)':>14}")
        elif vb is None:
            rows.append(f"{label:<40} {va:>14.3f} {'-':>14} {'(a only)':>14}")
        elif va != vb:
            rows.append(f"{label:<40} {va:>14.3f} {vb:>14.3f} {vb - va:>+14.3f}")
    return rows


def diff_reports(a: RunReport, b: RunReport) -> str:
    """Metric-by-metric comparison of two runs (text table).

    Flags config-fingerprint mismatches (the runs are not the same
    world) and reports every scalar metric, headline sample and trace
    event count present in either report; one-sided entries keep their
    value and are marked ``(a only)`` / ``(b only)``.
    """
    lines: list[str] = []
    if a.fingerprint != b.fingerprint:
        lines.append(
            f"configs differ: {a.fingerprint} vs {b.fingerprint} "
            "(comparing across worlds)"
        )
    if a.seed != b.seed:
        lines.append(f"seeds differ: {a.seed} vs {b.seed}")
    header = f"{'metric':<40} {'a':>14} {'b':>14} {'delta':>14}"
    lines += [header, "-" * len(header)]
    lines += _diff_rows(dict(_as_flat_items(a.metrics)),
                        dict(_as_flat_items(b.metrics)))
    lines += _diff_rows(a.samples, b.samples, prefix="samples.")
    counts = sorted(set(a.event_counts) | set(b.event_counts))
    for name in counts:
        ca, cb = a.event_counts.get(name, 0), b.event_counts.get(name, 0)
        if ca != cb:
            lines.append(f"{'events.' + name:<40} {ca:>14} {cb:>14} {cb - ca:>+14}")
    if len(lines) <= 2:
        lines.append("(no metric differences)")
    return "\n".join(lines)
