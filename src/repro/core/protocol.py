"""The PROP protocol engine.

Drives the per-node state machine of Section 3.2 on top of the
discrete-event simulator:

* Every node joins, runs a **warm-up** of ``MAX_INIT_TRIAL`` probe cycles
  at the fixed ``INIT_TIMER`` period, then enters **maintenance** where
  the probe period follows the Markov-chain timer (double on failure,
  reset on success or at the cap).
* A probe cycle at node ``u``: pick the first hop ``s`` from the
  neighborQ, random-walk ``nhops`` hops to the candidate ``v``, evaluate
  Var for the configured policy, and execute the exchange when
  ``Var > MIN_VAR``.  Queue and timer are updated by the outcome.
* Churn notifications (:meth:`PROPEngine.notify_membership_change`)
  reset the timer and push the new neighbor to the queue front.

Message accounting matches the Section 4.3 model: each probe cycle costs
``nhops`` walk messages plus the information-collection messages (``c_u +
c_v`` latency probes for PROP-G, ``2 m`` for PROP-O), and a successful
exchange additionally notifies every affected routing-table holder.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.core.config import PROPConfig
from repro.core.exchange import execute_prop_g, execute_prop_o
from repro.core.neighbor_queue import NeighborQueue
from repro.core.timer_policy import MarkovTimer
from repro.core.varcalc import evaluate_prop_g, select_prop_o
from repro.core.walk import random_walk
from repro.netsim.engine import Simulator
from repro.netsim.rng import RngRegistry
from repro.obs.events import ExchangeCommitEvent, ProbeEvent, VarCollectEvent
from repro.obs.trace import NULL_TRACER, TracerLike
from repro.overlay.base import Overlay

__all__ = ["PROPEngine", "ProtocolCounters", "NodeState"]

_WARMUP = 0
_MAINTENANCE = 1


@dataclass(frozen=True)
class ExchangeRecord:
    """One executed peer-exchange, for trace analysis."""

    time: float
    u: int
    v: int
    var: float
    policy: str
    traded: int  # neighbors moved per side (deg for G, m' for O)


@dataclass
class ProtocolCounters:
    """Message and outcome tallies for the overhead analysis (§4.3)."""

    probes: int = 0
    exchanges: int = 0
    walk_messages: int = 0
    collect_messages: int = 0
    notify_messages: int = 0
    var_history: list[float] = field(default_factory=list)
    exchange_log: list[ExchangeRecord] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        return self.walk_messages + self.collect_messages + self.notify_messages

    @property
    def success_rate(self) -> float:
        return self.exchanges / self.probes if self.probes else 0.0

    def messages_per_probe(self) -> float:
        return self.total_messages / self.probes if self.probes else 0.0


@dataclass
class NodeState:
    """Per-slot protocol state."""

    queue: NeighborQueue
    timer: MarkovTimer
    phase: int = _WARMUP
    trials: int = 0
    probes_until_first_exchange: int | None = None


class PROPEngine:
    """Event-driven PROP deployment over one overlay.

    Parameters
    ----------
    overlay:
        The overlay to optimize (mutated in place).
    config:
        Protocol parameters; ``config.policy`` selects PROP-G or PROP-O.
    sim:
        The discrete-event simulator to schedule probe cycles on.
    rngs:
        Registry supplying the engine's random streams.
    jitter:
        Nodes start their first probe uniformly inside
        ``[0, jitter * init_timer)`` to avoid a synchronized thundering
        herd (real deployments join at different times).
    tracer:
        Event sink for the observability plane; defaults to the
        zero-cost :data:`~repro.obs.trace.NULL_TRACER`.
    """

    def __init__(
        self,
        overlay: Overlay,
        config: PROPConfig,
        sim: Simulator,
        rngs: RngRegistry,
        *,
        jitter: float = 1.0,
        tracer: TracerLike | None = None,
    ) -> None:
        if config.policy == "O" and not overlay.supports_rewiring:
            raise ValueError(
                "PROP-O rewires logical edges, which would corrupt a "
                f"structure-derived overlay ({type(overlay).__name__}); "
                "deploy PROP-G on structured overlays (the paper's "
                "applicability matrix)"
            )
        self.overlay = overlay
        self.config = config
        self.sim = sim
        self.rng = rngs.stream("prop:engine")
        self.tracer: TracerLike = tracer if tracer is not None else NULL_TRACER
        self.counters = ProtocolCounters()
        self._m_default: int | None = (
            None if config.m is not None else int(overlay.min_degree())
        )
        self.nodes: list[NodeState] = []
        for slot in range(overlay.n_slots):
            queue = NeighborQueue(overlay.neighbor_list(slot), self.rng)
            timer = MarkovTimer(config.init_timer, config.max_timer)
            self.nodes.append(NodeState(queue=queue, timer=timer))
        self._jitter = max(0.0, jitter)
        self._started = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Schedule the first probe of every node."""
        if self._started:
            raise RuntimeError("engine already started")
        self._started = True
        for slot in range(self.overlay.n_slots):
            delay = float(self.rng.random()) * self._jitter * self.config.init_timer
            self.sim.schedule(delay, self._probe_cycle, slot)

    @property
    def m(self) -> int:
        """Effective PROP-O exchange size (config.m or δ(G) at start)."""
        if self.config.m is not None:
            return self.config.m
        assert self._m_default is not None  # set in __init__ when config.m is None
        return self._m_default

    # -- probe cycle -------------------------------------------------------

    def _probe_cycle(self, u: int) -> None:
        state = self.nodes[u]
        success = self._attempt_exchange(u, state)

        # Phase / timer bookkeeping.  The first-exchange trial count is
        # recorded *before* the warm-up -> maintenance transition: an
        # exchange landing on the final warm-up trial is a warm-up
        # exchange (trial MAX_INIT_TRIAL), not a post-warm-up one.
        if state.phase == _WARMUP:
            state.trials += 1
            if success:
                state.timer.on_success()
                if state.probes_until_first_exchange is None:
                    state.probes_until_first_exchange = state.trials
            if state.trials >= self.config.max_init_trial:
                state.phase = _MAINTENANCE
            delay = self.config.init_timer
        else:
            delay = state.timer.on_success() if success else state.timer.on_failure()
            if success and state.probes_until_first_exchange is None:
                state.probes_until_first_exchange = -1
        self.sim.schedule(delay, self._probe_cycle, u)

    def _attempt_exchange(self, u: int, state: NodeState) -> bool:
        overlay = self.overlay
        cfg = self.config
        state.queue.sync(overlay.neighbor_list(u))
        if len(state.queue) == 0:
            return False
        s = state.queue.select()
        self.counters.probes += 1
        if self.tracer.enabled:
            self.tracer.emit(ProbeEvent, u=u, s=s, cycle=self.counters.probes)

        if cfg.random_probe:
            v = int(self.rng.integers(0, overlay.n_slots - 1))
            if v >= u:
                v += 1
            path = [u, v]
            self.counters.walk_messages += 1
        else:
            v, path = random_walk(overlay, u, s, cfg.nhops, self.rng)
            self.counters.walk_messages += len(path) - 1
            if v == u:
                state.queue.on_failure(s)
                return False

        if not overlay.exchange_compatible(u, v, cfg.policy):
            state.queue.on_failure(s)
            return False

        success = False
        traded = 0
        if cfg.policy == "G":
            self.counters.collect_messages += overlay.degree(u) + overlay.degree(v)
            var = evaluate_prop_g(overlay, u, v)
            if var > cfg.min_var:
                traded = max(overlay.degree(u), overlay.degree(v))
                self.counters.notify_messages += execute_prop_g(overlay, u, v)
                self._after_exchange(u, v)
                success = True
        else:
            give_u, give_v, var = select_prop_o(
                overlay, u, v, self.m, forbidden=set(path),
                selection=cfg.selection, rng=self.rng,
            )
            self.counters.collect_messages += 2 * self.m
            if give_u and var > cfg.min_var:
                traded = len(give_u)
                self.counters.notify_messages += execute_prop_o(overlay, u, v, give_u, give_v)
                self._after_exchange(u, v, moved=give_u + give_v)
                success = True
        if success:
            self.counters.exchange_log.append(
                ExchangeRecord(
                    time=self.sim.now, u=u, v=v, var=var,
                    policy=cfg.policy, traded=traded,
                )
            )

        self.counters.var_history.append(var)
        if self.tracer.enabled:
            self.tracer.emit(VarCollectEvent, u=u, v=v, cycle=self.counters.probes,
                             var=float(var), policy=cfg.policy)
            if success:
                # inline engines commit instantaneously: no 2PC, xid=-1
                self.tracer.emit(ExchangeCommitEvent, xid=-1, u=u, v=v,
                                 var=float(var), traded=traded)
        if success:
            self.counters.exchanges += 1
            state.queue.on_success(s)
            # the counterpart also treats the exchange as its own success
            self.nodes[v].timer.on_success()
        else:
            state.queue.on_failure(s)
        return success

    def _after_exchange(self, u: int, v: int, moved: list[int] | None = None) -> None:
        """Resynchronize queues of the pair and of every affected neighbor."""
        overlay = self.overlay
        self.nodes[u].queue.sync(overlay.neighbor_list(u))
        self.nodes[v].queue.sync(overlay.neighbor_list(v))
        if moved is None:
            # PROP-G: u and v keep the same *slot* neighbors, but those
            # neighbors now face different hosts — resetting their timers
            # mirrors "notify their neighbors … and recalculate the sums".
            affected = set(overlay.neighbor_list(u)) | set(overlay.neighbor_list(v))
        else:
            affected = set(moved)
        for w in sorted(affected - {u, v}):
            self.nodes[w].queue.sync(overlay.neighbor_list(w))

    # -- churn interface ---------------------------------------------------

    def notify_membership_change(self, slot: int, new_neighbors: list[int] | None = None) -> None:
        """A neighbor of ``slot`` was replaced (churn).

        Section 3.2: "the value of timer will be reset to INIT_TIMER and
        the new neighbors will be added into the front of neighborq with
        a maximum priority value".
        """
        state = self.nodes[slot]
        state.timer.on_churn()
        state.queue.sync(self.overlay.neighbor_list(slot))
        if new_neighbors:
            for s in new_neighbors:
                if self.overlay.has_edge(slot, s):
                    state.queue.on_new_neighbor(s)

    def reset_slot(self, slot: int) -> None:
        """A new host occupied ``slot`` (churn replacement): restart it."""
        state = self.nodes[slot]
        state.queue = NeighborQueue(self.overlay.neighbor_list(slot), self.rng)
        state.timer = MarkovTimer(self.config.init_timer, self.config.max_timer)
        state.phase = _WARMUP
        state.trials = 0
        for w in self.overlay.neighbor_list(slot):
            self.notify_membership_change(w, [slot])
