"""TTL random-walk probing.

Section 3.2: a probe message carries the source address, a timestamp and
a small TTL ``nhops``; every forwarder appends its identifier (so the
walk never revisits a node), decrements the TTL and forwards to a random
neighbor.  The node where the TTL hits zero is the exchange candidate
``v``, and the recorded path is the set of nodes that must never be
exchanged (they guarantee u—v connectivity after the exchange —
Theorem 1's construction).
"""

from __future__ import annotations

import numpy as np

from repro.overlay.base import Overlay

__all__ = ["random_walk"]


def random_walk(
    overlay: Overlay,
    u: int,
    first_hop: int,
    nhops: int,
    rng: np.random.Generator,
) -> tuple[int, list[int]]:
    """Walk ``nhops`` hops from ``u`` starting through ``first_hop``.

    Returns ``(target, path)`` where ``path`` starts at ``u`` and ends at
    ``target``.  The walk never revisits a node ("any node that receives
    this message will add an identifier like the IP address into the
    message … to avoid repetitive forwarding"); if a node has no unvisited
    neighbor the walk stops early and the current node is the target.

    ``nhops = 1`` returns ``first_hop`` itself — the degenerate
    neighbors-exchange scenario the paper shows to be ineffective.
    """
    if not overlay.has_edge(u, first_hop):
        raise ValueError(f"first hop {first_hop} is not a neighbor of {u}")
    if nhops < 1:
        raise ValueError(f"nhops must be >= 1, got {nhops}")
    path = [u, first_hop]
    visited = {u, first_hop}
    cur = first_hop
    for _ in range(nhops - 1):
        options = [x for x in overlay.neighbor_list(cur) if x not in visited]
        if not options:
            break
        cur = options[int(rng.integers(0, len(options)))]
        path.append(cur)
        visited.add(cur)
    return cur, path
