"""PROP: the Peer-exchange Routing Optimization Protocols.

The paper's primary contribution — a family of two overlay-repair
policies built on the *peer-exchange* primitive:

* **PROP-G** (generic): two peers exchange *all* neighbors, i.e. swap
  positions in the overlay.  Works on any overlay, structured or not,
  because the logical topology is provably unchanged (Theorem 2).
* **PROP-O** (optimized): two peers exchange an equal number ``m`` of
  selected neighbors, preserving every node's degree — cheaper
  (``nhop + 2m`` messages vs ``nhop + 2c``) and capacity-respecting.

The shared machinery lives here too: TTL random-walk probing
(:mod:`~repro.core.walk`), the Var gain test (:mod:`~repro.core.varcalc`),
the exchange executors (:mod:`~repro.core.exchange`), the neighbor
priority queue (:mod:`~repro.core.neighbor_queue`), the Markov-chain
probe timer (:mod:`~repro.core.timer_policy`), and the event-driven
engine gluing it together (:mod:`~repro.core.protocol`).
"""

from repro.core.config import PROPConfig
from repro.core.exchange import execute_prop_g, execute_prop_o
from repro.core.neighbor_queue import NeighborQueue
from repro.core.protocol import ExchangeRecord, PROPEngine, ProtocolCounters
from repro.core.timed_protocol import TimedPROPEngine
from repro.core.timer_policy import MarkovTimer
from repro.core.varcalc import evaluate_prop_g, select_prop_o
from repro.core.walk import random_walk

__all__ = [
    "ExchangeRecord",
    "MarkovTimer",
    "NeighborQueue",
    "PROPConfig",
    "PROPEngine",
    "TimedPROPEngine",
    "ProtocolCounters",
    "evaluate_prop_g",
    "execute_prop_g",
    "execute_prop_o",
    "random_walk",
    "select_prop_o",
]
