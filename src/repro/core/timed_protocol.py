"""Message-latency-aware PROP engine (fidelity extension).

:class:`~repro.core.protocol.PROPEngine` executes a whole probe cycle at
one simulation instant — the abstraction level of the paper's own
simulator.  :class:`TimedPROPEngine` refines it: a probe *takes time*
(the walk crosses its links, the latency collection costs round trips),
and the exchange decision lands only after that delay.  Two consequences
the instantaneous engine cannot show:

* **Staleness** — by the time a probe completes, concurrent exchanges
  may have moved either peer; the candidate information gathered at
  probe start no longer describes the world.  Following the paper's
  cooperative spirit (both peers recompute their sums before acting),
  the engine re-evaluates Var at commit time and aborts the exchange if
  the opportunity evaporated — counted in ``stale_aborts``.
* **Probe pipelining** — a node's timer keeps running while its probe is
  in flight, so observed inter-exchange gaps include the network time.

Latencies are milliseconds; simulation time is seconds.
"""

from __future__ import annotations


from repro.core.config import PROPConfig
from repro.core.protocol import PROPEngine, _MAINTENANCE, _WARMUP
from repro.core.varcalc import evaluate_prop_g, select_prop_o
from repro.core.walk import random_walk
from repro.netsim.engine import Simulator
from repro.netsim.rng import RngRegistry
from repro.obs.events import (
    ExchangeAbortEvent,
    ExchangeCommitEvent,
    ProbeEvent,
    VarCollectEvent,
)
from repro.obs.trace import TracerLike
from repro.overlay.base import Overlay

__all__ = ["TimedPROPEngine"]

_MS = 1e-3  # milliseconds -> seconds


class TimedPROPEngine(PROPEngine):
    """PROP engine whose probes take network time to complete."""

    def __init__(
        self,
        overlay: Overlay,
        config: PROPConfig,
        sim: Simulator,
        rngs: RngRegistry,
        *,
        jitter: float = 1.0,
        tracer: TracerLike | None = None,
    ) -> None:
        super().__init__(overlay, config, sim, rngs, jitter=jitter, tracer=tracer)
        self.stale_aborts = 0

    # -- probe cycle, split into launch + completion ----------------------

    def _probe_cycle(self, u: int) -> None:
        state = self.nodes[u]
        overlay = self.overlay
        cfg = self.config
        state.queue.sync(overlay.neighbor_list(u))
        if len(state.queue) == 0:
            self.sim.schedule(cfg.init_timer, self._probe_cycle, u)
            return
        s = state.queue.select()
        self.counters.probes += 1
        cycle = self.counters.probes
        if self.tracer.enabled:
            self.tracer.emit(ProbeEvent, u=u, s=s, cycle=cycle)

        if cfg.random_probe:
            v = int(self.rng.integers(0, overlay.n_slots - 1))
            if v >= u:
                v += 1
            path = [u, v]
            walk_ms = overlay.latency(u, v)
            self.counters.walk_messages += 1
        else:
            v, path = random_walk(overlay, u, s, cfg.nhops, self.rng)
            walk_ms = sum(
                overlay.latency(a, b) for a, b in zip(path, path[1:])
            )
            self.counters.walk_messages += len(path) - 1

        if v == u or not overlay.exchange_compatible(u, v, cfg.policy):
            self._finish(u, s, success=False)
            return

        # Collection: each side probes its hypothetical neighbors; the
        # slow side bounds the duration (one RTT to the farthest probe).
        cand_u = overlay.latencies_from(u, overlay.neighbor_list(v) or [v])
        cand_v = overlay.latencies_from(v, overlay.neighbor_list(u) or [u])
        collect_ms = 2.0 * max(
            float(cand_u.max()) if cand_u.size else 0.0,
            float(cand_v.max()) if cand_v.size else 0.0,
            overlay.latency(u, v),
        )
        if cfg.policy == "G":
            self.counters.collect_messages += overlay.degree(u) + overlay.degree(v)
        else:
            self.counters.collect_messages += 2 * self.m

        # Var as seen with the information gathered NOW (what the peers
        # believe when they decide to attempt the exchange).
        if cfg.policy == "G":
            launch_var = evaluate_prop_g(overlay, u, v)
        else:
            _, _, launch_var = select_prop_o(
                overlay, u, v, self.m, forbidden=set(path),
                selection=cfg.selection, rng=self.rng,
            )

        delay_s = (walk_ms + collect_ms) * _MS
        self.sim.schedule(
            delay_s, self._complete_probe, u, v, s, tuple(path), launch_var, cycle
        )

    def _complete_probe(
        self, u: int, v: int, s: int, path: tuple[int, ...], launch_var: float,
        cycle: int = -1,
    ) -> None:
        """The decision point: re-evaluate on the *current* world."""
        overlay = self.overlay
        cfg = self.config
        success = False
        traded = 0
        if cfg.policy == "G":
            var = evaluate_prop_g(overlay, u, v)
            if var > cfg.min_var:
                from repro.core.exchange import execute_prop_g

                traded = max(overlay.degree(u), overlay.degree(v))
                self.counters.notify_messages += execute_prop_g(overlay, u, v)
                self._after_exchange(u, v)
                success = True
        else:
            give_u, give_v, var = select_prop_o(
                overlay, u, v, self.m, forbidden=set(path),
                selection=cfg.selection, rng=self.rng,
            )
            if give_u and var > cfg.min_var:
                from repro.core.exchange import execute_prop_o

                traded = len(give_u)
                self.counters.notify_messages += execute_prop_o(overlay, u, v, give_u, give_v)
                self._after_exchange(u, v, moved=give_u + give_v)
                success = True
        self.counters.var_history.append(var)
        if self.tracer.enabled:
            self.tracer.emit(VarCollectEvent, u=u, v=v, cycle=cycle,
                             var=float(var), policy=cfg.policy)
            if success:
                self.tracer.emit(ExchangeCommitEvent, xid=-1, u=u, v=v,
                                 var=float(var), traded=traded)
            elif launch_var > cfg.min_var:
                self.tracer.emit(ExchangeAbortEvent, xid=-1, u=u, v=v, reason="stale")
        if success:
            from repro.core.protocol import ExchangeRecord

            self.counters.exchanges += 1
            self.counters.exchange_log.append(
                ExchangeRecord(time=self.sim.now, u=u, v=v, var=var,
                               policy=cfg.policy, traded=traded)
            )
            self.nodes[v].timer.on_success()
        elif launch_var > cfg.min_var:
            # the opportunity existed at probe time but evaporated while
            # the messages were in flight
            self.stale_aborts += 1
        self._finish(u, s, success=success)

    def _finish(self, u: int, s: int, *, success: bool) -> None:
        state = self.nodes[u]
        cfg = self.config
        if state.phase == _WARMUP:
            state.trials += 1
            if success:
                state.timer.on_success()
            if state.trials >= cfg.max_init_trial:
                state.phase = _MAINTENANCE
            delay = cfg.init_timer
        else:
            delay = state.timer.on_success() if success else state.timer.on_failure()
        if success:
            state.queue.on_success(s)
        else:
            state.queue.on_failure(s)
        self.sim.schedule(delay, self._probe_cycle, u)
