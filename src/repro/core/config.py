"""PROP protocol configuration.

All constants carry the paper's names and defaults:

* ``MIN_VAR = 0`` — Section 4.2 shows ``Var > 0  =>  L_t0 > L_t1`` (the
  exchange reduces accumulated latency), so zero is the natural
  threshold and the one the simulations use.
* ``nhops = 2`` — Section 5.2: "only when nhop >= 2 can a good
  performance be attained … In order to minimize the cost, nhop = 2 may
  be a better choice".
* ``INIT_TIMER = 60 s`` — "we simply set it as 1 minute".
* ``MAX_TIMER = 2^5 * INIT_TIMER`` — "at most five times of suspending
  (half of MAX_INIT_TRIAL)".
* ``MAX_INIT_TRIAL = 10`` — "simulations … show this number to be less
  than ten".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

__all__ = ["PROPConfig"]


@dataclass(frozen=True)
class PROPConfig:
    """Tunable parameters of a PROP deployment.

    Parameters
    ----------
    policy:
        ``"G"`` for PROP-G (exchange all neighbors / swap positions) or
        ``"O"`` for PROP-O (exchange ``m`` selected neighbors).
    nhops:
        TTL of the probe random walk.  ``nhops = 1`` degenerates to
        neighbor exchange (ineffective per the paper); the figures sweep
        {1, 2, 4}.
    random_probe:
        When True the probe target is a uniformly random peer instead of
        a walk endpoint — the figures' impractical-but-instructive
        "random" scenario.
    m:
        PROP-O exchange size.  ``None`` means "use the overlay's minimum
        degree δ(G)", the paper's default ("We choose m = δ(G) by
        default").  Ignored by PROP-G.
    selection:
        PROP-O neighbor-selection policy: ``"greedy"`` (gain-ranked, the
        default), ``"farthest"``, or ``"random"`` — see
        :func:`repro.core.varcalc.select_prop_o`.  Ignored by PROP-G.
    min_var:
        Exchange acceptance threshold (``Var > min_var`` required).
    init_timer:
        Probe period in seconds during warm-up, and the Markov timer's
        reset value.
    max_timer_factor:
        ``MAX_TIMER = max_timer_factor * init_timer``; a timer reaching
        the cap resets to ``init_timer`` (the paper's wrap rule).
    max_init_trial:
        Number of warm-up probes before entering maintenance.
    """

    policy: str = "G"
    nhops: int = 2
    random_probe: bool = False
    m: int | None = None
    selection: str = "greedy"
    min_var: float = 0.0
    init_timer: float = 60.0
    max_timer_factor: float = 32.0
    max_init_trial: int = 10

    def __post_init__(self) -> None:
        if self.policy not in ("G", "O"):
            raise ValueError(f"policy must be 'G' or 'O', got {self.policy!r}")
        if not isinstance(self.random_probe, bool):
            raise ValueError(
                f"random_probe must be a bool, got {self.random_probe!r}"
            )
        if not math.isfinite(self.min_var):
            raise ValueError(f"min_var must be finite, got {self.min_var}")
        if self.nhops < 1:
            raise ValueError(f"nhops must be >= 1, got {self.nhops}")
        if self.m is not None and self.m < 1:
            raise ValueError(f"m must be >= 1 or None, got {self.m}")
        if self.selection not in ("greedy", "farthest", "random"):
            raise ValueError(f"unknown selection policy {self.selection!r}")
        if self.init_timer <= 0:
            raise ValueError(f"init_timer must be positive, got {self.init_timer}")
        if self.max_timer_factor < 1:
            raise ValueError(
                f"max_timer_factor must be >= 1 so that max_timer >= init_timer, "
                f"got {self.max_timer_factor}"
            )
        if self.max_init_trial < 1:
            raise ValueError(
                f"max_init_trial must be >= 1 (at least one warm-up probe), "
                f"got {self.max_init_trial}"
            )

    @property
    def max_timer(self) -> float:
        return self.max_timer_factor * self.init_timer

    def replace(self, **kwargs: Any) -> "PROPConfig":
        """Return a copy with the given fields overridden."""
        from dataclasses import replace as _replace

        return _replace(self, **kwargs)
