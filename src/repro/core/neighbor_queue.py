"""The ``neighborQ`` priority queue.

Section 3.2: each node keeps a priority queue over its neighbors that
picks the first hop ``s`` of every probe walk.

* **Warm-up**: initialized with a random permutation of the neighbors
  ("each neighbor has an equal probability to be probed") and consumed
  round-robin.
* **Maintenance**: after a *successful* exchange through ``s``, its
  priority number is decreased by 1 ("so that it could be chosen in near
  future"); after a failure ``s`` is "replaced at the tail of neighborq,
  waiting for the next probing cycle".
* **Churn**: newly appearing neighbors are "added into the front of
  neighborq with a maximum priority value, so that these peers can be
  probed earlier".

Implementation: a stable-ordered list of (priority, arrival) entries;
lower priority number = probed sooner.  Selection takes the entry with
the minimal (priority, order) key, which makes the three rules above
simple priority arithmetic.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["NeighborQueue"]

# Priority constants: lower = probed sooner.
_PRIO_FRONT = -1_000_000  # churn insertions ("maximum priority")
_PRIO_BASE = 0


class NeighborQueue:
    """Priority queue over a node's neighbor slots."""

    def __init__(self, neighbors: Iterable[int], rng: np.random.Generator) -> None:
        order = list(neighbors)
        rng.shuffle(order)
        # entry: slot -> (priority, seq); seq breaks ties FIFO
        self._prio: dict[int, tuple[int, int]] = {}
        self._seq = 0
        for s in order:
            self._push(s, _PRIO_BASE)

    def _push(self, slot: int, priority: int) -> None:
        self._prio[slot] = (priority, self._seq)
        self._seq += 1

    def __len__(self) -> int:
        return len(self._prio)

    def __contains__(self, slot: int) -> bool:
        return slot in self._prio

    def select(self) -> int:
        """The neighbor to use as next first hop (min priority, FIFO ties)."""
        if not self._prio:
            raise IndexError("select from empty NeighborQueue")
        return min(self._prio, key=self._prio.__getitem__)

    def on_success(self, slot: int) -> None:
        """Successful exchange through ``slot``: bump it forward by 1."""
        if slot in self._prio:
            prio, _ = self._prio[slot]
            self._prio[slot] = (prio - 1, self._prio[slot][1])

    def on_failure(self, slot: int) -> None:
        """Failed attempt through ``slot``: demote to the tail."""
        if slot in self._prio:
            tail = max((p for p, _ in self._prio.values()), default=_PRIO_BASE)
            self._push(slot, max(tail, _PRIO_BASE) + 1)

    def on_new_neighbor(self, slot: int) -> None:
        """Churn: a fresh neighbor goes to the very front."""
        self._push(slot, _PRIO_FRONT)

    def remove(self, slot: int) -> None:
        self._prio.pop(slot, None)

    def sync(self, neighbors: Iterable[int]) -> None:
        """Reconcile with the current neighbor set after an exchange.

        Departed slots are dropped; new slots enter at the front (they
        are exactly the peers whose latency the node knows least about).
        """
        current = set(neighbors)
        for s in list(self._prio):
            if s not in current:
                del self._prio[s]
        # sorted insertion keeps same-priority FIFO ties deterministic
        # (set iteration order must never leak into protocol behaviour)
        for s in sorted(current):
            if s not in self._prio:
                self._push(s, _PRIO_FRONT)

    def snapshot(self) -> list[int]:
        """Slots in probe order (for tests and debugging)."""
        return sorted(self._prio, key=self._prio.__getitem__)
