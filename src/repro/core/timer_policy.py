"""Markov-chain probe timer.

Section 3.2: "Timer will be doubled after a failed peer-exchange attempt,
and reset to INIT_TIMER after a successful one; if Timer >= MAX_TIMER, it
will also be set as INIT_TIMER."  The doubling makes the probe frequency
of a converged (always-failing) node decay geometrically — the overhead
argument of Section 4.3 — while the wrap at MAX_TIMER guarantees every
node keeps sampling occasionally so churn is eventually noticed.
"""

from __future__ import annotations

__all__ = ["MarkovTimer"]


class MarkovTimer:
    """Exponential-backoff timer with reset-on-success and wrap-at-cap."""

    __slots__ = ("init", "cap", "value")

    def __init__(self, init: float, cap: float) -> None:
        if init <= 0:
            raise ValueError("init must be positive")
        if cap < init:
            raise ValueError("cap must be >= init")
        self.init = float(init)
        self.cap = float(cap)
        self.value = float(init)

    def on_success(self) -> float:
        """Exchange happened: probe eagerly again."""
        self.value = self.init
        return self.value

    def on_failure(self) -> float:
        """No exchange: back off, wrapping to init after the cap is served.

        The paper's rule ("if Timer >= MAX_TIMER, it will be set as
        INIT_TIMER") is a check on the *current* timer, not the doubled
        one: a converged node backs off I, 2I, ... up to MAX_TIMER,
        waits that cap period exactly once, and only then wraps to
        INIT_TIMER.  Checking after doubling instead would skip the cap
        period entirely and give at most four effective doublings.
        """
        if self.value >= self.cap:
            self.value = self.init
        else:
            self.value = min(self.value * 2.0, self.cap)
        return self.value

    def on_churn(self) -> float:
        """Membership changed nearby: probe eagerly (paper Section 3.2)."""
        self.value = self.init
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MarkovTimer(value={self.value}, init={self.init}, cap={self.cap})"
