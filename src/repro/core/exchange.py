"""Peer-exchange executors.

The two concrete exchange operations, expressed against the
logical-graph-plus-embedding overlay model:

* :func:`execute_prop_g` — the peers swap positions (all neighbors at
  once, "exchanging their position in the overlay network"; in a DHT
  this is the node-identifier swap).  One embedding transposition.
* :func:`execute_prop_o` — the peers trade the selected equal-size
  neighbor lists; each individual move is the paper's *cut-add*
  operation (cut edge (u, x), add edge (v, x)).

Both return the notification message count of the operation: every node
whose routing state mentions the exchanged pair must be told (Section
3.2), which is ``deg(u) + deg(v)`` for PROP-G and ``2m`` for PROP-O —
the ``2c`` vs ``2m`` terms of the Section 4.3 overhead analysis.
"""

from __future__ import annotations

from typing import Sequence

from repro.overlay.base import Overlay

__all__ = ["execute_prop_g", "execute_prop_o"]


def execute_prop_g(overlay: Overlay, u: int, v: int) -> int:
    """Perform a PROP-G position swap.  Returns notification count."""
    notified = overlay.degree(u) + overlay.degree(v)
    overlay.swap_embedding(u, v)
    return notified


def execute_prop_o(
    overlay: Overlay,
    u: int,
    v: int,
    give_u: Sequence[int],
    give_v: Sequence[int],
) -> int:
    """Perform a PROP-O trade of equal-size neighbor lists.

    ``give_u``/``give_v`` must come from
    :func:`repro.core.varcalc.select_prop_o` (legality is re-checked
    here: equal sizes, no duplicate edges, counterpart not traded).
    Returns the notification count ``2m``.
    """
    if len(give_u) != len(give_v):
        raise ValueError("PROP-O must exchange equal numbers of neighbors")
    for x in give_u:
        if x == v:
            raise ValueError("cannot trade the counterpart itself")
    for y in give_v:
        if y == u:
            raise ValueError("cannot trade the counterpart itself")
    # Cut-add pairs: (u, x) -> (v, x) and (v, y) -> (u, y).
    for x in give_u:
        overlay.rewire(u, x, v, x)
    for y in give_v:
        overlay.rewire(v, y, u, y)
    return 2 * len(give_u)
