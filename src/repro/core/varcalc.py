"""The Var gain test and PROP-O neighbor selection.

Equation (2) of the paper:

    Var =   sum_{i in N_t0(u)} d(u, i) + sum_{i in N_t0(v)} d(v, i)
          - sum_{i in N_t1(u)} d(u, i) - sum_{i in N_t1(v)} d(v, i)

i.e. the drop in the two peers' combined neighbor-latency sums if the
hypothetical exchange happened.  Section 4.2 shows ``Var > 0`` implies
the system-wide accumulated latency decreases, so the protocol accepts
exactly when ``Var > MIN_VAR`` (= 0).

For PROP-G the hypothetical exchange is a full position swap, evaluated
here by literally swapping the embedding, reading the sums, and swapping
back (pure O(deg) vectorized reads, no copies of the latency matrix).

For PROP-O the peers must *choose* which ``m`` neighbors to trade.  The
paper fixes equal counts but leaves the selection open; we use the
natural greedy rule: each side ranks its tradable neighbors by the gain
``d(self, x) - d(other, x)`` (latency saved by handing ``x`` over) and
the pair trades the top-k prefix, with k <= m chosen to maximize the
summed gain — handing over a neighbor with negative gain can never be
forced by the equal-count constraint because the k-th pair is dropped
whenever its combined gain is negative.
"""

from __future__ import annotations

from typing import Collection

import numpy as np

from repro.overlay.base import Overlay

__all__ = ["evaluate_prop_g", "select_prop_o"]


def evaluate_prop_g(overlay: Overlay, u: int, v: int) -> float:
    """Var of a hypothetical PROP-G position swap between ``u`` and ``v``."""
    if u == v:
        raise ValueError("cannot evaluate a self-exchange")
    before = overlay.neighbor_latency_sum(u) + overlay.neighbor_latency_sum(v)
    overlay.swap_embedding(u, v)
    after = overlay.neighbor_latency_sum(u) + overlay.neighbor_latency_sum(v)
    overlay.swap_embedding(u, v)
    return before - after


def _tradable(overlay: Overlay, giver: int, taker: int, forbidden: Collection[int]) -> list[int]:
    """Neighbors of ``giver`` that may legally move to ``taker``.

    Excluded: the counterpart itself, nodes on the probe walk path
    (Theorem 1's connectivity guarantee), and current neighbors of the
    taker (the move would create a duplicate edge).
    """
    out: list[int] = []
    for x in overlay.neighbor_list(giver):
        if x == taker or x in forbidden:
            continue
        if overlay.has_edge(taker, x):
            continue
        out.append(x)
    return out


SELECTION_POLICIES = ("greedy", "farthest", "random")


def select_prop_o(
    overlay: Overlay,
    u: int,
    v: int,
    m: int,
    forbidden: Collection[int] = (),
    *,
    selection: str = "greedy",
    rng: np.random.Generator | None = None,
) -> tuple[list[int], list[int], float]:
    """Choose the PROP-O trade between ``u`` and ``v``.

    Returns ``(give_u, give_v, var)``: the (equal-length, possibly empty)
    neighbor lists each side hands over and the resulting Var.  The trade
    size is ``min(m, |tradable_u|, |tradable_v|)``, and a trade is only
    returned when its Var is positive.

    ``selection`` picks how each side ranks its tradable neighbors (the
    paper fixes equal counts but leaves the choice open; the ablation
    benchmark compares these):

    * ``"greedy"`` (default) — rank by the exchange gain
      ``d(self, x) − d(other, x)`` and keep the gain-maximizing prefix
      (optimal under the equal-count constraint).
    * ``"farthest"`` — each side offers its farthest-away neighbors (a
      plausible heuristic that ignores the counterpart's position).
    * ``"random"`` — uniformly random tradable neighbors (requires
      ``rng``); the null selection policy.
    """
    if u == v:
        raise ValueError("cannot evaluate a self-exchange")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if selection not in SELECTION_POLICIES:
        raise ValueError(f"selection must be one of {SELECTION_POLICIES}")
    if selection == "random" and rng is None:
        raise ValueError("random selection needs an rng")
    cand_u = _tradable(overlay, u, v, forbidden)
    cand_v = _tradable(overlay, v, u, forbidden)
    k_max = min(m, len(cand_u), len(cand_v))
    if k_max == 0:
        return [], [], 0.0

    emb = overlay.embedding
    oracle = overlay.oracle

    cu = np.asarray(cand_u, dtype=np.intp)
    cv = np.asarray(cand_v, dtype=np.intp)
    du_cu = oracle.to_many(int(emb[u]), emb[cu])
    dv_cu = oracle.to_many(int(emb[v]), emb[cu])
    dv_cv = oracle.to_many(int(emb[v]), emb[cv])
    du_cv = oracle.to_many(int(emb[u]), emb[cv])
    gain_u = du_cu - dv_cu
    gain_v = dv_cv - du_cv

    if selection == "greedy":
        order_u = np.argsort(gain_u)[::-1]
        order_v = np.argsort(gain_v)[::-1]
        # Pair the i-th best of each side; keep the prefix with positive
        # combined pair gain (optimal under the equal-count constraint).
        pair_gain = gain_u[order_u[:k_max]] + gain_v[order_v[:k_max]]
        cum = np.cumsum(pair_gain)
        k = int(np.argmax(cum)) + 1
        if cum[k - 1] <= 0.0:
            return [], [], 0.0
        give_u = [int(cu[i]) for i in order_u[:k]]
        give_v = [int(cv[i]) for i in order_v[:k]]
        return give_u, give_v, float(cum[k - 1])

    if selection == "farthest":
        order_u = np.argsort(du_cu)[::-1][:k_max]
        order_v = np.argsort(dv_cv)[::-1][:k_max]
    else:  # random
        order_u = rng.permutation(len(cu))[:k_max]
        order_v = rng.permutation(len(cv))[:k_max]
    var = float(gain_u[order_u].sum() + gain_v[order_v].sum())
    if var <= 0.0:
        return [], [], 0.0
    return [int(cu[i]) for i in order_u], [int(cv[i]) for i in order_v], var
