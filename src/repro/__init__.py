"""repro — reproduction of "Towards Location-aware Topology in both
Unstructured and Structured P2P Systems" (Qiu et al., ICPP 2007).

The package implements the PROP family of peer-exchange overlay
optimization protocols (PROP-G and PROP-O) together with every substrate
the paper's evaluation depends on: a GT-ITM-style transit-stub physical
network, Gnutella / Chord / CAN / Pastry overlay simulators, the LTM /
PNS / PIS baselines, workload and churn generators, and an experiment
harness regenerating each figure of the paper.

Quickstart
----------
>>> from repro import ExperimentConfig, PROPConfig, run_experiment
>>> cfg = ExperimentConfig(
...     n_overlay=100, overlay_kind="chord",
...     prop=PROPConfig(policy="G", nhops=2),
...     duration=600.0, sample_interval=120.0, lookups_per_sample=200,
... )
>>> result = run_experiment(cfg)
>>> result.final_stretch < result.initial_stretch
True
"""

from repro.baselines import LTMConfig, LTMOptimizer, PNSChordOverlay, pis_embedding
from repro.core import (
    MarkovTimer,
    NeighborQueue,
    PROPConfig,
    PROPEngine,
    ProtocolCounters,
    evaluate_prop_g,
    execute_prop_g,
    execute_prop_o,
    random_walk,
    select_prop_o,
)
from repro.harness import (
    ExperimentConfig,
    ExperimentResult,
    Task,
    TaskEvent,
    World,
    build_world,
    format_series,
    format_table,
    replicate,
    run_experiment,
    run_sweep,
    run_tasks,
)
from repro.metrics import average_latency, stretch
from repro.netsim import RngRegistry, Simulator
from repro.overlay import (
    CANOverlay,
    ChordOverlay,
    GnutellaOverlay,
    KademliaOverlay,
    Overlay,
    PastryOverlay,
)
from repro.topology import (
    LatencyOracle,
    PhysicalNetwork,
    TransitStubParams,
    build_preset,
    generate_transit_stub,
    ts_large,
    ts_small,
)
from repro.workloads import (
    BimodalDelay,
    ChurnConfig,
    ChurnProcess,
    bimodal_processing_delay,
)

__version__ = "1.0.0"

__all__ = [
    "BimodalDelay",
    "CANOverlay",
    "ChordOverlay",
    "ChurnConfig",
    "ChurnProcess",
    "ExperimentConfig",
    "ExperimentResult",
    "GnutellaOverlay",
    "KademliaOverlay",
    "LTMConfig",
    "LTMOptimizer",
    "LatencyOracle",
    "MarkovTimer",
    "NeighborQueue",
    "Overlay",
    "PNSChordOverlay",
    "PROPConfig",
    "PROPEngine",
    "PastryOverlay",
    "PhysicalNetwork",
    "ProtocolCounters",
    "RngRegistry",
    "Simulator",
    "Task",
    "TaskEvent",
    "TransitStubParams",
    "World",
    "average_latency",
    "bimodal_processing_delay",
    "build_preset",
    "build_world",
    "evaluate_prop_g",
    "execute_prop_g",
    "execute_prop_o",
    "format_series",
    "format_table",
    "generate_transit_stub",
    "pis_embedding",
    "random_walk",
    "replicate",
    "run_experiment",
    "run_sweep",
    "run_tasks",
    "select_prop_o",
    "stretch",
    "ts_large",
    "ts_small",
]
