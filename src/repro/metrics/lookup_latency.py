"""Lookup-latency measurement wrappers.

Thin, overlay-specific front-ends used by the experiment harness: they
accept host-space heterogeneity (per-host processing delays) and take
care of the host->slot projection through the current embedding, so a
caller never accidentally freezes delays against a stale embedding.
"""

from __future__ import annotations

import numpy as np

from repro.overlay.chord import ChordOverlay
from repro.overlay.gnutella import GnutellaOverlay
from repro.workloads.heterogeneity import BimodalDelay

__all__ = ["gnutella_mean_lookup_latency", "chord_mean_lookup_latency"]


def gnutella_mean_lookup_latency(
    overlay: GnutellaOverlay,
    pairs: np.ndarray,
    het: BimodalDelay | None = None,
    ttl: int | None = None,
) -> float:
    """Mean flooded-lookup latency over (src, dst) slot pairs."""
    node_delay = het.slot_delays(overlay.embedding) if het is not None else None
    return overlay.mean_lookup_latency(pairs, node_delay=node_delay, ttl=ttl)


def chord_mean_lookup_latency(
    overlay: ChordOverlay,
    queries: np.ndarray,
    het: BimodalDelay | None = None,
) -> float:
    """Mean greedy-routing lookup latency over (src, key) queries."""
    node_delay = het.slot_delays(overlay.embedding) if het is not None else None
    return overlay.mean_lookup_latency(queries, node_delay=node_delay)
