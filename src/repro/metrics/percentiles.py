"""Latency-distribution summaries (beyond-paper extension).

The paper reports means only; tail latency is where topology mismatch
and slow-node processing bite first, so the benchmarks also report
p50/p90/p99 envelopes computed here.  Infinite entries (failed flood
lookups) are excluded from percentiles but surfaced as a failure
fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyDistribution", "summarize_latencies"]


@dataclass(frozen=True)
class LatencyDistribution:
    """Summary statistics of one lookup-latency sample."""

    count: int
    failures: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    @property
    def failure_rate(self) -> float:
        return self.failures / self.count if self.count else 0.0


def summarize_latencies(values: np.ndarray) -> LatencyDistribution:
    """Summarize a per-lookup latency vector (``inf`` = failed lookup).

    ``inf`` is the *only* failure sentinel; NaN is never a legal latency
    and silently folding it into the failure count would mask upstream
    arithmetic bugs, so NaN input raises ``ValueError``.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("need a non-empty 1-D latency vector")
    if np.isnan(values).any():
        raise ValueError("latency vector contains NaN (failures are inf, not NaN)")
    finite = values[np.isfinite(values)]
    failures = int(values.size - finite.size)
    if finite.size == 0:
        nan = float("nan")
        return LatencyDistribution(values.size, failures, nan, nan, nan, nan, nan)
    return LatencyDistribution(
        count=int(values.size),
        failures=failures,
        mean=float(finite.mean()),
        p50=float(np.percentile(finite, 50)),
        p90=float(np.percentile(finite, 90)),
        p99=float(np.percentile(finite, 99)),
        max=float(finite.max()),
    )
