"""Convergence detection over metric time series.

Used to verify the paper's warm-up claim ("the topology will become
stable after a warm-up procedure", with ``MAX_INIT_TRIAL`` shown "to be
less than ten") and the churn-recovery experiments.
"""

from __future__ import annotations

import numpy as np

__all__ = ["first_stable_index", "convergence_epoch"]


def first_stable_index(
    series: np.ndarray,
    *,
    rel_tol: float = 0.01,
    window: int = 3,
) -> int | None:
    """Index where the series first becomes stable.

    Stable at index ``i`` means every subsequent step inside the window
    changes by less than ``rel_tol`` relative to the value at ``i``.
    Returns ``None`` when the series never settles.
    """
    series = np.asarray(series, dtype=np.float64)
    if window < 1:
        raise ValueError("window must be >= 1")
    n = series.size
    for i in range(n - window):
        ref = series[i]
        scale = abs(ref) if ref != 0 else 1.0
        seg = series[i : i + window + 1]
        if np.all(np.abs(np.diff(seg)) < rel_tol * scale):
            return i
    return None


def convergence_epoch(
    times: np.ndarray,
    series: np.ndarray,
    *,
    rel_tol: float = 0.01,
    window: int = 3,
) -> float | None:
    """Time at which the series first becomes stable (or ``None``)."""
    times = np.asarray(times, dtype=np.float64)
    series = np.asarray(series, dtype=np.float64)
    if times.shape != series.shape:
        raise ValueError("times and series must align")
    idx = first_stable_index(series, rel_tol=rel_tol, window=window)
    return float(times[idx]) if idx is not None else None
