"""Structural statistics of overlay graphs.

Used to characterize what the optimizers do to the topology beyond
latency: degree distributions (is the power-law-ish shape preserved?),
clustering (does proximity optimization create cliques?), and hop
diameter (does rewiring stretch flood reachability? — the effect that
makes TTL-bounded floods fail after aggressive PROP-O runs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from repro.overlay.base import Overlay

__all__ = ["GraphStats", "graph_stats", "hop_distance_matrix"]


@dataclass(frozen=True)
class GraphStats:
    """Snapshot of an overlay's structural shape."""

    n_nodes: int
    n_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    degree_std: float
    mean_clustering: float
    mean_hop_distance: float
    hop_diameter: int


def hop_distance_matrix(overlay: Overlay, sources: np.ndarray | None = None) -> np.ndarray:
    """Unweighted hop distances from ``sources`` (default: all slots)."""
    u, v = overlay.edge_arrays()
    n = overlay.n_slots
    if sources is None:
        sources = np.arange(n)
    if u.size == 0:
        out = np.full((len(sources), n), np.inf)
        out[np.arange(len(sources)), sources] = 0.0
        return out
    data = np.ones(2 * u.size)
    mat = sparse.coo_matrix(
        (data, (np.concatenate([u, v]), np.concatenate([v, u]))), shape=(n, n)
    ).tocsr()
    return csgraph.shortest_path(mat, method="D", unweighted=True, indices=sources)


def _local_clustering(overlay: Overlay, slot: int) -> float:
    nbrs = overlay.neighbor_list(slot)
    k = len(nbrs)
    if k < 2:
        return 0.0
    links = 0
    nbr_set = overlay.neighbors(slot)
    for i, a in enumerate(nbrs):
        links += len(overlay.neighbors(a) & nbr_set)
    # each triangle edge counted twice in the loop above
    return links / (k * (k - 1))


def graph_stats(overlay: Overlay, *, hop_sample: int | None = 200,
                rng: np.random.Generator | None = None) -> GraphStats:
    """Compute structural statistics.

    ``hop_sample`` bounds the number of BFS sources for the hop-distance
    figures (exact when the overlay is smaller); pass ``None`` for exact
    all-pairs.
    """
    deg = overlay.degree_sequence()
    n = overlay.n_slots
    if hop_sample is not None and hop_sample < n:
        rng = rng or np.random.default_rng(0)
        sources = rng.choice(n, size=hop_sample, replace=False)
    else:
        sources = np.arange(n)
    hops = hop_distance_matrix(overlay, sources)
    finite = hops[np.isfinite(hops)]
    clustering = float(np.mean([_local_clustering(overlay, s) for s in range(n)]))
    return GraphStats(
        n_nodes=n,
        n_edges=overlay.n_edges,
        min_degree=int(deg.min()),
        max_degree=int(deg.max()),
        mean_degree=float(deg.mean()),
        degree_std=float(deg.std()),
        mean_clustering=clustering,
        mean_hop_distance=float(finite[finite > 0].mean()) if np.any(finite > 0) else 0.0,
        hop_diameter=int(finite.max()) if finite.size else 0,
    )
