"""Overhead model of Section 4.3.

"For an overlay network with n peers, we use c to denote the average
number of neighbors.  For each peer, one step of adjustment will involve
(nhop + 2c) for PROP-G, and (nhop + 2m) for PROP-O. …  In the worst
case, when each peer has to probe every time, the frequency will be
f_p = 1 / INIT_TIMER."

These closed forms are checked against the engine's measured counters by
the overhead benchmark.
"""

from __future__ import annotations

__all__ = [
    "COORDINATION_SLACK",
    "prop_g_step_messages",
    "prop_o_step_messages",
    "worst_case_probe_frequency",
]

#: Extra messages per probe cycle that the message plane sends beyond the
#: Section 4.3 closed forms.  The analytic model counts the walk
#: (``nhop``) and the latency collection (``2c`` / ``2m``); running the
#: same cycle as real request/response messages additionally needs the
#: walk terminal's single ``VAR_REPLY`` back to the probe origin, i.e.
#: exactly one extra message per *completed* probe.  The two-phase
#: exchange control messages (``EXCHANGE_*``, ``NOTIFY`` beyond the
#: paper's notifications) are transport-telemetry only and excluded from
#: the protocol counters, so the per-cycle slack is this constant alone.
#: The overhead benchmark asserts the measured counters land within it.
COORDINATION_SLACK = 1


def prop_g_step_messages(nhop: int, c: float) -> float:
    """Messages per PROP-G adjustment step: ``nhop + 2c``."""
    if nhop < 1 or c < 0:
        raise ValueError("nhop must be >= 1 and c >= 0")
    return nhop + 2.0 * c


def prop_o_step_messages(nhop: int, m: int) -> float:
    """Messages per PROP-O adjustment step: ``nhop + 2m``."""
    if nhop < 1 or m < 1:
        raise ValueError("nhop must be >= 1 and m >= 1")
    return nhop + 2.0 * m


def worst_case_probe_frequency(init_timer: float) -> float:
    """Worst-case per-node probe frequency ``f_p = 1 / INIT_TIMER``."""
    if init_timer <= 0:
        raise ValueError("init_timer must be positive")
    return 1.0 / init_timer
