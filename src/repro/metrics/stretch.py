"""Stretch and average latency (the paper's Section 4.2 definitions).

* **Stretch** — "the ratio of the average logical link latency over the
  average physical link latency.  It is a common parameter to quantify
  the degree to which the physical and logical topology matches."

  Two operationalizations are provided.  :func:`stretch` (link stretch)
  compares the mean underlying latency of logical *edges* against the
  mean physical link latency — exactly proportional to the quantity the
  Section 4.2 Var analysis descends, so it is the right invariant for
  tests.  :func:`routing_stretch` compares end-to-end overlay *routing*
  latency against the direct physical latency of the same query pairs
  (the relative-delay-penalty form); its magnitude (~2.5-5.5 for Chord
  at n=1000 before/after optimization) is what the paper's Fig. 6 axes
  show, so the figure benchmarks plot this one.

* **Average latency** — ``AL = (sum_{i,j} d(i, j)) / n^2`` with
  ``d(i, i) = 0``.
"""

from __future__ import annotations

import numpy as np

from repro.overlay.base import Overlay

__all__ = ["stretch", "routing_stretch", "average_latency"]


def stretch(overlay: Overlay) -> float:
    """Link stretch: mean logical edge latency / mean physical link latency."""
    denom = overlay.oracle.mean_physical_link()
    if denom <= 0:
        raise ValueError("physical network has no links")
    return overlay.mean_logical_edge_latency() / denom


def routing_stretch(route_latencies: np.ndarray, direct_latencies: np.ndarray) -> float:
    """Routing stretch: mean overlay route latency / mean direct latency.

    Both arrays must describe the same query pairs.  Queries whose source
    owns the key (direct latency zero) contribute to the means but cannot
    be used alone; a zero denominator raises.
    """
    route_latencies = np.asarray(route_latencies, dtype=np.float64)
    direct_latencies = np.asarray(direct_latencies, dtype=np.float64)
    if route_latencies.shape != direct_latencies.shape:
        raise ValueError("route and direct latency arrays must align")
    denom = float(direct_latencies.mean())
    if denom <= 0:
        raise ValueError("mean direct latency must be positive")
    return float(route_latencies.mean()) / denom


def average_latency(overlay: Overlay) -> float:
    """AL over the member hosts (physical shortest-path distances).

    Constant under PROP (the physical network does not change); exposed
    for the Section 4.2 accounting identities used in tests.
    """
    return overlay.oracle.mean_pairwise()
