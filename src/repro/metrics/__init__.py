"""Evaluation metrics: stretch, lookup latency, overhead, convergence."""

from repro.metrics.convergence import convergence_epoch, first_stable_index
from repro.metrics.lookup_latency import (
    chord_mean_lookup_latency,
    gnutella_mean_lookup_latency,
)
from repro.metrics.percentiles import LatencyDistribution, summarize_latencies
from repro.metrics.overhead import (
    prop_g_step_messages,
    prop_o_step_messages,
    worst_case_probe_frequency,
)
from repro.metrics.stretch import average_latency, routing_stretch, stretch

__all__ = [
    "LatencyDistribution",
    "average_latency",
    "chord_mean_lookup_latency",
    "convergence_epoch",
    "first_stable_index",
    "gnutella_mean_lookup_latency",
    "prop_g_step_messages",
    "prop_o_step_messages",
    "routing_stretch",
    "stretch",
    "summarize_latencies",
    "worst_case_probe_frequency",
]
