"""Command-line interface.

``python -m repro run`` executes one simulated deployment and prints the
sampled series; ``python -m repro presets`` lists the physical topology
presets.  The CLI is a thin veneer over
:class:`~repro.harness.experiment.ExperimentConfig` — every flag maps to
one config field, so scripted sweeps can drop to the Python API at any
point.

Examples
--------
::

    python -m repro run --overlay chord --n 300 --policy G
    python -m repro run --overlay gnutella --policy O --m 2 --duration 1800
    python -m repro run --overlay gnutella --ltm --seed 3
    python -m repro run --policy G --seeds 0,1,2,3,4 --workers 4
    python -m repro figure fig5b --workers 4
    python -m repro presets
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.baselines.ltm import LTMConfig
from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.parallel import TaskEvent
from repro.harness.reporting import format_series, format_table
from repro.topology.factory import ORACLE_BACKENDS
from repro.topology.presets import TS_LARGE, TS_SMALL

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PROP peer-exchange overlay optimization (ICPP 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulated deployment")
    run.add_argument("--overlay", choices=["gnutella", "chord", "can", "pastry", "kademlia"],
                     default="gnutella", help="overlay family (default: gnutella)")
    run.add_argument("--preset", choices=["ts-large", "ts-small", "waxman"],
                     default="ts-large",
                     help="physical topology preset (default: ts-large)")
    run.add_argument("--n", type=int, default=1000, help="overlay size (default: 1000)")
    run.add_argument("--oracle", choices=list(ORACLE_BACKENDS), default="exact",
                     help="latency oracle backend: exact O(n^2) matrix, vivaldi "
                          "O(n*dim) coordinates, or landmark O(n*m) triangulation "
                          "(default: exact)")
    run.add_argument("--seed", type=int, default=0, help="master seed (default: 0)")
    run.add_argument("--duration", type=float, default=3600.0,
                     help="simulated seconds (default: 3600)")
    run.add_argument("--sample-interval", type=float, default=360.0,
                     help="metric sampling period in seconds (default: 360)")
    run.add_argument("--lookups", type=int, default=1000,
                     help="lookups measured per sample (default: 1000)")

    proto = run.add_mutually_exclusive_group()
    proto.add_argument("--policy", choices=["G", "O"],
                       help="deploy PROP with this policy")
    proto.add_argument("--ltm", action="store_true", help="deploy the LTM baseline")

    run.add_argument("--nhops", type=int, default=2, help="probe walk TTL (default: 2)")
    run.add_argument("--m", type=int, default=None,
                     help="PROP-O trade size (default: overlay min degree)")
    run.add_argument("--random-probe", action="store_true",
                     help="probe a uniform random peer instead of walking")
    run.add_argument("--heterogeneous", action="store_true",
                     help="bimodal processing delays (1 ms / 100 ms, 50%% fast)")
    run.add_argument("--flood-ttl", type=int, default=None,
                     help="Gnutella flood scope (default: unbounded)")
    run.add_argument("--pns", action="store_true",
                     help="Chord: proximity neighbor selection fingers")
    run.add_argument("--pis-landmarks", type=int, default=None,
                     help="Chord: PIS identifier assignment with this many landmarks")

    net = run.add_argument_group(
        "message transport",
        "run PROP as request/response messages instead of inline cycles",
    )
    net.add_argument("--transport", choices=["inline", "sim", "udp"], default="inline",
                     help="protocol plane: 'inline' atomic cycles, 'sim' "
                          "message-level over the event simulator, or 'udp' "
                          "real messages over a loopback swarm "
                          "(default: inline)")
    net.add_argument("--speedup", type=float, default=60.0,
                     help="udp only: protocol seconds per wall second "
                          "(default: 60)")
    net.add_argument("--loss", type=float, default=0.0, metavar="P",
                     help="per-message drop probability in [0, 1) "
                          "(requires --transport sim)")
    net.add_argument("--partition", action="append", default=None,
                     metavar="A:B[@T0-T1]",
                     help="partition the overlay into two halves, optionally "
                          "only between T0 and T1 seconds; repeatable "
                          "(requires --transport sim)")

    run.add_argument("--seeds", type=str, default=None, metavar="S0,S1,...",
                     help="run one replica per comma-separated seed and "
                          "report the aggregate (overrides --seed)")
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes for multi-seed runs "
                          "(default: 1 = in-process; 0 = one per core)")

    run.add_argument("--save", type=str, default=None, metavar="PATH",
                     help="save the result to this JSON file")

    obs = run.add_argument_group("observability")
    obs.add_argument("--trace", type=str, default=None, metavar="PATH",
                     help="record structured protocol/message events to this "
                          "JSONL file (analyze with 'python -m repro.obs')")
    obs.add_argument("--report", type=str, default=None, metavar="PATH",
                     help="write a per-run report (config fingerprint, metrics, "
                          "phase breakdown) to this JSON file")
    obs.add_argument("--profile", action="store_true",
                     help="profile wall-clock time per harness stage")
    obs.add_argument("--kernel-profile", type=str, default=None, metavar="PATH",
                     help="attribute kernel wall-clock to event categories "
                          "and write the profile JSON here (inspect with "
                          "'python -m repro.obs prof PATH')")
    obs.add_argument("--monitor", action="store_true",
                     help="live stderr progress line (phase, sim-time, ETA, "
                          "latency, exchange tallies); without --trace/--report "
                          "this streams events to consumers and discards them, "
                          "bounding memory for long runs")

    sub.add_parser("presets", help="list the physical topology presets")

    show = sub.add_parser("show", help="summarize a saved result")
    show.add_argument("path", help="result JSON written by 'run --save'")

    compare = sub.add_parser("compare", help="compare two saved results")
    compare.add_argument("path_a", help="baseline result JSON")
    compare.add_argument("path_b", help="candidate result JSON")

    from repro.harness.figures import FIGURE_IDS

    figure = sub.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument("figure_id", choices=list(FIGURE_IDS),
                        help="which figure to regenerate")
    figure.add_argument("--scale", choices=["paper", "quick"], default="quick",
                        help="paper scale (n=1000, slow) or quick sanity scale (default)")
    figure.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sweep "
                             "(default: 1 = in-process; 0 = one per core)")
    figure.add_argument("--monitor", action="store_true",
                        help="live stderr rollup line (done/total, ETA) as "
                             "the sweep's runs complete")

    report = sub.add_parser("report", help="tabulate saved results in a directory")
    report.add_argument("directory", help="directory of result JSON files")
    report.add_argument("--metric", default="lookup_latency",
                        choices=["lookup_latency", "stretch", "link_stretch"])
    return parser


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    prop = None
    ltm = None
    if args.policy is not None:
        prop = PROPConfig(
            policy=args.policy,
            nhops=args.nhops,
            m=args.m,
            random_probe=args.random_probe,
        )
    elif args.ltm:
        ltm = LTMConfig()
    transport = None if args.transport == "inline" else args.transport
    if transport != "sim" and (args.loss or args.partition):
        raise SystemExit("error: --loss/--partition require --transport sim")
    if transport is not None and prop is None:
        raise SystemExit(
            f"error: --transport {transport} requires a PROP policy (--policy)"
        )
    return ExperimentConfig(
        seed=args.seed,
        preset=args.preset,
        overlay_kind=args.overlay,
        n_overlay=args.n,
        oracle=args.oracle,
        prop=prop,
        ltm=ltm,
        heterogeneous=args.heterogeneous,
        flood_ttl=args.flood_ttl,
        pns=args.pns,
        pis_landmarks=args.pis_landmarks,
        duration=args.duration,
        sample_interval=args.sample_interval,
        lookups_per_sample=args.lookups,
        transport=transport,
        live_speedup=args.speedup,
        loss=args.loss,
        partitions=tuple(args.partition or ()),
        trace=args.trace is not None or args.report is not None,
        # --monitor alone needs the event stream but not the raw trace:
        # stream to consumers and discard, keeping memory O(windows)
        trace_streaming=(
            getattr(args, "monitor", False)
            and args.trace is None
            and args.report is None
        ),
        kernel_profile=getattr(args, "kernel_profile", None) is not None,
    )


def _print_progress(event: TaskEvent) -> None:
    """Render structured task events on stderr, one line per transition."""
    if event.status == "start":
        print(f"  {event.label}", file=sys.stderr)
    elif event.status == "retry":
        print(f"  {event.label} retrying ({event.error})", file=sys.stderr)
    elif event.status == "failed":
        print(f"  {event.label} FAILED ({event.error})", file=sys.stderr)


def _monitored_progress(total: int, workers: int):
    """Progress callback folding task events into a live rollup line."""
    from repro.harness.parallel import ProgressRollup

    rollup = ProgressRollup(total)

    def render(event: TaskEvent) -> None:
        _print_progress(event)
        if event.status in ("done", "retry", "failed"):
            print(f"  {rollup.render(workers=workers)}", file=sys.stderr)

    return rollup.chain(render)


def _parse_seeds(spec: str) -> list[int]:
    try:
        seeds = [int(s) for s in spec.split(",") if s.strip() != ""]
    except ValueError:
        raise SystemExit(f"error: --seeds must be comma-separated integers, got {spec!r}")
    if not seeds:
        raise SystemExit("error: --seeds must name at least one seed")
    return seeds


def _cmd_run_replicated(args: argparse.Namespace, config: ExperimentConfig,
                        label: str, seeds: list[int]) -> int:
    from repro.harness.replicate import replicate

    if args.save:
        raise SystemExit("error: --save stores a single result; drop --seeds")
    if args.trace:
        raise SystemExit("error: --trace records a single run; drop --seeds")
    if args.kernel_profile:
        raise SystemExit(
            "error: --kernel-profile records a single run; drop --seeds"
        )
    print(
        f"replicating {config.overlay_kind} n={config.n_overlay} on {config.preset} "
        f"with optimizer={label} over {len(seeds)} seeds "
        f"(workers={args.workers}) ...",
        file=sys.stderr,
    )
    progress = (
        _monitored_progress(len(seeds), args.workers)
        if args.monitor
        else _print_progress
    )
    summary = replicate(config, seeds, workers=args.workers, progress=progress)
    print(
        format_series(
            f"{config.overlay_kind} / {label}  mean over seeds {seeds}",
            summary.times,
            {
                "stretch (mean)": summary.stretch.mean,
                "lookup latency (ms, mean)": summary.lookup_latency.mean,
                "lookup latency (ms, min)": summary.lookup_latency.low,
                "lookup latency (ms, max)": summary.lookup_latency.high,
            },
        )
    )
    print(f"\nimprovement ratio (final/initial lookup latency): "
          f"{summary.mean_improvement():.3f} +/- {summary.std_improvement():.3f} "
          f"over {summary.n_replicas} seeds")
    if args.report:
        from repro.obs.report import build_replicate_report, save_report

        path = save_report(build_replicate_report(summary), args.report)
        print(f"wrote aggregate report ({summary.n_replicas} seeds) to {path}",
              file=sys.stderr)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    label = "none"
    if config.prop is not None:
        label = f"PROP-{config.prop.policy}"
    elif config.ltm is not None:
        label = "LTM"
    if args.seeds is not None:
        return _cmd_run_replicated(args, config, label, _parse_seeds(args.seeds))
    print(
        f"running {config.overlay_kind} n={config.n_overlay} on {config.preset} "
        f"with optimizer={label} for {config.duration:.0f}s ...",
        file=sys.stderr,
    )
    if args.workers != 1:
        # Route through the pool even for a single deployment so
        # `--workers` smoke-tests the parallel path end to end.  A
        # monitored worker run streams to consumers inside the worker
        # (reconstructed from the config) and reports them back whole;
        # the live per-sample line is a serial-path feature.
        from repro.harness.sweep import run_sweep

        progress = _monitored_progress(1, args.workers) if args.monitor else None
        result = run_sweep(
            {label: config}, workers=args.workers, profile=args.profile,
            progress=progress,
        )[label]
    else:
        profiler = None
        if args.profile:
            from repro.harness.profiler import StageProfiler

            profiler = StageProfiler()
        consumers = None
        sample_hook = None
        if args.monitor:
            from repro.harness.experiment import monitor_consumers
            from repro.obs.monitor import format_status
            from repro.obs.prof import wall_monotonic

            if not config.trace_streaming:
                # buffered tracing active (--trace/--report): attach the
                # monitor consumers alongside the raw event buffer
                consumers = monitor_consumers(config)
            wall_start = wall_monotonic()

            def sample_hook(t: float, status) -> None:
                eta = None
                if t > 0:
                    # wall-clock ETA, CLI-side only; read through the
                    # profiling plane's sanctioned helper (reprolint D1)
                    elapsed = wall_monotonic() - wall_start
                    eta = elapsed * (config.duration - t) / t
                if status is not None:
                    print(format_status(status, eta_seconds=eta), file=sys.stderr)

        result = run_experiment(
            config, profiler=profiler, consumers=consumers, sample_hook=sample_hook
        )
    if args.monitor and result.consumers:
        from repro.obs.monitor import format_status

        for consumer in result.consumers:
            get_status = getattr(consumer, "status", None)
            if callable(get_status):
                print(format_status(get_status()), file=sys.stderr)
                break
    print(
        format_series(
            f"{config.overlay_kind} / {label}",
            result.times,
            {
                "stretch": result.stretch,
                "lookup latency (ms)": result.lookup_latency,
                "link stretch": result.link_stretch,
            },
        )
    )
    if result.final_counters is not None:
        print(f"\nprobes/rounds: {result.probes[-1]}  "
              f"exchanges/ops: {result.exchanges[-1]}")
    if result.net_stats is not None or result.net_counters is not None:
        # one merged net-plane table sourced from the unified registry —
        # wire telemetry (transport.*) and protocol-visible fault
        # outcomes (net.*) each appear exactly once
        from repro.obs.registry import (
            NET_TABLE_COLUMNS,
            net_summary_rows,
            registry_from_result,
        )

        rows = net_summary_rows(registry_from_result(result))
        if rows:
            print()
            print(format_table(list(NET_TABLE_COLUMNS), rows))
    print(f"lookup latency: {result.initial_lookup_latency:.1f} ms -> "
          f"{result.final_lookup_latency:.1f} ms")
    if result.profile:
        rows = [[name, f"{seconds:.3f}"]
                for name, seconds in sorted(result.profile.items())]
        print()
        print(format_table(["stage", "wall seconds"], rows))
    if args.kernel_profile and result.kernel_profile is not None:
        from repro.obs.prof import KernelProfile

        kprof = KernelProfile.from_dict(result.kernel_profile)
        print()
        print(kprof.table(top=10))
        path = kprof.save(args.kernel_profile)
        print(f"wrote kernel profile to {path}", file=sys.stderr)
    if args.trace:
        from repro.obs.trace import write_events_jsonl

        events = result.trace or []
        if not events:
            print(f"warning: run produced no trace events; {args.trace} "
                  "will be empty", file=sys.stderr)
        trace_path = write_events_jsonl(events, args.trace)
        print(f"wrote {len(events)} events to {trace_path}", file=sys.stderr)
    if args.report:
        from repro.obs.report import build_run_report, save_report

        path = save_report(build_run_report(result), args.report)
        print(f"wrote run report to {path}", file=sys.stderr)
    if args.save:
        from repro.harness.persistence import save_result

        path = save_result(result, args.save)
        print(f"saved result to {path}", file=sys.stderr)
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.analysis.compare import summarize_result
    from repro.harness.persistence import load_result

    stored = load_result(args.path)
    print(summarize_result(stored, label=args.path))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.compare import compare_results
    from repro.harness.persistence import load_result

    a = load_result(args.path_a)
    b = load_result(args.path_b)
    print(compare_results(a, b, label_a=args.path_a, label_b=args.path_b).to_text())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.harness.figures import figure_configs, figure_description
    from repro.harness.sweep import run_sweep

    configs = figure_configs(args.figure_id, scale=args.scale)
    print(
        f"regenerating {args.figure_id} ({figure_description(args.figure_id)}) "
        f"at {args.scale} scale: {len(configs)} runs (workers={args.workers}) ...",
        file=sys.stderr,
    )
    progress = (
        _monitored_progress(len(configs), args.workers)
        if args.monitor
        else _print_progress
    )
    results = run_sweep(configs, workers=args.workers, progress=progress)
    times = next(iter(results.values())).times
    metric = "stretch" if args.figure_id.startswith("fig6") else "lookup_latency"
    print(
        format_series(
            f"{args.figure_id}  {figure_description(args.figure_id)}",
            times,
            {label: getattr(r, metric) for label, r in results.items()},
        )
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.tables import summarize_directory

    print(summarize_directory(args.directory, metric=args.metric))
    return 0


def _cmd_presets(_: argparse.Namespace) -> int:
    rows = []
    for name, p in (("ts-large", TS_LARGE), ("ts-small", TS_SMALL)):
        rows.append(
            [
                name,
                p.transit_domains,
                p.transit_nodes_per_domain,
                p.stub_domains_per_transit,
                p.stub_nodes_per_domain,
                p.n_hosts,
            ]
        )
    print(
        format_table(
            ["preset", "transit domains", "transit/domain", "stubs/transit",
             "hosts/stub", "total hosts"],
            rows,
        )
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "presets":
        return _cmd_presets(args)
    if args.command == "show":
        return _cmd_show(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "report":
        return _cmd_report(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
