"""Discrete-event simulation substrate.

The paper evaluates PROP with a custom event-driven simulator on top of
GT-ITM topologies.  This package provides the equivalent substrate: a
deterministic event queue (:mod:`repro.netsim.events`), a simulation
engine with timers and periodic processes (:mod:`repro.netsim.engine`),
and named, reproducible random substreams (:mod:`repro.netsim.rng`).

All simulation time is in **seconds** (float).  Determinism contract:
given the same master seed and the same schedule of calls, a simulation
replays exactly — ties in event time are broken by insertion order.
"""

from repro.netsim.clock import Clock
from repro.netsim.engine import Simulator
from repro.netsim.events import Event, EventHandle, EventQueue
from repro.netsim.rng import RngRegistry, derive_seed

__all__ = [
    "Clock",
    "Event",
    "EventHandle",
    "EventQueue",
    "RngRegistry",
    "Simulator",
    "derive_seed",
]
