"""Simulation clock.

A tiny mutable wrapper around "current simulation time" shared between the
engine and any component that wants to timestamp observations (metrics
probes, protocol state machines).  Keeping it separate from the engine
makes protocol components testable without an event loop.
"""

from __future__ import annotations


class Clock:
    """Monotonic simulation clock measured in seconds.

    The clock only moves forward; attempting to rewind raises
    :class:`ValueError` so that scheduling bugs surface immediately
    instead of corrupting event ordering.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time ``t``.

        ``t`` may equal the current time (simultaneous events) but may
        never be earlier.
        """
        if t < self._now:
            raise ValueError(f"cannot rewind clock from {self._now} to {t}")
        self._now = float(t)

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by ``dt >= 0`` seconds."""
        if dt < 0.0:
            raise ValueError(f"cannot advance clock by negative delta {dt}")
        self._now += dt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.6f})"
