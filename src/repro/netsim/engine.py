"""Discrete-event simulation engine.

:class:`Simulator` owns a :class:`~repro.netsim.clock.Clock` and an
:class:`~repro.netsim.events.EventQueue` and exposes the small scheduling
vocabulary the protocol layer needs: one-shot timers (relative or
absolute), periodic processes, and bounded runs (`run_until`).

The engine is deliberately single-threaded and synchronous: events are
Python callables executed inline.  Message latency is modelled by
scheduling the receive handler ``d(u, v)`` seconds in the future, not by
simulating packets — the same abstraction level the paper's own simulator
uses.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.netsim.clock import Clock
from repro.netsim.events import EventHandle, EventQueue

__all__ = ["Simulator", "PeriodicProcess"]


class PeriodicProcess:
    """A repeating callback with a mutable period.

    Created through :meth:`Simulator.every`.  The callback may change
    ``period`` from inside itself (the PROP Markov-chain timer does
    exactly that) and may call :meth:`stop` to end the process.
    """

    __slots__ = ("_sim", "_callback", "period", "_handle", "_stopped")

    def __init__(self, sim: "Simulator", period: float, callback: Callable[[], None]) -> None:
        if period <= 0.0:
            raise ValueError(f"period must be positive, got {period}")
        self._sim = sim
        self._callback = callback
        self.period = float(period)
        self._stopped = False
        self._handle: EventHandle = sim.schedule(self.period, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._handle = self._sim.schedule(self.period, self._fire)

    def reschedule(self, delay: float) -> None:
        """Cancel the pending firing and fire again after ``delay``."""
        if self._stopped:
            raise RuntimeError("cannot reschedule a stopped process")
        self._handle.cancel()
        self._handle = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        self._stopped = True
        self._handle.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped


class Simulator:
    """Single-threaded discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(5.0, seen.append, "a")
    >>> _ = sim.schedule(1.0, seen.append, "b")
    >>> sim.run()
    >>> seen
    ['b', 'a']
    >>> sim.now
    5.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = Clock(start_time)
        self.queue = EventQueue()
        self.events_executed = 0
        #: Optional :class:`repro.obs.prof.KernelProfiler`.  ``None`` by
        #: default; ``run_until`` pays one attribute check when unset.
        self.profiler: Any = None

    @property
    def now(self) -> float:
        return self.clock.now

    # -- scheduling -----------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` after ``delay >= 0`` seconds."""
        if delay < 0.0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.queue.push(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at absolute time ``time >= now``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time}, now is {self.now}")
        return self.queue.push(time, callback, *args)

    def every(self, period: float, callback: Callable[[], None]) -> PeriodicProcess:
        """Start a periodic process firing every ``period`` seconds."""
        return PeriodicProcess(self, period, callback)

    # -- execution ------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when queue is empty."""
        if not self.queue:
            return False
        ev = self.queue.pop()
        self.clock.advance_to(ev.time)
        self.events_executed += 1
        ev.callback(*ev.args)
        return True

    def run(self, max_events: int | None = None) -> int:
        """Run until the queue drains (or ``max_events`` fire).

        Returns the number of events executed by this call.
        """
        executed = 0
        while self.queue:
            if max_events is not None and executed >= max_events:
                break
            if not self.step():
                break
            executed += 1
        return executed

    def run_until(self, t: float) -> int:
        """Run every event with timestamp ``<= t`` then set the clock to ``t``.

        Returns the number of events executed by this call.
        """
        if t < self.now:
            raise ValueError(f"cannot run_until({t}) when now is {self.now}")
        prof = self.profiler
        if prof is not None:
            return self._run_until_profiled(t, prof)
        executed = 0
        while True:
            nxt = self.queue.peek_time()
            if nxt is None or nxt > t:
                break
            self.step()
            executed += 1
        self.clock.advance_to(t)
        return executed

    def _run_until_profiled(self, t: float, prof: Any) -> int:
        """``run_until`` with the dispatch loop bracketed for attribution.

        The dispatch body is inlined (rather than calling :meth:`step`)
        so the per-event bracket encloses exactly the callback plus the
        pop/advance bookkeeping it shares the loop with; everything
        else in the window (peek, loop overhead) lands in the
        profiler's ``untracked`` residual.
        """
        prof.begin_window()
        executed = 0
        queue = self.queue
        clock = self.clock
        while True:
            nxt = queue.peek_time()
            if nxt is None or nxt > t:
                break
            prof.begin_event()
            ev = queue.pop()
            clock.advance_to(ev.time)
            self.events_executed += 1
            ev.callback(*ev.args)
            prof.end_event(ev.callback, ev.args)
            executed += 1
        clock.advance_to(t)
        prof.end_window(self)
        return executed
