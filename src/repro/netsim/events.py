"""Event queue for the discrete-event engine.

A classic binary-heap agenda with three properties the protocol code
relies on:

* **Stable ordering** — events at the same timestamp fire in insertion
  order (a monotone sequence number breaks ties), so simulations are
  exactly reproducible.
* **O(log n) cancellation** — cancelling marks the event dead and the pop
  loop skips corpses; the PROP timer logic cancels and reschedules
  constantly, so cancellation must be cheap.
* **No payload restrictions** — an event is just a callback plus
  positional arguments.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventHandle", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by ``(time, seq)``."""

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Opaque handle returned by :meth:`EventQueue.push`.

    Holding a handle lets the owner cancel the event or ask whether it is
    still pending.
    """

    __slots__ = ("_event", "_queue")

    def __init__(self, event: Event, queue: "EventQueue") -> None:
        self._event = event
        self._queue = queue

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def pending(self) -> bool:
        return not self._event.cancelled

    def cancel(self) -> bool:
        """Mark the event dead.  Returns ``True`` if it was still live."""
        if self._event.cancelled:
            return False
        self._event.cancelled = True
        self._queue._on_cancel()
        return True


class EventQueue:
    """Min-heap agenda of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0
        #: Cumulative telemetry counters (never reset; the profiling
        #: plane samples them per window and differences as needed).
        self.pushes = 0
        self.pops = 0
        self.cancels = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def heap_size(self) -> int:
        """Physical heap length, corpses included (``heap_size - len``
        is the corpse count)."""
        return len(self._heap)

    def push(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < 0.0:
            raise ValueError(f"cannot schedule event at negative time {time}")
        ev = Event(time=float(time), seq=self._seq, callback=callback, args=args)
        self._seq += 1
        self._live += 1
        self.pushes += 1
        heapq.heappush(self._heap, ev)
        return EventHandle(ev, self)

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` when empty."""
        self._drop_dead()
        return self._heap[0].time if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises :class:`IndexError` when no live events remain.  The
        popped event is marked dead so a late ``cancel()`` through a
        retained handle is a no-op instead of corrupting the live count.
        """
        self._drop_dead()
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        ev = heapq.heappop(self._heap)
        self._live -= 1
        self.pops += 1
        ev.cancelled = True
        return ev

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0

    def _on_cancel(self) -> None:
        self._live -= 1
        self.cancels += 1

    def _drop_dead(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
