"""Deterministic named random substreams.

Every stochastic component of the simulator (topology generation, overlay
construction, walk steps of each node, workload draws, churn process)
pulls its own :class:`numpy.random.Generator` from a shared
:class:`RngRegistry`.  Streams are derived from the master seed and a
stable string name, so adding a new component never perturbs the draws of
existing ones — the property that makes A/B protocol comparisons
meaningful ("same world, different protocol").
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> np.random.SeedSequence:
    """Derive a child :class:`~numpy.random.SeedSequence` for ``name``.

    The derivation hashes the name with CRC32 (stable across processes
    and Python versions, unlike :func:`hash`) and mixes it into the seed
    sequence entropy.
    """
    if not isinstance(name, str) or not name:
        raise ValueError("stream name must be a non-empty string")
    tag = zlib.crc32(name.encode("utf-8"))
    return np.random.SeedSequence(entropy=(int(master_seed) & 0xFFFFFFFFFFFFFFFF, tag))


class RngRegistry:
    """Factory and cache of named random generators.

    Parameters
    ----------
    master_seed:
        Single integer controlling the entire simulation.  Two registries
        with the same master seed hand out identical streams for
        identical names.
    """

    def __init__(self, master_seed: int) -> None:
        self._master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object (its state advances as it is consumed).
        """
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.Generator(np.random.PCG64(derive_seed(self._master_seed, name)))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name`` with its initial state.

        Unlike :meth:`stream` the result is not cached; use this when a
        component needs to replay its own draws from scratch.
        """
        return np.random.Generator(np.random.PCG64(derive_seed(self._master_seed, name)))

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry namespaced under ``name``.

        Useful to give each simulated node its own registry without any
        cross-node coupling: ``registry.spawn(f"node:{i}")``.
        """
        child_seed = derive_seed(self._master_seed, name).generate_state(1, dtype=np.uint64)[0]
        return RngRegistry(int(child_seed))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(master_seed={self._master_seed}, streams={sorted(self._streams)})"
