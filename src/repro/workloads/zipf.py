"""Zipf-skewed lookup workloads (extension).

Measured P2P query streams are heavily skewed: a few popular objects
draw most lookups.  The paper samples uniformly; this generator models
the realistic skew so ablations can ask whether PROP's benefit holds
when traffic concentrates on a handful of destinations (it should —
peer-exchange optimizes positions, not per-object placement).
"""

from __future__ import annotations

import numpy as np

__all__ = ["zipf_ranks", "zipf_target_pairs"]


def zipf_ranks(n_items: int, k: int, rng: np.random.Generator,
               *, exponent: float = 1.0) -> np.ndarray:
    """Draw ``k`` item ranks in ``[0, n_items)`` with P(r) ∝ 1/(r+1)^s."""
    if n_items < 1:
        raise ValueError("need at least one item")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    weights = 1.0 / np.power(np.arange(1, n_items + 1, dtype=np.float64), exponent)
    weights /= weights.sum()
    return rng.choice(n_items, size=k, p=weights)


def zipf_target_pairs(
    n_slots: int,
    k: int,
    rng: np.random.Generator,
    *,
    exponent: float = 1.0,
) -> np.ndarray:
    """(src, dst) pairs with Zipf-popular destinations.

    The popularity ranking over slots is itself randomized (a random
    permutation maps rank to slot) so popularity is uncorrelated with
    slot index or physical placement.
    """
    if n_slots < 2:
        raise ValueError("need at least two slots")
    perm = rng.permutation(n_slots)
    dst = perm[zipf_ranks(n_slots, k, rng, exponent=exponent)]
    src = rng.integers(0, n_slots, size=k)
    clash = src == dst
    src[clash] = (src[clash] + 1) % n_slots
    return np.stack([src, dst], axis=1).astype(np.intp)
