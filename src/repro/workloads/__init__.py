"""Workload generators: lookup streams, churn, node heterogeneity."""

from repro.workloads.churn import ChurnConfig, ChurnProcess
from repro.workloads.heterogeneity import (
    BimodalDelay,
    bimodal_processing_delay,
    capacity_weights_from_delay,
)
from repro.workloads.objects import ObjectCatalog, build_catalog, replica_queries
from repro.workloads.zipf import zipf_ranks, zipf_target_pairs
from repro.workloads.lookups import (
    biased_target_pairs,
    uniform_keys,
    uniform_pairs,
)

__all__ = [
    "BimodalDelay",
    "ObjectCatalog",
    "build_catalog",
    "replica_queries",
    "ChurnConfig",
    "ChurnProcess",
    "biased_target_pairs",
    "bimodal_processing_delay",
    "capacity_weights_from_delay",
    "uniform_keys",
    "uniform_pairs",
    "zipf_ranks",
    "zipf_target_pairs",
]
