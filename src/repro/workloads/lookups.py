"""Lookup workload generators.

The paper measures "average lookup latency derived from … lookup
operations": streams of (source, destination) pairs for unstructured
overlays, or (source, key) pairs for DHTs.  The Fig. 7 heterogeneity
experiment additionally biases lookup *destinations* toward fast nodes
("the destination of lookup operations will be concentrated on the
powerful nodes"), swept by the fraction of fast-targeted lookups.
"""

from __future__ import annotations

import numpy as np

__all__ = ["uniform_pairs", "uniform_keys", "biased_target_pairs"]


def uniform_pairs(n_slots: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """``k`` uniform (src, dst) slot pairs with ``src != dst``."""
    if n_slots < 2:
        raise ValueError("need at least two slots")
    src = rng.integers(0, n_slots, size=k)
    dst = rng.integers(0, n_slots - 1, size=k)
    dst = np.where(dst >= src, dst + 1, dst)
    return np.stack([src, dst], axis=1).astype(np.intp)


def uniform_keys(n_slots: int, space: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """``k`` uniform (src_slot, key) DHT queries."""
    if n_slots < 1:
        raise ValueError("need at least one slot")
    src = rng.integers(0, n_slots, size=k).astype(np.int64)
    keys = rng.integers(0, space, size=k).astype(np.int64)
    return np.stack([src, keys], axis=1)


def biased_target_pairs(
    fast_slots: np.ndarray,
    slow_slots: np.ndarray,
    fast_fraction: float,
    k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """(src, dst) pairs whose destinations hit fast nodes with probability
    ``fast_fraction`` — the Fig. 7 sweep variable.

    Sources are uniform over all slots; destinations are drawn from the
    fast or slow population per a Bernoulli(``fast_fraction``) coin, and
    resampled on the rare src == dst collision.
    """
    fast_slots = np.asarray(fast_slots, dtype=np.intp)
    slow_slots = np.asarray(slow_slots, dtype=np.intp)
    if not 0.0 <= fast_fraction <= 1.0:
        raise ValueError(f"fast_fraction must be in [0, 1], got {fast_fraction}")
    if fast_fraction > 0.0 and fast_slots.size == 0:
        raise ValueError("fast_fraction > 0 but no fast slots")
    if fast_fraction < 1.0 and slow_slots.size == 0:
        raise ValueError("fast_fraction < 1 but no slow slots")
    n_slots = fast_slots.size + slow_slots.size
    src = rng.integers(0, n_slots, size=k).astype(np.intp)
    pick_fast = rng.random(k) < fast_fraction
    dst = np.empty(k, dtype=np.intp)
    n_fast = int(pick_fast.sum())
    if n_fast:
        dst[pick_fast] = fast_slots[rng.integers(0, fast_slots.size, size=n_fast)]
    if k - n_fast:
        dst[~pick_fast] = slow_slots[rng.integers(0, slow_slots.size, size=k - n_fast)]
    # resolve self-lookups by shifting the source
    clash = src == dst
    src[clash] = (src[clash] + 1) % n_slots
    still = src == dst
    src[still] = (src[still] + 1) % n_slots
    return np.stack([src, dst], axis=1)
