"""Churn: membership turnover.

The paper's dynamics experiments ("it is also adaptive to dynamic change
of peers") exercise node departures and arrivals.  We model churn as
*slot turnover*: a departing host is immediately replaced at its overlay
position by a fresh host drawn from the physical network's spare pool —
the composition of a leave and a join that inherits the leaver's logical
links (Gnutella neighbors handed over / DHT identifier reassigned).
This keeps the logical graph intact while randomizing the physical
placement, which is exactly the disturbance PROP must repair; the
protocol engine is notified so its churn rules (timer reset, queue-front
insertion, warm-up restart) fire.

The replacement simplification is recorded in DESIGN.md §5.  Structural
join/leave (zone takeover, finger repair) is exercised separately by the
overlay test suites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.netsim.engine import Simulator
from repro.obs.events import ChurnJoin, ChurnLeave
from repro.obs.trace import NULL_TRACER, TracerLike
from repro.overlay.base import Overlay

__all__ = ["ChurnConfig", "ChurnProcess"]


@dataclass(frozen=True)
class ChurnConfig:
    """Poisson churn parameters.

    ``rate_per_node`` is the per-node turnover rate in events/second;
    the aggregate system churn rate is ``rate_per_node * n_slots``.
    ``start``/``stop`` bound the churn window (a *churn burst* in the
    adaptivity experiments is a finite window of elevated rate).
    """

    rate_per_node: float
    start: float = 0.0
    stop: float = float("inf")

    def __post_init__(self) -> None:
        if self.rate_per_node < 0:
            raise ValueError("rate_per_node must be >= 0")
        if self.stop < self.start:
            raise ValueError("stop must be >= start")


class ChurnProcess:
    """Poisson slot-turnover process bound to an overlay and a spare pool.

    Parameters
    ----------
    spare_hosts:
        Member-host indices *not* currently embedded in the overlay; the
        process swaps a random spare in for the departing host and
        returns the departed host to the pool.
    on_replace:
        Callback ``(slot) -> None`` fired after each replacement —
        typically :meth:`repro.core.protocol.PROPEngine.reset_slot`.
    tracer:
        Event sink for ``CHURN_LEAVE`` / ``CHURN_JOIN`` records.
    """

    def __init__(
        self,
        overlay: Overlay,
        config: ChurnConfig,
        sim: Simulator,
        rng: np.random.Generator,
        spare_hosts: list[int] | np.ndarray,
        on_replace: Callable[[int], None] | None = None,
        *,
        tracer: TracerLike | None = None,
    ) -> None:
        self.overlay = overlay
        self.config = config
        self.sim = sim
        self.rng = rng
        self.spare = list(int(h) for h in spare_hosts)
        used = set(int(h) for h in overlay.embedding)
        for h in self.spare:
            if h in used:
                raise ValueError(f"spare host {h} is already embedded")
        self.on_replace = on_replace
        self.tracer: TracerLike = tracer if tracer is not None else NULL_TRACER
        self.events = 0
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("churn process already started")
        self._started = True
        if self.config.rate_per_node <= 0 or not self.spare:
            return
        self._schedule_next()

    def _aggregate_rate(self) -> float:
        return self.config.rate_per_node * self.overlay.n_slots

    def _schedule_next(self) -> None:
        gap = float(self.rng.exponential(1.0 / self._aggregate_rate()))
        t = max(self.sim.now, self.config.start) + gap
        if t > self.config.stop:
            return
        self.sim.schedule_at(t, self._churn_event)

    def _churn_event(self) -> None:
        if self.spare:
            self.replace_random_slot()
        self._schedule_next()

    def replace_random_slot(self) -> int:
        """Swap a random slot's host for a random spare.  Returns the slot."""
        if not self.spare:
            raise RuntimeError("no spare hosts left")
        slot = int(self.rng.integers(0, self.overlay.n_slots))
        i = int(self.rng.integers(0, len(self.spare)))
        newcomer = self.spare[i]
        departed = self.overlay.replace_host(slot, newcomer)
        self.spare[i] = departed
        self.events += 1
        if self.tracer.enabled:
            self.tracer.emit(ChurnLeave, slot=slot, host=int(departed))
            self.tracer.emit(ChurnJoin, slot=slot, host=int(newcomer))
        if self.on_replace is not None:
            self.on_replace(slot)
        return slot
