"""Replicated-object workloads (extension).

File-sharing realism for the flooding search: a catalog of objects whose
popularity follows a Zipf law, with replica counts proportional to
popularity (popular files are downloaded and therefore re-shared more),
placed on uniformly random holders.  Queries draw objects by popularity,
so most lookups chase well-replicated files — the regime where flooding
shines — while the tail exercises the rare-object worst case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.zipf import zipf_ranks

__all__ = ["ObjectCatalog", "build_catalog", "replica_queries"]


@dataclass(frozen=True)
class ObjectCatalog:
    """A catalog of replicated objects.

    ``holders[i]`` is the array of slots holding object ``i``; object
    ranks are popularity order (0 = most popular).
    """

    holders: tuple[np.ndarray, ...]
    exponent: float

    @property
    def n_objects(self) -> int:
        return len(self.holders)

    def replica_counts(self) -> np.ndarray:
        return np.array([h.size for h in self.holders])


def build_catalog(
    n_slots: int,
    n_objects: int,
    rng: np.random.Generator,
    *,
    exponent: float = 1.0,
    max_replicas: int | None = None,
    min_replicas: int = 1,
) -> ObjectCatalog:
    """Catalog with popularity-proportional replication.

    Object of rank ``r`` gets ``max(min_replicas, max_replicas/(r+1))``
    replicas (``max_replicas`` defaults to ``n_slots // 10``), placed on
    distinct random slots.
    """
    if n_objects < 1:
        raise ValueError("need at least one object")
    if min_replicas < 1 or min_replicas > n_slots:
        raise ValueError(f"min_replicas must be in [1, {n_slots}]")
    if max_replicas is None:
        max_replicas = max(min_replicas, n_slots // 10)
    if max_replicas > n_slots:
        raise ValueError("max_replicas cannot exceed the slot count")
    holders = []
    for rank in range(n_objects):
        count = max(min_replicas, int(round(max_replicas / (rank + 1))))
        holders.append(np.sort(rng.choice(n_slots, size=count, replace=False)))
    return ObjectCatalog(holders=tuple(holders), exponent=exponent)


def replica_queries(
    catalog: ObjectCatalog,
    n_slots: int,
    k: int,
    rng: np.random.Generator,
) -> list[tuple[int, np.ndarray]]:
    """``k`` (querier, holder-set) pairs with Zipf-popular objects."""
    ranks = zipf_ranks(catalog.n_objects, k, rng, exponent=catalog.exponent)
    srcs = rng.integers(0, n_slots, size=k)
    return [(int(s), catalog.holders[int(r)]) for s, r in zip(srcs, ranks)]
