"""Bimodal node heterogeneity (the Fig. 7 environment).

Section 5.3: "There are two kinds of nodes — fast and slow.  The
processing delay of the fast nodes is 1 ms, while the delay of the slow
ones is [100] ms.  The fraction of fast nodes is [50] % of the total
population: the overall setting is similar to that in [Dabek et al.]."
(The two bracketed numerals were dropped by the OCR of the conference
text; the values used here are the Dabek et al. NSDI'04 setting the
sentence points to — see DESIGN.md §5.)

Processing delay is a property of the *host* (the physical machine), not
of the overlay slot it currently occupies: after PROP-G position swaps a
slow host can sit in a former hub position, which is precisely the
phenomenon Fig. 7 measures.  Helpers are provided to view the delays in
slot space through an embedding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BimodalDelay", "bimodal_processing_delay", "capacity_weights_from_delay"]


@dataclass(frozen=True)
class BimodalDelay:
    """Per-host bimodal processing delays.

    Attributes
    ----------
    delay_ms:
        Processing delay of each host (member index space).
    is_fast:
        Boolean mask over hosts.
    """

    delay_ms: np.ndarray
    is_fast: np.ndarray

    @property
    def fast_hosts(self) -> np.ndarray:
        return np.flatnonzero(self.is_fast)

    @property
    def slow_hosts(self) -> np.ndarray:
        return np.flatnonzero(~self.is_fast)

    def slot_delays(self, embedding: np.ndarray) -> np.ndarray:
        """Processing delay per overlay *slot* under ``embedding``."""
        return self.delay_ms[embedding]

    def fast_slots(self, embedding: np.ndarray) -> np.ndarray:
        """Slots currently occupied by fast hosts."""
        return np.flatnonzero(self.is_fast[embedding])

    def slow_slots(self, embedding: np.ndarray) -> np.ndarray:
        return np.flatnonzero(~self.is_fast[embedding])


def bimodal_processing_delay(
    n_hosts: int,
    rng: np.random.Generator,
    *,
    fast_fraction: float = 0.5,
    fast_ms: float = 1.0,
    slow_ms: float = 100.0,
) -> BimodalDelay:
    """Assign fast/slow processing delays to ``n_hosts`` hosts."""
    if not 0.0 <= fast_fraction <= 1.0:
        raise ValueError(f"fast_fraction must be in [0, 1], got {fast_fraction}")
    if fast_ms <= 0 or slow_ms <= 0:
        raise ValueError("delays must be positive")
    n_fast = int(round(fast_fraction * n_hosts))
    is_fast = np.zeros(n_hosts, dtype=bool)
    fast_idx = (rng.choice(n_hosts, size=n_fast, replace=False)
                if n_fast else np.empty(0, dtype=np.intp))
    is_fast[fast_idx] = True
    delay = np.where(is_fast, fast_ms, slow_ms).astype(np.float64)
    return BimodalDelay(delay_ms=delay, is_fast=is_fast)


def capacity_weights_from_delay(
    het: BimodalDelay,
    embedding: np.ndarray,
    *,
    fast_weight: float = 4.0,
) -> np.ndarray:
    """Per-slot degree weights: fast hosts attract more connections.

    The paper leans on the real-Gnutella fact that "powerful nodes …
    inherently have more connections"; a fast host's slot gets
    ``fast_weight`` times the base attachment weight during overlay
    construction.
    """
    if fast_weight <= 0:
        raise ValueError("fast_weight must be positive")
    return np.where(het.is_fast[embedding], fast_weight, 1.0)
