"""Directory-level reports over saved experiment results.

A study directory full of ``run --save`` / :func:`save_result` JSON
records becomes one table: per-record deployment description, initial
and final metric values, and improvement ratio — the shape EXPERIMENTS.md
tables use, generated from the artifacts themselves.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.harness.persistence import StoredResult, load_result
from repro.harness.reporting import format_table

__all__ = ["describe_config", "summarize_directory"]


def describe_config(config: dict) -> str:
    """One-phrase description of a stored config dict."""
    parts = [str(config.get("overlay_kind", "?")), f"n={config.get('n_overlay', '?')}"]
    prop = config.get("prop")
    ltm = config.get("ltm")
    if prop:
        label = f"PROP-{prop.get('policy', '?')}"
        if prop.get("policy") == "O" and prop.get("m") is not None:
            label += f" m={prop['m']}"
        parts.append(label)
    elif ltm:
        parts.append("LTM")
    else:
        parts.append("none")
    if config.get("heterogeneous"):
        parts.append("het")
    if config.get("churn"):
        parts.append("churn")
    parts.append(str(config.get("preset", "?")))
    return " ".join(parts)


def _row(name: str, stored: StoredResult, metric: str) -> list:
    series = np.asarray(getattr(stored, metric), dtype=np.float64)
    finite = series[np.isfinite(series)]
    if finite.size == 0:
        return [name, describe_config(stored.config), float("nan"), float("nan"), float("nan")]
    return [
        name,
        describe_config(stored.config),
        float(finite[0]),
        float(finite[-1]),
        float(finite[-1] / finite[0]) if finite[0] else float("nan"),
    ]


def summarize_directory(
    path: str | pathlib.Path,
    *,
    metric: str = "lookup_latency",
    pattern: str = "*.json",
) -> str:
    """Tabulate every stored result under ``path`` (sorted by filename).

    Unreadable or non-result JSON files are listed as skipped rather
    than aborting the report.
    """
    path = pathlib.Path(path)
    if not path.is_dir():
        raise ValueError(f"{path} is not a directory")
    rows = []
    skipped = []
    for p in sorted(path.glob(pattern)):
        try:
            stored = load_result(p)
        except (ValueError, KeyError, OSError):
            skipped.append(p.name)
            continue
        rows.append(_row(p.name, stored, metric))
    if not rows:
        raise ValueError(f"no stored results matching {pattern!r} under {path}")
    out = format_table(
        ["file", "deployment", f"initial {metric}", f"final {metric}", "final/initial"],
        rows,
    )
    if skipped:
        out += "\n\nskipped (not result records): " + ", ".join(skipped)
    return out
