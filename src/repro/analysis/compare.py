"""Summaries and A/B comparisons of experiment results.

Works uniformly on live :class:`~repro.harness.experiment.ExperimentResult`
objects and reloaded :class:`~repro.harness.persistence.StoredResult`
records (anything exposing the series attributes).  The comparison is
deliberately plain: final values, deltas, ratios, and a one-line verdict
per metric — the numbers a reviewer asks for first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.harness.reporting import format_table

__all__ = ["ComparisonReport", "compare_results", "summarize_result"]

_METRICS = ("lookup_latency", "stretch", "link_stretch")


def _final(result, metric: str) -> float:
    series = np.asarray(getattr(result, metric), dtype=np.float64)
    finite = series[np.isfinite(series)]
    return float(finite[-1]) if finite.size else float("nan")


def _initial(result, metric: str) -> float:
    series = np.asarray(getattr(result, metric), dtype=np.float64)
    finite = series[np.isfinite(series)]
    return float(finite[0]) if finite.size else float("nan")


@dataclass(frozen=True)
class MetricComparison:
    """A vs B on one metric (final sample)."""

    metric: str
    a_final: float
    b_final: float

    @property
    def delta(self) -> float:
        return self.b_final - self.a_final

    @property
    def ratio(self) -> float:
        return self.b_final / self.a_final if self.a_final else float("nan")

    @property
    def verdict(self) -> str:
        if not np.isfinite(self.ratio):
            return "incomparable"
        if self.ratio < 0.98:
            return "B better"
        if self.ratio > 1.02:
            return "A better"
        return "tie"


@dataclass(frozen=True)
class ComparisonReport:
    """Full A/B comparison across the standard metrics."""

    label_a: str
    label_b: str
    metrics: tuple[MetricComparison, ...]

    def winner(self, metric: str = "lookup_latency") -> str:
        for m in self.metrics:
            if m.metric == metric:
                return m.verdict
        raise KeyError(f"unknown metric {metric!r}")

    def to_text(self) -> str:
        rows = [
            [m.metric, m.a_final, m.b_final, m.delta, m.ratio, m.verdict]
            for m in self.metrics
        ]
        return (
            f"A = {self.label_a}\nB = {self.label_b}\n\n"
            + format_table(
                ["metric", "A final", "B final", "B-A", "B/A", "verdict"], rows
            )
        )


def compare_results(a, b, *, label_a: str = "A", label_b: str = "B") -> ComparisonReport:
    """Compare two results metric by metric (final samples)."""
    comparisons = tuple(
        MetricComparison(metric=m, a_final=_final(a, m), b_final=_final(b, m))
        for m in _METRICS
    )
    return ComparisonReport(label_a=label_a, label_b=label_b, metrics=comparisons)


def summarize_result(result, *, label: str = "experiment") -> str:
    """One-screen text summary of a result."""
    rows = []
    for m in _METRICS:
        init, fin = _initial(result, m), _final(result, m)
        ratio = fin / init if init and np.isfinite(init) else float("nan")
        rows.append([m, init, fin, ratio])
    times = np.asarray(result.times)
    header = (
        f"== {label} ==\n"
        f"samples: {times.size} over {times[-1]:.0f} s "
        f"(every {times[1] - times[0]:.0f} s)\n"
    )
    return header + format_table(["metric", "initial", "final", "final/initial"], rows)
