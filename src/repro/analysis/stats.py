"""Statistical comparison of replicated experiments.

:func:`compare_replicated` takes two
:class:`~repro.harness.replicate.ReplicationSummary` objects built over
the *same seed list* — so replica ``i`` of A and replica ``i`` of B ran
in the identical world — and does the right paired analysis on the final
metric values: mean paired difference, a t-based confidence interval,
and the Wilcoxon signed-rank / paired-t p-values (scipy).  Pairing
removes world-to-world variance, which dwarfs protocol differences at
small replica counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.harness.replicate import ReplicationSummary

__all__ = ["PairedComparison", "compare_replicated"]


@dataclass(frozen=True)
class PairedComparison:
    """Paired statistics for B − A on one metric's final values."""

    metric: str
    n_pairs: int
    a_mean: float
    b_mean: float
    mean_diff: float
    ci_low: float
    ci_high: float
    t_pvalue: float
    wilcoxon_pvalue: float

    @property
    def significant(self) -> bool:
        """True when the 95% CI for the paired difference excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0

    def verdict(self) -> str:
        if not self.significant:
            return "no significant difference"
        return "B lower (better)" if self.mean_diff < 0 else "B higher (worse)"


def compare_replicated(
    a: ReplicationSummary,
    b: ReplicationSummary,
    *,
    metric: str = "lookup_latency",
    confidence: float = 0.95,
) -> PairedComparison:
    """Paired comparison of final metric values, replica by replica."""
    if a.seeds != b.seeds:
        raise ValueError("summaries must be replicated over the same seed list")
    if len(a.seeds) < 2:
        raise ValueError("need at least two replicas for a paired comparison")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")

    a_final = np.array([float(getattr(r, metric)[-1]) for r in a.results])
    b_final = np.array([float(getattr(r, metric)[-1]) for r in b.results])
    diff = b_final - a_final
    n = diff.size
    mean_diff = float(diff.mean())
    se = float(diff.std(ddof=1)) / np.sqrt(n)
    if se == 0.0:
        ci_low = ci_high = mean_diff
        t_p = 0.0 if mean_diff != 0.0 else 1.0
    else:
        tcrit = float(sps.t.ppf(0.5 + confidence / 2.0, df=n - 1))
        ci_low = mean_diff - tcrit * se
        ci_high = mean_diff + tcrit * se
        t_p = float(sps.ttest_rel(b_final, a_final).pvalue)
    if np.allclose(diff, 0.0):
        w_p = 1.0
    else:
        w_p = float(sps.wilcoxon(b_final, a_final).pvalue)
    return PairedComparison(
        metric=metric,
        n_pairs=n,
        a_mean=float(a_final.mean()),
        b_mean=float(b_final.mean()),
        mean_diff=mean_diff,
        ci_low=float(ci_low),
        ci_high=float(ci_high),
        t_pvalue=t_p,
        wilcoxon_pvalue=w_p,
    )
