"""Post-hoc analysis of experiment results: summaries and comparisons."""

from repro.analysis.compare import ComparisonReport, compare_results, summarize_result
from repro.analysis.stats import PairedComparison, compare_replicated
from repro.analysis.tables import describe_config, summarize_directory
from repro.analysis.exchanges import (
    ExchangeStats,
    exchange_rate,
    exchange_stats,
    gain_captured_by,
)

__all__ = [
    "ComparisonReport",
    "ExchangeStats",
    "PairedComparison",
    "compare_replicated",
    "describe_config",
    "summarize_directory",
    "compare_results",
    "exchange_rate",
    "exchange_stats",
    "gain_captured_by",
    "summarize_result",
]
