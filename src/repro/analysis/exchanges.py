"""Analytics over the protocol's exchange log.

Every executed peer-exchange is recorded as an
:class:`~repro.core.protocol.ExchangeRecord`; these helpers turn the log
into the quantities the convergence story is told with — exchange rate
over time, the distribution of realized Var gains, per-slot activity,
and the share of total improvement captured early (the paper's warm-up
claim in log form).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.protocol import ExchangeRecord

__all__ = ["ExchangeStats", "exchange_stats", "exchange_rate", "gain_captured_by"]


@dataclass(frozen=True)
class ExchangeStats:
    """Aggregate view of one run's exchange log."""

    count: int
    total_var: float
    mean_var: float
    median_var: float
    first_time: float
    last_time: float
    most_active_slot: int
    most_active_count: int


def exchange_stats(log: Sequence[ExchangeRecord]) -> ExchangeStats:
    """Summarize an exchange log (raises on an empty log)."""
    if not log:
        raise ValueError("exchange log is empty")
    vars_ = np.array([r.var for r in log])
    participants = np.array([[r.u, r.v] for r in log]).ravel()
    slots, counts = np.unique(participants, return_counts=True)
    top = int(np.argmax(counts))
    return ExchangeStats(
        count=len(log),
        total_var=float(vars_.sum()),
        mean_var=float(vars_.mean()),
        median_var=float(np.median(vars_)),
        first_time=float(log[0].time),
        last_time=float(log[-1].time),
        most_active_slot=int(slots[top]),
        most_active_count=int(counts[top]),
    )


def exchange_rate(
    log: Sequence[ExchangeRecord],
    bin_seconds: float,
    until: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Exchanges per second in fixed time bins.

    Returns ``(bin_end_times, rates)``.  ``until`` extends the binning
    past the last exchange (to show the converged silence).
    """
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    times = np.array([r.time for r in log], dtype=np.float64)
    horizon = max(times.max() if times.size else 0.0, until or 0.0)
    n_bins = max(1, int(np.ceil(horizon / bin_seconds)))
    edges = np.arange(1, n_bins + 1) * bin_seconds
    counts, _ = np.histogram(times, bins=np.concatenate([[0.0], edges]))
    return edges, counts / bin_seconds


def gain_captured_by(log: Sequence[ExchangeRecord], time: float) -> float:
    """Fraction of the run's total Var gain realized by ``time``.

    The log-level form of the warm-up claim: most of the improvement
    lands in the first probe rounds.
    """
    if not log:
        raise ValueError("exchange log is empty")
    total = sum(r.var for r in log)
    if total <= 0:
        raise ValueError("log has no positive total gain")
    early = sum(r.var for r in log if r.time <= time)
    return early / total
