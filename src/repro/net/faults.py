"""Fault injection: a transport decorator and named partitions.

:class:`FaultyTransport` wraps any :class:`~repro.net.transport.Transport`
and injects, from its own seeded RNG stream (draw order is deterministic
per seed, independent of the protocol streams):

* **per-link loss** — ``loss`` is a probability, a ``{(src, dst): p}``
  mapping (symmetric lookup), or a callable ``(src, dst) -> p``;
* **extra delay and jitter** — a fixed ``extra_delay_ms`` plus a uniform
  draw in ``[0, jitter_ms)`` per message;
* **reordering** — with probability ``reorder_prob`` a message is held
  an extra uniform ``[0, reorder_ms)``, letting later sends overtake it;
* **named partitions** — while a partition is installed, messages
  crossing between its two groups are dropped (counted separately from
  random loss).  Partitions are installed/removed by name at any time,
  so a transient partition is ``partition(...)`` + a scheduled
  ``heal(...)``.

:class:`PartitionSpec` is the CLI/harness grammar for transient
partitions: ``a:b`` splits the overlay into named halves for the whole
run; ``a:b@120-300`` installs the split at t=120 s and heals it at
t=300 s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.net.messages import Message
from repro.net.transport import Handler, Transport, TransportStats, trace_tag
from repro.netsim.engine import Simulator
from repro.obs.events import (
    MsgDropEvent,
    MsgSendEvent,
    SpanEndEvent,
    SpanStartEvent,
)
from repro.obs.trace import NULL_TRACER, TracerLike

__all__ = ["FaultyTransport", "PartitionSpec"]

LossSpec = float | Mapping[tuple[int, int], float] | Callable[[int, int], float]


class FaultyTransport:
    """Transport decorator injecting seeded faults (see module docs)."""

    def __init__(
        self,
        inner: Transport,
        rng: np.random.Generator,
        *,
        loss: LossSpec = 0.0,
        extra_delay_ms: float = 0.0,
        jitter_ms: float = 0.0,
        reorder_prob: float = 0.0,
        reorder_ms: float = 50.0,
    ) -> None:
        if isinstance(loss, float) and not 0.0 <= loss < 1.0:
            raise ValueError(f"loss probability must be in [0, 1), got {loss}")
        if extra_delay_ms < 0.0 or jitter_ms < 0.0 or reorder_ms < 0.0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= reorder_prob <= 1.0:
            raise ValueError(f"reorder_prob must be in [0, 1], got {reorder_prob}")
        self.inner = inner
        self.rng = rng
        self.loss = loss
        self.extra_delay_ms = float(extra_delay_ms)
        self.jitter_ms = float(jitter_ms)
        self.reorder_prob = float(reorder_prob)
        self.reorder_ms = float(reorder_ms)
        self._partitions: dict[str, tuple[frozenset[int], frozenset[int]]] = {}

    @property
    def stats(self) -> TransportStats:
        return self.inner.stats

    @property
    def tracer(self) -> TracerLike:
        return getattr(self.inner, "tracer", NULL_TRACER)

    @property
    def partitions(self) -> dict[str, tuple[frozenset[int], frozenset[int]]]:
        return dict(self._partitions)

    # -- partition management -------------------------------------------

    def partition(self, name: str, group_a: frozenset[int] | set[int],
                  group_b: frozenset[int] | set[int]) -> None:
        """Install (or replace) the named partition between two groups."""
        a, b = frozenset(group_a), frozenset(group_b)
        if a & b:
            raise ValueError(f"partition {name!r} groups overlap: {sorted(a & b)}")
        self._partitions[name] = (a, b)

    def heal(self, name: str) -> None:
        """Remove the named partition; unknown names are a no-op."""
        self._partitions.pop(name, None)

    def _severed(self, src: int, dst: int) -> bool:
        for a, b in self._partitions.values():
            if (src in a and dst in b) or (src in b and dst in a):
                return True
        return False

    # -- transport interface --------------------------------------------

    def register(self, slot: int, handler: Handler) -> None:
        self.inner.register(slot, handler)

    def unregister(self, slot: int) -> None:
        self.inner.unregister(slot)

    def _loss_for(self, src: int, dst: int) -> float:
        loss = self.loss
        if callable(loss):
            return float(loss(src, dst))
        if isinstance(loss, Mapping):
            return float(loss.get((src, dst), loss.get((dst, src), 0.0)))
        return float(loss)

    def send(self, msg: Message, extra_delay_ms: float = 0.0) -> None:
        stats = self.inner.stats
        if self._severed(msg.src, msg.dst):
            stats.record_send(msg)
            stats.record_drop(msg, "partition")
            self._trace_drop(msg, "partition")
            return
        p = self._loss_for(msg.src, msg.dst)
        if p > 0.0 and float(self.rng.random()) < p:
            stats.record_send(msg)
            stats.record_drop(msg, "loss")
            self._trace_drop(msg, "loss")
            return
        delay = extra_delay_ms + self.extra_delay_ms
        if self.jitter_ms > 0.0:
            delay += float(self.rng.random()) * self.jitter_ms
        if self.reorder_prob > 0.0 and float(self.rng.random()) < self.reorder_prob:
            delay += float(self.rng.random()) * self.reorder_ms
        self.inner.send(msg, extra_delay_ms=delay)

    def _trace_drop(self, msg: Message, reason: str) -> None:
        """A dropped message never reaches the inner transport, so its
        SEND and DROP are both recorded here."""
        tracer = self.tracer
        if tracer.enabled:
            tag = trace_tag(msg)
            tracer.emit(MsgSendEvent, mtype=msg.type_name, src=msg.src,
                        dst=msg.dst, tag=tag)
            tracer.emit(MsgDropEvent, mtype=msg.type_name, src=msg.src,
                        dst=msg.dst, tag=tag, reason=reason)
            if msg.span_id >= 0:
                # the injected drop is observable: a zero-length message
                # span closed with status "drop" (real UDP loss, by
                # contrast, leaves the span half-open)
                tracer.emit(SpanStartEvent, trace=msg.trace_id,
                            span=msg.span_id, parent=msg.parent_id,
                            name=f"msg:{msg.type_name}", node=msg.src)
                tracer.emit(SpanEndEvent, trace=msg.trace_id,
                            span=msg.span_id, status="drop")


@dataclass(frozen=True)
class PartitionSpec:
    """Parsed ``--partition`` directive: ``NAME_A:NAME_B[@START-END]``.

    The overlay is split into two contiguous halves of slots (the first
    half labelled ``name_a``, the rest ``name_b``).  Without a time
    window the partition lasts the whole run; with ``@START-END`` it is
    installed at ``start`` seconds and healed at ``end``.
    """

    name_a: str
    name_b: str
    start: float | None = None
    end: float | None = None

    @property
    def name(self) -> str:
        return f"{self.name_a}:{self.name_b}"

    @classmethod
    def parse(cls, spec: str) -> "PartitionSpec":
        body, _, window = spec.partition("@")
        parts = body.split(":")
        if len(parts) != 2 or not parts[0] or not parts[1]:
            raise ValueError(
                f"partition spec must look like 'a:b' or 'a:b@120-300', got {spec!r}"
            )
        start: float | None = None
        end: float | None = None
        if window:
            lo, sep, hi = window.partition("-")
            try:
                start = float(lo)
                end = float(hi) if sep else None
            except ValueError:
                raise ValueError(f"bad partition window in {spec!r}") from None
            if end is not None and end <= start:
                raise ValueError(f"partition window must end after it starts: {spec!r}")
        return cls(parts[0], parts[1], start, end)

    def groups(self, n_slots: int) -> tuple[frozenset[int], frozenset[int]]:
        """The two slot halves: ``[0, n/2)`` and ``[n/2, n)``."""
        half = n_slots // 2
        return frozenset(range(half)), frozenset(range(half, n_slots))

    def install(
        self, transport: FaultyTransport, sim: Simulator, n_slots: int
    ) -> None:
        """Apply to ``transport`` now or on schedule via ``sim``."""
        a, b = self.groups(n_slots)
        if self.start is None or self.start <= sim.now:
            transport.partition(self.name, a, b)
        else:
            sim.schedule(self.start - sim.now, transport.partition, self.name, a, b)
        if self.end is not None:
            sim.schedule(self.end - sim.now, transport.heal, self.name)
