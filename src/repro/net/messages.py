"""Typed protocol messages.

The PROP message grammar (docs/protocol.md has the full exchange
diagrams).  Every message is a frozen dataclass carrying the source and
destination *slots* — the transport resolves slots to hosts through the
overlay embedding at send time, exactly like a real node resolving a
peer address.

Wire-size model: sizes are estimates for the telemetry layer (bytes on
the wire per message type), not a serialization format.  A message costs
``HEADER_BYTES`` (type tag, source/destination addresses, ids and a
timestamp — the paper's probe message carries "the IP address of u, a
timestamp, and a TTL value") plus ``INT_BYTES`` per integer payload
field and per element of each slot list it carries.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import ClassVar

__all__ = [
    "HEADER_BYTES",
    "INT_BYTES",
    "MSG_TYPES",
    "ExchangeAbort",
    "ExchangeCommit",
    "ExchangePrepare",
    "Message",
    "Notify",
    "VarProbe",
    "VarReply",
    "Walk",
]

HEADER_BYTES = 28
INT_BYTES = 4


@dataclass(frozen=True)
class Message:
    """Base protocol message between two overlay slots."""

    src: int
    dst: int

    #: Causality context (docs/observability.md, "Causal spans").  Every
    #: message carries the trace it belongs to, its own span id, and the
    #: span that caused it; ``-1`` means untraced.  Keyword-only so the
    #: defaults do not interleave with subclass payload fields.
    trace_id: int = field(default=-1, kw_only=True)
    span_id: int = field(default=-1, kw_only=True)
    parent_id: int = field(default=-1, kw_only=True)

    #: Wire-grammar tag; subclasses override.
    type_name: ClassVar[str] = "MESSAGE"

    def size_bytes(self) -> int:
        """Estimated wire size: header + 4 bytes per integer payload.

        The span-context ids ride the header alongside src/dst (the
        paper's byte accounting in §4.3 predates tracing, so the
        telemetry size model keeps them out of the payload count; the
        real codec does charge for them — see ``encoded_size``).
        """
        size = HEADER_BYTES
        for f in fields(self):
            if f.name in ("src", "dst", "trace_id", "span_id", "parent_id"):
                continue  # addressed in the header
            value = getattr(self, f.name)
            if isinstance(value, bool):
                size += 1
            elif isinstance(value, (int, float)):
                size += INT_BYTES
            elif isinstance(value, tuple):
                size += INT_BYTES * len(value)
            elif isinstance(value, str):
                size += len(value)
        return size


@dataclass(frozen=True)
class Walk(Message):
    """``WALK`` — the TTL random-walk probe (Section 3.2).

    ``path`` is the forwarding record ("any node that receives this
    message will add an identifier … to avoid repetitive forwarding");
    ``ttl`` counts the hops still allowed.  The node where the TTL hits
    zero is the exchange candidate.
    """

    origin: int
    ttl: int
    cycle: int
    path: tuple[int, ...]

    type_name: ClassVar[str] = "WALK"


@dataclass(frozen=True)
class VarProbe(Message):
    """``VAR_PROBE`` — one latency-measurement ping to a neighbor.

    Fire-and-forget: the measurement round-trip is modelled by the ping
    message alone (matching the §4.3 count of one message per collected
    latency); a lost ping degrades telemetry, not safety.
    """

    cycle: int

    type_name: ClassVar[str] = "VAR_PROBE"


@dataclass(frozen=True)
class VarReply(Message):
    """``VAR_REPLY`` — the walk terminal reports back to the origin.

    Carries the walk path (the connectivity guarantee of Theorem 1 —
    these slots must never be traded) and the candidate's neighbor
    snapshot, i.e. its half of the Var information collection.  ``ok``
    is False when the candidate refuses (structurally incompatible pair
    or candidate busy in another exchange).
    """

    cycle: int
    candidate: int
    ok: bool
    path: tuple[int, ...]
    cand_neighbors: tuple[int, ...]

    type_name: ClassVar[str] = "VAR_REPLY"


@dataclass(frozen=True)
class ExchangePrepare(Message):
    """``EXCHANGE_PREPARE`` — phase one of the exchange commit.

    The initiator proposes the exchange it evaluated: a position swap
    (PROP-G, empty give lists) or the selected equal-size neighbor
    trade (PROP-O).  The participant validates against its *current*
    state and votes ``EXCHANGE_COMMIT`` or ``EXCHANGE_ABORT``.
    """

    xid: int
    cycle: int
    policy: str
    var: float
    give_u: tuple[int, ...]
    give_v: tuple[int, ...]

    type_name: ClassVar[str] = "EXCHANGE_PREPARE"


@dataclass(frozen=True)
class ExchangeCommit(Message):
    """``EXCHANGE_COMMIT`` — the participant's yes-vote.

    The participant is now *prepared* (locked) and the initiator alone
    applies the exchange; a lost vote therefore leaves both sides
    unchanged, never half-swapped.
    """

    xid: int

    type_name: ClassVar[str] = "EXCHANGE_COMMIT"


@dataclass(frozen=True)
class ExchangeAbort(Message):
    """``EXCHANGE_ABORT`` — either side cancels exchange ``xid``."""

    xid: int
    reason: str

    type_name: ClassVar[str] = "EXCHANGE_ABORT"


@dataclass(frozen=True)
class Notify(Message):
    """``NOTIFY`` — post-exchange routing-state notification.

    Sent to every routing-table holder affected by a committed exchange
    (Section 3.2's "notify their neighbors").  The copy addressed to the
    exchange participant carries ``commit=True`` and doubles as the
    commit confirmation that releases its prepared lock.
    """

    xid: int
    commit: bool

    type_name: ClassVar[str] = "NOTIFY"


#: The wire grammar: every concrete message type, by tag.
MSG_TYPES: tuple[str, ...] = (
    "WALK",
    "VAR_PROBE",
    "VAR_REPLY",
    "EXCHANGE_PREPARE",
    "EXCHANGE_COMMIT",
    "EXCHANGE_ABORT",
    "NOTIFY",
)
