"""The transport interface and the deterministic simulator transport.

:class:`Transport` is the seam between the protocol state machine and
the network: the engine registers one handler per slot and calls
:meth:`~Transport.send`; everything else (latency, loss, partitions) is
the transport's business.  :class:`SimTransport` delivers through the
existing :class:`~repro.netsim.engine.Simulator` after the physical
latency ``d(src, dst)`` read from the oracle via the overlay embedding —
hosts that move (PROP-G swaps) automatically change their link
latencies, as they would in a real deployment.

``latency_scale`` exists for the determinism bridge: at ``0.0`` a
message is delivered at the same timestamp it was sent (the event queue
preserves insertion order within a timestamp), which recovers the
paper's instantaneous-cycle abstraction as a special case of the message
plane — the property the bridge integration test pins.

Telemetry: :class:`TransportStats` tallies sends, deliveries, drops,
bytes and the in-flight gauge per message type; the fault decorator
records its drops here too, so one object describes the whole message
plane.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.net.messages import Message
from repro.netsim.engine import Simulator
from repro.obs.events import (
    MsgDeliverEvent,
    MsgSendEvent,
    SpanEndEvent,
    SpanStartEvent,
)
from repro.obs.trace import NULL_TRACER, TracerLike
from repro.overlay.base import Overlay

__all__ = ["DeliveryTap", "SimTransport", "Transport", "TransportStats", "trace_tag"]

_MS = 1e-3  # latency oracle is in milliseconds; simulation time in seconds

Handler = Callable[[Message], None]
DeliveryTap = Callable[[Message], None]


@dataclass
class TransportStats:
    """Per-message telemetry for one transport."""

    sent: Counter[str] = field(default_factory=Counter)  # type -> count
    delivered: Counter[str] = field(default_factory=Counter)
    dropped: Counter[str] = field(default_factory=Counter)
    drop_reasons: Counter[str] = field(default_factory=Counter)  # reason -> count
    bytes_sent: int = 0
    in_flight: int = 0
    max_in_flight: int = 0

    @property
    def total_sent(self) -> int:
        return sum(self.sent.values())

    @property
    def total_delivered(self) -> int:
        return sum(self.delivered.values())

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped.values())

    def record_send(self, msg: Message) -> None:
        self.sent[msg.type_name] += 1
        self.bytes_sent += msg.size_bytes()
        self.in_flight += 1
        if self.in_flight > self.max_in_flight:
            self.max_in_flight = self.in_flight

    def record_delivery(self, msg: Message) -> None:
        self.delivered[msg.type_name] += 1
        self.in_flight -= 1

    def record_drop(self, msg: Message, reason: str) -> None:
        """A message that was sent but will never arrive."""
        self.dropped[msg.type_name] += 1
        self.drop_reasons[reason] += 1
        self.in_flight -= 1


def trace_tag(msg: Message) -> int:
    """The id that joins a message to its protocol event: the exchange
    ``xid`` when it has one, else the probe ``cycle``, else ``-1``."""
    tag = getattr(msg, "xid", None)
    if tag is None:
        tag = getattr(msg, "cycle", None)
    return int(tag) if tag is not None else -1


class Transport(Protocol):
    """What the protocol engine needs from a message plane."""

    stats: TransportStats
    tracer: TracerLike

    def register(self, slot: int, handler: Handler) -> None:
        """Install the receive handler for ``slot``."""
        ...  # pragma: no cover - protocol signature

    def unregister(self, slot: int) -> None:
        """Remove ``slot``'s handler; messages to it are then absorbed.

        Idempotent — unregistering an unknown slot is a no-op, so a
        departing peer can always be detached without first asking
        whether it was ever attached.
        """
        ...  # pragma: no cover - protocol signature

    def send(self, msg: Message, extra_delay_ms: float = 0.0) -> None:
        """Queue ``msg`` for delivery to ``msg.dst``'s handler."""
        ...  # pragma: no cover - protocol signature


class SimTransport:
    """Deterministic transport over the discrete-event simulator.

    Parameters
    ----------
    sim:
        The simulator that owns time.
    overlay:
        Supplies ``latency(src, dst)`` (ms) through its embedding.
    latency_scale:
        Multiplier on the physical latency; ``0.0`` delivers at the
        send timestamp (insertion order preserved — the determinism
        bridge), ``1.0`` is the oracle latency.
    tap:
        Optional callback invoked *after* each delivered message's
        handler ran; the fault-safety property suite uses it to check
        invariants after every delivery.
    tracer:
        Event sink for ``MSG_SEND`` / ``MSG_DELIVER`` records; defaults
        to the zero-cost :data:`~repro.obs.trace.NULL_TRACER`.
    """

    def __init__(
        self,
        sim: Simulator,
        overlay: Overlay,
        *,
        latency_scale: float = 1.0,
        tap: DeliveryTap | None = None,
        tracer: TracerLike | None = None,
    ) -> None:
        if latency_scale < 0.0:
            raise ValueError(f"latency_scale must be >= 0, got {latency_scale}")
        self.sim = sim
        self.overlay = overlay
        self.latency_scale = float(latency_scale)
        self.tap = tap
        self.tracer: TracerLike = tracer if tracer is not None else NULL_TRACER
        self.stats = TransportStats()
        self._handlers: dict[int, Handler] = {}

    def register(self, slot: int, handler: Handler) -> None:
        self._handlers[slot] = handler

    def unregister(self, slot: int) -> None:
        self._handlers.pop(slot, None)

    def send(self, msg: Message, extra_delay_ms: float = 0.0) -> None:
        """Deliver ``msg`` after ``d(src, dst) * scale + extra`` ms."""
        self.stats.record_send(msg)
        if self.tracer.enabled:
            self.tracer.emit(MsgSendEvent, mtype=msg.type_name, src=msg.src,
                             dst=msg.dst, tag=trace_tag(msg))
            if msg.span_id >= 0:
                # the in-flight span: open at send, closed at delivery
                self.tracer.emit(SpanStartEvent, trace=msg.trace_id,
                                 span=msg.span_id, parent=msg.parent_id,
                                 name=f"msg:{msg.type_name}", node=msg.src)
        latency_ms = self.overlay.latency(msg.src, msg.dst) * self.latency_scale
        self.sim.schedule((latency_ms + extra_delay_ms) * _MS, self._deliver, msg)

    def _deliver(self, msg: Message) -> None:
        self.stats.record_delivery(msg)
        if self.tracer.enabled:
            self.tracer.emit(MsgDeliverEvent, mtype=msg.type_name, src=msg.src,
                             dst=msg.dst, tag=trace_tag(msg))
        handler = self._handlers.get(msg.dst)
        if handler is not None:
            handler(msg)
        # the message span closes after the handler consumed it, so the
        # handler's own proc span is on the books before a span-tree
        # assembler can see this trace's open-span count reach zero
        if self.tracer.enabled and msg.span_id >= 0:
            self.tracer.emit(SpanEndEvent, trace=msg.trace_id,
                             span=msg.span_id, status="ok")
        if self.tap is not None:
            self.tap(msg)
