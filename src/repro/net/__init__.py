"""Message-level transport layer for PROP deployments.

The inline engines (:class:`~repro.core.protocol.PROPEngine`,
:class:`~repro.core.timed_protocol.TimedPROPEngine`) execute a probe
cycle as one (possibly delayed) callback; messages exist only as
analytic tallies.  This package makes the message plane explicit:

* :mod:`repro.net.messages` — the typed protocol messages (``WALK``,
  ``VAR_PROBE``, ``VAR_REPLY``, ``EXCHANGE_PREPARE``,
  ``EXCHANGE_COMMIT``, ``EXCHANGE_ABORT``, ``NOTIFY``).
* :mod:`repro.net.transport` — the :class:`Transport` interface and the
  deterministic :class:`SimTransport` that delivers through the
  discrete-event simulator with latency ``d(u, v)`` from the oracle.
* :mod:`repro.net.faults` — :class:`FaultyTransport`, a decorator
  injecting seeded per-link loss, extra delay/jitter, reordering, and
  named partitions.
* :mod:`repro.net.engine` — :class:`MessagePROPEngine`, the Section 3.2
  state machine run as actual request/response exchanges with
  per-message timeouts and a two-phase exchange commit.
"""

from repro.net.engine import MessagePROPEngine, NetConfig, NetCounters
from repro.net.faults import FaultyTransport, PartitionSpec
from repro.net.messages import (
    MSG_TYPES,
    ExchangeAbort,
    ExchangeCommit,
    ExchangePrepare,
    Message,
    Notify,
    VarProbe,
    VarReply,
    Walk,
)
from repro.net.transport import SimTransport, Transport, TransportStats

__all__ = [
    "MSG_TYPES",
    "ExchangeAbort",
    "ExchangeCommit",
    "ExchangePrepare",
    "FaultyTransport",
    "Message",
    "MessagePROPEngine",
    "NetConfig",
    "NetCounters",
    "Notify",
    "PartitionSpec",
    "SimTransport",
    "Transport",
    "TransportStats",
    "VarProbe",
    "VarReply",
    "Walk",
]
