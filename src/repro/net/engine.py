"""The Section 3.2 state machine as actual request/response exchanges.

:class:`MessagePROPEngine` runs PROP over a :class:`~repro.net.transport`
message plane instead of executing a probe cycle inline.  One cycle at
node ``u``:

1. ``u`` picks the first hop ``s`` from its neighborQ and launches a
   ``WALK`` (TTL ``nhops``); each forwarder appends itself and forwards
   to a random unvisited neighbor.
2. The walk terminal ``v`` pings its neighbors (``VAR_PROBE``, its half
   of the §4.3 information collection) and reports back with a
   ``VAR_REPLY`` carrying the path and its neighbor snapshot.
3. ``u`` pings its own half, evaluates Var (PROP-G swap or PROP-O
   selection), and — when ``Var > MIN_VAR`` — runs the **two-phase
   exchange commit**: ``EXCHANGE_PREPARE`` → participant validates
   against its *current* state, locks itself and votes
   ``EXCHANGE_COMMIT`` (or ``EXCHANGE_ABORT``) → the initiator alone
   applies the exchange and fans out ``NOTIFY`` to every affected
   routing-table holder, the participant's copy doubling as the commit
   confirmation that releases its lock.

Safety under arbitrary faults: the overlay mutates exactly once, inside
the initiator's commit handler, so a lost message can never leave ``u``
and ``v`` with half-swapped neighbor sets — the Theorem 1/2 invariants
(degree preservation, isomorphism) survive any loss/partition pattern.
Every await stage carries a timeout; a prepared participant that never
hears the outcome unlocks itself and resynchronizes from the overlay.

**Determinism bridge**: with no faults and ``latency_scale=0`` the whole
cascade of a cycle executes at its fire timestamp in insertion order, so
the engine consumes the shared ``prop:engine`` RNG stream in exactly the
order :class:`~repro.core.protocol.PROPEngine` does and reproduces its
exchange sequence message for message (pinned by the bridge integration
test).  To keep fire times aligned, the next probe is scheduled at
``fire_time + delay`` (absolute), not ``resolution_time + delay``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import PROPConfig
from repro.core.exchange import execute_prop_g, execute_prop_o
from repro.core.protocol import _MAINTENANCE, _WARMUP, ExchangeRecord, PROPEngine
from repro.core.varcalc import evaluate_prop_g, select_prop_o
from repro.net.messages import (
    ExchangeAbort,
    ExchangeCommit,
    ExchangePrepare,
    Message,
    Notify,
    VarProbe,
    VarReply,
    Walk,
)
from repro.net.transport import Transport
from repro.netsim.engine import Simulator
from repro.netsim.events import EventHandle
from repro.netsim.rng import RngRegistry
from repro.obs.events import (
    ExchangeAbortEvent,
    ExchangeCommitEvent,
    ExchangePrepareEvent,
    ExchangeTimeoutEvent,
    MsgTimeoutEvent,
    ProbeEvent,
    SpanEndEvent,
    SpanStartEvent,
    VarCollectEvent,
)
from repro.obs.trace import TracerLike
from repro.overlay.base import Overlay

__all__ = ["MessagePROPEngine", "NetConfig", "NetCounters"]


@dataclass(frozen=True)
class NetConfig:
    """Message-plane knobs of :class:`MessagePROPEngine`.

    Timeouts are in simulated seconds and bound each await stage of a
    probe cycle; they must stay well below ``PROPConfig.init_timer`` so
    a faulted cycle resolves before the next probe period.
    """

    reply_timeout: float = 10.0  # walk launch -> VAR_REPLY
    vote_timeout: float = 5.0  # EXCHANGE_PREPARE -> vote
    prepared_timeout: float = 20.0  # participant lock expiry
    max_prepare_retries: int = 1  # PREPARE resends before giving up

    def __post_init__(self) -> None:
        if self.reply_timeout <= 0:
            raise ValueError(f"reply_timeout must be positive, got {self.reply_timeout}")
        if self.vote_timeout <= 0:
            raise ValueError(f"vote_timeout must be positive, got {self.vote_timeout}")
        if self.prepared_timeout <= 0:
            raise ValueError(
                f"prepared_timeout must be positive, got {self.prepared_timeout}"
            )
        if self.max_prepare_retries < 0:
            raise ValueError(
                f"max_prepare_retries must be >= 0, got {self.max_prepare_retries}"
            )


@dataclass
class NetCounters:
    """Fault-visible outcomes the inline engines cannot exhibit."""

    walk_timeouts: int = 0  # no VAR_REPLY in time
    vote_timeouts: int = 0  # no vote in time (after retries)
    prepared_timeouts: int = 0  # participant lock expired unanswered
    prepare_retries: int = 0  # PREPARE resends
    busy_rejects: int = 0  # PREPARE refused: participant locked
    stale_aborts: int = 0  # proposal no longer valid when (re)checked
    late_replies: int = 0  # VAR_REPLY for an already-resolved cycle
    late_votes: int = 0  # vote for an already-resolved exchange


@dataclass
class _Cycle:
    """Initiator-side in-flight probe cycle."""

    cycle: int
    u: int
    s: int
    fire_time: float
    stage: str = "walk"  # "walk" -> "vote"
    timeout: EventHandle | None = None
    xid: int | None = None
    v: int | None = None
    path: tuple[int, ...] = ()
    give_u: tuple[int, ...] = ()
    give_v: tuple[int, ...] = ()
    var: float | None = None
    retries: int = 0
    trace: int = -1  # span-context: the cycle's trace id (-1 untraced)
    root_span: int = -1  # span-context: the root "cycle" span


@dataclass
class _Prepared:
    """Participant-side lock between its yes-vote and the outcome."""

    xid: int
    initiator: int
    timeout: EventHandle | None = field(repr=False, default=None)


class MessagePROPEngine(PROPEngine):
    """PROP deployment whose probe cycles are message exchanges.

    Accepts the same parameters as :class:`~repro.core.protocol.PROPEngine`
    plus the ``transport`` to run over and the :class:`NetConfig` message
    knobs.  Counter semantics: ``counters.walk_messages`` counts ``WALK``
    sends, ``collect_messages`` counts ``VAR_PROBE`` + ``VAR_REPLY``, and
    ``notify_messages`` counts ``NOTIFY`` — two-phase control traffic
    (``EXCHANGE_*``) is visible in ``transport.stats`` only, so the
    legacy counters stay comparable to the §4.3 closed forms (see
    :data:`repro.metrics.overhead.COORDINATION_SLACK`).
    """

    def __init__(
        self,
        overlay: Overlay,
        config: PROPConfig,
        sim: Simulator,
        rngs: RngRegistry,
        transport: Transport,
        *,
        net: NetConfig | None = None,
        jitter: float = 1.0,
        tracer: TracerLike | None = None,
    ) -> None:
        super().__init__(overlay, config, sim, rngs, jitter=jitter, tracer=tracer)
        self.transport = transport
        self.net = net if net is not None else NetConfig()
        self.net_counters = NetCounters()
        self._cycles: dict[int, _Cycle] = {}  # initiator slot -> in-flight cycle
        self._prepared: dict[int, _Prepared] = {}  # participant slot -> lock
        self._cycle_seq = 0
        self._xid_seq = 0
        self._span_seq = 0
        #: The (trace_id, parent span) every outgoing message inherits;
        #: ``None`` outside a traced scope, leaving messages untraced.
        self._ctx: tuple[int, int] | None = None
        #: Set by finalize_trace: the run is over, so timer callbacks
        #: that straggle in during teardown must not start new cycles.
        self._finalized = False
        for slot in range(overlay.n_slots):
            transport.register(slot, self._on_message)

    # -- causality context -------------------------------------------------

    def _stamp(self, msg: Message) -> Message:
        """Thread the active span context onto an outgoing message.

        Each stamped message gets a fresh span id; the transport opens
        its ``msg:<TYPE>`` span at send and closes it at delivery (or
        drop).  Zero cost when tracing is off: the message passes
        through untouched with its ``-1`` defaults.
        """
        ctx = self._ctx
        if ctx is None:
            return msg
        self._span_seq += 1
        # Every caller hands a message constructed on the same line, so
        # stamping before it is shared is safe; writing the three fields
        # directly skips ``dataclasses.replace`` rebuilding the whole
        # frozen instance on the per-message hot path.
        object.__setattr__(msg, "trace_id", ctx[0])
        object.__setattr__(msg, "span_id", self._span_seq)
        object.__setattr__(msg, "parent_id", ctx[1])
        return msg

    # -- sends (counted by legacy category) ------------------------------

    def _send_walk(self, msg: Walk) -> None:
        self.counters.walk_messages += 1
        self.transport.send(self._stamp(msg))

    def _send_collect(self, msg: Message) -> None:
        self.counters.collect_messages += 1
        self.transport.send(self._stamp(msg))

    def _send_notify(self, msg: Notify) -> None:
        self.counters.notify_messages += 1
        self.transport.send(self._stamp(msg))

    def _send_control(self, msg: Message) -> None:
        self.transport.send(self._stamp(msg))

    # -- probe cycle: launch ---------------------------------------------

    def _probe_cycle(self, u: int) -> None:
        if self._finalized:
            # live-plane teardown: the event loop may still run probe
            # timers after finalize_trace; a new cycle now would open a
            # root span nothing will ever close
            return
        state = self.nodes[u]
        fire = self.sim.now
        if u in self._prepared:
            # locked as an exchange participant when the timer fired:
            # defer to the next period, counted as a failed attempt
            self._finish_cycle(u, fire, s=None, success=False)
            return
        state.queue.sync(self.overlay.neighbor_list(u))
        if len(state.queue) == 0:
            self._finish_cycle(u, fire, s=None, success=False)
            return
        s = state.queue.select()
        self.counters.probes += 1
        self._cycle_seq += 1
        cyc = _Cycle(cycle=self._cycle_seq, u=u, s=s, fire_time=fire)
        if self.tracer.enabled:
            self.tracer.emit(ProbeEvent, u=u, s=s, cycle=self._cycle_seq)
            # the cycle's root span: the trace id is the cycle number
            self._span_seq += 1
            cyc.trace = self._cycle_seq
            cyc.root_span = self._span_seq
            self.tracer.emit(SpanStartEvent, trace=cyc.trace, span=cyc.root_span,
                             parent=-1, name="cycle", node=u)
            self._ctx = (cyc.trace, cyc.root_span)
        self._cycles[u] = cyc
        cyc.timeout = self.sim.schedule(
            self.net.reply_timeout, self._walk_timeout, u, cyc.cycle
        )
        cfg = self.config
        if cfg.random_probe:
            v = int(self.rng.integers(0, self.overlay.n_slots - 1))
            if v >= u:
                v += 1
            self._send_walk(Walk(src=u, dst=v, origin=u, ttl=0, cycle=cyc.cycle, path=(u,)))
        else:
            self._send_walk(
                Walk(src=u, dst=s, origin=u, ttl=cfg.nhops - 1, cycle=cyc.cycle, path=(u,))
            )
        self._ctx = None

    # -- message dispatch -------------------------------------------------

    def _on_message(self, msg: Message) -> None:
        proc_span = -1
        if (self.tracer.enabled and msg.trace_id >= 0
                and not isinstance(msg, VarProbe)):
            # the receive-side handler span; everything the handler sends
            # is causally its child
            self._span_seq += 1
            proc_span = self._span_seq
            self.tracer.emit(SpanStartEvent, trace=msg.trace_id, span=proc_span,
                             parent=msg.span_id,
                             name=f"proc:{msg.type_name}", node=msg.dst)
            self._ctx = (msg.trace_id, proc_span)
        try:
            if isinstance(msg, Walk):
                self._on_walk(msg)
            elif isinstance(msg, VarReply):
                self._on_var_reply(msg)
            elif isinstance(msg, ExchangePrepare):
                self._on_prepare(msg)
            elif isinstance(msg, ExchangeCommit):
                self._on_commit(msg)
            elif isinstance(msg, ExchangeAbort):
                self._on_abort(msg)
            elif isinstance(msg, Notify):
                self._on_notify(msg)
            # VarProbe: measurement ping, absorbed (the reply is modelled as
            # free — §4.3 counts one message per collected latency)
            # reprolint: D4-absorbed: VarProbe
        finally:
            if proc_span >= 0:
                self.tracer.emit(SpanEndEvent, trace=msg.trace_id,
                                 span=proc_span, status="ok")
            self._ctx = None

    # -- walk forwarding ---------------------------------------------------

    def _on_walk(self, msg: Walk) -> None:
        here = msg.dst
        path = msg.path + (here,)
        if msg.ttl > 0:
            # mirror core.walk.random_walk: forward to a random unvisited
            # neighbor, stopping early when there is none
            visited = set(path)
            options = [x for x in self.overlay.neighbor_list(here) if x not in visited]
            if options:
                nxt = options[int(self.rng.integers(0, len(options)))]
                self._send_walk(
                    Walk(src=here, dst=nxt, origin=msg.origin, ttl=msg.ttl - 1,
                         cycle=msg.cycle, path=path)
                )
                return
        self._walk_terminal(here, msg.origin, msg.cycle, path)

    def _walk_terminal(self, v: int, origin: int, cycle: int, path: tuple[int, ...]) -> None:
        cfg = self.config
        busy = v in self._prepared or (
            v in self._cycles and self._cycles[v].stage == "vote"
        )
        ok = not busy and self.overlay.exchange_compatible(origin, v, cfg.policy)
        neighbors: tuple[int, ...] = ()
        if ok:
            # the candidate's half of the information collection
            nbrs = self.overlay.neighbor_list(v)
            n_pings = len(nbrs) if cfg.policy == "G" else min(self.m, len(nbrs))
            for w in nbrs[:n_pings]:
                self._send_collect(VarProbe(src=v, dst=w, cycle=cycle))
            neighbors = tuple(nbrs)
        self._send_collect(
            VarReply(src=v, dst=origin, cycle=cycle, candidate=v, ok=ok,
                     path=path, cand_neighbors=neighbors)
        )

    # -- evaluation + prepare ---------------------------------------------

    def _on_var_reply(self, msg: VarReply) -> None:
        u = msg.dst
        cyc = self._cycles.get(u)
        if cyc is None or cyc.cycle != msg.cycle or cyc.stage != "walk":
            self.net_counters.late_replies += 1
            return
        if cyc.timeout is not None:
            cyc.timeout.cancel()
        if not msg.ok:
            self._resolve(cyc, success=False)
            return
        v = msg.candidate
        cyc.v = v
        cyc.path = msg.path
        cfg = self.config
        # the initiator's half of the information collection
        nbrs = self.overlay.neighbor_list(u)
        n_pings = len(nbrs) if cfg.policy == "G" else min(self.m, len(nbrs))
        for w in nbrs[:n_pings]:
            self._send_collect(VarProbe(src=u, dst=w, cycle=cyc.cycle))

        if cfg.policy == "G":
            var = evaluate_prop_g(self.overlay, u, v)
            wants = var > cfg.min_var
        else:
            give_u, give_v, var = select_prop_o(
                self.overlay, u, v, self.m, forbidden=set(msg.path),
                selection=cfg.selection, rng=self.rng,
            )
            cyc.give_u, cyc.give_v = tuple(give_u), tuple(give_v)
            wants = bool(give_u) and var > cfg.min_var
        cyc.var = var
        if self.tracer.enabled:
            self.tracer.emit(VarCollectEvent, u=u, v=v, cycle=cyc.cycle,
                             var=float(var), policy=cfg.policy)
        if not wants:
            self._resolve(cyc, success=False)
            return
        self._xid_seq += 1
        cyc.xid = self._xid_seq
        cyc.stage = "vote"
        if self.tracer.enabled:
            self.tracer.emit(ExchangePrepareEvent, xid=cyc.xid, u=u, v=v,
                             var=float(var))
        self._send_control(self._prepare_message(cyc))
        cyc.timeout = self.sim.schedule(
            self.net.vote_timeout, self._vote_timeout, u, cyc.xid
        )

    def _prepare_message(self, cyc: _Cycle) -> ExchangePrepare:
        # a cycle only reaches the vote stage with these fields populated
        assert cyc.v is not None and cyc.xid is not None and cyc.var is not None
        return ExchangePrepare(
            src=cyc.u, dst=cyc.v, xid=cyc.xid, cycle=cyc.cycle,
            policy=self.config.policy, var=cyc.var,
            give_u=cyc.give_u, give_v=cyc.give_v,
        )

    # -- two-phase commit: participant side --------------------------------

    def _on_prepare(self, msg: ExchangePrepare) -> None:
        v, u, xid = msg.dst, msg.src, msg.xid
        prep = self._prepared.get(v)
        if prep is not None:
            if prep.xid == xid:
                # duplicate PREPARE (initiator retry): vote again
                self._send_control(ExchangeCommit(src=v, dst=u, xid=xid))
            else:
                self.net_counters.busy_rejects += 1
                self._send_control(ExchangeAbort(src=v, dst=u, xid=xid, reason="busy"))
            return
        own = self._cycles.get(v)
        if own is not None and own.stage == "vote":
            # v is itself mid-commit as an initiator: refuse to deadlock
            self.net_counters.busy_rejects += 1
            self._send_control(ExchangeAbort(src=v, dst=u, xid=xid, reason="busy"))
            return
        if not self._validate_proposal(u, v, msg):
            self.net_counters.stale_aborts += 1
            self._send_control(ExchangeAbort(src=v, dst=u, xid=xid, reason="stale"))
            return
        handle = self.sim.schedule(
            self.net.prepared_timeout, self._prepared_timeout, v, xid
        )
        self._prepared[v] = _Prepared(xid=xid, initiator=u, timeout=handle)
        self._send_control(ExchangeCommit(src=v, dst=u, xid=xid))

    def _validate_proposal(self, u: int, v: int, msg: ExchangePrepare) -> bool:
        """Re-evaluate the proposal against the participant's current state."""
        overlay = self.overlay
        cfg = self.config
        if not overlay.exchange_compatible(u, v, cfg.policy):
            return False
        if cfg.policy == "G":
            return evaluate_prop_g(overlay, u, v) > cfg.min_var
        if not msg.give_u or len(msg.give_u) != len(msg.give_v):
            return False
        if not self._trade_legal(u, v, msg.give_u, msg.give_v):
            return False
        return self._trade_var(u, v, msg.give_u, msg.give_v) > cfg.min_var

    def _trade_legal(self, u: int, v: int, give_u: tuple[int, ...],
                     give_v: tuple[int, ...]) -> bool:
        """May this PROP-O trade still be applied to the current graph?"""
        overlay = self.overlay
        for x in give_u:
            if x == v or not overlay.has_edge(u, x) or overlay.has_edge(v, x):
                return False
        for y in give_v:
            if y == u or not overlay.has_edge(v, y) or overlay.has_edge(u, y):
                return False
        return True

    def _trade_var(self, u: int, v: int, give_u: tuple[int, ...],
                   give_v: tuple[int, ...]) -> float:
        """Var of the proposed trade on the current embedding (eq. 2)."""
        emb = self.overlay.embedding
        oracle = self.overlay.oracle
        var = 0.0
        for x in give_u:
            var += oracle.between(int(emb[u]), int(emb[x])) - oracle.between(
                int(emb[v]), int(emb[x])
            )
        for y in give_v:
            var += oracle.between(int(emb[v]), int(emb[y])) - oracle.between(
                int(emb[u]), int(emb[y])
            )
        return var

    # -- two-phase commit: initiator side ----------------------------------

    def _on_commit(self, msg: ExchangeCommit) -> None:
        u = msg.dst
        cyc = self._cycles.get(u)
        if cyc is None or cyc.xid != msg.xid or cyc.stage != "vote":
            # vote for an exchange we already resolved: release the
            # participant so its lock does not wait for the timeout
            self.net_counters.late_votes += 1
            self._send_control(
                ExchangeAbort(src=u, dst=msg.src, xid=msg.xid, reason="stale-vote")
            )
            return
        if cyc.timeout is not None:
            cyc.timeout.cancel()
        v = cyc.v
        # vote-stage invariant (see _prepare_message)
        assert v is not None and cyc.xid is not None and cyc.var is not None
        cfg = self.config
        overlay = self.overlay
        if cfg.policy == "O":
            if not self._trade_legal(u, v, cyc.give_u, cyc.give_v):
                # a third party rewired one of the traded edges while the
                # vote was in flight; aborting keeps the apply atomic
                self.net_counters.stale_aborts += 1
                self._send_control(
                    ExchangeAbort(src=u, dst=v, xid=cyc.xid, reason="stale-apply")
                )
                if self.tracer.enabled:
                    self.tracer.emit(ExchangeAbortEvent, xid=cyc.xid, u=u, v=v,
                                     reason="stale-apply")
                self._resolve(cyc, success=False)
                return
            traded = len(cyc.give_u)
            execute_prop_o(overlay, u, v, list(cyc.give_u), list(cyc.give_v))
            affected = list(cyc.give_u) + list(cyc.give_v)
        else:
            traded = max(overlay.degree(u), overlay.degree(v))
            execute_prop_g(overlay, u, v)
            affected = overlay.neighbor_list(u) + overlay.neighbor_list(v)
        # the initiator's own routing state, then the fan-out
        self.nodes[u].queue.sync(overlay.neighbor_list(u))
        for w in affected:
            self._send_notify(Notify(src=u, dst=w, xid=cyc.xid, commit=(w == v)))
        # the participant always learns the outcome (its copy releases
        # the prepared lock); +1 over the §4.3 notify term when v is not
        # already among the affected routing-table holders
        if v not in affected:
            self._send_notify(Notify(src=u, dst=v, xid=cyc.xid, commit=True))
        self.counters.exchanges += 1
        self.counters.exchange_log.append(
            ExchangeRecord(time=self.sim.now, u=u, v=v, var=cyc.var,
                           policy=cfg.policy, traded=traded)
        )
        if self.tracer.enabled:
            self.tracer.emit(ExchangeCommitEvent, xid=cyc.xid, u=u, v=v,
                             var=float(cyc.var), traded=traded)
        self._resolve(cyc, success=True)

    # -- outcome delivery ---------------------------------------------------

    def _on_abort(self, msg: ExchangeAbort) -> None:
        here = msg.dst
        cyc = self._cycles.get(here)
        if cyc is not None and cyc.xid == msg.xid and cyc.stage == "vote":
            if cyc.timeout is not None:
                cyc.timeout.cancel()
            if self.tracer.enabled:
                self.tracer.emit(ExchangeAbortEvent, xid=msg.xid, u=here,
                                 v=msg.src, reason=msg.reason)
            self._resolve(cyc, success=False)
            return
        prep = self._prepared.get(here)
        if prep is not None and prep.xid == msg.xid:
            if prep.timeout is not None:
                prep.timeout.cancel()
            del self._prepared[here]
            self.nodes[here].queue.sync(self.overlay.neighbor_list(here))

    def _on_notify(self, msg: Notify) -> None:
        here = msg.dst
        if msg.commit:
            prep = self._prepared.get(here)
            if prep is not None and prep.xid == msg.xid:
                if prep.timeout is not None:
                    prep.timeout.cancel()
                del self._prepared[here]
                # the counterpart treats the exchange as its own success
                self.nodes[here].timer.on_success()
        self.nodes[here].queue.sync(self.overlay.neighbor_list(here))

    # -- timeouts -----------------------------------------------------------

    def _walk_timeout(self, u: int, cycle: int) -> None:
        cyc = self._cycles.get(u)
        if cyc is None or cyc.cycle != cycle or cyc.stage != "walk":
            return
        self.net_counters.walk_timeouts += 1
        if self.tracer.enabled:
            self.tracer.emit(MsgTimeoutEvent, kind="walk", u=u, tag=cycle)
            if cyc.root_span >= 0:
                # zero-length marker: the cycle's tail was reply_timeout
                # back-off, which the critical path bills to the timer
                self._span_seq += 1
                self.tracer.emit(SpanStartEvent, trace=cyc.trace,
                                 span=self._span_seq, parent=cyc.root_span,
                                 name="timer:walk", node=u)
                self.tracer.emit(SpanEndEvent, trace=cyc.trace,
                                 span=self._span_seq, status="ok")
        self._resolve(cyc, success=False)

    def _vote_timeout(self, u: int, xid: int) -> None:
        cyc = self._cycles.get(u)
        if cyc is None or cyc.xid != xid or cyc.stage != "vote":
            return
        if cyc.retries < self.net.max_prepare_retries:
            cyc.retries += 1
            self.net_counters.prepare_retries += 1
            if self.tracer.enabled:
                self.tracer.emit(MsgTimeoutEvent, kind="vote-retry", u=u, tag=xid)
                if cyc.root_span >= 0:
                    # a zero-length marker span: the resent PREPARE hangs
                    # off it, so the critical path attributes the silent
                    # vote_timeout wait before it to the timer
                    self._span_seq += 1
                    self.tracer.emit(SpanStartEvent, trace=cyc.trace,
                                     span=self._span_seq, parent=cyc.root_span,
                                     name="timer:vote-retry", node=u)
                    self.tracer.emit(SpanEndEvent, trace=cyc.trace,
                                     span=self._span_seq, status="ok")
                    self._ctx = (cyc.trace, self._span_seq)
            self._send_control(self._prepare_message(cyc))
            self._ctx = None
            cyc.timeout = self.sim.schedule(
                self.net.vote_timeout, self._vote_timeout, u, xid
            )
            return
        self.net_counters.vote_timeouts += 1
        assert cyc.v is not None  # vote-stage invariant (see _prepare_message)
        if self.tracer.enabled:
            self.tracer.emit(ExchangeTimeoutEvent, xid=xid, u=u, v=cyc.v)
            if cyc.root_span >= 0:
                self._span_seq += 1
                self.tracer.emit(SpanStartEvent, trace=cyc.trace,
                                 span=self._span_seq, parent=cyc.root_span,
                                 name="timer:vote", node=u)
                self.tracer.emit(SpanEndEvent, trace=cyc.trace,
                                 span=self._span_seq, status="ok")
                self._ctx = (cyc.trace, self._span_seq)
        # best-effort release of a possibly-prepared participant
        self._send_control(
            ExchangeAbort(src=u, dst=cyc.v, xid=xid, reason="timeout")
        )
        self._ctx = None
        self._resolve(cyc, success=False)

    def _prepared_timeout(self, v: int, xid: int) -> None:
        prep = self._prepared.get(v)
        if prep is None or prep.xid != xid:
            return
        self.net_counters.prepared_timeouts += 1
        del self._prepared[v]
        # the exchange may or may not have committed; the overlay is the
        # source of truth either way
        self.nodes[v].queue.sync(self.overlay.neighbor_list(v))

    # -- cycle resolution ---------------------------------------------------

    def _resolve(self, cyc: _Cycle, *, success: bool) -> None:
        if cyc.timeout is not None:
            cyc.timeout.cancel()
        self._cycles.pop(cyc.u, None)
        if cyc.root_span >= 0 and self.tracer.enabled:
            self.tracer.emit(SpanEndEvent, trace=cyc.trace, span=cyc.root_span,
                             status="ok" if success else "fail")
        if cyc.var is not None:
            self.counters.var_history.append(cyc.var)
        self._finish_cycle(cyc.u, cyc.fire_time, s=cyc.s, success=success)

    def _finish_cycle(self, u: int, fire_time: float, *, s: int | None,
                      success: bool) -> None:
        """Queue feedback + the exact phase/timer bookkeeping of the
        inline engine, with the next probe pinned to ``fire_time + delay``
        so fire times stay aligned with :class:`PROPEngine` (the
        determinism bridge)."""
        state = self.nodes[u]
        if s is not None:
            (state.queue.on_success if success else state.queue.on_failure)(s)
        if state.phase == _WARMUP:
            state.trials += 1
            if success:
                state.timer.on_success()
                if state.probes_until_first_exchange is None:
                    state.probes_until_first_exchange = state.trials
            if state.trials >= self.config.max_init_trial:
                state.phase = _MAINTENANCE
            delay = self.config.init_timer
        else:
            delay = state.timer.on_success() if success else state.timer.on_failure()
            if success and state.probes_until_first_exchange is None:
                state.probes_until_first_exchange = -1
        self.sim.schedule_at(max(self.sim.now, fire_time + delay), self._probe_cycle, u)

    # -- churn interface ----------------------------------------------------

    def finalize_trace(self) -> None:
        """End-of-run: record still-unresolved exchanges as aborted.

        A vote-stage cycle whose outcome the simulation never reached
        would otherwise look half-open in the trace; the run ending is
        an abort for accounting purposes (the overlay never mutated).

        Finalization is terminal: in-flight cycles are dropped and
        their timeouts cancelled, so timer callbacks that straggle in
        during live-plane teardown can neither start new cycles (orphan
        roots) nor re-resolve finalized ones (double-closed roots).
        """
        self._finalized = True
        cycles = [self._cycles[u] for u in sorted(self._cycles)]
        self._cycles.clear()
        for cyc in cycles:
            if cyc.timeout is not None:
                cyc.timeout.cancel()
        if not self.tracer.enabled:
            return
        for cyc in cycles:
            if cyc.stage == "vote" and cyc.xid is not None and cyc.v is not None:
                self.tracer.emit(ExchangeAbortEvent, xid=cyc.xid, u=cyc.u,
                                 v=cyc.v, reason="end-of-run")
            if cyc.root_span >= 0:
                self.tracer.emit(SpanEndEvent, trace=cyc.trace,
                                 span=cyc.root_span, status="end-of-run")

    def reset_slot(self, slot: int) -> None:
        """Churn replacement: drop in-flight message state, then restart."""
        cyc = self._cycles.pop(slot, None)
        if cyc is not None and cyc.timeout is not None:
            cyc.timeout.cancel()
        if (cyc is not None and cyc.stage == "vote" and self.tracer.enabled
                and cyc.xid is not None and cyc.v is not None):
            self.tracer.emit(ExchangeAbortEvent, xid=cyc.xid, u=slot, v=cyc.v,
                             reason="churn")
        if cyc is not None and cyc.root_span >= 0 and self.tracer.enabled:
            self.tracer.emit(SpanEndEvent, trace=cyc.trace, span=cyc.root_span,
                             status="churn")
        prep = self._prepared.pop(slot, None)
        if prep is not None and prep.timeout is not None:
            prep.timeout.cancel()
        super().reset_slot(slot)
        if cyc is not None:
            # the popped cycle would have scheduled the next probe at its
            # resolution; replace that chain so the slot keeps probing
            self.sim.schedule(self.config.init_timer, self._probe_cycle, slot)
