"""Baseline location-aware mechanisms the paper compares against.

* :mod:`~repro.baselines.ltm` — Location-aware Topology Matching (Liu et
  al., TPDS'05) for unstructured overlays: detector floods, cutting of
  inefficient links, adding of closer neighbors.
* :mod:`~repro.baselines.pns` — Proximity Neighbor Selection for Chord:
  each finger entry picks the physically closest node from its valid
  identifier interval.
* :mod:`~repro.baselines.pis` — Proximity Identifier Selection:
  landmark-ordered identifier assignment so that id-adjacent nodes are
  physically close.
"""

from repro.baselines.ltm import LTMConfig, LTMCounters, LTMOptimizer
from repro.baselines.pis import landmark_vectors, pis_embedding
from repro.baselines.pns import PNSChordOverlay
from repro.baselines.tacan import tacan_join_points

__all__ = [
    "LTMConfig",
    "LTMCounters",
    "LTMOptimizer",
    "PNSChordOverlay",
    "landmark_vectors",
    "pis_embedding",
    "tacan_join_points",
]
