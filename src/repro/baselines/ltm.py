"""LTM — Location-aware Topology Matching (Liu et al., TPDS 2005).

The unstructured-overlay baseline of the paper's Section 2 and Fig. 7.
Each peer periodically floods a TTL-2 *detector*; receivers learn the
latency of their one- and two-hop vicinity, and the peer then

1. **cuts inefficient links**: a direct link (u, v) is redundant when a
   common neighbor w offers a two-hop detour in which *both* legs are
   faster (``max(d(u,w), d(w,v)) < d(u,v)``) — cutting it cannot
   disconnect the pair because the detour remains; and
2. **adds closer neighbors**: the nearest known two-hop peer becomes a
   direct neighbor when it is closer than the current farthest neighbor.

This is exactly the behaviour the paper criticizes: LTM "can freely cut
and add connections", so node degrees drift toward physical proximity
clusters and the natural capacity–degree correlation of Gnutella decays —
the effect Fig. 7 exposes under heterogeneous processing delays.

A degree floor keeps the graph from thinning out (the TPDS paper keeps a
"minimum connection" guard as well); cutting is refused when either
endpoint would fall below it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsim.engine import Simulator
from repro.netsim.rng import RngRegistry
from repro.overlay.base import Overlay

__all__ = ["LTMConfig", "LTMCounters", "LTMOptimizer"]


@dataclass(frozen=True)
class LTMConfig:
    """LTM parameters.

    ``round_interval`` mirrors PROP's INIT_TIMER so the two protocols get
    the same wall-clock optimization opportunity in comparisons.
    """

    round_interval: float = 60.0
    detector_ttl: int = 2
    min_degree: int = 2
    max_adds_per_round: int = 1
    max_cuts_per_round: int = 2

    def __post_init__(self) -> None:
        if self.round_interval <= 0:
            raise ValueError("round_interval must be positive")
        if self.detector_ttl < 2:
            raise ValueError("detector needs TTL >= 2 to see two-hop peers")
        if self.min_degree < 1:
            raise ValueError("min_degree must be >= 1")


@dataclass
class LTMCounters:
    """Detector-message and operation tallies."""

    rounds: int = 0
    detector_messages: int = 0
    cuts: int = 0
    adds: int = 0


class LTMOptimizer:
    """Event-driven LTM deployment over one unstructured overlay."""

    def __init__(
        self,
        overlay: Overlay,
        config: LTMConfig,
        sim: Simulator,
        rngs: RngRegistry,
        *,
        jitter: float = 1.0,
    ) -> None:
        if not overlay.supports_rewiring:
            raise ValueError(
                "LTM freely cuts and adds connections and is 'only "
                "applicable for Gnutella-like overlay networks' — "
                f"{type(overlay).__name__} derives its edges from protocol "
                "structure"
            )
        self.overlay = overlay
        self.config = config
        self.sim = sim
        self.rng = rngs.stream("ltm:engine")
        self.counters = LTMCounters()
        self._jitter = max(0.0, jitter)
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("optimizer already started")
        self._started = True
        for slot in range(self.overlay.n_slots):
            delay = float(self.rng.random()) * self._jitter * self.config.round_interval
            self.sim.schedule(delay, self._round, slot)

    # -- one LTM round at node u ------------------------------------------

    def _round(self, u: int) -> None:
        self.run_round(u)
        self.sim.schedule(self.config.round_interval, self._round, u)

    def run_round(self, u: int) -> None:
        """Detector flood + cut/add step for node ``u`` (also used directly
        by tests and synchronous-round experiments)."""
        overlay = self.overlay
        cfg = self.config
        self.counters.rounds += 1
        nbrs = overlay.neighbor_list(u)
        if not nbrs:
            return
        # Detector cost: one message per one-hop and per two-hop delivery.
        self.counters.detector_messages += len(nbrs) + sum(
            overlay.degree(x) - 1 for x in nbrs
        )

        self._cut_inefficient(u)
        self._add_closer(u)

    def _cut_inefficient(self, u: int) -> None:
        overlay = self.overlay
        cfg = self.config
        cuts = 0
        for v in sorted(
            overlay.neighbor_list(u),
            key=lambda x: -overlay.latency(u, x),
        ):
            if cuts >= cfg.max_cuts_per_round:
                break
            if overlay.degree(u) <= cfg.min_degree or overlay.degree(v) <= cfg.min_degree:
                continue
            duv = overlay.latency(u, v)
            common = overlay.neighbors(u) & overlay.neighbors(v)
            for w in common:
                if max(overlay.latency(u, w), overlay.latency(w, v)) < duv:
                    overlay.remove_edge(u, v)
                    self.counters.cuts += 1
                    cuts += 1
                    break

    def _add_closer(self, u: int) -> None:
        overlay = self.overlay
        cfg = self.config
        nbrs = overlay.neighbors(u)
        if not nbrs:
            return
        two_hop: set[int] = set()
        for x in nbrs:
            two_hop.update(overlay.neighbor_list(x))
        two_hop.discard(u)
        two_hop -= nbrs
        if not two_hop:
            return
        # sorted: argsort ties below break by position, so candidate order
        # must not leak set-iteration order into which edges get added
        cand = np.fromiter(sorted(two_hop), dtype=np.intp, count=len(two_hop))
        lat = overlay.latencies_from(u, cand)
        farthest_nbr = max(overlay.latencies_from(u, list(nbrs)))
        order = np.argsort(lat)
        adds = 0
        for i in order:
            if adds >= cfg.max_adds_per_round:
                break
            w = int(cand[i])
            if lat[i] < farthest_nbr and not overlay.has_edge(u, w):
                overlay.add_edge(u, w)
                self.counters.adds += 1
                adds += 1
            else:
                break
