"""Topologically-aware CAN (Ratnasamy et al., INFOCOM'02; HotNets'01).

The PIS-family baseline for CAN mentioned in the paper's Section 2:
"Topologically-aware CAN, which ensures that nodes which are close in
the network topology are close in the node ID space, is only suitable
for systems like CAN".  Joining nodes derive their join point from
landmark distances instead of hashing, so physically nearby hosts end up
owning nearby zones and greedy routing stays local.

We use the continuous variant of landmark binning: with ``d`` landmarks,
a host's join point is its latency vector to them, normalized per
coordinate to [0, 1) over the member population (plus a deterministic
hash jitter to break exact ties).  The paper's criticism — the technique
is protocol-specific where PROP-G is universal — is exactly what the
combination benchmark shows.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.pis import landmark_vectors
from repro.topology.latency import LatencyOracle

__all__ = ["tacan_join_points"]


def tacan_join_points(
    oracle: LatencyOracle,
    rng: np.random.Generator,
    *,
    dims: int = 2,
    jitter: float = 1e-3,
) -> np.ndarray:
    """Landmark-derived CAN join points, one per oracle member.

    Returns an ``(n, dims)`` array in ``[0, 1)``; pass as ``join_points``
    to :meth:`repro.overlay.can.CANOverlay.build` (member order — the
    builder maps them through its embedding).
    """
    if dims < 1:
        raise ValueError("dims must be >= 1")
    if not 0.0 <= jitter < 0.5:
        raise ValueError("jitter must be in [0, 0.5)")
    vec = landmark_vectors(oracle, dims, rng)
    lo = vec.min(axis=0)
    span = vec.max(axis=0) - lo
    span[span == 0.0] = 1.0
    points = (vec - lo) / span
    if jitter > 0.0:
        points = points + rng.uniform(-jitter, jitter, size=points.shape)
    # squeeze into [0, 1) leaving room at the top edge
    return np.clip(points, 0.0, 1.0 - 1e-9) * (1.0 - 2e-9)
