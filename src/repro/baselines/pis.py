"""PIS — Proximity Identifier Selection.

The third structured-overlay baseline family of Section 2 (Ratnasamy et
al., INFOCOM'02: topologically-aware overlay construction): node
identifiers are assigned from physical coordinates so that id-adjacent
nodes are physically close.  The standard technique is *landmark
ordering*: every node measures its latency to a small set of landmark
hosts, nodes are sorted by their landmark vectors, and identifiers are
handed out in that order.

In the slot/embedding model this is simply a smarter **embedding**: the
logical Chord ring is unchanged; hosts are placed on it in landmark
order, so ring successors (and short fingers) tend to be nearby.  The
paper notes PIS's cost — it "impairs … anonymity" and skews load — but
uses it as a comparison point; we expose it the same way.
"""

from __future__ import annotations

import numpy as np

from repro.topology.latency import LatencyOracleBase

__all__ = ["landmark_vectors", "pis_embedding"]


def landmark_vectors(
    oracle: LatencyOracleBase,
    n_landmarks: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Latency vector of every member to ``n_landmarks`` random members.

    Real PIS uses dedicated landmark servers; measuring to a random
    member subset exercises the identical mechanism (the landmark set
    only needs to be common to all nodes).
    """
    n = oracle.n
    if not 1 <= n_landmarks <= n:
        raise ValueError(f"need 1..{n} landmarks, got {n_landmarks}")
    landmarks = rng.choice(n, size=n_landmarks, replace=False)
    # column block via rows(): oracle estimates are symmetric by contract
    return np.ascontiguousarray(oracle.rows(landmarks).T)


def pis_embedding(
    oracle: LatencyOracleBase,
    rng: np.random.Generator,
    *,
    n_landmarks: int = 8,
) -> np.ndarray:
    """Landmark-ordered slot->host embedding for a ring overlay.

    Hosts are sorted by (nearest landmark, distance to it, second
    distance, ...) so that consecutive ring slots receive physically
    nearby hosts.  Returns an array usable as the ``embedding`` argument
    of :class:`~repro.overlay.chord.ChordOverlay`.
    """
    vec = landmark_vectors(oracle, n_landmarks, rng)
    # Sort lexicographically by (argmin landmark, then the full distance
    # vector) — the classic landmark-binning order.
    nearest = np.argmin(vec, axis=1)
    keys = np.lexsort(tuple(vec[:, k] for k in range(vec.shape[1] - 1, -1, -1)) + (nearest,))
    return keys.astype(np.intp)
