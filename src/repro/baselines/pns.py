"""PNS — Proximity Neighbor Selection for Chord.

The structured-overlay baseline family of the paper's Section 2
(Castro et al., MSR-TR-2002-82; Gummadi et al., SIGCOMM'03).  Chord's
``k``-th finger may legally point at *any* node whose identifier lies in
the interval ``[id + 2^k, id + 2^{k+1})``; plain Chord uses the first
(the successor of ``id + 2^k``), PNS uses the one physically closest to
the finger's owner.

The paper's criticism — "the entries in routing table are deterministic
in systems like Chord …, where the PNS scheme cannot be applied
directly" — refers to strict Chord, whose finger definition admits only
the interval successor.  Like the literature it cites, this module
implements the relaxed-finger variant (routing stays correct because any
interval member is a valid closest-preceding candidate).  PNS is
*protocol-dependent*; PROP-G runs on anything.  The combination bench
(``bench_combination_pns``) layers PROP-G's identifier swaps on top of a
PNS-built table and calls :meth:`PNSChordOverlay.refresh` to re-pick
fingers against the updated embedding, reproducing the "combining …
further improves" claim.
"""

from __future__ import annotations

import numpy as np

from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import unique_ids
from repro.topology.latency import LatencyOracleBase

__all__ = ["PNSChordOverlay"]


class PNSChordOverlay(ChordOverlay):
    """Chord with proximity-selected fingers."""

    @classmethod
    def build(
        cls,
        oracle: LatencyOracleBase,
        rng: np.random.Generator,
        *,
        bits: int | None = None,
        embedding: np.ndarray | None = None,
    ) -> "PNSChordOverlay":
        n = oracle.n if embedding is None else len(embedding)
        if bits is None:
            bits = max(16, int(np.ceil(np.log2(max(n, 2)))) + 4)
        ids = np.sort(unique_ids(n, bits, rng))
        if embedding is None:
            embedding = rng.permutation(n).astype(np.intp)
        return cls(oracle, embedding, ids, bits)

    def _build_fingers(self) -> None:
        """Per finger interval, pick the physically closest member.

        The interval of finger ``k`` is the set of slots whose id lies in
        ``[id_i + 2^k, id_i + 2^{k+1})`` (clockwise).  Empty intervals
        contribute nothing; the successor link (finger 0 candidate set
        always contains the ring successor) keeps routing live.
        """
        n = self.n_slots
        ids = self.ids
        emb = self.embedding
        oracle = self.oracle
        self.fingers = []
        id_list = ids  # sorted ascending; slot == rank
        for i in range(n):
            base = int(ids[i])
            targets: list[int] = []
            seen: set[int] = set()
            # Always keep the immediate successor: greedy routing's last
            # hop and the ring's connectivity backbone.
            succ = (i + 1) % n
            seen.add(succ)
            targets.append(succ)
            for k in range(self.bits):
                lo = (base + (1 << k)) % self.space
                hi = (base + (1 << (k + 1))) % self.space
                members = self._slots_in_interval(lo, hi)
                members = [j for j in members if j != i]
                if not members:
                    continue
                cand = np.asarray(members, dtype=np.intp)
                best = int(cand[np.argmin(oracle.to_many(int(emb[i]), emb[cand]))])
                if best not in seen:
                    seen.add(best)
                    targets.append(best)
            targets.sort(key=lambda j: (int(id_list[j]) - base) % self.space)
            self.fingers.append(targets)

    def _slots_in_interval(self, lo: int, hi: int) -> list[int]:
        """Slots whose id lies in the clockwise half-open interval [lo, hi)."""
        import bisect

        ids = self.ids
        n = self.n_slots
        if lo == hi:
            return []
        a = bisect.bisect_left(ids, lo)
        b = bisect.bisect_left(ids, hi)
        if lo < hi:
            return list(range(a, b))
        return list(range(a, n)) + list(range(0, b))

    def refresh(self) -> None:
        """Re-run proximity finger selection against the current embedding.

        Deployed PNS re-measures candidates during routine maintenance;
        after PROP-G identifier swaps this brings the finger choices back
        in line with physical reality.
        """
        # tear down the old logical graph
        for a in range(self.n_slots):
            for b in sorted(self._adj[a]):
                if a < b:
                    self.remove_edge(a, b)
        self._build_fingers()
        self._build_edges()
