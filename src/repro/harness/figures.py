"""Named registry of the paper's figure configurations.

Each entry maps a figure id (``fig5a`` … ``fig7``) to the labelled
config sweep that regenerates it, at either ``paper`` scale (n = 1000,
one simulated hour — what benchmarks/ runs) or ``quick`` scale (n = 200,
a few simulated minutes — a laptop sanity pass).  Consumed by the CLI
(``python -m repro figure fig6a``) and usable directly:

>>> from repro.harness.figures import figure_configs
>>> from repro.harness.sweep import run_sweep
>>> results = run_sweep(figure_configs("fig6a", scale="quick"))
"""

from __future__ import annotations

from repro.baselines.ltm import LTMConfig
from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig

__all__ = ["FIGURE_IDS", "figure_configs", "figure_description"]

_DESCRIPTIONS = {
    "fig5a": "PROP-G / Gnutella: lookup latency vs time, varying probe TTL",
    "fig5b": "PROP-G / Gnutella: lookup latency vs time, varying system size",
    "fig5c": "PROP-G / Gnutella: lookup latency vs time, two topologies",
    "fig6a": "PROP-G / Chord: stretch vs time, varying probe TTL",
    "fig6b": "PROP-G / Chord: stretch vs time, varying system size",
    "fig6c": "PROP-G / Chord: stretch vs time, two topologies",
    "fig7": "heterogeneous bimodal delays: PROP-O vs PROP-G vs LTM over fast-lookup fractions",
    "oracle-error": "PROP-G convergence under exact vs vivaldi (dims) vs landmark oracles",
}

FIGURE_IDS = tuple(sorted(_DESCRIPTIONS))


def figure_description(figure_id: str) -> str:
    try:
        return _DESCRIPTIONS[figure_id]
    except KeyError:
        raise KeyError(f"unknown figure {figure_id!r}; choose from {FIGURE_IDS}") from None


def _base(scale: str, **overrides) -> ExperimentConfig:
    if scale == "paper":
        defaults = dict(
            preset="ts-large", n_overlay=1000,
            duration=3600.0, sample_interval=360.0, lookups_per_sample=1000,
        )
    elif scale == "quick":
        defaults = dict(
            preset="ts-large", n_overlay=200,
            duration=1200.0, sample_interval=300.0, lookups_per_sample=200,
        )
    else:
        raise ValueError(f"scale must be 'paper' or 'quick', got {scale!r}")
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def figure_configs(figure_id: str, *, scale: str = "paper") -> dict[str, ExperimentConfig]:
    """The labelled config sweep behind one figure."""
    figure_description(figure_id)  # validate id

    if figure_id in ("fig5a", "fig6a"):
        kind = "gnutella" if figure_id == "fig5a" else "chord"
        scenarios = {
            "nhops=1": PROPConfig(policy="G", nhops=1),
            "nhops=2": PROPConfig(policy="G", nhops=2),
            "nhops=4": PROPConfig(policy="G", nhops=4),
            "random": PROPConfig(policy="G", random_probe=True),
        }
        return {
            label: _base(scale, overlay_kind=kind, prop=prop)
            for label, prop in scenarios.items()
        }

    if figure_id in ("fig5b", "fig6b"):
        kind = "gnutella" if figure_id == "fig5b" else "chord"
        sizes = (300, 500, 1000, 5000) if scale == "paper" else (100, 200, 400)
        return {
            f"n={n}": _base(
                scale,
                overlay_kind=kind,
                n_overlay=n,
                prop=PROPConfig(policy="G"),
                lookups_per_sample=min(1000, 2 * n),
            )
            for n in sizes
        }

    if figure_id in ("fig5c", "fig6c"):
        kind = "gnutella" if figure_id == "fig5c" else "chord"
        return {
            preset: _base(scale, overlay_kind=kind, preset=preset, prop=PROPConfig(policy="G"))
            for preset in ("ts-large", "ts-small")
        }

    if figure_id == "oracle-error":
        # Beyond-paper: the same PROP-G deployment driven by each latency
        # backend.  Embedding error shows up as convergence loss, so the
        # curves separate exactly where the oracle misranks neighbors.
        backends: dict[str, dict] = {
            "exact": dict(oracle="exact"),
            "vivaldi dim=2": dict(oracle="vivaldi", oracle_options={"dim": 2}),
            "vivaldi dim=4": dict(oracle="vivaldi", oracle_options={"dim": 4}),
            "vivaldi dim=8": dict(oracle="vivaldi", oracle_options={"dim": 8}),
            "landmark": dict(oracle="landmark"),
        }
        return {
            label: _base(scale, overlay_kind="gnutella",
                         prop=PROPConfig(policy="G"), **kw)
            for label, kw in backends.items()
        }

    # fig7
    het = dict(
        overlay_kind="gnutella",
        heterogeneous=True,
        fast_degree_weight=8.0,
        flood_ttl=7,
        overlay_options={"min_degree": 3, "mean_extra_degree": 3.0},
    )
    fractions = (0.0, 0.5, 1.0) if scale == "quick" else (0.0, 0.25, 0.5, 0.75, 1.0)
    protocols = {
        "PROP-O m=1": dict(prop=PROPConfig(policy="O", m=1)),
        "PROP-O m=4": dict(prop=PROPConfig(policy="O", m=4)),
        "PROP-G": dict(prop=PROPConfig(policy="G")),
        "LTM": dict(ltm=LTMConfig(max_cuts_per_round=4)),
        "none": {},
    }
    out: dict[str, ExperimentConfig] = {}
    for label, kw in protocols.items():
        for phi in fractions:
            out[f"{label} phi={phi}"] = _base(
                scale, fast_lookup_fraction=phi, **het, **kw
            )
    return out
