"""Parallel execution of independent experiment tasks.

Every sweep and every multi-seed replication is embarrassingly parallel:
each labelled task builds its own world from its own config/seed and
never touches another task's state.  :func:`run_tasks` is the single
primitive the harness routes that workload through — a
``ProcessPoolExecutor``-backed fan-out with the robustness a long
benchmark run needs:

* ``workers=1`` executes in-process, exactly as the old serial loops
  did, and is the default everywhere.
* Results are keyed and ordered by task label, so the output is
  byte-identical regardless of worker count or completion order
  (each task is deterministic in its own arguments).
* Worker crashes (a segfaulting process, an OOM kill) and per-task
  timeouts are retried in a fresh pool up to ``max_retries`` times
  before :class:`TaskError` is raised; ordinary exceptions raised *by*
  the task are deterministic and propagate immediately, as they would
  serially.
* Platforms without usable multiprocessing (no ``/dev/shm``, no fork —
  some sandboxes and embedded interpreters) fall back to the serial
  path instead of failing.
* Progress is reported through structured :class:`TaskEvent` callbacks
  (label, status, elapsed seconds) rather than bare label strings, so
  callers can render retries and failures, not just starts.

Task callables must be picklable (module-level functions) when
``workers > 1``; the harness's own task functions
(:func:`repro.harness.sweep._sweep_task`,
:func:`repro.harness.replicate._replicate_task`) satisfy this.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

__all__ = [
    "ProgressRollup",
    "Task",
    "TaskEvent",
    "TaskError",
    "effective_workers",
    "run_tasks",
]


@dataclass(frozen=True)
class Task:
    """One independent unit of work: ``fn(*args, **kwargs)`` under a label."""

    label: str
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class TaskEvent:
    """Structured progress notification.

    ``status`` is one of ``"start"`` (task submitted / begun),
    ``"done"`` (result available), ``"retry"`` (worker crash or timeout,
    task will run again), ``"failed"`` (retries exhausted).  ``elapsed``
    is seconds since the task first started; ``error`` carries the
    failure description for ``retry``/``failed`` events.
    """

    label: str
    status: str
    elapsed: float = 0.0
    error: str | None = None


class TaskError(RuntimeError):
    """A task could not be completed after exhausting its retries."""

    def __init__(self, label: str, reason: str) -> None:
        super().__init__(f"task {label!r} failed: {reason}")
        self.label = label
        self.reason = reason


ProgressCallback = Callable[[TaskEvent], None]


class ProgressRollup:
    """Fold :class:`TaskEvent` streams into one fleet-level status line.

    The per-task rollup behind ``--monitor`` for ``sweep`` and
    ``replicate``: counts starts/dones/retries/failures over a known
    task total and estimates time remaining from the mean elapsed time
    of completed tasks — using only the ``elapsed`` values the events
    carry, never a clock of its own (the CLI owns wall-clock concerns).

    Use it as the ``progress`` callback directly, or wrap another
    callback via ``chain`` to keep existing rendering:

    >>> rollup = ProgressRollup(len(tasks))
    >>> run_tasks(tasks, progress=rollup.chain(render))
    """

    def __init__(self, total: int) -> None:
        if total < 0:
            raise ValueError("total must be >= 0")
        self.total = int(total)
        self.started = 0
        self.done = 0
        self.retries = 0
        self.failed = 0
        self.elapsed_done: list[float] = []
        self.last_label: str | None = None

    def __call__(self, event: TaskEvent) -> None:
        self.last_label = event.label
        if event.status == "start":
            self.started += 1
        elif event.status == "done":
            self.done += 1
            self.elapsed_done.append(float(event.elapsed))
        elif event.status == "retry":
            self.retries += 1
        elif event.status == "failed":
            self.failed += 1

    def chain(self, other: ProgressCallback | None) -> ProgressCallback:
        """A callback that updates this rollup, then forwards to ``other``."""

        def forward(event: TaskEvent) -> None:
            self(event)
            if other is not None:
                other(event)

        return forward

    def eta_seconds(self, workers: int = 1) -> float | None:
        """Remaining-time estimate from mean completed-task elapsed time.

        ``None`` until at least one task has completed.  Assumes the
        remaining tasks cost the mean observed elapsed time, spread over
        ``workers`` lanes — a coarse but monotone-improving estimate.
        """
        if not self.elapsed_done:
            return None
        mean = sum(self.elapsed_done) / len(self.elapsed_done)
        remaining = max(0, self.total - self.done)
        return mean * remaining / max(1, int(workers))

    def render(self, *, workers: int = 1) -> str:
        """One status line, e.g. ``[3/8] running seed=5  eta ~42s``."""
        parts = [f"[{self.done}/{self.total}]"]
        if self.done < self.total and self.last_label is not None:
            parts.append(f"running {self.last_label}")
        if self.retries:
            parts.append(f"retries {self.retries}")
        if self.failed:
            parts.append(f"failed {self.failed}")
        eta = self.eta_seconds(workers)
        if eta is not None and self.done < self.total:
            parts.append(f"eta ~{eta:.0f}s")
        return "  ".join(parts)


def effective_workers(workers: int | None, n_tasks: int) -> int:
    """Clamp a worker request to something sensible for ``n_tasks``.

    ``None`` or ``0`` means "one per core, capped by the task count".
    """
    if workers is None or workers <= 0:
        workers = os.cpu_count() or 1
    return max(1, min(int(workers), n_tasks)) if n_tasks else 1


def _emit(progress: ProgressCallback | None, event: TaskEvent) -> None:
    if progress is not None:
        progress(event)


def _run_serial(
    tasks: Sequence[Task], progress: ProgressCallback | None,
    timings: dict[str, float] | None = None,
) -> dict[str, Any]:
    results: dict[str, Any] = {}
    for task in tasks:
        started = time.monotonic()  # reprolint: disable=D1
        _emit(progress, TaskEvent(task.label, "start"))
        results[task.label] = task.fn(*task.args, **task.kwargs)
        # wall-clock subprocess timing  # reprolint: disable=D1
        elapsed = time.monotonic() - started
        if timings is not None:
            timings[task.label] = elapsed
        _emit(progress, TaskEvent(task.label, "done", elapsed))
    return results


def _terminate_pool(executor: ProcessPoolExecutor) -> None:
    """Tear a pool down even if a worker is wedged mid-task."""
    # Snapshot first: shutdown() clears the process table, and it never
    # kills a busy worker — a hung task would leak its process (and on
    # some platforms block interpreter exit) without the terminate pass.
    procs = list((getattr(executor, "_processes", None) or {}).values())
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for proc in procs:
        try:
            proc.terminate()
        except Exception:
            pass


def run_tasks(
    tasks: Sequence[Task],
    *,
    workers: int = 1,
    progress: ProgressCallback | None = None,
    task_timeout: float | None = None,
    max_retries: int = 1,
    mp_context: Any | None = None,
    timings: dict[str, float] | None = None,
) -> dict[str, Any]:
    """Execute independent tasks, optionally across worker processes.

    Parameters
    ----------
    tasks:
        Labelled units of work; labels must be distinct (they key the
        result dict).
    workers:
        Process count.  ``1`` (default) runs serially in-process;
        ``None``/``0`` means one per CPU core.  The pool path requires
        picklable ``task.fn``.
    progress:
        Optional callback receiving :class:`TaskEvent` notifications.
    task_timeout:
        Seconds to wait for each task's result once the runner starts
        waiting on it (earlier waits overlap later tasks' execution, so
        this is a hang detector, not a precise per-task budget).  A
        timeout tears the pool down and retries the unfinished tasks.
    max_retries:
        How many times a task lost to a worker crash or timeout is
        re-attempted before :class:`TaskError` is raised.  Exceptions
        raised *by* the task itself are never retried — they are
        deterministic and propagate immediately.
    mp_context:
        Optional ``multiprocessing`` context (e.g. for ``spawn`` starts).
    timings:
        Optional out-parameter: filled with ``label -> wall seconds``
        from first start to completion (includes any retries).

    Returns
    -------
    dict
        ``label -> result`` in the order the tasks were given, identical
        for every worker count.
    """
    tasks = list(tasks)
    labels = [t.label for t in tasks]
    if len(set(labels)) != len(labels):
        raise ValueError("task labels must be distinct")
    if not tasks:
        return {}
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")

    # Serial iff the caller asked for one worker: a pool is requested
    # even for a single task (it buys crash isolation and timeouts),
    # but its size never exceeds the task count.
    requested = int(workers) if workers is not None and workers > 0 else (os.cpu_count() or 1)
    if requested <= 1:
        return _run_serial(tasks, progress, timings)
    n_workers = effective_workers(requested, len(tasks))

    results: dict[str, Any] = {}
    attempts: dict[str, int] = {t.label: 0 for t in tasks}
    first_start: dict[str, float] = {}
    pending = tasks

    while pending:
        try:
            executor = ProcessPoolExecutor(
                max_workers=min(n_workers, len(pending)), mp_context=mp_context
            )
        except Exception:
            # Platform cannot run worker processes at all: degrade to the
            # serial path for everything still outstanding.
            serial = _run_serial(pending, progress, timings)
            results.update(serial)
            break

        submitted = []
        for task in pending:
            if task.label not in first_start:
                first_start[task.label] = time.monotonic()  # reprolint: disable=D1
                _emit(progress, TaskEvent(task.label, "start"))
            submitted.append((task, executor.submit(task.fn, *task.args, **task.kwargs)))

        survivors: list[Task] = []
        abandoned = False
        failure = ""
        for task, future in submitted:
            if abandoned:
                # Pool already condemned: salvage finished results, queue
                # the rest for the next round.
                if future.done() and not future.cancelled():
                    try:
                        results[task.label] = future.result(timeout=0)
                        # wall-clock subprocess timing  # reprolint: disable=D1
                        elapsed = time.monotonic() - first_start[task.label]
                        if timings is not None:
                            timings[task.label] = elapsed
                        _emit(progress, TaskEvent(task.label, "done", elapsed))
                        continue
                    except Exception:
                        pass
                survivors.append(task)
                continue
            try:
                results[task.label] = future.result(timeout=task_timeout)
                # wall-clock subprocess timing  # reprolint: disable=D1
                elapsed = time.monotonic() - first_start[task.label]
                if timings is not None:
                    timings[task.label] = elapsed
                _emit(progress, TaskEvent(task.label, "done", elapsed))
            except FutureTimeoutError:
                failure = f"no result within {task_timeout:.0f}s"
                abandoned = True
                survivors.append(task)
            except BrokenProcessPool:
                failure = "worker process died"
                abandoned = True
                survivors.append(task)
            except Exception:
                # The task itself raised: deterministic, do not retry.
                _terminate_pool(executor)
                raise
        if abandoned:
            _terminate_pool(executor)
        else:
            executor.shutdown(wait=True)

        pending = []
        for task in survivors:
            attempts[task.label] += 1
            elapsed = time.monotonic() - first_start[task.label]  # reprolint: disable=D1
            if attempts[task.label] > max_retries:
                _emit(progress, TaskEvent(task.label, "failed", elapsed, failure))
                raise TaskError(task.label, failure)
            _emit(progress, TaskEvent(task.label, "retry", elapsed, failure))
            pending.append(task)

    return {label: results[label] for label in labels}
