"""End-to-end experiment runner.

One :class:`ExperimentConfig` describes a complete simulated deployment —
physical preset, overlay family, optimization protocol (PROP-G / PROP-O /
LTM / none), heterogeneity, churn — and :func:`run_experiment` runs it,
sampling the paper's metrics (stretch, average lookup latency, protocol
overhead counters) on a fixed interval.  Every figure-regeneration
benchmark is a thin sweep over these configs.

World-building is deterministic in ``seed``: two configs differing only
in the protocol field share the *identical* physical network, overlay
graph, heterogeneity assignment and lookup stream, so protocol curves
are directly comparable ("same world, different optimizer").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.baselines.ltm import LTMConfig, LTMOptimizer
from repro.baselines.pis import pis_embedding
from repro.baselines.pns import PNSChordOverlay
from repro.core.config import PROPConfig
from repro.core.protocol import PROPEngine
from repro.metrics.stretch import stretch as stretch_metric
from repro.net.engine import MessagePROPEngine, NetConfig
from repro.net.faults import FaultyTransport, PartitionSpec
from repro.net.transport import SimTransport
from repro.netsim.engine import Simulator
from repro.netsim.rng import RngRegistry
from repro.obs.live import WindowedCounts
from repro.obs.monitor import ConvergenceMonitor
from repro.obs.trace import TraceConsumer, Tracer
from repro.overlay.base import Overlay
from repro.overlay.can import CANOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.gnutella import GnutellaOverlay
from repro.overlay.kademlia import KademliaOverlay
from repro.overlay.pastry import PastryOverlay
from repro.topology.factory import ORACLE_BACKENDS, build_oracle
from repro.topology.latency import LatencyOracleBase
from repro.topology.presets import build_preset
from repro.workloads.churn import ChurnConfig, ChurnProcess
from repro.workloads.heterogeneity import (
    BimodalDelay,
    bimodal_processing_delay,
    capacity_weights_from_delay,
)
from repro.workloads.lookups import biased_target_pairs, uniform_keys, uniform_pairs

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "Substrate",
    "World",
    "build_substrate",
    "build_world",
    "monitor_consumers",
    "run_experiment",
    "sample_lookup_latency",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Full description of one simulated deployment.

    Parameters mirror the paper's experimental setup (Section 5.1):
    ``preset`` picks the GT-ITM model, ``n_overlay`` the number of peers
    (default 1000), and the protocol fields the optimizer under test.
    """

    seed: int = 0
    preset: str = "ts-large"
    n_overlay: int = 1000
    n_spare: int = 0
    overlay_kind: str = "gnutella"  # gnutella | chord | can | pastry | kademlia
    overlay_options: dict[str, Any] = field(default_factory=dict)
    # latency source: exact Dijkstra submatrix, Vivaldi synthetic
    # coordinates, or landmark triangulation (repro.topology.factory)
    oracle: str = "exact"
    oracle_options: dict[str, Any] = field(default_factory=dict)
    # optimizers (at most one of prop / ltm)
    prop: PROPConfig | None = None
    ltm: LTMConfig | None = None
    # environment
    heterogeneous: bool = False
    fast_fraction: float = 0.5
    fast_ms: float = 1.0
    slow_ms: float = 100.0
    capacity_degree_bias: bool = True
    fast_degree_weight: float = 4.0
    fast_lookup_fraction: float | None = None
    churn: ChurnConfig | None = None
    pis_landmarks: int | None = None  # Chord: PIS identifier assignment
    pns: bool = False  # Chord: proximity-selected fingers
    pns_refresh_interval: float | None = None
    # message plane (None = inline engine; "sim" = MessagePROPEngine over
    # the simulator; "udp" = the same engine over repro.live's loopback
    # swarm with wall-clock timers)
    transport: str | None = None
    loss: float = 0.0
    extra_delay_ms: float = 0.0
    net_jitter_ms: float = 0.0
    reorder_prob: float = 0.0
    partitions: tuple[str, ...] = ()  # PartitionSpec strings, e.g. "a:b@120-300"
    latency_scale: float = 1.0
    net: NetConfig | None = None
    # live deployment plane (transport="udp" only)
    live_speedup: float = 60.0  # protocol seconds per wall second
    live_lookup_rate: float = 0.0  # traffic-generator lookups per protocol second
    # observability
    trace: bool = False  # buffer structured events (repro.obs)
    trace_streaming: bool = False  # dispatch to consumers, discard raw events
    trace_window: float | None = None  # consumer window width (default: sample_interval)
    kernel_profile: bool = False  # per-category wall-clock attribution (repro.obs.prof)
    # measurement
    duration: float = 1800.0
    sample_interval: float = 120.0
    lookups_per_sample: int = 1000
    flood_ttl: int | None = None  # None = unbounded flood (exact Dijkstra)
    retry_timeout: float | None = 4000.0  # requery cost for out-of-scope floods

    def __post_init__(self) -> None:
        if self.overlay_kind not in ("gnutella", "chord", "can", "pastry", "kademlia"):
            raise ValueError(f"unknown overlay kind {self.overlay_kind!r}")
        if self.oracle not in ORACLE_BACKENDS:
            raise ValueError(
                f"unknown oracle backend {self.oracle!r}; "
                f"choose from {ORACLE_BACKENDS}"
            )
        if self.prop is not None and self.ltm is not None:
            raise ValueError("configure at most one optimizer (prop or ltm)")
        if self.n_overlay < 8:
            raise ValueError("n_overlay must be >= 8")
        if self.n_spare < 0:
            raise ValueError("n_spare must be >= 0")
        if self.churn is not None and self.n_spare == 0:
            raise ValueError("churn needs n_spare > 0 replacement hosts")
        if self.fast_lookup_fraction is not None and not self.heterogeneous:
            raise ValueError("fast_lookup_fraction requires heterogeneous=True")
        if self.duration < self.sample_interval:
            raise ValueError("duration must cover at least one sample interval")
        if (self.pis_landmarks is not None or self.pns) and self.overlay_kind != "chord":
            raise ValueError("PIS/PNS apply to the chord overlay only")
        if self.trace and self.trace_streaming:
            raise ValueError(
                "trace buffers every raw event and trace_streaming discards "
                "them; enable at most one of the two"
            )
        if self.trace_window is not None:
            if self.trace_window <= 0:
                raise ValueError(f"trace_window must be > 0, got {self.trace_window}")
            if not (self.trace or self.trace_streaming):
                raise ValueError("trace_window needs trace or trace_streaming")
        if self.transport not in (None, "sim", "udp"):
            raise ValueError(
                f"transport must be None, 'sim' or 'udp', got {self.transport!r}"
            )
        if self.kernel_profile and self.transport == "udp":
            raise ValueError(
                "kernel_profile brackets the simulator dispatch loop; the "
                "live plane has no such loop — use the telemetry snapshots "
                "(loop lag, per-callback durations) instead"
            )
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {self.loss}")
        if self.transport != "sim" and (
            self.loss or self.extra_delay_ms or self.net_jitter_ms
            or self.reorder_prob or self.partitions
        ):
            raise ValueError("fault injection needs transport='sim'")
        if self.live_speedup <= 0.0:
            raise ValueError(f"live_speedup must be > 0, got {self.live_speedup}")
        if self.live_lookup_rate < 0.0:
            raise ValueError(
                f"live_lookup_rate must be >= 0, got {self.live_lookup_rate}"
            )
        if self.live_lookup_rate and self.transport != "udp":
            raise ValueError("live_lookup_rate needs transport='udp'")
        if self.transport is not None and self.prop is None:
            raise ValueError("the message transport runs PROP only; set prop")
        if self.latency_scale < 0.0:
            raise ValueError(f"latency_scale must be >= 0, got {self.latency_scale}")
        for spec in self.partitions:
            PartitionSpec.parse(spec)  # raises on malformed specs
        rewiring_optimizer = self.ltm is not None or (
            self.prop is not None and self.prop.policy == "O"
        )
        if rewiring_optimizer and self.overlay_kind != "gnutella":
            raise ValueError(
                "PROP-O and LTM rewire logical edges; only unstructured "
                "(gnutella) overlays tolerate that — use PROP-G on "
                "structured overlays"
            )

    def but(self, **kwargs) -> "ExperimentConfig":
        """Copy with overrides (sweep helper)."""
        return replace(self, **kwargs)


@dataclass
class Substrate:
    """The seed-determined world below any clock or transport.

    Physical network placement, latency oracle, heterogeneity draw and
    overlay graph are functions of the config alone — the simulated and
    live planes construct this *identical* substrate from the same seed,
    which is what makes their trajectories comparable (the sim-vs-real
    parity gate rests on it).
    """

    config: ExperimentConfig
    rngs: RngRegistry
    oracle: LatencyOracleBase
    overlay: Overlay
    het: BimodalDelay | None
    spare_hosts: list[int]


@dataclass
class World:
    """Everything :func:`run_experiment` operates on.

    The live plane (:mod:`repro.live`) assembles the same shape with
    duck-typed substitutes — ``sim`` a
    :class:`~repro.live.clock.LiveScheduler`, ``transport`` a
    :class:`~repro.live.transport.UdpTransport` — so the sampling helpers
    below work on either plane.
    """

    config: ExperimentConfig
    rngs: RngRegistry
    sim: Simulator
    oracle: LatencyOracleBase
    overlay: Overlay
    het: BimodalDelay | None
    engine: PROPEngine | None
    ltm: LTMOptimizer | None
    churn: ChurnProcess | None
    spare_hosts: list[int]
    transport: SimTransport | FaultyTransport | None = None
    tracer: Tracer | None = None


@dataclass
class ExperimentResult:
    """Sampled time series plus final protocol counters.

    ``stretch`` is the routing stretch (overlay route latency over direct
    latency for the sampled queries — the paper's Fig. 6 metric);
    ``link_stretch`` is the link-based form the Section 4.2 analysis
    descends.  ``lookup_latency`` is the mean end-to-end lookup latency
    (the paper's Fig. 5/7 metric).
    """

    config: ExperimentConfig
    times: np.ndarray
    stretch: np.ndarray
    link_stretch: np.ndarray
    lookup_latency: np.ndarray
    probes: np.ndarray  # cumulative probe count at each sample
    messages: np.ndarray  # cumulative protocol messages at each sample
    exchanges: np.ndarray  # cumulative successful exchanges
    final_counters: Any
    net_stats: Any = None  # TransportStats when run over a message transport
    net_counters: Any = None  # NetCounters (timeouts/retries) likewise
    trace: Any = None  # list[repro.obs.events.Event] when config.trace
    profile: Any = None  # dict[str, float] wall-clock stage timings (opt-in)
    kernel_profile: Any = None  # KernelProfile.to_dict() when config.kernel_profile
    consumers: Any = None  # list[TraceConsumer] when streaming/monitoring

    @property
    def initial_lookup_latency(self) -> float:
        return float(self.lookup_latency[0])

    @property
    def final_lookup_latency(self) -> float:
        return float(self.lookup_latency[-1])

    @property
    def initial_stretch(self) -> float:
        return float(self.stretch[0])

    @property
    def final_stretch(self) -> float:
        return float(self.stretch[-1])

    def improvement_ratio(self, metric: str = "lookup_latency") -> float:
        """final / initial for the chosen metric (< 1 means improvement)."""
        series = getattr(self, metric)
        return float(series[-1] / series[0])

    def probe_rate(self) -> np.ndarray:
        """Probes per second between consecutive samples."""
        dt = np.diff(self.times)
        return np.diff(self.probes) / np.where(dt > 0, dt, 1.0)


def monitor_consumers(config: ExperimentConfig) -> list[TraceConsumer]:
    """The standard config-derived consumer set for monitored runs.

    Built from the config alone so a worker process reconstructs the
    identical set — streaming aggregates stay byte-comparable between
    serial and ``--workers N`` execution.  Window width defaults to the
    sampling interval; warm-up end mirrors the report phase breakdown.
    """
    width = (
        config.trace_window
        if config.trace_window is not None
        else config.sample_interval
    )
    warmup = 0.0
    if config.prop is not None:
        warmup = min(
            config.duration,
            float(config.prop.max_init_trial) * float(config.prop.init_timer),
        )
    return [
        WindowedCounts(width),
        ConvergenceMonitor(config.duration, warmup_end=warmup),
    ]


def build_substrate(config: ExperimentConfig) -> Substrate:
    """Construct the seed-determined substrate (network, oracle, overlay)."""
    rngs = RngRegistry(config.seed)
    net = build_preset(config.preset, rngs.stream("topology"))

    stub = net.stub_hosts
    need = config.n_overlay + config.n_spare
    if need > stub.size:
        raise ValueError(
            f"preset {config.preset!r} has {stub.size} stub hosts; "
            f"cannot place {need} overlay+spare members"
        )
    members = rngs.stream("membership").choice(stub, size=need, replace=False)
    # the Vivaldi fit draws from its own named stream derived from the
    # master seed, so backend choice never perturbs any other component
    oracle = build_oracle(
        config.oracle, net, members,
        seed=config.seed, options=config.oracle_options,
    )

    het: BimodalDelay | None = None
    if config.heterogeneous:
        het = bimodal_processing_delay(
            need,
            rngs.stream("heterogeneity"),
            fast_fraction=config.fast_fraction,
            fast_ms=config.fast_ms,
            slow_ms=config.slow_ms,
        )

    overlay_embedding = np.arange(config.n_overlay, dtype=np.intp)
    spare_hosts = list(range(config.n_overlay, need))
    overlay = _build_overlay(config, oracle, overlay_embedding, het, rngs)
    return Substrate(
        config=config,
        rngs=rngs,
        oracle=oracle,
        overlay=overlay,
        het=het,
        spare_hosts=spare_hosts,
    )


def build_world(config: ExperimentConfig) -> World:
    """Construct the physical network, overlay, and optimizer stack."""
    if config.transport == "udp":
        raise ValueError(
            "build_world assembles the simulated plane; transport='udp' "
            "worlds are assembled by repro.live.swarm.Swarm (or run the "
            "config through run_experiment, which delegates)"
        )
    substrate = build_substrate(config)
    rngs = substrate.rngs
    oracle = substrate.oracle
    overlay = substrate.overlay
    het = substrate.het
    spare_hosts = substrate.spare_hosts

    sim = Simulator()
    tracer: Tracer | None = None
    if config.trace or config.trace_streaming:
        tracer = Tracer(
            clock=lambda: sim.now,
            streaming=config.trace_streaming,
            consumers=monitor_consumers(config) if config.trace_streaming else (),
        )
    engine: PROPEngine | None = None
    ltm: LTMOptimizer | None = None
    transport: SimTransport | FaultyTransport | None = None
    if config.prop is not None:
        if config.transport is not None:
            transport = _build_transport(config, sim, overlay, rngs, tracer)
            engine = MessagePROPEngine(
                overlay, config.prop, sim, rngs, transport,
                net=config.net, tracer=tracer,
            )
        else:
            engine = PROPEngine(overlay, config.prop, sim, rngs, tracer=tracer)
        engine.start()
    elif config.ltm is not None:
        ltm = LTMOptimizer(overlay, config.ltm, sim, rngs)
        ltm.start()

    churn: ChurnProcess | None = None
    if config.churn is not None:
        on_replace = engine.reset_slot if engine is not None else None
        churn = ChurnProcess(
            overlay,
            config.churn,
            sim,
            rngs.stream("churn"),
            spare_hosts,
            on_replace=on_replace,
            tracer=tracer,
        )
        churn.start()

    if config.pns and config.pns_refresh_interval is not None:
        assert isinstance(overlay, PNSChordOverlay)
        sim.every(config.pns_refresh_interval, overlay.refresh)

    return World(
        config=config,
        rngs=rngs,
        sim=sim,
        oracle=oracle,
        overlay=overlay,
        het=het,
        engine=engine,
        ltm=ltm,
        churn=churn,
        spare_hosts=spare_hosts,
        transport=transport,
        tracer=tracer,
    )


def _build_transport(
    config: ExperimentConfig,
    sim: Simulator,
    overlay: Overlay,
    rngs: RngRegistry,
    tracer: Tracer | None = None,
) -> SimTransport | FaultyTransport:
    """The message plane: SimTransport, fault-wrapped when faults are on."""
    base = SimTransport(sim, overlay, latency_scale=config.latency_scale, tracer=tracer)
    specs = [PartitionSpec.parse(s) for s in config.partitions]
    faulty = (
        config.loss or config.extra_delay_ms or config.net_jitter_ms
        or config.reorder_prob or specs
    )
    if not faulty:
        return base
    transport = FaultyTransport(
        base,
        rngs.stream("net:faults"),
        loss=config.loss,
        extra_delay_ms=config.extra_delay_ms,
        jitter_ms=config.net_jitter_ms,
        reorder_prob=config.reorder_prob,
    )
    for spec in specs:
        spec.install(transport, sim, overlay.n_slots)
    return transport


def _build_overlay(
    config: ExperimentConfig,
    oracle: LatencyOracleBase,
    embedding: np.ndarray,
    het: BimodalDelay | None,
    rngs: RngRegistry,
) -> Overlay:
    kind = config.overlay_kind
    opts = dict(config.overlay_options)
    rng = rngs.stream(f"overlay:{kind}")
    if kind == "gnutella":
        if het is not None and config.capacity_degree_bias:
            opts.setdefault(
                "capacity_weight",
                capacity_weights_from_delay(het, embedding, fast_weight=config.fast_degree_weight),
            )
        return GnutellaOverlay.build(oracle, rng, embedding=embedding, **opts)
    if kind == "chord":
        if config.pis_landmarks is not None:
            full = pis_embedding(oracle, rngs.stream("pis"), n_landmarks=config.pis_landmarks)
            embedding = full[np.isin(full, embedding)]
        else:
            embedding = rng.permutation(embedding)
        cls = PNSChordOverlay if config.pns else ChordOverlay
        return cls.build(oracle, rng, embedding=embedding, **opts)
    if kind == "can":
        return CANOverlay.build(oracle, rng, embedding=rng.permutation(embedding), **opts)
    if kind == "pastry":
        return PastryOverlay.build(oracle, rng, embedding=rng.permutation(embedding), **opts)
    if kind == "kademlia":
        return KademliaOverlay.build(oracle, rng, embedding=rng.permutation(embedding), **opts)
    raise AssertionError(f"unhandled overlay kind {kind}")


def _direct_mean(overlay: Overlay, src: np.ndarray, dst: np.ndarray) -> float:
    """Mean direct physical latency between slot pairs."""
    emb = overlay.embedding
    return float(overlay.oracle.pairwise(emb[src], emb[dst]).mean())


def sample_lookup_latency(world: World) -> tuple[float, float]:
    """(mean lookup latency, mean direct latency) on a fresh workload draw.

    The ratio of the two is the routing stretch of this sample; the
    workload stream is a persistent named RNG, so successive samples see
    fresh-but-reproducible draws and two configs sharing a seed see the
    *same* query sequence.
    """
    config = world.config
    overlay = world.overlay
    rng = world.rngs.stream("lookup-workload")
    k = config.lookups_per_sample
    node_delay = world.het.slot_delays(overlay.embedding) if world.het is not None else None

    if isinstance(overlay, GnutellaOverlay):
        if config.fast_lookup_fraction is not None:
            assert world.het is not None
            pairs = biased_target_pairs(
                world.het.fast_slots(overlay.embedding),
                world.het.slow_slots(overlay.embedding),
                config.fast_lookup_fraction,
                k,
                rng,
            )
        else:
            pairs = uniform_pairs(overlay.n_slots, k, rng)
        mean_lookup = overlay.mean_lookup_latency(
            pairs,
            node_delay=node_delay,
            ttl=config.flood_ttl,
            retry_timeout=config.retry_timeout,
        )
        return mean_lookup, _direct_mean(overlay, pairs[:, 0], pairs[:, 1])

    if isinstance(overlay, (ChordOverlay, PastryOverlay, KademliaOverlay)):
        queries = uniform_keys(overlay.n_slots, overlay.space, k, rng)
        total = 0.0
        owners = np.empty(k, dtype=np.intp)
        for i, (src, key) in enumerate(queries):
            total += overlay.lookup_latency(int(src), int(key), node_delay)
            owners[i] = overlay.owner_of_key(int(key))
        return total / k, _direct_mean(overlay, queries[:, 0].astype(np.intp), owners)

    if isinstance(overlay, CANOverlay):
        pairs = uniform_pairs(overlay.n_slots, k, rng)
        total = 0.0
        for src, dst in pairs:
            point = overlay.zones[int(dst)].center()
            total += overlay.lookup_latency(int(src), point, node_delay)
        return total / k, _direct_mean(overlay, pairs[:, 0], pairs[:, 1])

    raise AssertionError("unknown overlay type")


def run_experiment(
    config: ExperimentConfig,
    *,
    measure_lookups: bool = True,
    profiler: Any = None,
    consumers: Any = None,
    sample_hook: Any = None,
) -> ExperimentResult:
    """Run the deployment and sample metrics every ``sample_interval``.

    The ``times[0]`` sample is taken *before* any protocol activity, so
    series are directly interpretable as improvement-over-initial.
    ``profiler`` is an optional
    :class:`~repro.harness.profiler.StageProfiler`; when given, the
    wall-clock split between world building, event processing, and
    metric sampling lands in the result's ``profile`` field.

    ``consumers`` are extra :class:`~repro.obs.trace.TraceConsumer`
    subscribers added to the run's tracer (requires ``config.trace`` or
    ``config.trace_streaming``).  Consumers exposing ``on_sample(t,
    latency_ms)`` (e.g. :class:`~repro.obs.monitor.ConvergenceMonitor`)
    are additionally fed every finite lookup-latency sample.
    ``sample_hook(t, status)`` is called after each sampling step with
    the first monitor's :class:`~repro.obs.monitor.MonitorStatus` (or
    None) — the CLI's ``--monitor`` progress line hangs off it.
    """
    from contextlib import nullcontext

    if config.transport == "udp":
        # the live plane owns its event loop and wall clock; imported
        # lazily so sim-only deployments never touch asyncio
        from repro.live.runner import run_live_experiment

        return run_live_experiment(
            config,
            measure_lookups=measure_lookups,
            profiler=profiler,
            consumers=consumers,
            sample_hook=sample_hook,
        )

    def _stage(name: str):
        return profiler.stage(name) if profiler is not None else nullcontext()

    kprof = None
    if config.kernel_profile:
        from repro.obs.prof import KernelProfiler

        kprof = KernelProfiler()

    def _kstage(category: str):
        return kprof.stage(category) if kprof is not None else nullcontext()

    with _stage("build_world"), _kstage("build"):
        world = build_world(config)
    if kprof is not None:
        world.sim.profiler = kprof
    if consumers:
        if world.tracer is None:
            raise ValueError("consumers need config.trace or config.trace_streaming")
        for consumer in consumers:
            world.tracer.add_consumer(consumer)
    n_samples = int(np.floor(config.duration / config.sample_interval)) + 1
    times = np.arange(n_samples) * config.sample_interval

    link_stretch_series = np.empty(n_samples)
    stretch_series = np.full(n_samples, np.nan)
    lookup_series = np.full(n_samples, np.nan)
    probes = np.zeros(n_samples, dtype=np.int64)
    messages = np.zeros(n_samples, dtype=np.int64)
    exchanges = np.zeros(n_samples, dtype=np.int64)

    for i, t in enumerate(times):
        with _stage("simulate"):
            world.sim.run_until(float(t))
        with _stage("sample"), _kstage("sample"):
            link_stretch_series[i] = stretch_metric(world.overlay)
            if measure_lookups:
                mean_lookup, mean_direct = sample_lookup_latency(world)
                lookup_series[i] = mean_lookup
                stretch_series[i] = (
                    mean_lookup / mean_direct if mean_direct > 0 else np.nan
                )
        if world.engine is not None:
            probes[i] = world.engine.counters.probes
            messages[i] = world.engine.counters.total_messages
            exchanges[i] = world.engine.counters.exchanges
        elif world.ltm is not None:
            probes[i] = world.ltm.counters.rounds
            messages[i] = world.ltm.counters.detector_messages
            exchanges[i] = world.ltm.counters.cuts + world.ltm.counters.adds
        if world.tracer is not None and lookup_series[i] == lookup_series[i]:
            for consumer in world.tracer.consumers:
                on_sample = getattr(consumer, "on_sample", None)
                if on_sample is not None:
                    on_sample(float(t), float(lookup_series[i]))
        if sample_hook is not None:
            status = None
            if world.tracer is not None:
                for consumer in world.tracer.consumers:
                    get_status = getattr(consumer, "status", None)
                    if callable(get_status):
                        status = get_status()
                        break
            sample_hook(float(t), status)

    if isinstance(world.engine, MessagePROPEngine):
        # exchanges still awaiting votes when the run ends are recorded
        # as aborted so the trace has no half-open 2PC timelines
        world.engine.finalize_trace()
    if world.tracer is not None:
        world.tracer.close(float(times[-1]))
    final = world.engine.counters if world.engine is not None else (
        world.ltm.counters if world.ltm is not None else None
    )
    return ExperimentResult(
        config=config,
        times=times,
        stretch=stretch_series,
        link_stretch=link_stretch_series,
        lookup_latency=lookup_series,
        probes=probes,
        messages=messages,
        exchanges=exchanges,
        final_counters=final,
        net_stats=world.transport.stats if world.transport is not None else None,
        net_counters=(
            world.engine.net_counters
            if isinstance(world.engine, MessagePROPEngine) else None
        ),
        trace=(
            world.tracer.events
            if world.tracer is not None and not world.tracer.streaming
            else None
        ),
        profile=dict(profiler.timings) if profiler is not None else None,
        kernel_profile=(
            kprof.finish(sim_seconds=float(times[-1])).to_dict()
            if kprof is not None
            else None
        ),
        consumers=(
            list(world.tracer.consumers)
            if world.tracer is not None and world.tracer.consumers
            else None
        ),
    )
