"""Back-compat shim: the stage profiler moved to the profiling plane.

:class:`StageProfiler` and :func:`merge_profiles` now live in
:mod:`repro.obs.prof` alongside the kernel profiler (one sanctioned
wall-clock surface instead of two).  This module keeps the historical
import path working — harness callers and parallel workers import from
here unchanged.
"""

from __future__ import annotations

from repro.obs.prof import StageProfiler, merge_profiles

__all__ = ["StageProfiler", "merge_profiles"]
