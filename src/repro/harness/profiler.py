"""Opt-in wall-clock stage profiler (harness layer only).

The simulation core is wall-clock-free by design (reprolint D1): sim
time is the only time protocol code may observe.  Profiling where the
*real* seconds go — world building vs. event processing vs. metric
sampling — is a harness concern, so this module lives in ``harness/``
and is the only sanctioned wall-clock consumer besides
:mod:`repro.harness.parallel`.

:class:`StageProfiler` accumulates ``perf_counter`` seconds per named
stage; re-entering a stage adds to its total.  Profiles from parallel
workers are plain ``dict[str, float]`` and merge with
:func:`merge_profiles` (stage-wise sums — total CPU seconds spent in
each stage across the fleet, not wall time of the fleet).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterable, Iterator, Mapping

__all__ = ["StageProfiler", "merge_profiles"]


class StageProfiler:
    """Accumulates wall-clock seconds per named stage."""

    def __init__(self) -> None:
        self.timings: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time the enclosed block, accumulating into ``name``."""
        started = time.perf_counter()  # reprolint: disable=D1
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started  # reprolint: disable=D1
            self.timings[name] = self.timings.get(name, 0.0) + elapsed


def merge_profiles(profiles: Iterable[Mapping[str, float] | None]) -> dict[str, float]:
    """Stage-wise sum of several workers' profiles (``None`` entries skipped)."""
    merged: dict[str, float] = {}
    for profile in profiles:
        if not profile:
            continue
        for name, seconds in profile.items():
            merged[name] = merged.get(name, 0.0) + float(seconds)
    return dict(sorted(merged.items()))
