"""Saving and loading experiment results.

Long sweeps (the n = 5000 panels take ~30 s each) deserve to be run once
and analyzed many times.  ``save_result`` serializes an
:class:`~repro.harness.experiment.ExperimentResult` — series, counters,
and enough of the config to reproduce it — to a JSON file;
``load_result`` restores it as a :class:`StoredResult` exposing the same
series API (``times``, ``stretch``, ``improvement_ratio()``, …).

The protocol/overlay objects themselves are intentionally not pickled:
a stored result is a *measurement record*, reproducible from its
embedded config via :func:`~repro.harness.experiment.run_experiment`.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.harness.experiment import ExperimentResult

__all__ = ["save_result", "load_result", "StoredResult", "result_to_dict"]

_SERIES_FIELDS = ("times", "stretch", "link_stretch", "lookup_latency",
                  "probes", "messages", "exchanges")


def _config_to_jsonable(config: Any) -> Any:
    """Recursively convert nested (frozen) dataclass configs to dicts."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return {
            "__dataclass__": type(config).__name__,
            **{
                f.name: _config_to_jsonable(getattr(config, f.name))
                for f in dataclasses.fields(config)
            },
        }
    if isinstance(config, dict):
        return {k: _config_to_jsonable(v) for k, v in config.items()}
    if isinstance(config, (list, tuple)):
        return [_config_to_jsonable(v) for v in config]
    if isinstance(config, (np.integer,)):
        return int(config)
    if isinstance(config, (np.floating,)):
        return float(config)
    return config


def result_to_dict(result: ExperimentResult) -> dict:
    """JSON-ready dict of a result (series + counters + config echo)."""
    out: dict[str, Any] = {
        "schema": "repro.experiment-result/1",
        "config": _config_to_jsonable(result.config),
        "series": {
            name: np.asarray(getattr(result, name)).tolist()
            for name in _SERIES_FIELDS
        },
    }
    counters = result.final_counters
    if counters is not None:
        fields = {
            f.name: getattr(counters, f.name)
            for f in dataclasses.fields(counters)
            if isinstance(getattr(counters, f.name), (int, np.integer))
        }
        out["final_counters"] = {k: int(v) if isinstance(v, (int, np.integer)) else v
                                 for k, v in fields.items()}
    return out


def save_result(result: ExperimentResult, path: str | pathlib.Path) -> pathlib.Path:
    """Write the result to ``path`` as JSON.  Returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=1))
    return path


@dataclass
class StoredResult:
    """A deserialized measurement record with the series API."""

    config: dict
    times: np.ndarray
    stretch: np.ndarray
    link_stretch: np.ndarray
    lookup_latency: np.ndarray
    probes: np.ndarray
    messages: np.ndarray
    exchanges: np.ndarray
    final_counters: dict | None

    @property
    def initial_lookup_latency(self) -> float:
        return float(self.lookup_latency[0])

    @property
    def final_lookup_latency(self) -> float:
        return float(self.lookup_latency[-1])

    @property
    def initial_stretch(self) -> float:
        return float(self.stretch[0])

    @property
    def final_stretch(self) -> float:
        return float(self.stretch[-1])

    def improvement_ratio(self, metric: str = "lookup_latency") -> float:
        series = getattr(self, metric)
        return float(series[-1] / series[0])


def load_result(path: str | pathlib.Path) -> StoredResult:
    """Read a result previously written by :func:`save_result`."""
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("schema") != "repro.experiment-result/1":
        raise ValueError(f"{path} is not a stored experiment result")
    series = {name: np.asarray(vals) for name, vals in data["series"].items()}
    return StoredResult(
        config=data["config"],
        final_counters=data.get("final_counters"),
        **series,
    )
