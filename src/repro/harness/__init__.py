"""Experiment harness: configs, time-series runner, sweeps, reporting."""

from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentResult,
    World,
    build_world,
    run_experiment,
)
from repro.harness.parallel import Task, TaskError, TaskEvent, run_tasks
from repro.harness.persistence import StoredResult, load_result, save_result
from repro.harness.replicate import ReplicatedSeries, ReplicationSummary, replicate
from repro.harness.reporting import format_series, format_table
from repro.harness.sweep import run_sweep

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "ReplicatedSeries",
    "ReplicationSummary",
    "StoredResult",
    "Task",
    "TaskError",
    "TaskEvent",
    "World",
    "build_world",
    "format_series",
    "format_table",
    "load_result",
    "replicate",
    "run_experiment",
    "run_sweep",
    "run_tasks",
    "save_result",
]
