"""Parameter sweeps over experiment configs.

A sweep is an ordered mapping ``label -> config``; :func:`run_sweep`
executes each and returns ``label -> result``, preserving order so the
benchmark printers emit columns in the declared order.
"""

from __future__ import annotations

from typing import Callable

from repro.harness.experiment import ExperimentConfig, ExperimentResult, run_experiment

__all__ = ["run_sweep"]


def run_sweep(
    configs: dict[str, ExperimentConfig],
    *,
    measure_lookups: bool = True,
    progress: Callable[[str], None] | None = None,
) -> dict[str, ExperimentResult]:
    """Run every labelled config; returns results in the same order."""
    results: dict[str, ExperimentResult] = {}
    for label, cfg in configs.items():
        if progress is not None:
            progress(label)
        results[label] = run_experiment(cfg, measure_lookups=measure_lookups)
    return results
