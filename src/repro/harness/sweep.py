"""Parameter sweeps over experiment configs.

A sweep is an ordered mapping ``label -> config``; :func:`run_sweep`
executes each and returns ``label -> result``, preserving order so the
benchmark printers emit columns in the declared order.

Sweep entries are fully independent simulated worlds, so they route
through :func:`repro.harness.parallel.run_tasks`: ``workers=1`` keeps
the historical in-process behavior, ``workers=N`` fans the configs out
over N processes with identical results (every experiment is
deterministic in its config alone).
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.harness.parallel import ProgressCallback, Task, run_tasks

__all__ = ["run_sweep"]


def _sweep_task(
    config: ExperimentConfig, measure_lookups: bool, profile: bool = False
) -> ExperimentResult:
    """Module-level task body so worker processes can unpickle it."""
    profiler = None
    if profile:
        from repro.harness.profiler import StageProfiler

        profiler = StageProfiler()
    return run_experiment(config, measure_lookups=measure_lookups, profiler=profiler)


def run_sweep(
    configs: dict[str, ExperimentConfig],
    *,
    measure_lookups: bool = True,
    workers: int = 1,
    progress: ProgressCallback | None = None,
    task_timeout: float | None = None,
    max_retries: int = 1,
    profile: bool = False,
) -> dict[str, ExperimentResult]:
    """Run every labelled config; returns results in the same order.

    ``progress`` receives structured
    :class:`~repro.harness.parallel.TaskEvent` notifications (label,
    status, elapsed) as each config starts, finishes, or is retried;
    wrap a :class:`~repro.harness.parallel.ProgressRollup` around it for
    the fleet-level done/total + ETA line behind the CLI's ``--monitor``.
    With ``profile=True`` each result carries its worker's wall-clock
    stage timings (merge across results with
    :func:`repro.harness.profiler.merge_profiles`).

    Configs with ``trace_streaming=True`` run their streaming consumers
    *inside* the worker (reconstructed deterministically from the config
    by :func:`~repro.harness.experiment.monitor_consumers`) and ship the
    finished consumers back on ``result.consumers`` — aggregates are
    identical to a serial run of the same config.
    """
    tasks = [
        Task(label, _sweep_task, (cfg, measure_lookups, profile))
        for label, cfg in configs.items()
    ]
    return run_tasks(
        tasks,
        workers=workers,
        progress=progress,
        task_timeout=task_timeout,
        max_retries=max_retries,
    )
