"""Multi-seed replication.

A single simulated world is one draw from the topology/overlay/workload
distribution; the paper reports single curves, but a credible
reproduction should know the spread.  ``replicate`` runs the same
experiment under several master seeds and aggregates each series into
mean / standard deviation / min / max envelopes, plus scalar summaries
(improvement ratios) with their spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.harness.experiment import ExperimentConfig, ExperimentResult, run_experiment

__all__ = ["ReplicatedSeries", "ReplicationSummary", "replicate"]


@dataclass
class ReplicatedSeries:
    """Per-sample aggregate of one metric across replicas."""

    mean: np.ndarray
    std: np.ndarray
    low: np.ndarray
    high: np.ndarray

    @classmethod
    def from_stack(cls, stack: np.ndarray) -> "ReplicatedSeries":
        return cls(
            mean=stack.mean(axis=0),
            std=stack.std(axis=0, ddof=1) if stack.shape[0] > 1 else np.zeros(stack.shape[1]),
            low=stack.min(axis=0),
            high=stack.max(axis=0),
        )


@dataclass
class ReplicationSummary:
    """Aggregated outcome of ``len(seeds)`` replicas of one config."""

    config: ExperimentConfig
    seeds: tuple[int, ...]
    times: np.ndarray
    stretch: ReplicatedSeries
    link_stretch: ReplicatedSeries
    lookup_latency: ReplicatedSeries
    improvement_ratios: np.ndarray  # final/initial lookup latency per replica
    results: tuple[ExperimentResult, ...]

    @property
    def n_replicas(self) -> int:
        return len(self.seeds)

    def mean_improvement(self) -> float:
        return float(self.improvement_ratios.mean())

    def std_improvement(self) -> float:
        if self.n_replicas < 2:
            return 0.0
        return float(self.improvement_ratios.std(ddof=1))

    def all_replicas_improve(self, metric: str = "lookup_latency") -> bool:
        """True iff the final value beats the initial one in *every* world."""
        return all(
            float(getattr(r, metric)[-1]) < float(getattr(r, metric)[0])
            for r in self.results
        )


def replicate(
    config: ExperimentConfig,
    seeds: Sequence[int],
    *,
    measure_lookups: bool = True,
) -> ReplicationSummary:
    """Run ``config`` once per seed and aggregate the series.

    Every replica gets an entirely fresh world (topology, overlay,
    heterogeneity, workload) derived from its seed; all other config
    fields are shared.
    """
    if len(seeds) == 0:
        raise ValueError("need at least one seed")
    if len(set(seeds)) != len(seeds):
        raise ValueError("seeds must be distinct")
    results = tuple(
        run_experiment(config.but(seed=int(s)), measure_lookups=measure_lookups)
        for s in seeds
    )
    times = results[0].times

    def stack(name: str) -> np.ndarray:
        return np.stack([np.asarray(getattr(r, name), dtype=np.float64) for r in results])

    lookup_stack = stack("lookup_latency")
    with np.errstate(invalid="ignore"):
        ratios = lookup_stack[:, -1] / lookup_stack[:, 0]
    return ReplicationSummary(
        config=config,
        seeds=tuple(int(s) for s in seeds),
        times=times,
        stretch=ReplicatedSeries.from_stack(stack("stretch")),
        link_stretch=ReplicatedSeries.from_stack(stack("link_stretch")),
        lookup_latency=ReplicatedSeries.from_stack(lookup_stack),
        improvement_ratios=ratios,
        results=results,
    )
