"""Multi-seed replication.

A single simulated world is one draw from the topology/overlay/workload
distribution; the paper reports single curves, but a credible
reproduction should know the spread.  ``replicate`` runs the same
experiment under several master seeds and aggregates each series into
mean / standard deviation / min / max envelopes, plus scalar summaries
(improvement ratios) with their spread.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.harness.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.harness.parallel import ProgressCallback, Task, run_tasks

__all__ = ["ReplicatedSeries", "ReplicationSummary", "replicate"]


@dataclass
class ReplicatedSeries:
    """Per-sample aggregate of one metric across replicas."""

    mean: np.ndarray
    std: np.ndarray
    low: np.ndarray
    high: np.ndarray

    @classmethod
    def from_stack(cls, stack: np.ndarray) -> "ReplicatedSeries":
        return cls(
            mean=stack.mean(axis=0),
            std=stack.std(axis=0, ddof=1) if stack.shape[0] > 1 else np.zeros(stack.shape[1]),
            low=stack.min(axis=0),
            high=stack.max(axis=0),
        )


@dataclass
class ReplicationSummary:
    """Aggregated outcome of ``len(seeds)`` replicas of one config."""

    config: ExperimentConfig
    seeds: tuple[int, ...]
    times: np.ndarray
    stretch: ReplicatedSeries
    link_stretch: ReplicatedSeries
    lookup_latency: ReplicatedSeries
    improvement_ratios: np.ndarray  # final/initial lookup latency per replica
    results: tuple[ExperimentResult, ...]

    @property
    def n_replicas(self) -> int:
        return len(self.seeds)

    def mean_improvement(self) -> float:
        """Mean final/initial lookup ratio over replicas with a valid ratio.

        Replicas whose initial sample was zero or NaN carry a NaN ratio
        (flagged with a warning at :func:`replicate` time) and are
        excluded rather than silently poisoning the mean.
        """
        valid = self.improvement_ratios[np.isfinite(self.improvement_ratios)]
        return float(valid.mean()) if valid.size else float("nan")

    def std_improvement(self) -> float:
        valid = self.improvement_ratios[np.isfinite(self.improvement_ratios)]
        if valid.size < 2:
            return 0.0
        return float(valid.std(ddof=1))

    def all_replicas_improve(self, metric: str = "lookup_latency") -> bool:
        """True iff the final value beats the initial one in *every* world."""
        return all(
            float(getattr(r, metric)[-1]) < float(getattr(r, metric)[0])
            for r in self.results
        )


def _replicate_task(
    config: ExperimentConfig, seed: int, measure_lookups: bool
) -> ExperimentResult:
    """Module-level task body so worker processes can unpickle it."""
    return run_experiment(config.but(seed=seed), measure_lookups=measure_lookups)


def replicate(
    config: ExperimentConfig,
    seeds: Sequence[int],
    *,
    measure_lookups: bool = True,
    workers: int = 1,
    progress: ProgressCallback | None = None,
) -> ReplicationSummary:
    """Run ``config`` once per seed and aggregate the series.

    Every replica gets an entirely fresh world (topology, overlay,
    heterogeneity, workload) derived from its seed; all other config
    fields are shared.  Replicas are independent, so ``workers=N`` runs
    them across N processes with per-seed series identical to the
    serial path.
    """
    if len(seeds) == 0:
        raise ValueError("need at least one seed")
    if len(set(seeds)) != len(seeds):
        raise ValueError("seeds must be distinct")
    by_label = run_tasks(
        [
            Task(f"seed={int(s)}", _replicate_task, (config, int(s), measure_lookups))
            for s in seeds
        ],
        workers=workers,
        progress=progress,
    )
    results = tuple(by_label.values())
    times = results[0].times

    def stack(name: str) -> np.ndarray:
        return np.stack([np.asarray(getattr(r, name), dtype=np.float64) for r in results])

    lookup_stack = stack("lookup_latency")
    initial = lookup_stack[:, 0]
    final = lookup_stack[:, -1]
    valid = np.isfinite(initial) & np.isfinite(final) & (initial > 0)
    ratios = np.full(len(results), np.nan)
    np.divide(final, initial, out=ratios, where=valid)
    if not np.all(valid):
        bad = [int(s) for s, ok in zip(seeds, valid) if not ok]
        warnings.warn(
            f"replicate: seeds {bad} produced a zero or non-finite initial "
            "lookup sample; their improvement ratios are NaN and excluded "
            "from mean_improvement()/std_improvement()",
            RuntimeWarning,
            stacklevel=2,
        )
    return ReplicationSummary(
        config=config,
        seeds=tuple(int(s) for s in seeds),
        times=times,
        stretch=ReplicatedSeries.from_stack(stack("stretch")),
        link_stretch=ReplicatedSeries.from_stack(stack("link_stretch")),
        lookup_latency=ReplicatedSeries.from_stack(lookup_stack),
        improvement_ratios=ratios,
        results=results,
    )
