"""Paper-style plain-text tables and series.

The benchmarks print the same rows/series the paper's figures plot;
these helpers keep that output consistent and regression-diffable.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["format_table", "format_series"]


def _fmt_cell(x: object, width: int) -> str:
    if isinstance(x, float) or isinstance(x, np.floating):
        s = f"{float(x):.3f}"
    else:
        s = str(x)
    return s.rjust(width)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 *, min_width: int = 10) -> str:
    """Fixed-width table with a header rule."""
    rows = [list(r) for r in rows]
    widths = []
    for c, h in enumerate(headers):
        w = max(len(str(h)), min_width)
        for r in rows:
            cell = r[c]
            s = f"{float(cell):.3f}" if isinstance(cell, (float, np.floating)) else str(cell)
            w = max(w, len(s))
        widths.append(w)
    out = ["  ".join(str(h).rjust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    for r in rows:
        out.append("  ".join(_fmt_cell(x, w) for x, w in zip(r, widths)))
    return "\n".join(out)


def format_series(
    name: str,
    times: np.ndarray,
    series_by_label: dict[str, np.ndarray],
    *,
    time_label: str = "t(s)",
) -> str:
    """One column of timestamps plus one column per labelled series."""
    headers = [time_label] + list(series_by_label)
    rows = []
    for i, t in enumerate(np.asarray(times)):
        rows.append([f"{float(t):.0f}"] + [float(series_by_label[k][i]) for k in series_by_label])
    return f"== {name} ==\n" + format_table(headers, rows)
