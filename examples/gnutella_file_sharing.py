#!/usr/bin/env python3
"""Scenario: a Gnutella-like file-sharing network with heterogeneous peers.

The workload the paper's introduction motivates: first-generation
file-sharing overlays whose random neighbor choice ignores the physical
network.  This example builds a 500-peer unstructured overlay where
powerful ("fast") peers naturally hold more connections, then compares
three repair mechanisms side by side on the *same* world:

* PROP-G — position exchange (degree travels with the position),
* PROP-O — degree-preserving neighbor exchange (the paper's pick for
  heterogeneous populations),
* LTM    — the free-rewiring baseline.

It reports lookup latency for slow-targeted and fast-targeted queries
separately, exposing the capacity-degree effect behind Figure 7.

Run:  python examples/gnutella_file_sharing.py
"""

from repro import ExperimentConfig, LTMConfig, PROPConfig, format_table, run_experiment


def build_config(**optimizer) -> ExperimentConfig:
    return ExperimentConfig(
        seed=11,
        preset="ts-large",
        overlay_kind="gnutella",
        n_overlay=500,
        heterogeneous=True,       # bimodal: 1 ms vs 100 ms processing
        fast_fraction=0.5,
        fast_degree_weight=8.0,   # fast peers become hubs
        flood_ttl=7,              # Gnutella's classic query TTL
        overlay_options={"min_degree": 3, "mean_extra_degree": 3.0},
        duration=1800.0,
        sample_interval=900.0,
        lookups_per_sample=500,
        **optimizer,
    )


def main() -> None:
    protocols = {
        "none": {},
        "PROP-G": dict(prop=PROPConfig(policy="G")),
        "PROP-O (m=3)": dict(prop=PROPConfig(policy="O", m=3)),
        "LTM": dict(ltm=LTMConfig(max_cuts_per_round=4)),
    }

    rows = []
    for name, kw in protocols.items():
        slow = run_experiment(build_config(fast_lookup_fraction=0.0, **kw))
        fast = run_experiment(build_config(fast_lookup_fraction=1.0, **kw))
        rows.append(
            [
                name,
                slow.final_lookup_latency,
                fast.final_lookup_latency,
                fast.final_lookup_latency - slow.final_lookup_latency,
            ]
        )

    print("Lookup latency (ms) after 30 min of optimization, by query target class\n")
    print(
        format_table(
            ["protocol", "slow-targeted", "fast-targeted", "fast minus slow"],
            rows,
        )
    )
    print(
        "\nReading the last column: under PROP-O fast-targeted lookups enjoy the\n"
        "largest advantage because fast hubs keep their degree; PROP-G erases\n"
        "that edge by moving connections away from fast hosts."
    )


if __name__ == "__main__":
    main()
