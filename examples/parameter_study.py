#!/usr/bin/env python3
"""Scenario: a reproducible parameter study with saved results.

How a downstream user would actually run a study with this library:
sweep PROP-O's trade size ``m`` across several seeds, persist every raw
result to JSON (rerunnable, diffable), and print an aggregate table with
spread — all through the public API.

Run:  python examples/parameter_study.py [output_dir]
"""

import pathlib
import sys

from repro import ExperimentConfig, PROPConfig, format_table
from repro.harness.persistence import load_result, save_result
from repro.harness.replicate import replicate

SEEDS = [0, 1, 2]
M_VALUES = [1, 2, 4]


def main(out_dir: str = "parameter_study_results") -> None:
    out = pathlib.Path(out_dir)
    out.mkdir(exist_ok=True)

    base = ExperimentConfig(
        preset="ts-large",
        overlay_kind="gnutella",
        n_overlay=400,
        duration=1800.0,
        sample_interval=600.0,
        lookups_per_sample=300,
    )

    rows = []
    for m in M_VALUES:
        summary = replicate(base.but(prop=PROPConfig(policy="O", m=m)), SEEDS)
        for result in summary.results:
            path = save_result(result, out / f"prop_o_m{m}_seed{result.config.seed}.json")
        rows.append(
            [
                f"PROP-O m={m}",
                summary.mean_improvement(),
                summary.std_improvement(),
                float(summary.lookup_latency.mean[-1]),
            ]
        )

    print(f"raw results saved under {out}/ (JSON, reload with load_result)\n")
    print(
        format_table(
            ["config", "final/initial mean", "std", "final latency mean (ms)"],
            rows,
        )
    )

    # demonstrate reloading a stored record
    stored = load_result(out / f"prop_o_m{M_VALUES[0]}_seed{SEEDS[0]}.json")
    print(
        f"\nreloaded {stored.config['prop']['policy']!r} m={stored.config['prop']['m']} "
        f"seed={stored.config['seed']}: "
        f"improvement {stored.improvement_ratio():.3f}"
    )


if __name__ == "__main__":
    main(*sys.argv[1:2])
