#!/usr/bin/env python3
"""Scenario: one protocol, four DHT geometries.

The paper's core selling point for PROP-G is protocol independence: a
ring (Chord), a torus (CAN), a prefix tree (Pastry) and an XOR space
(Kademlia) can all deploy the *identical* engine because peer-exchange
only touches who-sits-where.  This example runs the same PROP-G
configuration on all four families over the same physical Internet and
prints a side-by-side table — plus the structural proof that no overlay
lost a single routing edge.

Run:  python examples/dht_family_comparison.py
"""

from repro import ExperimentConfig, PROPConfig, format_table, run_experiment
from repro.harness.experiment import build_world

FAMILIES = ["chord", "pastry", "kademlia", "can"]


def main() -> None:
    rows = []
    for kind in FAMILIES:
        base = ExperimentConfig(
            seed=17,
            preset="ts-large",
            overlay_kind=kind,
            n_overlay=256,
            duration=2400.0,
            sample_interval=1200.0,
            lookups_per_sample=300,
        )
        # structural invariance check on a separate world
        w = build_world(base.but(prop=PROPConfig(policy="G")))
        edges_before = set(w.overlay.iter_edges())
        w.sim.run_until(base.duration)
        structure_intact = set(w.overlay.iter_edges()) == edges_before

        plain = run_experiment(base)
        optimized = run_experiment(base.but(prop=PROPConfig(policy="G")))
        rows.append(
            [
                kind,
                plain.final_stretch,
                optimized.final_stretch,
                optimized.final_lookup_latency / plain.final_lookup_latency,
                "yes" if structure_intact else "NO",
            ]
        )

    print("PROP-G across DHT geometries (n=256, ts-large, 40 min)\n")
    print(
        format_table(
            ["overlay", "stretch (plain)", "stretch (+PROP-G)",
             "latency ratio vs plain", "structure intact"],
            rows,
        )
    )
    print(
        "\nEvery family improves under the unmodified engine, and every"
        "\nlogical edge set is bit-for-bit what it was before — Theorem 2 at work."
    )


if __name__ == "__main__":
    main()
