#!/usr/bin/env python3
"""Quickstart: deploy PROP-G on a Chord ring and watch stretch fall.

This is the smallest end-to-end use of the library:

1. build the paper's ``ts-large`` physical Internet model,
2. place a 300-node Chord DHT on random edge hosts,
3. run the PROP-G peer-exchange protocol for one simulated hour,
4. report routing stretch and lookup latency before vs after.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, PROPConfig, format_series, run_experiment


def main() -> None:
    config = ExperimentConfig(
        seed=7,
        preset="ts-large",          # GT-ITM transit-stub, ~6100 hosts
        overlay_kind="chord",
        n_overlay=300,
        prop=PROPConfig(            # the paper's defaults:
            policy="G",             #   PROP-G: exchange all neighbors
            nhops=2,                #   2-hop random-walk probing
            init_timer=60.0,        #   probe every minute during warm-up
        ),
        duration=3600.0,
        sample_interval=360.0,
        lookups_per_sample=400,
    )

    result = run_experiment(config)

    print(
        format_series(
            "PROP-G on Chord (n=300, ts-large)",
            result.times,
            {
                "stretch": result.stretch,
                "lookup latency (ms)": result.lookup_latency,
            },
        )
    )
    print()
    print(f"initial stretch : {result.initial_stretch:.2f}")
    print(f"final stretch   : {result.final_stretch:.2f}")
    print(f"lookup latency  : {result.initial_lookup_latency:.0f} ms "
          f"-> {result.final_lookup_latency:.0f} ms "
          f"({100 * (1 - result.improvement_ratio()):.0f}% faster)")
    print(f"peer exchanges  : {result.final_counters.exchanges} "
          f"(from {result.final_counters.probes} probes)")


if __name__ == "__main__":
    main()
