#!/usr/bin/env python3
"""Scenario: keeping a DHT location-aware under membership churn.

P2P populations turn over constantly.  This example converges a Chord
ring with PROP-G, injects a 10-minute churn burst that replaces peers at
random positions with fresh hosts from elsewhere in the Internet, and
shows the protocol's churn handling (Section 3.2: timers reset, new
neighbors probed first) pulling the stretch back down — while the
Markov-chain timers keep steady-state probing cheap.

Run:  python examples/churn_resilience.py
"""

import numpy as np

from repro import ChurnConfig, ExperimentConfig, PROPConfig, format_series, run_experiment

BURST_START, BURST_STOP = 3600.0, 4200.0


def main() -> None:
    config = ExperimentConfig(
        seed=23,
        preset="ts-large",
        overlay_kind="chord",
        n_overlay=400,
        n_spare=100,  # replacement hosts for churn
        prop=PROPConfig(policy="G"),
        churn=ChurnConfig(rate_per_node=0.002, start=BURST_START, stop=BURST_STOP),
        duration=7200.0,
        sample_interval=360.0,
        lookups_per_sample=300,
    )

    result = run_experiment(config)

    probe_rate = np.concatenate([[np.nan], result.probe_rate()])
    print(
        format_series(
            "Chord + PROP-G through a churn burst "
            f"({BURST_START:.0f}-{BURST_STOP:.0f} s, "
            f"~{config.churn.rate_per_node * 400 * 600:.0f} replacements)",
            result.times,
            {
                "stretch": result.stretch,
                "probes/s": probe_rate,
            },
        )
    )

    t = result.times
    pre = result.stretch[np.searchsorted(t, BURST_START)]
    during = result.stretch[np.searchsorted(t, BURST_STOP)]
    print(f"\nstretch before burst : {pre:.2f}")
    print(f"stretch after burst  : {during:.2f}  (churn damage)")
    print(f"stretch at end       : {result.stretch[-1]:.2f}  (recovered)")
    churned = int(config.churn.rate_per_node * 400 * (BURST_STOP - BURST_START))
    print(f"total churn events   : ~{churned}")


if __name__ == "__main__":
    main()
