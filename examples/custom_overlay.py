#!/usr/bin/env python3
"""Scenario: running PROP on your own overlay structure.

The engine only needs the logical-graph-plus-embedding abstraction, so
any topology works — the paper: "it is suitable for different
topologies: ring, hypercube, tree, and so on".  This example builds a
**hypercube** overlay by hand (a structure the library does not ship),
deploys the unmodified PROP-G engine on it, and verifies that the
hypercube wiring survives while latency falls.

Run:  python examples/custom_overlay.py
"""

import numpy as np

from repro import Overlay, PROPConfig, PROPEngine, RngRegistry, Simulator, stretch, ts_large
from repro.topology.latency import LatencyOracle

DIMENSIONS = 8  # 2^8 = 256 nodes


def build_hypercube(oracle: LatencyOracle, rng: np.random.Generator) -> Overlay:
    """A 256-node binary hypercube: i ~ j iff they differ in one bit."""
    n = 1 << DIMENSIONS
    overlay = Overlay(oracle, rng.permutation(n))
    for i in range(n):
        for bit in range(DIMENSIONS):
            j = i ^ (1 << bit)
            if i < j:
                overlay.add_edge(i, j)
    return overlay


def is_hypercube(overlay: Overlay) -> bool:
    return all(
        sorted(overlay.neighbor_list(i)) == sorted(i ^ (1 << b) for b in range(DIMENSIONS))
        for i in range(overlay.n_slots)
    )


def main() -> None:
    rngs = RngRegistry(31)
    net = ts_large(seed=31)
    hosts = rngs.stream("members").choice(net.stub_hosts, size=1 << DIMENSIONS, replace=False)
    oracle = LatencyOracle(net, hosts)

    overlay = build_hypercube(oracle, rngs.stream("overlay"))
    print(f"hypercube: {overlay.n_slots} nodes, {overlay.n_edges} edges "
          f"(degree {DIMENSIONS} everywhere)")
    print(f"initial link stretch: {stretch(overlay):.1f}")

    sim = Simulator()
    engine = PROPEngine(overlay, PROPConfig(policy="G"), sim, rngs)
    engine.start()
    sim.run_until(3600.0)

    print(f"final link stretch  : {stretch(overlay):.1f}")
    print(f"exchanges           : {engine.counters.exchanges}")
    print(f"still a hypercube?  : {is_hypercube(overlay)}  (Theorem 2 in action)")
    assert is_hypercube(overlay)


if __name__ == "__main__":
    main()
