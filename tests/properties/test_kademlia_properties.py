"""Kademlia structural properties over random networks (hypothesis).

The interesting risk in our Kademlia is bucket truncation: each bucket
keeps only the ``k`` XOR-closest members of its prefix class, so greedy
routing must still always find a strictly closer contact.  The suites
fuzz sizes, bucket widths and id draws to pin that down.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.rng import RngRegistry
from repro.overlay.kademlia import KademliaOverlay
from tests.properties.util import FakeOracle


def _kad(seed: int, n: int, k: int) -> KademliaOverlay:
    rng = np.random.default_rng(seed)
    oracle = FakeOracle(n, rng)
    return KademliaOverlay.build(oracle, RngRegistry(seed).stream("kad"), k=k)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(4, 48), k=st.integers(1, 8))
def test_routing_reaches_owner(seed, n, k):
    kad = _kad(seed, n, k)
    rng = np.random.default_rng(seed ^ 7)
    for _ in range(15):
        src = int(rng.integers(0, n))
        key = int(rng.integers(0, kad.space))
        assert kad.route(src, key)[-1] == kad.owner_of_key(key)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(4, 48), k=st.integers(1, 8))
def test_connected(seed, n, k):
    kad = _kad(seed, n, k)
    assert kad.is_connected()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(4, 32))
def test_owner_is_global_xor_minimum(seed, n):
    kad = _kad(seed, n, 4)
    rng = np.random.default_rng(seed ^ 9)
    for _ in range(20):
        key = int(rng.integers(0, kad.space))
        owner = kad.owner_of_key(key)
        d_owner = int(kad.ids[owner]) ^ key
        assert all(
            d_owner <= (int(kad.ids[v]) ^ key) for v in range(n)
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(4, 24), swaps=st.integers(1, 20))
def test_prop_g_swaps_never_break_routing(seed, n, swaps):
    kad = _kad(seed, n, 4)
    rng = np.random.default_rng(seed ^ 11)
    for _ in range(swaps):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            kad.swap_embedding(int(u), int(v))
    for _ in range(10):
        src = int(rng.integers(0, n))
        key = int(rng.integers(0, kad.space))
        assert kad.route(src, key)[-1] == kad.owner_of_key(key)
