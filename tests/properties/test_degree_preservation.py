"""PROP-O degree preservation, property-tested.

"The primary reason that we exchange equal number of connections instead
of an arbitrary number is to ensure the degree of each node remains the
same after the exchange, so that the topology can maintain its essential
features" — i.e. the Power-law-like character of unstructured systems
survives.  The suite fuzzes exchange sequences and checks the per-slot
degree vector bit-for-bit, plus the simple-graph invariants PROP-O must
never violate (no self loops, no duplicate edges).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exchange import execute_prop_o
from tests.properties.util import random_connected_overlay, random_prop_o_step


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), steps=st.integers(1, 30))
def test_per_slot_degrees_invariant(seed, steps):
    ov = random_connected_overlay(seed)
    deg0 = ov.degree_sequence().copy()
    rng = np.random.default_rng(seed ^ 0xAA55)
    for _ in range(steps):
        step = random_prop_o_step(ov, rng)
        if step is None:
            continue
        u, v, give_u, give_v, _, _ = step
        execute_prop_o(ov, u, v, give_u, give_v)
        assert np.array_equal(ov.degree_sequence(), deg0)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), steps=st.integers(1, 30))
def test_simple_graph_invariants(seed, steps):
    ov = random_connected_overlay(seed)
    n_edges0 = ov.n_edges
    rng = np.random.default_rng(seed ^ 0x55AA)
    for _ in range(steps):
        step = random_prop_o_step(ov, rng)
        if step is None:
            continue
        u, v, give_u, give_v, _, _ = step
        execute_prop_o(ov, u, v, give_u, give_v)
    assert ov.n_edges == n_edges0
    # adjacency symmetric, no self loops, matches edge count
    seen = set()
    for a in range(ov.n_slots):
        for b in ov.neighbor_list(a):
            assert a != b
            assert ov.has_edge(b, a)
            seen.add((min(a, b), max(a, b)))
    assert len(seen) == n_edges0


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_walk_path_nodes_never_traded(seed):
    """The Theorem 1 precondition: exchanged neighbors avoid the path."""
    ov = random_connected_overlay(seed)
    rng = np.random.default_rng(seed ^ 0x99)
    step = random_prop_o_step(ov, rng)
    if step is None:
        return
    u, v, give_u, give_v, _, path = step
    assert not (set(give_u) & set(path))
    assert not (set(give_v) & set(path))


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_embedding_never_touched_by_prop_o(seed):
    ov = random_connected_overlay(seed)
    emb0 = ov.embedding.copy()
    rng = np.random.default_rng(seed ^ 0x42)
    for _ in range(10):
        step = random_prop_o_step(ov, rng)
        if step is None:
            continue
        u, v, give_u, give_v, _, _ = step
        execute_prop_o(ov, u, v, give_u, give_v)
    assert np.array_equal(ov.embedding, emb0)
