"""Exchange safety under arbitrary message faults.

The two-phase exchange commit claims the overlay can never be observed
half-exchanged, whatever the loss/delay/partition pattern.  These
properties drive PROP-G through thousands of delivered messages at 30 %
loss with jitter, reordering, and a transient partition, and assert the
Theorem 1/2 invariants via a transport tap **after every single
delivered message**:

* the logical edge set never changes (PROP-G swaps positions only);
* the embedding stays a permutation of the original hosts — no host
  duplicated or lost mid-swap;
* on Chord, every ring successor link ``(i, i+1 mod n)`` stays present.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PROPConfig
from repro.net.engine import MessagePROPEngine
from repro.net.faults import FaultyTransport
from repro.net.transport import SimTransport
from repro.netsim.engine import Simulator
from repro.netsim.rng import RngRegistry
from repro.overlay.chord import ChordOverlay
from tests.properties.util import FakeOracle, random_connected_overlay

TARGET_DELIVERIES = 1000
MAX_SIM_TIME = 14400.0


def _edge_set(overlay):
    return frozenset(
        (min(u, w), max(u, w))
        for u in range(overlay.n_slots)
        for w in overlay.neighbor_list(u)
    )


def _drive_with_invariant_tap(overlay, seed, extra_invariant=None):
    """Run PROP-G over a heavily faulted transport, checking after every
    delivery; returns (engine, deliveries)."""
    edges0 = _edge_set(overlay)
    hosts0 = sorted(overlay.embedding.tolist())
    sim = Simulator()
    rngs = RngRegistry(seed)
    delivered = [0]

    def tap(msg):
        delivered[0] += 1
        assert _edge_set(overlay) == edges0, "logical graph mutated"
        assert sorted(overlay.embedding.tolist()) == hosts0, (
            "embedding is no longer a permutation: half-applied swap"
        )
        if extra_invariant is not None:
            extra_invariant(overlay)

    base = SimTransport(sim, overlay, tap=tap)
    faulty = FaultyTransport(
        base, rngs.stream("net:faults"),
        loss=0.3, jitter_ms=20.0, reorder_prob=0.2, reorder_ms=100.0,
    )
    half = overlay.n_slots // 2
    faulty.partition("a:b", frozenset(range(half)),
                     frozenset(range(half, overlay.n_slots)))
    sim.schedule(300.0, faulty.heal, "a:b")

    engine = MessagePROPEngine(
        overlay, PROPConfig(policy="G"), sim, rngs, faulty
    )
    engine.start()
    t = 0.0
    while delivered[0] < TARGET_DELIVERIES and t < MAX_SIM_TIME:
        t += 600.0
        sim.run_until(t)
    return engine, delivered[0]


@settings(max_examples=3, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_faulted_prop_g_preserves_isomorphism_on_random_overlay(seed):
    overlay = random_connected_overlay(seed, n_min=16, n_max=32)
    engine, delivered = _drive_with_invariant_tap(overlay, seed)
    assert delivered >= TARGET_DELIVERIES
    # no orphaned participant lock: every remaining one can still self-heal
    assert all(p.timeout.pending for p in engine._prepared.values())


@settings(max_examples=3, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_faulted_prop_g_preserves_chord_ring(seed):
    rng = np.random.default_rng(seed)
    oracle = FakeOracle(24, rng)
    overlay = ChordOverlay.build(oracle, rng)
    n = overlay.n_slots

    def ring_intact(ov):
        for i in range(n):
            assert ov.has_edge(i, (i + 1) % n), "ring successorship broken"

    engine, delivered = _drive_with_invariant_tap(
        overlay, seed, extra_invariant=ring_intact
    )
    assert delivered >= TARGET_DELIVERIES
    assert all(p.timeout.pending for p in engine._prepared.values())
    # the structural invariant also held at rest, not only mid-flight
    ring_intact(overlay)
