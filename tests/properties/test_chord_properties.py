"""Chord structural properties over random rings (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.rng import RngRegistry
from repro.overlay.chord import ChordOverlay
from tests.properties.util import FakeOracle


def _ring(seed: int, n: int) -> ChordOverlay:
    rng = np.random.default_rng(seed)
    oracle = FakeOracle(n, rng)
    return ChordOverlay.build(oracle, RngRegistry(seed).stream("chord"), bits=16)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(4, 48))
def test_lookup_always_reaches_owner(seed, n):
    ring = _ring(seed, n)
    rng = np.random.default_rng(seed ^ 1)
    for _ in range(20):
        src = int(rng.integers(0, n))
        key = int(rng.integers(0, ring.space))
        assert ring.route(src, key)[-1] == ring.owner_of_key(key)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(4, 48))
def test_owners_partition_the_key_space(seed, n):
    """Every key has exactly one owner and ownership is the successor rule."""
    ring = _ring(seed, n)
    rng = np.random.default_rng(seed ^ 2)
    for _ in range(30):
        key = int(rng.integers(0, ring.space))
        owner = ring.owner_of_key(key)
        oid = int(ring.ids[owner])
        pred = int(ring.ids[(owner - 1) % n])
        # key lies in (pred, owner] on the ring
        assert (oid - key) % ring.space <= (oid - pred - 1) % ring.space


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(8, 48))
def test_hop_count_bounded_by_bits(seed, n):
    ring = _ring(seed, n)
    rng = np.random.default_rng(seed ^ 3)
    for _ in range(10):
        src = int(rng.integers(0, n))
        key = int(rng.integers(0, ring.space))
        assert len(ring.route(src, key)) - 1 <= ring.bits


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(4, 32))
def test_ring_connected_and_symmetric(seed, n):
    ring = _ring(seed, n)
    assert ring.is_connected()
    for a in range(n):
        for b in ring.neighbor_list(a):
            assert ring.has_edge(b, a)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(4, 24), swaps=st.integers(1, 20))
def test_routing_correct_after_arbitrary_prop_g_swaps(seed, n, swaps):
    """PROP-G on Chord = identifier swaps; lookups must stay correct."""
    ring = _ring(seed, n)
    rng = np.random.default_rng(seed ^ 4)
    for _ in range(swaps):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            ring.swap_embedding(int(u), int(v))
    for _ in range(10):
        src = int(rng.integers(0, n))
        key = int(rng.integers(0, ring.space))
        assert ring.route(src, key)[-1] == ring.owner_of_key(key)
