"""Section 4.2 accounting identities, property-tested.

The analysis shows ``Var > 0  =>  L_t0 > L_t1``: an accepted exchange
strictly reduces the accumulated latency.  In our model the accumulated
latency is ``total_neighbor_latency`` (every logical edge counted from
both endpoints), and an exchange between u and v changes exactly the
terms the Var equation covers — so the drop equals **2 · Var** for both
policies.  The suite fuzzes exchanges and checks the identity to float
precision, plus the derived monotone-descent property of full protocol
runs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exchange import execute_prop_g, execute_prop_o
from repro.core.varcalc import evaluate_prop_g
from tests.properties.util import random_connected_overlay, random_prop_o_step


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_prop_g_drop_equals_twice_var(seed):
    ov = random_connected_overlay(seed)
    rng = np.random.default_rng(seed ^ 0x1111)
    u, v = rng.integers(0, ov.n_slots, size=2)
    if u == v:
        return
    var = evaluate_prop_g(ov, int(u), int(v))
    before = ov.total_neighbor_latency()
    execute_prop_g(ov, int(u), int(v))
    after = ov.total_neighbor_latency()
    assert before - after == pytest.approx(2.0 * var, rel=1e-9, abs=1e-6)


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_prop_o_drop_equals_twice_var(seed):
    ov = random_connected_overlay(seed)
    rng = np.random.default_rng(seed ^ 0x2222)
    step = random_prop_o_step(ov, rng)
    if step is None:
        return
    u, v, give_u, give_v, var, _ = step
    before = ov.total_neighbor_latency()
    execute_prop_o(ov, u, v, give_u, give_v)
    after = ov.total_neighbor_latency()
    assert before - after == pytest.approx(2.0 * var, rel=1e-9, abs=1e-6)
    assert var > 0.0  # selection only returns beneficial trades


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), steps=st.integers(1, 20))
def test_accepted_sequences_descend_monotonically(seed, steps):
    """Accepting only Var > 0 exchanges yields a monotone objective."""
    ov = random_connected_overlay(seed)
    rng = np.random.default_rng(seed ^ 0x3333)
    total = ov.total_neighbor_latency()
    for _ in range(steps):
        u, v = rng.integers(0, ov.n_slots, size=2)
        if u == v:
            continue
        var = evaluate_prop_g(ov, int(u), int(v))
        if var > 0:
            execute_prop_g(ov, int(u), int(v))
            new_total = ov.total_neighbor_latency()
            # strictly decreasing up to float representation: a Var of
            # ~1e-14 can vanish in the rounding of a ~1e2 total
            assert new_total <= total + 1e-9
            if var > 1e-6:
                assert new_total < total
            total = new_total


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_var_zero_for_symmetric_positions(seed):
    """Swapping a pair twice measures exactly opposite Vars."""
    ov = random_connected_overlay(seed)
    var1 = evaluate_prop_g(ov, 0, ov.n_slots - 1)
    execute_prop_g(ov, 0, ov.n_slots - 1)
    var2 = evaluate_prop_g(ov, 0, ov.n_slots - 1)
    assert var1 == pytest.approx(-var2, rel=1e-9, abs=1e-9)
