"""CAN structural properties over random joins (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.rng import RngRegistry
from repro.overlay.can import CANOverlay
from tests.properties.util import FakeOracle


def _can(seed: int, n: int, dims: int) -> CANOverlay:
    rng = np.random.default_rng(seed)
    oracle = FakeOracle(n, rng)
    return CANOverlay.build(oracle, RngRegistry(seed).stream("can"), dims=dims)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(2, 40), dims=st.integers(1, 3))
def test_zones_tile_exactly(seed, n, dims):
    """No overlap, no gap: total volume 1 and every point owned once."""
    can = _can(seed, n, dims)
    assert abs(can.total_zone_volume() - 1.0) < 1e-9
    rng = np.random.default_rng(seed ^ 5)
    for _ in range(25):
        p = rng.random(dims)
        owners = [s for s, z in enumerate(can.zones) if z.contains(p)]
        assert len(owners) == 1


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(2, 40), dims=st.integers(1, 3))
def test_adjacency_connected(seed, n, dims):
    can = _can(seed, n, dims)
    assert can.is_connected()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(2, 32), dims=st.integers(2, 3))
def test_routing_terminates_at_owner(seed, n, dims):
    can = _can(seed, n, dims)
    rng = np.random.default_rng(seed ^ 6)
    for _ in range(10):
        src = int(rng.integers(0, n))
        p = rng.random(dims)
        path = can.route(src, p)
        assert path[-1] == can.owner_of_point(p)
        assert len(set(path)) == len(path)  # no cycles


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(2, 32))
def test_zone_boxes_well_formed(seed, n):
    can = _can(seed, n, 2)
    for z in can.zones:
        assert np.all(z.lo < z.hi)
        assert np.all(z.lo >= 0.0)
        assert np.all(z.hi <= 1.0)
