"""Model-based property tests for the two queue data structures.

Each test drives the real implementation and a brutally simple reference
model with the same random operation sequence and asserts observational
equivalence — the strongest cheap evidence that cancellation, priority
arithmetic, and sync rules hold under arbitrary interleavings.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.neighbor_queue import NeighborQueue
from repro.netsim.events import EventQueue


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_event_queue_matches_sorted_list_model(data):
    q = EventQueue()
    model: list[tuple[float, int]] = []  # (time, uid) sorted lazily
    handles = {}
    uid = 0
    fired: list[int] = []

    n_ops = data.draw(st.integers(1, 60))
    for _ in range(n_ops):
        op = data.draw(st.sampled_from(["push", "pop", "cancel", "peek"]))
        if op == "push":
            t = data.draw(st.floats(0.0, 100.0, allow_nan=False))
            this = uid
            uid += 1
            handles[this] = q.push(t, fired.append, this)
            model.append((t, this))
            model.sort()
        elif op == "pop":
            if model:
                ev = q.pop()
                ev.callback(*ev.args)
                expected = model.pop(0)
                assert fired[-1] == expected[1]
                assert ev.time == expected[0]
            else:
                assert len(q) == 0
        elif op == "cancel" and model:
            idx = data.draw(st.integers(0, len(model) - 1))
            t, which = model.pop(idx)
            assert handles[which].cancel() is True
        elif op == "peek":
            expected = model[0][0] if model else None
            assert q.peek_time() == expected
        assert len(q) == len(model)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_neighbor_queue_matches_priority_model(data):
    members = data.draw(st.lists(st.integers(0, 30), min_size=1, max_size=10, unique=True))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
    q = NeighborQueue(members, rng)

    # model: slot -> (priority, seq); mirror the documented semantics
    model = {s: (0, i) for i, s in enumerate(q.snapshot())}
    seq = len(model)

    n_ops = data.draw(st.integers(1, 40))
    for _ in range(n_ops):
        op = data.draw(st.sampled_from(["select", "success", "failure", "new", "remove", "sync"]))
        if op == "select":
            if model:
                assert q.select() == min(model, key=model.__getitem__)
        elif op == "success" and model:
            s = data.draw(st.sampled_from(sorted(model)))
            q.on_success(s)
            p, sq = model[s]
            model[s] = (p - 1, sq)
        elif op == "failure" and model:
            s = data.draw(st.sampled_from(sorted(model)))
            q.on_failure(s)
            tail = max((p for p, _ in model.values()), default=0)
            model[s] = (max(tail, 0) + 1, seq)
            seq += 1
        elif op == "new":
            s = data.draw(st.integers(31, 60))
            if s not in model:
                q.on_new_neighbor(s)
                model[s] = (-1_000_000, seq)
                seq += 1
        elif op == "remove" and model:
            s = data.draw(st.sampled_from(sorted(model)))
            q.remove(s)
            del model[s]
        elif op == "sync":
            keep = data.draw(st.lists(st.sampled_from(sorted(model) if model else [0]),
                                      unique=True)) if model else []
            extra = data.draw(st.lists(st.integers(61, 90), max_size=3, unique=True))
            target = set(keep) | set(extra)
            if not target:
                continue
            q.sync(target)
            for s in list(model):
                if s not in target:
                    del model[s]
            for s in sorted(target):
                if s not in model:
                    model[s] = (-1_000_000, seq)
                    seq += 1
        assert len(q) == len(model)
        assert set(q.snapshot()) == set(model)
