"""The latency oracle is a true metric (hypothesis).

Shortest-path distances over a positively weighted connected graph form
a metric space: symmetric, zero exactly on the diagonal, and satisfying
the triangle inequality.  The overlays and the Var analysis implicitly
rely on all three; the suite fuzzes generated transit-stub worlds.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.rng import RngRegistry
from repro.topology.latency import LatencyOracle
from repro.topology.transit_stub import TransitStubParams, generate_transit_stub


def _oracle(seed: int, n_members: int):
    params = TransitStubParams(2, 2, 2, 6)
    net = generate_transit_stub(params, np.random.default_rng(seed))
    members = RngRegistry(seed).stream("m").choice(
        net.n, size=min(n_members, net.n), replace=False
    )
    return LatencyOracle(net, members)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(3, 20))
def test_symmetry_and_zero_diagonal(seed, n):
    oracle = _oracle(seed, n)
    assert np.allclose(oracle.matrix, oracle.matrix.T)
    assert np.all(np.diag(oracle.matrix) == 0.0)
    off = oracle.matrix[~np.eye(oracle.n, dtype=bool)]
    assert np.all(off > 0.0)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(3, 15))
def test_triangle_inequality(seed, n):
    oracle = _oracle(seed, n)
    d = oracle.matrix
    k = oracle.n
    # d[i,j] <= d[i,l] + d[l,j] for all i, j, l (vectorized check)
    via = d[:, :, None] + d[None, :, :]   # via[i, l, j]
    best_via = via.min(axis=1)
    assert np.all(d <= best_via + 1e-9)
