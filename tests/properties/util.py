"""Shared machinery for the property-based (hypothesis) suites.

The theorems quantify over *arbitrary* connected overlays and latency
spaces, so these helpers build both from a raw integer seed: a random
symmetric latency matrix (no metric assumptions — the theorems hold
without the triangle inequality) and a random connected graph (spanning
tree plus extra edges).
"""

from __future__ import annotations

import numpy as np

from repro.overlay.base import Overlay
from repro.topology.latency import LatencyOracleBase

__all__ = ["FakeOracle", "random_connected_overlay", "random_prop_o_step"]


class FakeOracle(LatencyOracleBase):
    """Minimal oracle backend: a random symmetric positive matrix.

    Implements the abstract :class:`LatencyOracleBase` surface so the
    property suites exercise the same derived queries (``to_many``,
    ``sum_to``, ...) the protocol uses, over a latency space with no
    metric assumptions (the theorems hold without the triangle
    inequality).
    """

    backend = "fake"

    def __init__(self, n: int, rng: np.random.Generator) -> None:
        raw = rng.random((n, n)) * 100.0 + 1.0
        self.matrix = np.triu(raw, 1)
        self.matrix = self.matrix + self.matrix.T
        self.hosts = np.arange(n, dtype=np.int64)

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.matrix[a, b]

    def state_nbytes(self) -> int:
        return int(self.matrix.nbytes)

    def mean_physical_link(self) -> float:
        return float(self.matrix[np.triu_indices(self.n, 1)].mean())


def random_connected_overlay(seed: int, n_min: int = 4, n_max: int = 20) -> Overlay:
    """Random connected overlay with a random latency space."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(n_min, n_max + 1))
    oracle = FakeOracle(n, rng)
    ov = Overlay(oracle, rng.permutation(n))
    order = rng.permutation(n)
    for i in range(1, n):
        a = int(order[i])
        b = int(order[rng.integers(0, i)])
        ov.add_edge(a, b)
    extra = int(rng.integers(0, 2 * n))
    for _ in range(extra):
        a, b = rng.integers(0, n, size=2)
        if a != b and not ov.has_edge(int(a), int(b)):
            ov.add_edge(int(a), int(b))
    return ov


def random_prop_o_step(ov: Overlay, rng: np.random.Generator, m_max: int = 4):
    """One legal PROP-O probe: walk, select, and (maybe) a trade.

    Returns ``(u, v, give_u, give_v, var, path)`` or ``None`` when the
    drawn walk yields no legal trade.
    """
    from repro.core.varcalc import select_prop_o
    from repro.core.walk import random_walk

    u = int(rng.integers(0, ov.n_slots))
    nbrs = ov.neighbor_list(u)
    if not nbrs:
        return None
    first = nbrs[int(rng.integers(0, len(nbrs)))]
    nhops = int(rng.integers(1, 4))
    v, path = random_walk(ov, u, first, nhops, rng)
    if v == u:
        return None
    m = int(rng.integers(1, m_max + 1))
    give_u, give_v, var = select_prop_o(ov, u, v, m, forbidden=set(path))
    if not give_u:
        return None
    return u, v, give_u, give_v, var, path
