"""Transit-stub generator properties over random shapes (hypothesis)."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.transit_stub import TransitStubParams, generate_transit_stub

shape = st.tuples(
    st.integers(1, 4),  # transit domains
    st.integers(1, 4),  # transit nodes per domain
    st.integers(0, 3),  # stub domains per transit
    st.integers(1, 8),  # stub nodes per domain
)


def _build(shape_tuple, seed):
    td, tn, sd, sn = shape_tuple
    params = TransitStubParams(td, tn, sd, sn)
    net = generate_transit_stub(params, np.random.default_rng(seed))
    return params, net


@settings(max_examples=40, deadline=None)
@given(shape=shape, seed=st.integers(0, 2**32 - 1))
def test_always_connected(shape, seed):
    _, net = _build(shape, seed)
    g = nx.Graph()
    g.add_nodes_from(range(net.n))
    g.add_edges_from(zip(net.edges_u.tolist(), net.edges_v.tolist()))
    assert nx.is_connected(g)


@settings(max_examples=40, deadline=None)
@given(shape=shape, seed=st.integers(0, 2**32 - 1))
def test_host_counts_match_params(shape, seed):
    params, net = _build(shape, seed)
    assert net.n == params.n_hosts
    assert len(net.transit_hosts) == params.n_transit
    assert len(net.stub_hosts) == params.n_stub


@settings(max_examples=40, deadline=None)
@given(shape=shape, seed=st.integers(0, 2**32 - 1))
def test_validate_always_passes(shape, seed):
    _, net = _build(shape, seed)
    net.validate()


@settings(max_examples=40, deadline=None)
@given(shape=shape, seed=st.integers(0, 2**32 - 1))
def test_latencies_drawn_from_three_tiers(shape, seed):
    params, net = _build(shape, seed)
    lat = params.latencies
    allowed = {lat.stub_stub, lat.stub_transit, lat.transit_transit}
    assert set(np.unique(net.edges_w).tolist()) <= allowed
