"""Theorem 2 (isomorphic characteristic), property-tested.

"Let graph G(V, E) denote the network overlay, and let G'(V, E') be the
graph that is derived from G by applying an arbitrary sequence of PROP-G
exchange operations.  G' is isomorphic to graph G."

In the slot/embedding model PROP-G acts only on the embedding, so the
*slot graph* is literally unchanged; the theorem's content is about the
*host graph* (nodes = physical hosts, edges = who-is-connected-to-whom).
The suite checks both: the host graph after arbitrary swap sequences is
isomorphic to the original (via the explicit embedding permutation as
the witness bijection, and independently via networkx VF2), and the
degree *multiset* of hosts is preserved while per-host degrees move.
"""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exchange import execute_prop_g
from tests.properties.util import random_connected_overlay


def host_graph(ov) -> nx.Graph:
    """Logical edges expressed between *hosts* (the paper's G(V, E))."""
    g = nx.Graph()
    emb = ov.embedding
    g.add_nodes_from(int(h) for h in emb)
    for a, b in ov.iter_edges():
        g.add_edge(int(emb[a]), int(emb[b]))
    return g


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), steps=st.integers(1, 30))
def test_host_graph_isomorphic_after_swaps(seed, steps):
    ov = random_connected_overlay(seed)
    g0 = host_graph(ov)
    emb0 = ov.embedding.copy()
    rng = np.random.default_rng(seed ^ 0xFACE)
    for _ in range(steps):
        u, v = rng.integers(0, ov.n_slots, size=2)
        if u != v:
            execute_prop_g(ov, int(u), int(v))
    g1 = host_graph(ov)

    # Explicit witness: phi(host at slot s, before) = host at slot s, after.
    phi = {int(emb0[s]): int(ov.embedding[s]) for s in range(ov.n_slots)}
    assert sorted(phi) == sorted(phi.values())  # bijection on hosts
    mapped = {(min(phi[a], phi[b]), max(phi[a], phi[b])) for a, b in g0.edges()}
    actual = {(min(a, b), max(a, b)) for a, b in g1.edges()}
    assert mapped == actual

    # Independent check through VF2.
    assert nx.is_isomorphic(g0, g1)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), steps=st.integers(1, 30))
def test_slot_topology_bitwise_unchanged(seed, steps):
    """Stronger than isomorphism: the slot graph is *identical*."""
    ov = random_connected_overlay(seed)
    edges0 = set(ov.iter_edges())
    rng = np.random.default_rng(seed ^ 0xBEEF)
    for _ in range(steps):
        u, v = rng.integers(0, ov.n_slots, size=2)
        if u != v:
            execute_prop_g(ov, int(u), int(v))
    assert set(ov.iter_edges()) == edges0


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_degree_multiset_preserved_and_swapped_hosts_trade_degrees(seed):
    ov = random_connected_overlay(seed)
    emb0 = ov.embedding.copy()
    u, v = 0, ov.n_slots - 1
    hu, hv = int(emb0[u]), int(emb0[v])
    host_deg_before = {int(emb0[s]): ov.degree(s) for s in range(ov.n_slots)}
    execute_prop_g(ov, u, v)
    host_deg_after = {
        int(ov.embedding[s]): ov.degree(s) for s in range(ov.n_slots)
    }
    assert sorted(host_deg_before.values()) == sorted(host_deg_after.values())
    # PROP-G moves degree with position: the swapped hosts trade degrees
    assert host_deg_after[hu] == host_deg_before[hv]
    assert host_deg_after[hv] == host_deg_before[hu]


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), steps=st.integers(1, 20))
def test_swap_sequence_invertible(seed, steps):
    """Replaying a swap sequence in reverse restores the embedding —
    peer-exchange is its own inverse (each swap is a transposition)."""
    ov = random_connected_overlay(seed)
    emb0 = ov.embedding.copy()
    rng = np.random.default_rng(seed ^ 0xC0FFEE)
    seq = []
    for _ in range(steps):
        u, v = rng.integers(0, ov.n_slots, size=2)
        if u != v:
            execute_prop_g(ov, int(u), int(v))
            seq.append((int(u), int(v)))
    for u, v in reversed(seq):
        execute_prop_g(ov, u, v)
    assert np.array_equal(ov.embedding, emb0)
