"""Theorem 1 (connectivity persistence), property-tested.

"Let G be an undirected connected graph, and let G' be the graph that is
derived from G by applying an exchange operation in PROP-G or PROP-O.
G' is an undirected connected graph."

The suite fuzzes random connected overlays with random latency spaces
and applies random legal exchange sequences (PROP-G position swaps;
PROP-O walk-constrained trades), asserting connectivity after every
step — i.e. the *inductive* form of the theorem, which is stronger than
checking only the final graph.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exchange import execute_prop_g, execute_prop_o
from tests.properties.util import random_connected_overlay, random_prop_o_step


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), steps=st.integers(1, 25))
def test_prop_g_sequences_preserve_connectivity(seed, steps):
    ov = random_connected_overlay(seed)
    rng = np.random.default_rng(seed ^ 0xABCDEF)
    assert ov.is_connected()
    for _ in range(steps):
        u, v = rng.integers(0, ov.n_slots, size=2)
        if u == v:
            continue
        execute_prop_g(ov, int(u), int(v))
        assert ov.is_connected()


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), steps=st.integers(1, 25))
def test_prop_o_sequences_preserve_connectivity(seed, steps):
    ov = random_connected_overlay(seed)
    rng = np.random.default_rng(seed ^ 0x123456)
    assert ov.is_connected()
    for _ in range(steps):
        step = random_prop_o_step(ov, rng)
        if step is None:
            continue
        u, v, give_u, give_v, _, _ = step
        execute_prop_o(ov, u, v, give_u, give_v)
        assert ov.is_connected()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_single_cut_add_preserves_connectivity(seed):
    """The induction base of the proof: one cut-add (one traded neighbor)."""
    ov = random_connected_overlay(seed)
    rng = np.random.default_rng(seed ^ 0x777)
    step = random_prop_o_step(ov, rng, m_max=1)
    if step is None:
        return
    u, v, give_u, give_v, _, _ = step
    # apply the two cut-adds one at a time; connected after each
    for x in give_u:
        ov.rewire(u, x, v, x)
        assert ov.is_connected()
    for y in give_v:
        ov.rewire(v, y, u, y)
        assert ov.is_connected()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), steps=st.integers(1, 15))
def test_mixed_policy_sequences_preserve_connectivity(seed, steps):
    """Interleaving PROP-G and PROP-O (a deployment may host both)."""
    ov = random_connected_overlay(seed)
    rng = np.random.default_rng(seed ^ 0x31337)
    for _ in range(steps):
        if rng.random() < 0.5:
            u, v = rng.integers(0, ov.n_slots, size=2)
            if u != v:
                execute_prop_g(ov, int(u), int(v))
        else:
            step = random_prop_o_step(ov, rng)
            if step is not None:
                u, v, give_u, give_v, _, _ = step
                execute_prop_o(ov, u, v, give_u, give_v)
        assert ov.is_connected()
