"""Lookup-latency wrappers: heterogeneity projection through embeddings."""

import numpy as np
import pytest

from repro.metrics.lookup_latency import chord_mean_lookup_latency, gnutella_mean_lookup_latency
from repro.workloads.heterogeneity import bimodal_processing_delay
from repro.workloads.lookups import uniform_keys, uniform_pairs


def test_gnutella_wrapper_matches_direct_call(gnutella):
    pairs = uniform_pairs(gnutella.n_slots, 50, np.random.default_rng(0))
    assert gnutella_mean_lookup_latency(gnutella, pairs) == pytest.approx(
        gnutella.mean_lookup_latency(pairs)
    )


def test_gnutella_wrapper_projects_delays(gnutella):
    het = bimodal_processing_delay(gnutella.oracle.n, np.random.default_rng(1), slow_ms=500.0)
    pairs = uniform_pairs(gnutella.n_slots, 50, np.random.default_rng(0))
    with_het = gnutella_mean_lookup_latency(gnutella, pairs, het=het)
    without = gnutella_mean_lookup_latency(gnutella, pairs)
    assert with_het >= without  # processing only adds delay


def test_gnutella_delays_track_embedding_swaps(gnutella):
    """After a swap the projected delays must follow the hosts."""
    het = bimodal_processing_delay(gnutella.oracle.n, np.random.default_rng(1))
    d0 = het.slot_delays(gnutella.embedding).copy()
    gnutella.swap_embedding(0, 1)
    d1 = het.slot_delays(gnutella.embedding)
    assert d1[0] == d0[1] and d1[1] == d0[0]


def test_chord_wrapper_matches_direct_call(chord):
    queries = uniform_keys(chord.n_slots, chord.space, 30, np.random.default_rng(0))
    assert chord_mean_lookup_latency(chord, queries) == pytest.approx(
        chord.mean_lookup_latency(queries)
    )


def test_chord_wrapper_projects_delays(chord):
    het = bimodal_processing_delay(chord.oracle.n, np.random.default_rng(1), slow_ms=500.0)
    queries = uniform_keys(chord.n_slots, chord.space, 30, np.random.default_rng(0))
    with_het = chord_mean_lookup_latency(chord, queries, het=het)
    without = chord_mean_lookup_latency(chord, queries)
    assert with_het > without
