"""Convergence detection on metric series."""

import numpy as np
import pytest

from repro.metrics.convergence import convergence_epoch, first_stable_index


def test_detects_flat_tail():
    series = np.array([10.0, 8.0, 6.0, 5.0, 5.0, 5.0, 5.0])
    assert first_stable_index(series, rel_tol=0.01, window=3) == 3


def test_never_stable():
    series = np.array([10.0, 5.0, 10.0, 5.0, 10.0, 5.0])
    assert first_stable_index(series, window=2) is None


def test_immediately_stable():
    series = np.ones(6)
    assert first_stable_index(series) == 0


def test_tolerance_scales_relative():
    series = np.array([1000.0, 1001.0, 1002.0, 1001.0, 1000.0])
    assert first_stable_index(series, rel_tol=0.01, window=3) == 0
    assert first_stable_index(series, rel_tol=1e-6, window=3) is None


def test_window_validated():
    with pytest.raises(ValueError):
        first_stable_index(np.ones(5), window=0)


def test_convergence_epoch_maps_to_time():
    times = np.array([0.0, 60.0, 120.0, 180.0, 240.0, 300.0])
    series = np.array([9.0, 7.0, 5.0, 5.0, 5.0, 5.0])
    assert convergence_epoch(times, series, window=3) == 120.0


def test_convergence_epoch_none():
    times = np.arange(4, dtype=float)
    series = np.array([1.0, 2.0, 1.0, 2.0])
    assert convergence_epoch(times, series, window=2) is None


def test_convergence_epoch_shape_mismatch():
    with pytest.raises(ValueError):
        convergence_epoch(np.arange(3, dtype=float), np.ones(4))


def test_zero_reference_handled():
    series = np.array([0.0, 0.0, 0.0, 0.0])
    assert first_stable_index(series, window=2) == 0
