"""Stretch metrics: link stretch, routing stretch, average latency."""

import numpy as np
import pytest

from repro.metrics.stretch import average_latency, routing_stretch, stretch


def test_link_stretch_definition(gnutella):
    expected = gnutella.mean_logical_edge_latency() / gnutella.oracle.mean_physical_link()
    assert stretch(gnutella) == pytest.approx(expected)


def test_link_stretch_drops_after_beneficial_swap(gnutella):
    from repro.core.varcalc import evaluate_prop_g

    # find a positive-Var pair and swap it
    for u in range(gnutella.n_slots):
        done = False
        for v in range(u + 1, gnutella.n_slots):
            if evaluate_prop_g(gnutella, u, v) > 0:
                before = stretch(gnutella)
                gnutella.swap_embedding(u, v)
                assert stretch(gnutella) < before
                done = True
                break
        if done:
            break
    else:
        raise AssertionError("no beneficial swap found")


def test_average_latency_constant_under_swaps(gnutella):
    before = average_latency(gnutella)
    gnutella.swap_embedding(0, 5)
    assert average_latency(gnutella) == pytest.approx(before)


def test_routing_stretch():
    routes = np.array([10.0, 20.0, 30.0])
    direct = np.array([5.0, 10.0, 15.0])
    assert routing_stretch(routes, direct) == pytest.approx(2.0)


def test_routing_stretch_validates_shapes():
    with pytest.raises(ValueError):
        routing_stretch(np.array([1.0]), np.array([1.0, 2.0]))


def test_routing_stretch_rejects_zero_direct():
    with pytest.raises(ValueError):
        routing_stretch(np.array([1.0]), np.array([0.0]))
