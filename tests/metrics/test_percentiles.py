"""Latency-distribution summaries."""

import numpy as np
import pytest

from repro.metrics.percentiles import summarize_latencies
from repro.workloads.lookups import uniform_keys, uniform_pairs


def test_basic_stats():
    d = summarize_latencies(np.arange(1.0, 101.0))
    assert d.count == 100
    assert d.failures == 0
    assert d.mean == pytest.approx(50.5)
    assert d.p50 == pytest.approx(50.5)
    assert d.p90 == pytest.approx(90.1)
    assert d.max == 100.0


def test_failures_excluded_from_percentiles():
    vals = np.array([1.0, 2.0, 3.0, np.inf, np.inf])
    d = summarize_latencies(vals)
    assert d.failures == 2
    assert d.failure_rate == pytest.approx(0.4)
    assert d.max == 3.0


def test_all_failed():
    d = summarize_latencies(np.array([np.inf, np.inf]))
    assert d.failures == 2
    assert np.isnan(d.mean)


def test_empty_rejected():
    with pytest.raises(ValueError):
        summarize_latencies(np.array([]))


def test_nan_rejected():
    """NaN is never a legal latency: inf is the only failure sentinel,
    so NaN must raise instead of silently joining the failure count."""
    with pytest.raises(ValueError, match="NaN"):
        summarize_latencies(np.array([1.0, np.nan, 3.0]))


def test_all_nan_rejected():
    with pytest.raises(ValueError, match="NaN"):
        summarize_latencies(np.array([np.nan, np.nan]))


def test_inf_still_accepted_as_failure():
    """Pins the sentinel contract: inf counts as a failure, never raises."""
    d = summarize_latencies(np.array([5.0, np.inf]))
    assert d.failures == 1
    assert d.mean == pytest.approx(5.0)


def test_gnutella_distribution(gnutella):
    pairs = uniform_pairs(gnutella.n_slots, 100, np.random.default_rng(0))
    vals = gnutella.lookup_latencies(pairs)
    d = summarize_latencies(vals)
    assert d.failures == 0
    assert d.p50 <= d.p90 <= d.p99 <= d.max
    assert d.mean == pytest.approx(gnutella.mean_lookup_latency(pairs))


def test_gnutella_distribution_with_ttl_failures(gnutella):
    pairs = uniform_pairs(gnutella.n_slots, 200, np.random.default_rng(0))
    vals = gnutella.lookup_latencies(pairs, ttl=1)
    d = summarize_latencies(vals)
    assert d.failures > 0  # TTL-1 floods cannot reach everyone


def test_chord_distribution(chord):
    queries = uniform_keys(chord.n_slots, chord.space, 60, np.random.default_rng(0))
    vals = chord.lookup_latencies(queries)
    d = summarize_latencies(vals)
    assert d.count == 60 and d.failures == 0
    assert d.mean == pytest.approx(chord.mean_lookup_latency(queries))
