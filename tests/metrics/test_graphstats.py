"""Graph statistics: hop distances, clustering, degree summaries."""

import numpy as np
import pytest

from repro.metrics.graphstats import graph_stats, hop_distance_matrix
from repro.overlay.base import Overlay


@pytest.fixture()
def triangle_plus_tail(small_oracle):
    """Triangle 0-1-2 with a tail 2-3."""
    ov = Overlay(small_oracle, np.arange(4))
    for a, b in [(0, 1), (1, 2), (0, 2), (2, 3)]:
        ov.add_edge(a, b)
    return ov


class TestHopDistances:
    def test_known_graph(self, triangle_plus_tail):
        hops = hop_distance_matrix(triangle_plus_tail)
        assert hops[0, 0] == 0
        assert hops[0, 1] == 1
        assert hops[0, 3] == 2
        assert hops[3, 1] == 2

    def test_sources_subset(self, triangle_plus_tail):
        hops = hop_distance_matrix(triangle_plus_tail, np.array([3]))
        assert hops.shape == (1, 4)
        assert hops[0, 0] == 2

    def test_disconnected_inf(self, small_oracle):
        ov = Overlay(small_oracle, np.arange(3))
        ov.add_edge(0, 1)
        hops = hop_distance_matrix(ov)
        assert np.isinf(hops[0, 2])

    def test_empty_graph(self, small_oracle):
        ov = Overlay(small_oracle, np.arange(2))
        hops = hop_distance_matrix(ov)
        assert hops[0, 0] == 0 and np.isinf(hops[0, 1])


class TestGraphStats:
    def test_known_graph(self, triangle_plus_tail):
        stats = graph_stats(triangle_plus_tail, hop_sample=None)
        assert stats.n_nodes == 4 and stats.n_edges == 4
        assert stats.min_degree == 1 and stats.max_degree == 3
        assert stats.mean_degree == pytest.approx(2.0)
        assert stats.hop_diameter == 2
        # clustering: nodes 0,1 have both neighbors adjacent -> 1.0;
        # node 2 has 1 of 3 pairs -> 1/3; node 3 -> 0
        assert stats.mean_clustering == pytest.approx((1.0 + 1.0 + 1.0 / 3.0 + 0.0) / 4)

    def test_on_gnutella(self, gnutella):
        stats = graph_stats(gnutella)
        assert stats.min_degree >= 3
        assert stats.mean_hop_distance > 1.0
        assert 0.0 <= stats.mean_clustering <= 1.0

    def test_sampled_matches_exact_shape(self, gnutella):
        exact = graph_stats(gnutella, hop_sample=None)
        sampled = graph_stats(gnutella, hop_sample=20)
        assert sampled.n_edges == exact.n_edges
        assert abs(sampled.mean_hop_distance - exact.mean_hop_distance) < 0.5


class TestFloodTraffic:
    def test_star_graph(self, small_oracle):
        from repro.overlay.gnutella import GnutellaOverlay

        ov = GnutellaOverlay(small_oracle, np.arange(5))
        for leaf in range(1, 5):
            ov.add_edge(0, leaf)
        # flood from the hub with ttl=1: 4 messages, no forwarding
        assert ov.flood_traffic(0, 1) == 4
        # ttl=2: leaves forward to deg-1 = 0 others
        assert ov.flood_traffic(0, 2) == 4
        # from a leaf: 1 (to hub) + hub forwards to 3 others
        assert ov.flood_traffic(1, 2) == 1 + 3

    def test_invariant_under_prop_g(self, gnutella):
        from repro.core.exchange import execute_prop_g

        before = gnutella.flood_traffic(0, 4)
        execute_prop_g(gnutella, 1, 7)
        assert gnutella.flood_traffic(0, 4) == before

    def test_ttl_validated(self, gnutella):
        with pytest.raises(ValueError):
            gnutella.flood_traffic(0, 0)
