"""Closed-form overhead model of §4.3 and its match to measured counters."""

import pytest

from repro.core.config import PROPConfig
from repro.core.protocol import PROPEngine
from repro.metrics.overhead import (
    prop_g_step_messages,
    prop_o_step_messages,
    worst_case_probe_frequency,
)
from repro.netsim.engine import Simulator
from repro.netsim.rng import RngRegistry


def test_formulas():
    assert prop_g_step_messages(2, 10.0) == 22.0
    assert prop_o_step_messages(2, 3) == 8.0
    assert worst_case_probe_frequency(60.0) == pytest.approx(1.0 / 60.0)


def test_prop_o_cheaper_when_m_below_c():
    assert prop_o_step_messages(2, 2) < prop_g_step_messages(2, 6.0)


@pytest.mark.parametrize(
    "fn,args",
    [
        (prop_g_step_messages, (0, 5.0)),
        (prop_o_step_messages, (2, 0)),
        (worst_case_probe_frequency, (0.0,)),
    ],
)
def test_validation(fn, args):
    with pytest.raises(ValueError):
        fn(*args)


def test_measured_step_cost_matches_model(gnutella):
    """Engine counters approximate nhop + 2c (G) / nhop + 2m (O)."""
    sim = Simulator()
    eng = PROPEngine(gnutella, PROPConfig(policy="O", m=2, nhops=2), sim, RngRegistry(1))
    eng.start()
    sim.run_until(300.0)
    c = eng.counters
    per_step = (c.walk_messages + c.collect_messages) / c.probes
    assert per_step <= prop_o_step_messages(2, 2)
    assert per_step >= prop_o_step_messages(1, 2)  # walks may stop early


def test_measured_prop_g_step_cost(gnutella):
    sim = Simulator()
    eng = PROPEngine(gnutella, PROPConfig(policy="G", nhops=2), sim, RngRegistry(1))
    eng.start()
    sim.run_until(300.0)
    c = eng.counters
    mean_degree = gnutella.degree_sequence().mean()
    per_step = (c.walk_messages + c.collect_messages) / c.probes
    model = prop_g_step_messages(2, mean_degree)
    assert per_step == pytest.approx(model, rel=0.35)
