"""Markov-chain timer: doubling, reset, wrap at the cap."""

import pytest

from repro.core.timer_policy import MarkovTimer


def test_starts_at_init():
    t = MarkovTimer(60.0, 1920.0)
    assert t.value == 60.0


def test_failure_doubles():
    t = MarkovTimer(60.0, 1920.0)
    assert t.on_failure() == 120.0
    assert t.on_failure() == 240.0
    assert t.on_failure() == 480.0


def test_success_resets():
    t = MarkovTimer(60.0, 1920.0)
    t.on_failure()
    t.on_failure()
    assert t.on_success() == 60.0


def test_wraps_at_cap():
    """Five doublings with the paper's 2^5 cap: the MAX_TIMER period is
    served exactly once, then the timer wraps to init."""
    t = MarkovTimer(60.0, 32 * 60.0)
    values = [t.on_failure() for _ in range(7)]
    assert values == [120.0, 240.0, 480.0, 960.0, 1920.0, 60.0, 120.0]


def test_exact_cap_wraps():
    t = MarkovTimer(10.0, 40.0)
    assert t.on_failure() == 20.0
    assert t.on_failure() == 40.0  # the cap period is served ...
    assert t.on_failure() == 10.0  # ... once, then wraps


def test_cap_served_exactly_once_per_cycle():
    """Regression: the old wrap check ran *after* doubling, so a node
    backed off 2I..16I but never waited the MAX_TIMER period at all."""
    t = MarkovTimer(60.0, 32 * 60.0)
    cycle = [t.on_failure() for _ in range(6)]  # one full back-off cycle
    assert cycle.count(32 * 60.0) == 1
    assert cycle[-1] == 60.0
    # and the next cycle repeats identically
    assert [t.on_failure() for _ in range(6)] == cycle


def test_non_power_of_two_cap_clamped():
    """A cap off the doubling grid is served (clamped), not skipped."""
    t = MarkovTimer(10.0, 25.0)
    assert t.on_failure() == 20.0
    assert t.on_failure() == 25.0  # clamped to the cap, served once
    assert t.on_failure() == 10.0


def test_churn_resets():
    t = MarkovTimer(60.0, 1920.0)
    t.on_failure()
    assert t.on_churn() == 60.0


def test_validation():
    with pytest.raises(ValueError):
        MarkovTimer(0.0, 10.0)
    with pytest.raises(ValueError):
        MarkovTimer(10.0, 5.0)
