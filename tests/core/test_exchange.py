"""Exchange executors: PROP-G swap and PROP-O cut-add semantics."""

import numpy as np
import pytest

from repro.core.exchange import execute_prop_g, execute_prop_o
from repro.core.varcalc import select_prop_o


class TestPropG:
    def test_swaps_hosts(self, gnutella):
        h0, h10 = gnutella.host_at(0), gnutella.host_at(10)
        execute_prop_g(gnutella, 0, 10)
        assert gnutella.host_at(0) == h10
        assert gnutella.host_at(10) == h0

    def test_topology_unchanged(self, gnutella):
        edges = set(gnutella.iter_edges())
        execute_prop_g(gnutella, 0, 10)
        assert set(gnutella.iter_edges()) == edges

    def test_notification_count_is_degree_sum(self, gnutella):
        expected = gnutella.degree(0) + gnutella.degree(10)
        assert execute_prop_g(gnutella, 0, 10) == expected

    def test_double_swap_is_identity(self, gnutella):
        emb = gnutella.embedding.copy()
        execute_prop_g(gnutella, 0, 10)
        execute_prop_g(gnutella, 0, 10)
        assert np.array_equal(gnutella.embedding, emb)


def _find_trade(overlay, m=3):
    """First (u, v, give_u, give_v) with a beneficial PROP-O trade."""
    for u in range(overlay.n_slots):
        for v in range(u + 1, overlay.n_slots):
            give_u, give_v, var = select_prop_o(overlay, u, v, m=m)
            if give_u:
                return u, v, give_u, give_v
    raise AssertionError("no beneficial trade anywhere — overlay already optimal?")


class TestPropO:
    def test_moves_selected_edges(self, gnutella):
        u, v, give_u, give_v = _find_trade(gnutella)
        execute_prop_o(gnutella, u, v, give_u, give_v)
        for x in give_u:
            assert not gnutella.has_edge(u, x)
            assert gnutella.has_edge(v, x)
        for y in give_v:
            assert not gnutella.has_edge(v, y)
            assert gnutella.has_edge(u, y)

    def test_degrees_preserved(self, gnutella):
        deg = gnutella.degree_sequence().copy()
        u, v, give_u, give_v = _find_trade(gnutella)
        execute_prop_o(gnutella, u, v, give_u, give_v)
        assert np.array_equal(gnutella.degree_sequence(), deg)

    def test_embedding_untouched(self, gnutella):
        emb = gnutella.embedding.copy()
        u, v, give_u, give_v = _find_trade(gnutella)
        execute_prop_o(gnutella, u, v, give_u, give_v)
        assert np.array_equal(gnutella.embedding, emb)

    def test_notification_count_is_two_m(self, gnutella):
        u, v, give_u, give_v = _find_trade(gnutella)
        assert execute_prop_o(gnutella, u, v, give_u, give_v) == 2 * len(give_u)

    def test_unequal_sizes_rejected(self, gnutella):
        with pytest.raises(ValueError):
            execute_prop_o(gnutella, 0, 10, [1], [])

    def test_counterpart_trade_rejected(self, gnutella):
        u = 0
        v = next(iter(gnutella.neighbors(u)))
        other = next(x for x in gnutella.neighbors(v) if x != u)
        with pytest.raises(ValueError):
            execute_prop_o(gnutella, u, v, [v], [other])

    def test_empty_trade_is_noop(self, gnutella):
        edges = set(gnutella.iter_edges())
        assert execute_prop_o(gnutella, 0, 10, [], []) == 0
        assert set(gnutella.iter_edges()) == edges
