"""PROP engine: phases, timers, optimization progress, churn handling."""

import numpy as np
import pytest

from repro.core.config import PROPConfig
from repro.core.protocol import PROPEngine
from repro.netsim.engine import Simulator
from repro.netsim.rng import RngRegistry


def _engine(overlay, policy="G", sim=None, **cfg_kwargs):
    sim = sim or Simulator()
    cfg = PROPConfig(policy=policy, **cfg_kwargs)
    eng = PROPEngine(overlay, cfg, sim, RngRegistry(11))
    return eng, sim


class TestLifecycle:
    def test_start_schedules_all_nodes(self, gnutella):
        eng, sim = _engine(gnutella)
        eng.start()
        assert len(sim.queue) == gnutella.n_slots

    def test_double_start_rejected(self, gnutella):
        eng, _ = _engine(gnutella)
        eng.start()
        with pytest.raises(RuntimeError):
            eng.start()

    def test_m_defaults_to_min_degree(self, gnutella):
        eng, _ = _engine(gnutella, policy="O")
        assert eng.m == gnutella.min_degree()

    def test_m_explicit(self, gnutella):
        eng, _ = _engine(gnutella, policy="O", m=2)
        assert eng.m == 2


class TestOptimization:
    def test_prop_g_reduces_total_latency(self, gnutella):
        before = gnutella.total_neighbor_latency()
        eng, sim = _engine(gnutella, policy="G")
        eng.start()
        sim.run_until(1200.0)
        assert eng.counters.exchanges > 0
        assert gnutella.total_neighbor_latency() < before

    def test_prop_o_reduces_total_latency(self, gnutella):
        before = gnutella.total_neighbor_latency()
        eng, sim = _engine(gnutella, policy="O")
        eng.start()
        sim.run_until(1200.0)
        assert eng.counters.exchanges > 0
        assert gnutella.total_neighbor_latency() < before

    def test_prop_g_on_chord(self, chord):
        before = chord.total_neighbor_latency()
        eng, sim = _engine(chord, policy="G")
        eng.start()
        sim.run_until(1200.0)
        assert eng.counters.exchanges > 0
        assert chord.total_neighbor_latency() < before

    def test_connectivity_maintained(self, gnutella):
        eng, sim = _engine(gnutella, policy="O")
        eng.start()
        sim.run_until(1800.0)
        assert gnutella.is_connected()

    def test_prop_o_preserves_degree_sequence(self, gnutella):
        deg = np.sort(gnutella.degree_sequence()).copy()
        per_slot = gnutella.degree_sequence().copy()
        eng, sim = _engine(gnutella, policy="O")
        eng.start()
        sim.run_until(1800.0)
        assert np.array_equal(gnutella.degree_sequence(), per_slot)
        assert np.array_equal(np.sort(gnutella.degree_sequence()), deg)

    def test_random_probe_mode(self, gnutella):
        before = gnutella.total_neighbor_latency()
        eng, sim = _engine(gnutella, policy="G", random_probe=True)
        eng.start()
        sim.run_until(1200.0)
        assert gnutella.total_neighbor_latency() < before

    def test_accepted_exchanges_have_positive_var(self, gnutella):
        eng, sim = _engine(gnutella, policy="G", min_var=0.0)
        eng.start()
        sim.run_until(600.0)
        # every accepted exchange logged a Var above threshold; total
        # latency sum decreased monotonically by construction
        accepted = [v for v in eng.counters.var_history if v > 0.0]
        assert len(accepted) >= eng.counters.exchanges > 0

    def test_high_min_var_blocks_everything(self, gnutella):
        eng, sim = _engine(gnutella, policy="G", min_var=1e12)
        eng.start()
        sim.run_until(1200.0)
        assert eng.counters.exchanges == 0


class TestMessageAccounting:
    def test_probe_and_walk_counts(self, gnutella):
        eng, sim = _engine(gnutella, policy="G", nhops=2)
        eng.start()
        sim.run_until(300.0)
        c = eng.counters
        assert c.probes > 0
        # each walk is at most nhops messages, at least 1
        assert c.probes <= c.walk_messages <= 2 * c.probes

    def test_prop_o_collect_is_2m_per_probe(self, gnutella):
        eng, sim = _engine(gnutella, policy="O", m=2)
        eng.start()
        sim.run_until(300.0)
        c = eng.counters
        assert c.collect_messages == 4 * c.probes

    def test_notify_only_on_exchange(self, gnutella):
        eng, sim = _engine(gnutella, policy="G", min_var=1e12)
        eng.start()
        sim.run_until(300.0)
        assert eng.counters.notify_messages == 0

    def test_messages_per_probe(self, gnutella):
        eng, sim = _engine(gnutella, policy="O", m=1)
        eng.start()
        sim.run_until(300.0)
        assert eng.counters.messages_per_probe() > 0


class TestTimerDynamics:
    def test_probe_rate_decays_after_convergence(self, gnutella):
        """Markov timer: once no exchanges succeed, probing slows down."""
        eng, sim = _engine(gnutella, policy="G", init_timer=60.0)
        eng.start()
        sim.run_until(1800.0)
        early = eng.counters.probes
        sim.run_until(3600.0)
        mid = eng.counters.probes - early
        sim.run_until(5400.0)
        late = eng.counters.probes - early - mid
        # warm-up window probes at full rate; converged windows are slower
        n = gnutella.n_slots
        full_rate_window = 1800.0 / 60.0 * n
        assert early <= full_rate_window + n
        assert late < early

    def test_warmup_length_respected(self, gnutella):
        eng, sim = _engine(gnutella, policy="G", max_init_trial=5, init_timer=60.0)
        eng.start()
        sim.run_until(8 * 60.0)
        phases = [s.phase for s in eng.nodes]
        assert all(p == 1 for p in phases)  # all in maintenance by now


class TestFirstExchangeRecording:
    """Regression: an exchange on the *final* warm-up trial must record
    its (positive) trial count, not the post-warm-up sentinel -1 — the
    old code flipped the phase before recording."""

    def test_success_on_last_warmup_trial_records_trial_count(self, gnutella):
        eng, _ = _engine(gnutella, policy="G", max_init_trial=3)
        eng._attempt_exchange = lambda u, state: True  # force an exchange
        for _ in range(3):
            eng._probe_cycle(0)
        state = eng.nodes[0]
        assert state.phase == 1  # warm-up exhausted
        assert state.probes_until_first_exchange == 1

    def test_success_exactly_on_final_trial(self, gnutella):
        eng, _ = _engine(gnutella, policy="G", max_init_trial=3)
        outcomes = iter([False, False, True])
        eng._attempt_exchange = lambda u, state: next(outcomes)
        for _ in range(3):
            eng._probe_cycle(0)
        state = eng.nodes[0]
        assert state.phase == 1
        assert state.probes_until_first_exchange == 3  # was -1 before the fix

    def test_success_after_warmup_records_sentinel(self, gnutella):
        eng, _ = _engine(gnutella, policy="G", max_init_trial=2)
        outcomes = iter([False, False, True])
        eng._attempt_exchange = lambda u, state: next(outcomes)
        for _ in range(3):
            eng._probe_cycle(0)
        assert eng.nodes[0].probes_until_first_exchange == -1

    def test_first_success_wins(self, gnutella):
        eng, _ = _engine(gnutella, policy="G", max_init_trial=5)
        outcomes = iter([False, True, True, False, True])
        eng._attempt_exchange = lambda u, state: next(outcomes)
        for _ in range(5):
            eng._probe_cycle(0)
        assert eng.nodes[0].probes_until_first_exchange == 2


class TestChurn:
    def test_reset_slot_restarts_warmup(self, gnutella):
        eng, sim = _engine(gnutella, policy="G")
        eng.start()
        sim.run_until(1200.0)
        eng.reset_slot(3)
        st = eng.nodes[3]
        assert st.phase == 0
        assert st.trials == 0
        assert st.timer.value == eng.config.init_timer

    def test_reset_slot_notifies_neighbors(self, gnutella):
        eng, sim = _engine(gnutella, policy="G")
        eng.start()
        sim.run_until(1200.0)
        nbr = next(iter(gnutella.neighbors(3)))
        eng.nodes[nbr].timer.on_failure()
        assert eng.nodes[nbr].timer.value > eng.config.init_timer
        eng.reset_slot(3)
        assert eng.nodes[nbr].timer.value == eng.config.init_timer
        # the churned slot sits at the front of the neighbor's queue
        assert eng.nodes[nbr].queue.select() == 3

    def test_notify_membership_change_syncs_queue(self, gnutella):
        eng, _ = _engine(gnutella, policy="G")
        state = eng.nodes[0]
        # an edge change the engine did not make itself (e.g. churn rewire)
        victim = next(iter(gnutella.neighbors(0)))
        other = next(x for x in range(1, gnutella.n_slots) if not gnutella.has_edge(0, x))
        gnutella.remove_edge(0, victim)
        gnutella.add_edge(0, other)
        eng.notify_membership_change(0, [other])
        assert sorted(state.queue.snapshot()) == sorted(gnutella.neighbor_list(0))
        assert state.queue.select() == other  # new neighbor probed first


class TestApplicabilityMatrix:
    """PROP-O must refuse structure-derived overlays (their edges encode
    routing state); PROP-G runs anywhere — the paper's applicability
    matrix, enforced at deployment time."""

    def test_prop_o_rejected_on_chord(self, chord):
        with pytest.raises(ValueError):
            _engine(chord, policy="O")

    def test_prop_g_accepted_on_chord(self, chord):
        eng, _ = _engine(chord, policy="G")
        assert eng.config.policy == "G"

    def test_prop_o_accepted_on_gnutella(self, gnutella):
        eng, _ = _engine(gnutella, policy="O")
        assert eng.config.policy == "O"


class TestExchangeLog:
    def test_records_every_exchange(self, gnutella):
        eng, sim = _engine(gnutella, policy="G")
        eng.start()
        sim.run_until(900.0)
        log = eng.counters.exchange_log
        assert len(log) == eng.counters.exchanges > 0
        for rec in log:
            assert rec.policy == "G"
            assert rec.var > 0.0
            assert 0.0 <= rec.time <= 900.0
            assert rec.u != rec.v

    def test_log_times_monotone(self, gnutella):
        eng, sim = _engine(gnutella, policy="O")
        eng.start()
        sim.run_until(900.0)
        times = [r.time for r in eng.counters.exchange_log]
        assert times == sorted(times)

    def test_prop_o_traded_bounded_by_m(self, gnutella):
        eng, sim = _engine(gnutella, policy="O", m=2)
        eng.start()
        sim.run_until(900.0)
        assert all(1 <= r.traded <= 2 for r in eng.counters.exchange_log)
