"""PROPConfig validation and paper defaults."""

import pytest

from repro.core.config import PROPConfig


def test_paper_defaults():
    cfg = PROPConfig()
    assert cfg.policy == "G"
    assert cfg.nhops == 2
    assert cfg.min_var == 0.0
    assert cfg.init_timer == 60.0
    assert cfg.max_timer == 32 * 60.0  # 2^5 * INIT_TIMER
    assert cfg.max_init_trial == 10
    assert cfg.m is None  # delta(G) by default


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(policy="X"),
        dict(nhops=0),
        dict(m=0),
        dict(init_timer=0.0),
        dict(init_timer=-60.0),
        dict(max_timer_factor=0.5),
        dict(max_init_trial=-1),
        dict(max_init_trial=0),
        dict(selection="best"),
    ],
)
def test_invalid_rejected(kwargs):
    with pytest.raises(ValueError):
        PROPConfig(**kwargs)


@pytest.mark.parametrize(
    ("kwargs", "field", "value"),
    [
        (dict(nhops=0), "nhops", "0"),
        (dict(init_timer=-5.0), "init_timer", "-5.0"),
        (dict(max_timer_factor=0.25), "max_timer_factor", "0.25"),
        (dict(max_init_trial=0), "max_init_trial", "0"),
    ],
)
def test_invalid_message_names_field_and_value(kwargs, field, value):
    """Rejections say which field failed and what value it had."""
    with pytest.raises(ValueError, match=field) as excinfo:
        PROPConfig(**kwargs)
    assert value in str(excinfo.value)


def test_max_timer_never_below_init_timer():
    cfg = PROPConfig(init_timer=30.0, max_timer_factor=1.0)
    assert cfg.max_timer >= cfg.init_timer


def test_replace_overrides():
    cfg = PROPConfig(policy="G").replace(policy="O", m=3)
    assert cfg.policy == "O"
    assert cfg.m == 3
    assert cfg.nhops == 2  # untouched


def test_frozen():
    cfg = PROPConfig()
    with pytest.raises(Exception):
        cfg.nhops = 5
