"""PROPConfig validation and paper defaults."""

import pytest

from repro.core.config import PROPConfig


def test_paper_defaults():
    cfg = PROPConfig()
    assert cfg.policy == "G"
    assert cfg.nhops == 2
    assert cfg.min_var == 0.0
    assert cfg.init_timer == 60.0
    assert cfg.max_timer == 32 * 60.0  # 2^5 * INIT_TIMER
    assert cfg.max_init_trial == 10
    assert cfg.m is None  # delta(G) by default


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(policy="X"),
        dict(nhops=0),
        dict(m=0),
        dict(init_timer=0.0),
        dict(max_timer_factor=0.5),
        dict(max_init_trial=-1),
    ],
)
def test_invalid_rejected(kwargs):
    with pytest.raises(ValueError):
        PROPConfig(**kwargs)


def test_replace_overrides():
    cfg = PROPConfig(policy="G").replace(policy="O", m=3)
    assert cfg.policy == "O"
    assert cfg.m == 3
    assert cfg.nhops == 2  # untouched


def test_frozen():
    cfg = PROPConfig()
    with pytest.raises(Exception):
        cfg.nhops = 5
