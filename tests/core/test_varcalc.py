"""Var computation: PROP-G equation (2) and PROP-O greedy selection."""

import numpy as np
import pytest

from repro.core.varcalc import evaluate_prop_g, select_prop_o


def _find_trade(overlay, m=3):
    """First (u, v, trade) pair with a beneficial PROP-O trade."""
    for u in range(overlay.n_slots):
        for v in range(u + 1, overlay.n_slots):
            trade = select_prop_o(overlay, u, v, m=m)
            if trade[0]:
                return u, v, trade
    raise AssertionError("no beneficial trade anywhere — overlay already optimal?")


class TestPropG:
    def test_matches_equation_two(self, gnutella):
        """Var = S_t0(u) + S_t0(v) - S_t1(u) - S_t1(v) computed by hand."""
        u, v = 0, 10
        before = gnutella.neighbor_latency_sum(u) + gnutella.neighbor_latency_sum(v)
        trial = gnutella.copy()
        trial.swap_embedding(u, v)
        after = trial.neighbor_latency_sum(u) + trial.neighbor_latency_sum(v)
        assert evaluate_prop_g(gnutella, u, v) == pytest.approx(before - after)

    def test_leaves_overlay_untouched(self, gnutella):
        emb = gnutella.embedding.copy()
        evaluate_prop_g(gnutella, 0, 10)
        assert np.array_equal(gnutella.embedding, emb)

    def test_antisymmetric_on_execute(self, gnutella):
        """Swapping then evaluating the reverse swap gives -Var."""
        var = evaluate_prop_g(gnutella, 0, 10)
        gnutella.swap_embedding(0, 10)
        assert evaluate_prop_g(gnutella, 0, 10) == pytest.approx(-var)

    def test_self_exchange_rejected(self, gnutella):
        with pytest.raises(ValueError):
            evaluate_prop_g(gnutella, 3, 3)

    def test_adjacent_pair_handled(self, gnutella):
        u = 0
        v = next(iter(gnutella.neighbors(u)))
        var = evaluate_prop_g(gnutella, u, v)
        trial = gnutella.copy()
        trial.swap_embedding(u, v)
        manual = (
            gnutella.neighbor_latency_sum(u)
            + gnutella.neighbor_latency_sum(v)
            - trial.neighbor_latency_sum(u)
            - trial.neighbor_latency_sum(v)
        )
        assert var == pytest.approx(manual)


class TestPropOSelection:
    def test_equal_trade_sizes(self, gnutella):
        give_u, give_v, _ = select_prop_o(gnutella, 0, 10, m=2)
        assert len(give_u) == len(give_v) <= 2

    def test_var_matches_manual_recomputation(self, gnutella):
        u, v, (give_u, give_v, var) = _find_trade(gnutella, m=3)
        before = gnutella.neighbor_latency_sum(u) + gnutella.neighbor_latency_sum(v)
        trial = gnutella.copy()
        for x in give_u:
            trial.rewire(u, x, v, x)
        for y in give_v:
            trial.rewire(v, y, u, y)
        after = trial.neighbor_latency_sum(u) + trial.neighbor_latency_sum(v)
        assert var == pytest.approx(before - after)

    def test_respects_forbidden_set(self, gnutella):
        u, v = 0, 10
        forbidden = set(gnutella.neighbor_list(u)) | set(gnutella.neighbor_list(v))
        give_u, give_v, var = select_prop_o(gnutella, u, v, m=4, forbidden=forbidden)
        assert give_u == [] and give_v == [] and var == 0.0

    def test_never_trades_counterpart(self, gnutella):
        u = 0
        v = next(iter(gnutella.neighbors(u)))
        give_u, give_v, _ = select_prop_o(gnutella, u, v, m=4)
        assert v not in give_u
        assert u not in give_v

    def test_never_creates_duplicate_edges(self, gnutella):
        u, v = 0, 10
        give_u, give_v, _ = select_prop_o(gnutella, u, v, m=4)
        for x in give_u:
            assert not gnutella.has_edge(v, x)
        for y in give_v:
            assert not gnutella.has_edge(u, y)

    def test_positive_var_or_empty(self, gnutella):
        """The gain-maximizing prefix rule never returns a losing trade."""
        for v in range(1, 30):
            if v == 0:
                continue
            give_u, give_v, var = select_prop_o(gnutella, 0, v, m=3)
            assert (give_u == [] and var == 0.0) or var > 0.0

    def test_m_caps_trade_size(self, gnutella):
        give_u, _, _ = select_prop_o(gnutella, 0, 10, m=1)
        assert len(give_u) <= 1

    def test_invalid_m_rejected(self, gnutella):
        with pytest.raises(ValueError):
            select_prop_o(gnutella, 0, 10, m=0)

    def test_self_exchange_rejected(self, gnutella):
        with pytest.raises(ValueError):
            select_prop_o(gnutella, 5, 5, m=1)

    def test_leaves_overlay_untouched(self, gnutella):
        edges = set(gnutella.iter_edges())
        select_prop_o(gnutella, 0, 10, m=3)
        assert set(gnutella.iter_edges()) == edges


class TestSelectionPolicies:
    def test_unknown_policy_rejected(self, gnutella):
        with pytest.raises(ValueError):
            select_prop_o(gnutella, 0, 10, m=2, selection="best")

    def test_random_needs_rng(self, gnutella):
        with pytest.raises(ValueError):
            select_prop_o(gnutella, 0, 10, m=2, selection="random")

    def test_all_policies_return_positive_var_or_empty(self, gnutella):
        rng = np.random.default_rng(0)
        for sel in ("greedy", "farthest", "random"):
            for v in range(1, 25):
                give_u, give_v, var = select_prop_o(
                    gnutella, 0, v, m=3, selection=sel, rng=rng
                )
                assert (give_u == [] and var == 0.0) or var > 0.0
                assert len(give_u) == len(give_v)

    def test_greedy_var_at_least_alternatives(self, gnutella):
        """Greedy is gain-optimal under the equal-count constraint, so no
        alternative policy can report a larger Var for the same pair."""
        u, v, (give_u, give_v, var_greedy) = _find_trade(gnutella, m=3)
        rng = np.random.default_rng(0)
        for sel in ("farthest", "random"):
            _, _, var_alt = select_prop_o(gnutella, u, v, m=3, selection=sel, rng=rng)
            assert var_greedy >= var_alt - 1e-9

    def test_farthest_offers_farthest(self, gnutella):
        u, v, _ = _find_trade(gnutella, m=1)
        give_u, _, _ = select_prop_o(gnutella, u, v, m=1, selection="farthest")
        if give_u:
            from repro.core.varcalc import _tradable

            cand = _tradable(gnutella, u, v, ())
            far = max(cand, key=lambda x: gnutella.latency(u, x))
            assert give_u == [far]

    def test_var_matches_manual_for_alternatives(self, gnutella):
        rng = np.random.default_rng(1)
        for sel in ("farthest", "random"):
            for v in range(1, 30):
                give_u, give_v, var = select_prop_o(
                    gnutella, 0, v, m=2, selection=sel, rng=rng
                )
                if not give_u:
                    continue
                trial = gnutella.copy()
                before = trial.neighbor_latency_sum(0) + trial.neighbor_latency_sum(v)
                for x in give_u:
                    trial.rewire(0, x, v, x)
                for y in give_v:
                    trial.rewire(v, y, 0, y)
                after = trial.neighbor_latency_sum(0) + trial.neighbor_latency_sum(v)
                assert var == pytest.approx(before - after)
                break
