"""neighborQ: selection order, success/failure/churn priority rules."""

import numpy as np
import pytest

from repro.core.neighbor_queue import NeighborQueue


def _q(neighbors, seed=0):
    return NeighborQueue(neighbors, np.random.default_rng(seed))


def test_initial_order_is_a_permutation():
    q = _q([1, 2, 3, 4, 5])
    assert sorted(q.snapshot()) == [1, 2, 3, 4, 5]


def test_initial_order_randomized():
    orders = {tuple(_q([1, 2, 3, 4, 5, 6], seed=s).snapshot()) for s in range(10)}
    assert len(orders) > 1


def test_select_returns_head(aggregate=None):
    q = _q([7, 8, 9])
    assert q.select() == q.snapshot()[0]


def test_select_empty_raises():
    q = _q([])
    with pytest.raises(IndexError):
        q.select()


def test_failure_moves_to_tail():
    q = _q([1, 2, 3])
    head = q.select()
    q.on_failure(head)
    assert q.snapshot()[-1] == head
    assert q.select() != head


def test_success_keeps_near_front():
    q = _q([1, 2, 3])
    head = q.select()
    q.on_success(head)
    assert q.select() == head  # decreased priority -> still first


def test_success_after_failures_recovers_priority():
    q = _q([1, 2, 3])
    s = q.select()
    q.on_failure(s)  # s at tail
    for _ in range(5):
        q.on_success(s)  # bumped forward by 5
    assert q.select() == s


def test_new_neighbor_goes_to_front():
    q = _q([1, 2, 3])
    q.on_new_neighbor(99)
    assert q.select() == 99


def test_remove():
    q = _q([1, 2])
    q.remove(1)
    assert 1 not in q
    assert len(q) == 1
    q.remove(42)  # no-op


def test_sync_drops_departed_and_fronts_new():
    q = _q([1, 2, 3])
    q.sync([2, 3, 7])
    assert sorted(q.snapshot()) == [2, 3, 7]
    assert q.select() == 7  # new arrival probed first


def test_sync_idempotent():
    q = _q([1, 2, 3])
    before = q.snapshot()
    q.sync([1, 2, 3])
    assert q.snapshot() == before


def test_contains_and_len():
    q = _q([4, 5])
    assert 4 in q and 5 in q and 6 not in q
    assert len(q) == 2
