"""TTL random walk: path validity, no revisits, early stop."""

import numpy as np
import pytest

from repro.core.walk import random_walk
from repro.overlay.base import Overlay


def _rng(seed=0):
    return np.random.default_rng(seed)


def test_one_hop_returns_first_hop(gnutella):
    s = next(iter(gnutella.neighbors(0)))
    target, path = random_walk(gnutella, 0, s, 1, _rng())
    assert target == s
    assert path == [0, s]


def test_walk_path_follows_edges(gnutella):
    s = next(iter(gnutella.neighbors(0)))
    _, path = random_walk(gnutella, 0, s, 4, _rng())
    for a, b in zip(path, path[1:]):
        assert gnutella.has_edge(a, b)


def test_walk_never_revisits(gnutella):
    for seed in range(20):
        s = next(iter(gnutella.neighbors(0)))
        _, path = random_walk(gnutella, 0, s, 6, _rng(seed))
        assert len(set(path)) == len(path)


def test_walk_length_bounded_by_nhops(gnutella):
    s = next(iter(gnutella.neighbors(0)))
    _, path = random_walk(gnutella, 0, s, 3, _rng())
    assert len(path) <= 4  # u + at most nhops nodes


def test_target_is_last_path_node(gnutella):
    s = next(iter(gnutella.neighbors(0)))
    target, path = random_walk(gnutella, 0, s, 4, _rng())
    assert path[-1] == target


def test_invalid_first_hop_rejected(gnutella):
    non_neighbor = next(
        x for x in range(gnutella.n_slots) if x != 0 and not gnutella.has_edge(0, x)
    )
    with pytest.raises(ValueError):
        random_walk(gnutella, 0, non_neighbor, 2, _rng())


def test_invalid_nhops_rejected(gnutella):
    s = next(iter(gnutella.neighbors(0)))
    with pytest.raises(ValueError):
        random_walk(gnutella, 0, s, 0, _rng())


def test_dead_end_stops_early(small_oracle):
    """On a path graph 0-1-2, a 5-hop walk from 0 must stop at 2."""
    ov = Overlay(small_oracle, np.arange(3))
    ov.add_edge(0, 1)
    ov.add_edge(1, 2)
    target, path = random_walk(ov, 0, 1, 5, _rng())
    assert target == 2
    assert path == [0, 1, 2]


def test_walk_deterministic_in_rng(gnutella):
    s = next(iter(gnutella.neighbors(0)))
    a = random_walk(gnutella, 0, s, 4, _rng(42))
    b = random_walk(gnutella, 0, s, 4, _rng(42))
    assert a == b
