"""Timed PROP engine: latency-delayed probes, stale-abort accounting."""

import numpy as np
import pytest

from repro.core.config import PROPConfig
from repro.core.timed_protocol import TimedPROPEngine
from repro.core.protocol import PROPEngine
from repro.netsim.engine import Simulator
from repro.netsim.rng import RngRegistry


def _timed(overlay, policy="G", **cfg_kwargs):
    sim = Simulator()
    eng = TimedPROPEngine(overlay, PROPConfig(policy=policy, **cfg_kwargs), sim, RngRegistry(11))
    return eng, sim


class TestOptimization:
    def test_prop_g_still_optimizes(self, gnutella):
        before = gnutella.total_neighbor_latency()
        eng, sim = _timed(gnutella, policy="G")
        eng.start()
        sim.run_until(1800.0)
        assert eng.counters.exchanges > 0
        assert gnutella.total_neighbor_latency() < before

    def test_prop_o_still_optimizes(self, gnutella):
        before = gnutella.total_neighbor_latency()
        eng, sim = _timed(gnutella, policy="O")
        eng.start()
        sim.run_until(1800.0)
        assert eng.counters.exchanges > 0
        assert gnutella.total_neighbor_latency() < before
        assert gnutella.is_connected()

    def test_prop_o_rejected_on_structured(self, chord):
        with pytest.raises(ValueError):
            _timed(chord, policy="O")


class TestTiming:
    def test_exchange_times_not_on_timer_grid(self, gnutella):
        """Network delay shifts completions off the 60 s schedule."""
        eng, sim = _timed(gnutella, policy="G")
        eng.start()
        sim.run_until(1800.0)
        times = np.array([r.time for r in eng.counters.exchange_log])
        assert times.size > 0
        off_grid = np.abs(times / 60.0 - np.round(times / 60.0)) > 1e-9
        assert off_grid.any()

    def test_commit_never_applies_negative_var(self, gnutella):
        """Commit-time recheck: every executed exchange logged Var > 0
        as of execution (the run stays monotone despite concurrency)."""
        eng, sim = _timed(gnutella, policy="G")
        eng.start()
        total = gnutella.total_neighbor_latency()
        for _ in range(200):
            if not sim.queue:
                break
            sim.step()
            new_total = gnutella.total_neighbor_latency()
            assert new_total <= total + 1e-6
            total = new_total

    def test_stale_aborts_counted(self, gnutella):
        eng, sim = _timed(gnutella, policy="G")
        eng.start()
        sim.run_until(3600.0)
        assert eng.stale_aborts >= 0
        # aborts never exceed probes
        assert eng.stale_aborts <= eng.counters.probes

    def test_converges_to_similar_quality_as_instantaneous(self, gnutella):
        timed_overlay = gnutella
        instant_overlay = gnutella.copy()

        eng_t, sim_t = _timed(timed_overlay, policy="G")
        eng_t.start()
        sim_t.run_until(3600.0)

        sim_i = Simulator()
        eng_i = PROPEngine(instant_overlay, PROPConfig(policy="G"), sim_i, RngRegistry(11))
        eng_i.start()
        sim_i.run_until(3600.0)

        t_final = timed_overlay.mean_logical_edge_latency()
        i_final = instant_overlay.mean_logical_edge_latency()
        assert t_final == pytest.approx(i_final, rel=0.25)
