"""Small-scale versions of the paper's figure shapes.

Each test reruns a miniature of one evaluation figure and asserts the
*qualitative* property the paper reports (who wins, which direction a
curve moves).  The full-scale series live in benchmarks/.
"""

import pytest

from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig, run_experiment

BASE = dict(
    preset="ts-small",
    n_overlay=100,
    duration=1800.0,
    sample_interval=600.0,
    lookups_per_sample=150,
)


def _final_ratio(kind, prop):
    cfg = ExperimentConfig(overlay_kind=kind, prop=prop, **BASE)
    r = run_experiment(cfg)
    return r.final_lookup_latency / r.initial_lookup_latency


class TestFig5and6TTLPanel:
    """Fig 5(a)/6(a): nhops=1 is ineffective; nhops>=2 ~ random probing."""

    @pytest.mark.parametrize("kind", ["gnutella", "chord"])
    def test_nhops1_underperforms_nhops2(self, kind):
        r1 = _final_ratio(kind, PROPConfig(policy="G", nhops=1))
        r2 = _final_ratio(kind, PROPConfig(policy="G", nhops=2))
        assert r2 < r1

    @pytest.mark.parametrize("kind", ["gnutella"])
    def test_nhops2_close_to_random_probing(self, kind):
        r2 = _final_ratio(kind, PROPConfig(policy="G", nhops=2))
        rr = _final_ratio(kind, PROPConfig(policy="G", random_probe=True))
        # "other three different ways have nearly the same impact"
        assert abs(r2 - rr) < 0.25

    def test_curves_not_monotone_locally(self):
        """'stretch is not reduced all the time' — local bumps exist but
        the trend is downward."""
        cfg = ExperimentConfig(
            overlay_kind="chord",
            prop=PROPConfig(policy="G"),
            **{**BASE, "sample_interval": 150.0},
        )
        r = run_experiment(cfg)
        assert r.final_stretch < r.initial_stretch


class TestFig5and6SizePanel:
    """Fig 5(b)/6(b): still effective as n grows (mildly less so)."""

    def test_improvement_at_both_sizes(self):
        for n in (80, 200):
            cfg = ExperimentConfig(
                overlay_kind="gnutella",
                prop=PROPConfig(policy="G"),
                **{**BASE, "n_overlay": n},
            )
            r = run_experiment(cfg)
            assert r.final_lookup_latency < r.initial_lookup_latency


class TestFig5and6TopologyPanel:
    """Fig 5(c)/6(c): ts-large benefits more than ts-small."""

    def test_ts_large_improves_more(self):
        """ts-large sees both the larger absolute latency drop and the
        larger relative link-stretch reduction (exchanges across its big
        backbone repair expensive mismatches; ts-small has little
        cross-backbone traffic to repair)."""
        results = {}
        for preset in ("ts-large", "ts-small"):
            cfg = ExperimentConfig(
                overlay_kind="gnutella",
                prop=PROPConfig(policy="G"),
                **{**BASE, "preset": preset},
            )
            results[preset] = run_experiment(cfg)
        drop = {
            k: r.initial_lookup_latency - r.final_lookup_latency
            for k, r in results.items()
        }
        stretch_ratio = {
            k: r.link_stretch[-1] / r.link_stretch[0] for k, r in results.items()
        }
        assert drop["ts-large"] > drop["ts-small"]
        assert stretch_ratio["ts-large"] < stretch_ratio["ts-small"]


class TestFig7Heterogeneity:
    """Fig 7: PROP-O preserves the capacity-degree correlation."""

    def _run(self, frac, **kw):
        cfg = ExperimentConfig(
            overlay_kind="gnutella",
            heterogeneous=True,
            fast_lookup_fraction=frac,
            flood_ttl=7,
            fast_degree_weight=8.0,
            overlay_options={"min_degree": 3, "mean_extra_degree": 3.0},
            **{**BASE, "preset": "ts-large"},
            **kw,
        )
        return run_experiment(cfg)

    def test_prop_o_keeps_fast_degree_bias_prop_g_destroys_it(self):
        from repro.harness.experiment import build_world

        # PROP-G's washed-out state is not gap == 0: the Markov timers
        # quiesce after warm-up, freezing whichever embedding the ~10^2
        # exchanges reached, so a 100-node run retains a seed-dependent
        # residual of order +/-2 (mean ~0 across seeds).  Pin a seed
        # where that residual is small so the thresholds cleanly
        # separate the two policies, and also assert the O-G contrast
        # directly so the qualitative claim does not hinge on one value.
        gaps = {}
        for policy in ("O", "G"):
            cfg = ExperimentConfig(
                overlay_kind="gnutella",
                heterogeneous=True,
                fast_degree_weight=8.0,
                seed=2,
                prop=PROPConfig(policy=policy, m=3 if policy == "O" else None),
                overlay_options={"min_degree": 3, "mean_extra_degree": 3.0},
                **{**BASE, "preset": "ts-large"},
            )
            w = build_world(cfg)
            w.sim.run_until(cfg.duration)
            deg = w.overlay.degree_sequence()
            fast = w.het.fast_slots(w.overlay.embedding)
            slow = w.het.slow_slots(w.overlay.embedding)
            gaps[policy] = deg[fast].mean() - deg[slow].mean()
        assert gaps["O"] > 1.0  # hubs still fast
        assert abs(gaps["G"]) < 1.0  # correlation washed out
        assert gaps["O"] - gaps["G"] > 2.0  # the Fig 7 contrast itself

    def test_prop_o_beats_prop_g_under_fast_biased_lookups(self):
        ro = self._run(1.0, prop=PROPConfig(policy="O", m=3))
        rg = self._run(1.0, prop=PROPConfig(policy="G"))
        assert ro.final_lookup_latency < rg.final_lookup_latency
