"""End-to-end determinism: a seed fully determines a run."""

import numpy as np

from repro.baselines.ltm import LTMConfig
from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig, run_experiment

FAST = dict(
    preset="ts-small",
    n_overlay=80,
    duration=900.0,
    sample_interval=300.0,
    lookups_per_sample=80,
)


def _series_equal(a, b):
    assert np.array_equal(a.times, b.times)
    assert np.allclose(a.lookup_latency, b.lookup_latency, equal_nan=True)
    assert np.allclose(a.stretch, b.stretch, equal_nan=True)
    assert np.allclose(a.link_stretch, b.link_stretch)
    assert np.array_equal(a.probes, b.probes)
    assert np.array_equal(a.exchanges, b.exchanges)


def test_prop_g_run_replays_exactly():
    cfg = ExperimentConfig(prop=PROPConfig(policy="G"), **FAST)
    _series_equal(run_experiment(cfg), run_experiment(cfg))


def test_prop_o_run_replays_exactly():
    cfg = ExperimentConfig(prop=PROPConfig(policy="O", m=2), **FAST)
    _series_equal(run_experiment(cfg), run_experiment(cfg))


def test_ltm_run_replays_exactly():
    cfg = ExperimentConfig(ltm=LTMConfig(), **FAST)
    _series_equal(run_experiment(cfg), run_experiment(cfg))


def test_churn_run_replays_exactly():
    from repro.workloads.churn import ChurnConfig

    cfg = ExperimentConfig(
        prop=PROPConfig(policy="G"),
        churn=ChurnConfig(rate_per_node=0.002),
        n_spare=20,
        **FAST,
    )
    _series_equal(run_experiment(cfg), run_experiment(cfg))


def test_different_seeds_differ():
    cfg = ExperimentConfig(prop=PROPConfig(policy="G"), **FAST)
    a = run_experiment(cfg)
    b = run_experiment(cfg.but(seed=1))
    assert not np.allclose(a.lookup_latency, b.lookup_latency)
