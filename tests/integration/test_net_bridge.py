"""The determinism bridge: message plane == inline engine at zero latency.

With no faults and ``latency_scale=0`` every message of a probe cycle is
delivered at the cycle's fire timestamp in insertion order, so
:class:`~repro.net.engine.MessagePROPEngine` consumes the shared
``prop:engine`` RNG stream in exactly the inline order and must
reproduce :class:`~repro.core.protocol.PROPEngine`'s run — same probes,
same exchange sequence, same walk traffic — recovering the paper's
instantaneous-cycle abstraction as a special case of the message plane.
"""

import pytest

from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.metrics.overhead import COORDINATION_SLACK

FAST = dict(
    preset="ts-small",
    n_overlay=60,
    duration=600.0,
    sample_interval=300.0,
    lookups_per_sample=40,
)


def _pair(policy, **prop_kw):
    inline = ExperimentConfig(prop=PROPConfig(policy=policy, **prop_kw), **FAST)
    message = inline.but(transport="sim", latency_scale=0.0)
    return (
        run_experiment(inline, measure_lookups=False),
        run_experiment(message, measure_lookups=False),
    )


@pytest.mark.parametrize("policy,prop_kw", [("G", {}), ("O", dict(m=2))],
                         ids=["PROP-G", "PROP-O"])
def test_bridge_reproduces_inline_exchange_sequence(policy, prop_kw):
    inline, message = _pair(policy, **prop_kw)
    ci, cm = inline.final_counters, message.final_counters

    assert cm.probes == ci.probes
    assert cm.exchanges == ci.exchanges
    # the same exchanges between the same peers in the same order
    assert ([(e.u, e.v) for e in cm.exchange_log]
            == [(e.u, e.v) for e in ci.exchange_log])
    assert ([e.var for e in cm.exchange_log]
            == pytest.approx([e.var for e in ci.exchange_log]))
    # identical walk traffic; collect carries exactly the documented
    # +1 VAR_REPLY per probe coordination slack
    assert cm.walk_messages == ci.walk_messages
    assert cm.collect_messages == ci.collect_messages + COORDINATION_SLACK * cm.probes
    assert cm.notify_messages >= ci.notify_messages


def test_bridge_run_reports_transport_telemetry():
    _, message = _pair("G")
    stats = message.net_stats
    assert stats is not None
    assert stats.total_dropped == 0
    assert stats.sent["EXCHANGE_PREPARE"] == message.final_counters.exchanges
    assert stats.sent["EXCHANGE_COMMIT"] == message.final_counters.exchanges
    assert stats.sent["EXCHANGE_ABORT"] == 0
    nc = message.net_counters
    assert nc.walk_timeouts == 0 and nc.vote_timeouts == 0
    assert nc.busy_rejects == 0 and nc.stale_aborts == 0


def test_real_latency_run_still_converges():
    cfg = ExperimentConfig(prop=PROPConfig(policy="G"), transport="sim", **FAST)
    result = run_experiment(cfg, measure_lookups=False)
    assert result.exchanges[-1] > 0
    assert result.link_stretch[-1] < result.link_stretch[0]
