"""Sim-vs-real acceptance: the SAME seed, topology and scenario run
through the deterministic simulator and the live UDP deployment plane
must tell the same story.

Exact trajectory equality is not the bar — the live plane's RNG draw
*order* depends on real timing (two peers' timers racing on the event
loop), so individual walks differ run to run.  What must agree is the
physics: both planes build the identical substrate per seed (shared
:func:`build_substrate`), run the identical engine code, and therefore
must land in tolerance bands on the aggregate trajectory — probe
activity, exchange counts, and the latency-improvement ratio the paper's
Fig. 5 is about.  Loopback wire latency (~µs) is the live analogue of
``latency_scale=0``, so the sim side runs that configuration.

This is the acceptance gate the deployment-plane issue names: a 50-peer
swarm completing PROP end to end with results matching the simulation
within tolerance.
"""

from __future__ import annotations

import pytest

from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.live.transport import udp_loopback_available
from repro.obs.spans import assemble_spans

pytestmark = pytest.mark.skipif(
    not udp_loopback_available(),
    reason="loopback UDP unavailable in this environment",
)

N_PEERS = 50
DURATION = 480.0  # protocol seconds: full warmup (10 cycles at 60 s) minus tail
SPEEDUP = 320.0  # => 1.5 wall seconds of real UDP traffic


def _config(transport: str) -> ExperimentConfig:
    return ExperimentConfig(
        seed=11,
        preset="ts-small",
        n_overlay=N_PEERS,
        prop=PROPConfig(policy="G"),
        latency_scale=0.0,  # sim analogue of loopback wire latency (~0 ms)
        transport=transport,
        duration=DURATION,
        sample_interval=DURATION / 2,
        lookups_per_sample=150,
        live_speedup=SPEEDUP,
        trace=True,  # buffered span events for the structural comparison
    )


class TestSimVsRealParity:
    @pytest.fixture(scope="class")
    def planes(self):
        live = run_experiment(_config("udp"))
        sim = run_experiment(_config("sim"))
        return sim, live

    def test_same_substrate_same_baseline(self, planes):
        """t=0 is sampled before any protocol activity: both planes must
        measure the IDENTICAL initial world (same seed -> same hosts,
        same overlay, same oracle -> bitwise-equal first sample)."""
        sim, live = planes
        assert live.initial_lookup_latency == pytest.approx(
            sim.initial_lookup_latency, rel=1e-12
        )
        assert live.stretch[0] == pytest.approx(sim.stretch[0], rel=1e-12)
        assert live.link_stretch[0] == pytest.approx(sim.link_stretch[0], rel=1e-12)

    def test_live_swarm_completes_prop_end_to_end(self, planes):
        _, live = planes
        assert live.probes[-1] > 0
        assert live.exchanges[-1] > 0  # exchanges committed over real UDP
        assert live.net_stats.total_sent > 0
        assert live.net_stats.total_delivered > 0

    def test_probe_activity_within_band(self, planes):
        """Warmup probing is timer-driven (one probe cycle per node per
        init_timer), so probe counts agree tightly even across planes."""
        sim, live = planes
        assert sim.probes[-1] > 0
        assert live.probes[-1] == pytest.approx(sim.probes[-1], rel=0.25)

    def test_exchange_count_within_band(self, planes):
        """Exchange commits depend on which walks race ahead, so the band
        is wider than for probes — but both planes must find improvement
        opportunities at the same order of magnitude."""
        sim, live = planes
        assert sim.exchanges[-1] > 0
        lo = 0.4 * sim.exchanges[-1]
        hi = 2.5 * sim.exchanges[-1]
        assert lo <= live.exchanges[-1] <= hi

    def test_latency_improvement_within_band(self, planes):
        """The paper's headline effect: PROP lowers mean lookup latency.
        Both planes must improve, and by comparable ratios."""
        sim, live = planes
        sim_ratio = sim.improvement_ratio()
        live_ratio = live.improvement_ratio()
        assert sim_ratio < 1.0
        assert live_ratio < 1.0
        assert live_ratio == pytest.approx(sim_ratio, abs=0.15)

    def test_span_trees_structurally_match(self, planes):
        """The causal span trees tell the same story in both planes:
        one tree per probe cycle (so root counts land in the probe
        band) with comparable causal depth — real timing shifts which
        walks win races, not the shape of a PROP exchange."""
        sim, live = planes
        sim_spans = assemble_spans(sim.trace)
        live_spans = assemble_spans(live.trace)
        # no orphan roots, no instrumentation bugs on either plane
        assert sim_spans.clean and live_spans.clean
        assert sim_spans.trees and live_spans.trees
        assert len(live_spans.trees) == pytest.approx(
            len(sim_spans.trees), rel=0.25
        )
        def mean_depth(analysis):
            depths = [t.depth for t in analysis.trees]
            return sum(depths) / len(depths)
        assert mean_depth(live_spans) == pytest.approx(
            mean_depth(sim_spans), rel=0.5
        )
        # walks actually chained hops over the real wire
        assert max(t.depth for t in live_spans.trees) >= 3

    def test_message_accounting_consistent(self, planes):
        """Every protocol message the live engine sent went through the
        real codec and the real kernel; sends and deliveries must agree
        modulo in-flight datagrams at shutdown."""
        _, live = planes
        stats = live.net_stats
        assert stats.total_delivered <= stats.total_sent
        # loopback under this light load should lose (almost) nothing
        assert stats.total_delivered >= 0.95 * stats.total_sent
