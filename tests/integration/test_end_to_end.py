"""End-to-end runs across every overlay family and optimizer."""

import numpy as np
import pytest

from repro.baselines.ltm import LTMConfig
from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig, run_experiment

FAST = dict(
    preset="ts-small",
    n_overlay=80,
    duration=900.0,
    sample_interval=300.0,
    lookups_per_sample=100,
)


@pytest.mark.parametrize("kind", ["gnutella", "chord", "can", "pastry", "kademlia"])
def test_prop_g_runs_on_every_overlay(kind):
    """The protocol-independence claim: PROP-G deploys unchanged on
    unstructured and structured overlays alike."""
    cfg = ExperimentConfig(overlay_kind=kind, prop=PROPConfig(policy="G"), **FAST)
    r = run_experiment(cfg)
    assert r.final_counters.exchanges > 0
    assert np.all(np.isfinite(r.lookup_latency))
    # optimization never increases the link-stretch objective
    assert r.link_stretch[-1] < r.link_stretch[0]


def test_prop_o_improves_gnutella():
    cfg = ExperimentConfig(prop=PROPConfig(policy="O"), **FAST)
    r = run_experiment(cfg)
    assert r.final_lookup_latency < r.initial_lookup_latency


def test_ltm_improves_gnutella():
    cfg = ExperimentConfig(ltm=LTMConfig(), **FAST)
    r = run_experiment(cfg)
    assert r.final_lookup_latency < r.initial_lookup_latency


def test_chord_stretch_in_paper_range():
    """Unoptimized Chord routing stretch sits in the few-x range the
    paper's Fig. 6 axes show (~3-6 at these scales)."""
    cfg = ExperimentConfig(overlay_kind="chord", **FAST)
    r = run_experiment(cfg)
    assert 1.5 < r.stretch[0] < 10.0


def test_prop_g_chord_reduces_stretch():
    cfg = ExperimentConfig(overlay_kind="chord", prop=PROPConfig(policy="G"), **FAST)
    r = run_experiment(cfg)
    assert r.final_stretch < r.initial_stretch


def test_heterogeneous_world_runs_all_protocols():
    base = ExperimentConfig(
        heterogeneous=True,
        fast_lookup_fraction=0.5,
        flood_ttl=7,
        **FAST,
    )
    for kw in (dict(prop=PROPConfig(policy="G")),
               dict(prop=PROPConfig(policy="O", m=2)), dict(ltm=LTMConfig())):
        r = run_experiment(base.but(**kw))
        assert np.all(np.isfinite(r.lookup_latency))


def test_churn_recovery():
    """After a churn burst, PROP re-optimizes: the final stretch beats the
    immediately-post-burst stretch."""
    from repro.workloads.churn import ChurnConfig

    cfg = ExperimentConfig(
        prop=PROPConfig(policy="G"),
        churn=ChurnConfig(rate_per_node=0.02, start=900.0, stop=1200.0),
        n_spare=40,
        preset="ts-small",
        n_overlay=80,
        duration=3600.0,
        sample_interval=300.0,
        lookups_per_sample=100,
    )
    r = run_experiment(cfg)
    burst_end = np.searchsorted(r.times, 1200.0)
    post_burst = r.link_stretch[burst_end]
    assert r.link_stretch[-1] < post_burst


def test_pns_combination_improves_over_plain_pns():
    """PROP-G layered on PNS ("combined with other recent approaches")
    must not hurt, and typically helps."""
    base = ExperimentConfig(
        overlay_kind="chord",
        pns=True,
        pns_refresh_interval=300.0,
        **FAST,
    )
    plain = run_experiment(base)
    combined = run_experiment(base.but(prop=PROPConfig(policy="G")))
    assert combined.final_lookup_latency <= plain.final_lookup_latency * 1.05


def test_pis_embedding_beats_random_start():
    base = ExperimentConfig(overlay_kind="chord", **FAST)
    rand = run_experiment(base)
    pis = run_experiment(base.but(pis_landmarks=8))
    assert pis.stretch[0] < rand.stretch[0]
