"""Chord structural join/leave: key-range handover semantics."""

import numpy as np
import pytest

from repro.overlay.chord import ChordOverlay


def _free_host(chord):
    used = set(chord.embedding.tolist())
    return next(h for h in range(chord.oracle.n) if h not in used)


def _free_id(chord, rng):
    taken = set(chord.ids.tolist())
    while True:
        cand = int(rng.integers(0, chord.space))
        if cand not in taken:
            return cand


@pytest.fixture()
def small_chord(small_oracle, rngs):
    import numpy as np

    return ChordOverlay.build(
        small_oracle, rngs.stream("chord-small"), embedding=np.arange(40)
    )


class TestJoin:
    def test_ring_grows_and_stays_valid(self, small_chord):
        rng = np.random.default_rng(0)
        nid = _free_id(small_chord, rng)
        bigger = small_chord.with_join(_free_host(small_chord), nid)
        assert bigger.n_slots == small_chord.n_slots + 1
        assert np.all(np.diff(bigger.ids) > 0)
        assert bigger.is_connected()

    def test_newcomer_owns_its_range(self, small_chord):
        rng = np.random.default_rng(1)
        nid = _free_id(small_chord, rng)
        host = _free_host(small_chord)
        old_owner_host = small_chord.host_at(small_chord.owner_of_key(nid))
        bigger = small_chord.with_join(host, nid)
        new_slot = bigger.owner_of_key(nid)
        assert bigger.host_at(new_slot) == host
        # the old owner is now the newcomer's successor (keys just above
        # nid still belong to it)
        succ = bigger.successor_slot(new_slot)
        assert bigger.host_at(succ) == old_owner_host

    def test_other_hosts_keep_identifiers(self, small_chord):
        rng = np.random.default_rng(2)
        nid = _free_id(small_chord, rng)
        bigger = small_chord.with_join(_free_host(small_chord), nid)
        before = dict(zip(small_chord.embedding.tolist(), small_chord.ids.tolist()))
        after = dict(zip(bigger.embedding.tolist(), bigger.ids.tolist()))
        for h, i in before.items():
            assert after[h] == i

    def test_routing_correct_after_join(self, small_chord):
        rng = np.random.default_rng(3)
        bigger = small_chord.with_join(_free_host(small_chord), _free_id(small_chord, rng))
        for _ in range(50):
            src = int(rng.integers(0, bigger.n_slots))
            key = int(rng.integers(0, bigger.space))
            assert bigger.route(src, key)[-1] == bigger.owner_of_key(key)

    def test_duplicate_host_rejected(self, small_chord):
        with pytest.raises(ValueError):
            small_chord.with_join(int(small_chord.embedding[0]), 12345)

    def test_duplicate_id_rejected(self, small_chord):
        with pytest.raises(ValueError):
            small_chord.with_join(_free_host(small_chord), int(small_chord.ids[5]))


class TestLeave:
    def test_keys_pass_to_successor(self, small_chord):
        leaver = 7
        key = int(small_chord.ids[leaver])  # a key the leaver owned
        succ_host = small_chord.host_at(small_chord.successor_slot(leaver))
        smaller = small_chord.with_leave(leaver)
        assert smaller.n_slots == small_chord.n_slots - 1
        assert smaller.host_at(smaller.owner_of_key(key)) == succ_host

    def test_routing_correct_after_leave(self, small_chord):
        smaller = small_chord.with_leave(0)
        rng = np.random.default_rng(4)
        for _ in range(50):
            src = int(rng.integers(0, smaller.n_slots))
            key = int(rng.integers(0, smaller.space))
            assert smaller.route(src, key)[-1] == smaller.owner_of_key(key)

    def test_cannot_shrink_below_two(self, small_oracle, rngs):
        tiny = ChordOverlay.build(
            small_oracle, rngs.stream("tiny"), embedding=np.arange(2)
        )
        with pytest.raises(ValueError):
            tiny.with_leave(0)

    def test_join_then_leave_roundtrip(self, small_chord):
        rng = np.random.default_rng(5)
        nid = _free_id(small_chord, rng)
        bigger = small_chord.with_join(_free_host(small_chord), nid)
        back = bigger.with_leave(bigger.owner_of_key(nid))
        assert np.array_equal(back.ids, small_chord.ids)
        assert np.array_equal(back.embedding, small_chord.embedding)
