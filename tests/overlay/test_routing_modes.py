"""Recursive vs iterative lookup latency models."""

import numpy as np
import pytest

from repro.overlay.routing_modes import iterative_path_latency, recursive_path_latency


def test_recursive_matches_overlay_path_latency(chord):
    path = chord.route(0, int(chord.ids[30]) + 1)
    assert recursive_path_latency(chord, path) == pytest.approx(chord.path_latency(path))


def test_recursive_with_processing(chord):
    path = chord.route(0, int(chord.ids[30]) + 1)
    nd = np.full(chord.n_slots, 4.0)
    assert recursive_path_latency(chord, path, nd) == pytest.approx(
        chord.path_latency(path) + 4.0 * (len(path) - 1)
    )


def test_iterative_single_hop_is_one_way(chord):
    path = [0, 5]
    assert iterative_path_latency(chord, path) == pytest.approx(chord.latency(0, 5))


def test_iterative_counts_round_trips(chord):
    path = [0, 5, 9]
    expected = 2.0 * chord.latency(0, 5) + chord.latency(0, 9)
    assert iterative_path_latency(chord, path) == pytest.approx(expected)


def test_iterative_trivial_path(chord):
    assert iterative_path_latency(chord, [7]) == 0.0


def test_iterative_processing_charged_once_per_contact(chord):
    path = [0, 5, 9]
    nd = np.full(chord.n_slots, 10.0)
    base = iterative_path_latency(chord, path)
    assert iterative_path_latency(chord, path, nd) == pytest.approx(base + 20.0)


def test_iterative_generally_slower_than_recursive(chord):
    """On mismatched topologies round-tripping to the querier dominates."""
    rng = np.random.default_rng(0)
    iterative_total = recursive_total = 0.0
    for _ in range(50):
        src = int(rng.integers(0, chord.n_slots))
        key = int(rng.integers(0, chord.space))
        path = chord.route(src, key)
        iterative_total += iterative_path_latency(chord, path)
        recursive_total += recursive_path_latency(chord, path)
    assert iterative_total > recursive_total


def test_prop_g_helps_iterative_lookups_too(chord):
    """Location-aware placement benefits the costlier routing mode as well."""
    from repro.core.config import PROPConfig
    from repro.core.protocol import PROPEngine
    from repro.netsim.engine import Simulator
    from repro.netsim.rng import RngRegistry

    rng = np.random.default_rng(1)
    queries = [(int(rng.integers(0, chord.n_slots)), int(rng.integers(0, chord.space)))
               for _ in range(60)]

    def mean_iterative():
        return np.mean([
            iterative_path_latency(chord, chord.route(s, k)) for s, k in queries
        ])

    before = mean_iterative()
    sim = Simulator()
    PROPEngine(chord, PROPConfig(policy="G"), sim, RngRegistry(5)).start()
    sim.run_until(1800.0)
    assert mean_iterative() < before
