"""Kademlia: bucket structure, XOR routing, PROP-G compatibility."""

import numpy as np
import pytest

from repro.netsim.rng import RngRegistry
from repro.overlay.kademlia import KademliaOverlay


@pytest.fixture()
def kad(small_oracle, rngs):
    return KademliaOverlay.build(small_oracle, rngs.stream("kad"), k=8)


class TestConstruction:
    def test_connected(self, kad):
        assert kad.is_connected()

    def test_bucket_membership_prefixes(self, kad):
        for u in range(0, kad.n_slots, 7):
            for i, bucket in enumerate(kad.buckets[u]):
                for v in bucket:
                    x = int(kad.ids[u]) ^ int(kad.ids[v])
                    assert kad.bits - x.bit_length() == i

    def test_buckets_truncated_to_k(self, kad):
        for u in range(kad.n_slots):
            for bucket in kad.buckets[u]:
                assert len(bucket) <= kad.k

    def test_bucket_keeps_closest(self, kad):
        """Retained members are the XOR-closest of their prefix class."""
        u = 0
        xor = kad.ids ^ int(kad.ids[u])
        for i, bucket in enumerate(kad.buckets[u]):
            if not bucket:
                continue
            all_members = [
                v for v in range(kad.n_slots)
                if v != u and kad.bits - int(xor[v]).bit_length() == i
            ]
            kept = sorted(int(xor[v]) for v in bucket)
            best = sorted(int(xor[v]) for v in all_members)[: len(bucket)]
            assert kept == best

    def test_duplicate_ids_rejected(self, small_oracle):
        with pytest.raises(ValueError):
            KademliaOverlay(small_oracle, np.arange(3), np.array([1, 1, 2]), bits=8)

    def test_invalid_k_rejected(self, small_oracle, rngs):
        with pytest.raises(ValueError):
            KademliaOverlay.build(small_oracle, rngs.stream("x"), k=0)

    def test_deterministic(self, small_oracle):
        a = KademliaOverlay.build(small_oracle, RngRegistry(5).stream("k"))
        b = KademliaOverlay.build(small_oracle, RngRegistry(5).stream("k"))
        assert np.array_equal(a.ids, b.ids)


class TestRouting:
    def test_reaches_owner(self, kad):
        rng = np.random.default_rng(0)
        for _ in range(200):
            src = int(rng.integers(0, kad.n_slots))
            key = int(rng.integers(0, kad.space))
            assert kad.route(src, key)[-1] == kad.owner_of_key(key)

    def test_xor_distance_strictly_decreases(self, kad):
        rng = np.random.default_rng(1)
        for _ in range(50):
            src = int(rng.integers(0, kad.n_slots))
            key = int(rng.integers(0, kad.space))
            path = kad.route(src, key)
            dists = [kad._xor(s, key) for s in path]
            assert all(b < a for a, b in zip(dists, dists[1:]))

    def test_hops_bounded_by_bits(self, kad):
        rng = np.random.default_rng(2)
        for _ in range(50):
            src = int(rng.integers(0, kad.n_slots))
            key = int(rng.integers(0, kad.space))
            assert len(kad.route(src, key)) - 1 <= kad.bits

    def test_own_key_trivial(self, kad):
        key = int(kad.ids[5])
        assert kad.route(5, key) == [5]

    def test_lookup_latency_with_processing(self, kad):
        key = int(kad.ids[20]) ^ 0xFF
        path = kad.route(0, key)
        nd = np.full(kad.n_slots, 7.0)
        assert kad.lookup_latency(0, key, nd) == pytest.approx(
            kad.path_latency(path) + 7.0 * (len(path) - 1)
        )

    def test_mean_lookup_latency(self, kad):
        queries = np.array([[0, 17], [5, 9999], [30, 123456]])
        expected = np.mean([kad.lookup_latency(int(s), int(k)) for s, k in queries])
        assert kad.mean_lookup_latency(queries) == pytest.approx(expected)


class TestPropGCompatibility:
    def test_rewiring_refused(self, kad):
        from repro.core.config import PROPConfig
        from repro.core.protocol import PROPEngine
        from repro.netsim.engine import Simulator

        with pytest.raises(ValueError):
            PROPEngine(kad, PROPConfig(policy="O"), Simulator(), RngRegistry(1))

    def test_prop_g_engine_optimizes_kademlia(self, kad):
        from repro.core.config import PROPConfig
        from repro.core.protocol import PROPEngine
        from repro.netsim.engine import Simulator

        before = kad.mean_logical_edge_latency()
        edges = set(kad.iter_edges())
        sim = Simulator()
        eng = PROPEngine(kad, PROPConfig(policy="G"), sim, RngRegistry(2))
        eng.start()
        sim.run_until(1800.0)
        assert eng.counters.exchanges > 0
        assert kad.mean_logical_edge_latency() < before
        assert set(kad.iter_edges()) == edges  # structure untouched

    def test_routing_correct_after_swaps(self, kad):
        rng = np.random.default_rng(3)
        for _ in range(30):
            u, v = rng.integers(0, kad.n_slots, size=2)
            if u != v:
                kad.swap_embedding(int(u), int(v))
        for _ in range(50):
            src = int(rng.integers(0, kad.n_slots))
            key = int(rng.integers(0, kad.space))
            assert kad.route(src, key)[-1] == kad.owner_of_key(key)

    def test_copy_independent(self, kad):
        clone = kad.copy()
        clone.swap_embedding(0, 1)
        assert kad.host_at(0) != clone.host_at(0)
