"""Pastry: leaf sets, routing tables, prefix routing."""

import numpy as np
import pytest

from repro.netsim.rng import RngRegistry
from repro.overlay.ids import common_prefix_len, digits_of
from repro.overlay.pastry import PastryOverlay


@pytest.fixture()
def pastry(small_oracle, rngs):
    return PastryOverlay.build(small_oracle, rngs.stream("pastry"))


class TestConstruction:
    def test_connected(self, pastry):
        assert pastry.is_connected()

    def test_leaf_sets_are_ring_closest(self, pastry):
        order = np.argsort(pastry.ids)
        rank = np.empty(pastry.n_slots, dtype=int)
        rank[order] = np.arange(pastry.n_slots)
        n = pastry.n_slots
        for i in range(0, n, 11):
            for j in pastry.leaf_sets[i]:
                dist = min((rank[j] - rank[i]) % n, (rank[i] - rank[j]) % n)
                assert dist <= pastry.leaf_set_size // 2

    def test_routing_table_entries_share_prefix(self, pastry):
        for i in range(0, pastry.n_slots, 9):
            di = pastry.digits[i]
            for (row, digit), j in pastry.routing_tables[i].items():
                dj = pastry.digits[j]
                assert dj[:row] == di[:row]
                assert dj[row] == digit
                assert di[row] != digit

    def test_edges_cover_tables(self, pastry):
        for i in range(0, pastry.n_slots, 13):
            for j in pastry.leaf_sets[i]:
                assert pastry.has_edge(i, j)
            for j in pastry.routing_tables[i].values():
                assert pastry.has_edge(i, j)

    def test_duplicate_ids_rejected(self, small_oracle):
        with pytest.raises(ValueError):
            PastryOverlay(small_oracle, np.arange(3), np.array([1, 1, 2]))

    def test_deterministic(self, small_oracle):
        a = PastryOverlay.build(small_oracle, RngRegistry(5).stream("p"))
        b = PastryOverlay.build(small_oracle, RngRegistry(5).stream("p"))
        assert np.array_equal(a.ids, b.ids)


class TestRouting:
    def test_routes_reach_owner(self, pastry):
        rng = np.random.default_rng(0)
        for _ in range(100):
            src = int(rng.integers(0, pastry.n_slots))
            key = int(rng.integers(0, pastry.space))
            path = pastry.route(src, key)
            assert path[0] == src
            assert path[-1] == pastry.owner_of_key(key)

    def test_prefix_match_improves_monotonically(self, pastry):
        """Along a route, (prefix length, -id distance) never degrades —
        except possibly on the final leaf-set delivery hop, which may
        cross a digit boundary."""
        rng = np.random.default_rng(1)
        for _ in range(30):
            src = int(rng.integers(0, pastry.n_slots))
            key = int(rng.integers(0, pastry.space))
            key_digits = digits_of(key, pastry.base_bits, pastry.n_digits)
            path = pastry.route(src, key)
            scores = [
                (
                    common_prefix_len(pastry.digits[s], key_digits),
                    -pastry._id_distance(int(pastry.ids[s]), key),
                )
                for s in path[:-1]
            ]
            assert all(s2 >= s1 for s1, s2 in zip(scores, scores[1:]))

    def test_hop_count_small(self, pastry):
        rng = np.random.default_rng(2)
        hops = [
            len(pastry.route(int(rng.integers(0, pastry.n_slots)),
                             int(rng.integers(0, pastry.space)))) - 1
            for _ in range(100)
        ]
        assert np.mean(hops) <= pastry.n_digits

    def test_route_to_own_key(self, pastry):
        key = int(pastry.ids[4])
        assert pastry.route(4, key) == [4]

    def test_lookup_latency_with_processing(self, pastry):
        key = int(pastry.ids[20]) + 1
        path = pastry.route(0, key)
        nd = np.full(pastry.n_slots, 5.0)
        assert pastry.lookup_latency(0, key, nd) == pytest.approx(
            pastry.path_latency(path) + 5.0 * (len(path) - 1)
        )


class TestProximityAware:
    def test_proximity_tables_prefer_closer(self, small_oracle):
        plain = PastryOverlay.build(small_oracle, RngRegistry(5).stream("p"))
        prox = PastryOverlay(
            small_oracle,
            plain.embedding.copy(),
            plain.ids.copy(),
            proximity_aware=True,
        )
        emb = plain.embedding
        mat = small_oracle.matrix

        def mean_entry_latency(ov):
            total, count = 0.0, 0
            for i in range(ov.n_slots):
                for j in ov.routing_tables[i].values():
                    total += mat[emb[i], emb[j]]
                    count += 1
            return total / count

        assert mean_entry_latency(prox) <= mean_entry_latency(plain)

    def test_proximity_routing_still_correct(self, small_oracle, rngs):
        prox = PastryOverlay.build(small_oracle, rngs.stream("pp"), proximity_aware=True)
        rng = np.random.default_rng(3)
        for _ in range(50):
            src = int(rng.integers(0, prox.n_slots))
            key = int(rng.integers(0, prox.space))
            assert prox.route(src, key)[-1] == prox.owner_of_key(key)

    def test_swap_preserves_structure(self, pastry):
        edges = set(pastry.iter_edges())
        pastry.swap_embedding(2, 30)
        assert set(pastry.iter_edges()) == edges

    def test_copy_independent(self, pastry):
        clone = pastry.copy()
        clone.swap_embedding(0, 1)
        assert pastry.host_at(0) != clone.host_at(0)
