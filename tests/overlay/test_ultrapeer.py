"""Two-tier ultrapeer Gnutella: structure, restricted flooding, PROP."""

import numpy as np
import pytest

from repro.netsim.rng import RngRegistry
from repro.overlay.ultrapeer import ROLE_ULTRAPEER, UltrapeerGnutellaOverlay


@pytest.fixture()
def two_tier(small_oracle, rngs):
    return UltrapeerGnutellaOverlay.build_two_tier(
        small_oracle, rngs.stream("up"), ultrapeer_fraction=0.25, leaf_degree=2
    )


class TestStructure:
    def test_role_counts(self, two_tier):
        n_up = len(two_tier.ultrapeer_slots)
        assert n_up == round(0.25 * two_tier.n_slots)
        assert n_up + len(two_tier.leaf_slots) == two_tier.n_slots

    def test_leaves_only_touch_ultrapeers(self, two_tier):
        for leaf in two_tier.leaf_slots:
            for nbr in two_tier.neighbor_list(int(leaf)):
                assert two_tier.is_ultrapeer(nbr)

    def test_leaf_degree(self, two_tier):
        for leaf in two_tier.leaf_slots:
            assert two_tier.degree(int(leaf)) == 2

    def test_ultrapeer_mesh_connected(self, two_tier):
        ups = set(two_tier.ultrapeer_slots.tolist())
        start = next(iter(ups))
        seen = {start}
        stack = [start]
        while stack:
            x = stack.pop()
            for y in two_tier.neighbor_list(x):
                if y in ups and y not in seen:
                    seen.add(y)
                    stack.append(y)
        assert seen == ups

    def test_whole_overlay_connected(self, two_tier):
        assert two_tier.is_connected()

    def test_capacity_elects_ultrapeers(self, small_oracle, rngs):
        w = np.ones(small_oracle.n)
        strong = np.arange(0, 16)
        w[strong] = 100.0
        ov = UltrapeerGnutellaOverlay.build_two_tier(
            small_oracle, rngs.stream("up2"),
            ultrapeer_fraction=0.25, capacity_weight=w,
        )
        assert set(ov.ultrapeer_slots.tolist()) == set(strong.tolist())

    def test_validation(self, small_oracle, rngs):
        with pytest.raises(ValueError):
            UltrapeerGnutellaOverlay.build_two_tier(
                small_oracle, rngs.stream("x"), ultrapeer_fraction=1.5
            )
        with pytest.raises(ValueError):
            UltrapeerGnutellaOverlay.build_two_tier(
                small_oracle, rngs.stream("x"), leaf_degree=0
            )


class TestTwoTierFlooding:
    def test_all_nodes_reachable(self, two_tier):
        mat = two_tier.lookup_latency_matrix([int(two_tier.leaf_slots[0])])
        assert np.all(np.isfinite(mat))

    def test_leaves_do_not_forward(self, two_tier):
        """A leaf that is neither source nor destination never shortens a
        path: removing all other leaves leaves distances unchanged."""
        src = int(two_tier.leaf_slots[0])
        dst = int(two_tier.leaf_slots[1])
        full = two_tier.lookup_latency_matrix([src])[0]

        # hand-computed reference: graph of ultrapeer-outgoing edges
        # plus the source's own edges; other leaves are sinks
        from scipy import sparse
        from scipy.sparse import csgraph

        tails, heads, weights = two_tier._directed_weights(None)
        keep = (two_tier.roles[tails] == ROLE_ULTRAPEER) | (tails == src)
        mat = sparse.coo_matrix(
            (weights[keep], (tails[keep], heads[keep])),
            shape=(two_tier.n_slots, two_tier.n_slots),
        ).tocsr()
        ref = csgraph.dijkstra(mat, directed=True, indices=[src])[0]
        assert np.allclose(full, ref)
        # and strictly: the unrestricted flat flood can be faster
        flat = super(UltrapeerGnutellaOverlay, two_tier).lookup_latency_matrix([src])[0]
        assert np.all(flat <= full + 1e-9)

    def test_ttl_bounded(self, two_tier):
        src = int(two_tier.leaf_slots[0])
        m1 = two_tier.lookup_latency_matrix([src], ttl=1)[0]
        reachable = np.isfinite(m1)
        expected = np.zeros(two_tier.n_slots, dtype=bool)
        expected[src] = True
        expected[list(two_tier.neighbors(src))] = True
        assert np.array_equal(reachable, expected)

    def test_mean_lookup_latency_works(self, two_tier):
        from repro.workloads.lookups import uniform_pairs

        pairs = uniform_pairs(two_tier.n_slots, 60, np.random.default_rng(0))
        val = two_tier.mean_lookup_latency(pairs)
        assert np.isfinite(val) and val > 0


class TestPROPCompatibility:
    def test_prop_o_preserves_roles_and_degrees(self, two_tier):
        from repro.core.config import PROPConfig
        from repro.core.protocol import PROPEngine
        from repro.netsim.engine import Simulator

        deg = two_tier.degree_sequence().copy()
        roles = two_tier.roles.copy()
        before = two_tier.total_neighbor_latency()
        sim = Simulator()
        eng = PROPEngine(two_tier, PROPConfig(policy="O", m=1), sim, RngRegistry(7))
        eng.start()
        sim.run_until(1800.0)
        assert np.array_equal(two_tier.degree_sequence(), deg)
        assert np.array_equal(two_tier.roles, roles)
        assert two_tier.total_neighbor_latency() < before
        assert two_tier.is_connected()

    def test_prop_o_never_creates_leaf_leaf_edges(self, two_tier):
        """The two-tier invariant survives arbitrary engine runs because
        incompatible (cross-role) probes are rejected."""
        from repro.core.config import PROPConfig
        from repro.core.protocol import PROPEngine
        from repro.netsim.engine import Simulator

        sim = Simulator()
        eng = PROPEngine(two_tier, PROPConfig(policy="O", m=2), sim, RngRegistry(9))
        eng.start()
        sim.run_until(3600.0)
        assert eng.counters.exchanges > 0
        for leaf in two_tier.leaf_slots:
            for nbr in two_tier.neighbor_list(int(leaf)):
                assert two_tier.is_ultrapeer(nbr)

    def test_cross_role_exchange_incompatible(self, two_tier):
        leaf = int(two_tier.leaf_slots[0])
        up = int(two_tier.ultrapeer_slots[0])
        assert not two_tier.exchange_compatible(leaf, up, "O")
        assert two_tier.exchange_compatible(leaf, up, "G")
        assert two_tier.exchange_compatible(leaf, int(two_tier.leaf_slots[1]), "O")

    def test_prop_g_optimizes_two_tier(self, two_tier):
        from repro.core.config import PROPConfig
        from repro.core.protocol import PROPEngine
        from repro.netsim.engine import Simulator

        before = two_tier.total_neighbor_latency()
        edges = set(two_tier.iter_edges())
        sim = Simulator()
        eng = PROPEngine(two_tier, PROPConfig(policy="G"), sim, RngRegistry(8))
        eng.start()
        sim.run_until(1800.0)
        assert two_tier.total_neighbor_latency() < before
        assert set(two_tier.iter_edges()) == edges  # structure untouched

    def test_copy_preserves_roles(self, two_tier):
        clone = two_tier.copy()
        assert np.array_equal(clone.roles, two_tier.roles)
        clone.swap_embedding(0, 1)
        assert two_tier.host_at(0) != clone.host_at(0)
