"""Chord: finger structure, routing correctness, latency accounting."""

import numpy as np
import pytest

from repro.netsim.rng import RngRegistry
from repro.overlay.chord import ChordOverlay


class TestConstruction:
    def test_ids_sorted_by_slot(self, chord):
        assert np.all(np.diff(chord.ids) > 0)

    def test_connected(self, chord):
        assert chord.is_connected()

    def test_ring_edges_present(self, chord):
        n = chord.n_slots
        for i in range(n):
            assert chord.has_edge(i, (i + 1) % n)

    def test_finger_targets_are_neighbors(self, chord):
        for i in range(chord.n_slots):
            for j in chord.fingers[i]:
                assert chord.has_edge(i, j)

    def test_fingers_sorted_by_cw_distance(self, chord):
        for i in range(chord.n_slots):
            dists = [(int(chord.ids[j]) - int(chord.ids[i])) % chord.space
                     for j in chord.fingers[i]]
            assert dists == sorted(dists)

    def test_finger_is_successor_of_start(self, chord):
        """Every finger target owns some id of the form id_i + 2^k."""
        for i in range(0, chord.n_slots, 7):
            starts = {(int(chord.ids[i]) + (1 << k)) % chord.space for k in range(chord.bits)}
            owners = {chord.owner_of_key(s) for s in starts}
            assert set(chord.fingers[i]) <= owners

    def test_unsorted_ids_rejected(self, small_oracle):
        with pytest.raises(ValueError):
            ChordOverlay(small_oracle, np.arange(4), np.array([5, 3, 9, 12]), bits=8)

    def test_id_out_of_space_rejected(self, small_oracle):
        with pytest.raises(ValueError):
            ChordOverlay(small_oracle, np.arange(3), np.array([1, 2, 300]), bits=8)

    def test_deterministic(self, small_oracle):
        a = ChordOverlay.build(small_oracle, RngRegistry(5).stream("c"))
        b = ChordOverlay.build(small_oracle, RngRegistry(5).stream("c"))
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.embedding, b.embedding)


class TestOwnership:
    def test_exact_id_owned_by_holder(self, chord):
        for i in (0, 3, chord.n_slots - 1):
            assert chord.owner_of_key(int(chord.ids[i])) == i

    def test_key_between_ids_owned_by_successor(self, chord):
        key = int(chord.ids[4]) + 1
        if key != int(chord.ids[5]):
            assert chord.owner_of_key(key) == 5

    def test_wraparound_key(self, chord):
        key = int(chord.ids[-1]) + 1
        if key < chord.space:
            assert chord.owner_of_key(key) == 0


class TestRouting:
    def test_routes_reach_owner(self, chord):
        rng = np.random.default_rng(0)
        for _ in range(100):
            src = int(rng.integers(0, chord.n_slots))
            key = int(rng.integers(0, chord.space))
            path = chord.route(src, key)
            assert path[0] == src
            assert path[-1] == chord.owner_of_key(key)

    def test_path_edges_exist(self, chord):
        rng = np.random.default_rng(1)
        for _ in range(50):
            src = int(rng.integers(0, chord.n_slots))
            key = int(rng.integers(0, chord.space))
            path = chord.route(src, key)
            for a, b in zip(path, path[1:]):
                assert chord.has_edge(a, b)

    def test_hop_count_logarithmic(self, chord):
        rng = np.random.default_rng(2)
        hops = [
            len(chord.route(int(rng.integers(0, chord.n_slots)),
                            int(rng.integers(0, chord.space)))) - 1
            for _ in range(200)
        ]
        # n=64: mean hops should be around log2(64)/2 = 3, certainly < 8
        assert np.mean(hops) < 8

    def test_path_moves_clockwise(self, chord):
        """Greedy routing never overshoots the key."""
        rng = np.random.default_rng(3)
        for _ in range(50):
            src = int(rng.integers(0, chord.n_slots))
            key = int(rng.integers(0, chord.space))
            path = chord.route(src, key)
            dist = [(key - int(chord.ids[s])) % chord.space for s in path[:-1]]
            assert all(d2 < d1 for d1, d2 in zip(dist, dist[1:])) or len(path) <= 2

    def test_route_to_own_key(self, chord):
        key = int(chord.ids[7])
        assert chord.route(7, key) == [7]


class TestLatency:
    def test_path_latency_sums_links(self, chord):
        path = chord.route(0, int(chord.ids[20]) + 1)
        expected = sum(chord.latency(a, b) for a, b in zip(path, path[1:]))
        assert chord.path_latency(path) == pytest.approx(expected)

    def test_processing_charged_at_receivers(self, chord):
        path = chord.route(0, int(chord.ids[20]) + 1)
        nd = np.full(chord.n_slots, 10.0)
        base = chord.path_latency(path)
        assert chord.path_latency(path, nd) == pytest.approx(base + 10.0 * (len(path) - 1))

    def test_mean_lookup_latency(self, chord):
        queries = np.array([[0, 5], [3, 999], [10, 4242]])
        expected = np.mean([chord.lookup_latency(int(s), int(k)) for s, k in queries])
        assert chord.mean_lookup_latency(queries) == pytest.approx(expected)

    def test_mean_lookup_shape_validated(self, chord):
        with pytest.raises(ValueError):
            chord.mean_lookup_latency(np.array([1, 2, 3]))


class TestPropGCompatibility:
    def test_swap_preserves_fingers_and_edges(self, chord):
        edges = set(chord.iter_edges())
        fingers = [list(f) for f in chord.fingers]
        chord.swap_embedding(3, 40)
        assert set(chord.iter_edges()) == edges
        assert [list(f) for f in chord.fingers] == fingers

    def test_swap_changes_route_latency_not_path(self, chord):
        key = int(chord.ids[33]) + 1
        path_before = chord.route(5, key)
        chord.swap_embedding(10, 50)
        assert chord.route(5, key) == path_before

    def test_copy_independent(self, chord):
        clone = chord.copy()
        clone.swap_embedding(0, 1)
        assert chord.host_at(0) != clone.host_at(0) or chord.host_at(1) != clone.host_at(1)
        assert np.array_equal(clone.ids, chord.ids)
