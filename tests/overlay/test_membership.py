"""Structural join/leave: slot bookkeeping and connectivity repair."""

import numpy as np
import pytest

from repro.overlay.base import Overlay
from repro.overlay.gnutella import GnutellaOverlay


class TestAppendPop:
    def test_append_slot(self, small_oracle):
        ov = Overlay(small_oracle, np.arange(5))
        slot = ov.append_slot(10)
        assert slot == 5
        assert ov.n_slots == 6
        assert ov.host_at(5) == 10
        assert ov.degree(5) == 0

    def test_append_used_host_rejected(self, small_oracle):
        ov = Overlay(small_oracle, np.arange(5))
        with pytest.raises(ValueError):
            ov.append_slot(3)

    def test_append_out_of_range_rejected(self, small_oracle):
        ov = Overlay(small_oracle, np.arange(5))
        with pytest.raises(ValueError):
            ov.append_slot(small_oracle.n)

    def test_pop_last_slot(self, small_oracle):
        ov = Overlay(small_oracle, np.arange(5))
        assert ov.pop_slot(4) == 4
        assert ov.n_slots == 4

    def test_pop_middle_slot_renumbers_last(self, small_oracle):
        ov = Overlay(small_oracle, np.arange(5))
        ov.add_edge(4, 0)  # last slot has an edge
        ov.add_edge(4, 2)
        host = ov.pop_slot(1)
        assert host == 1
        assert ov.n_slots == 4
        # slot 1 is now the former slot 4 (host 4) with its edges intact
        assert ov.host_at(1) == 4
        assert ov.has_edge(1, 0) and ov.has_edge(1, 2)
        assert not any(4 in ov.neighbor_list(s) for s in range(4))

    def test_pop_with_edges_rejected(self, small_oracle):
        ov = Overlay(small_oracle, np.arange(5))
        ov.add_edge(1, 2)
        with pytest.raises(ValueError):
            ov.pop_slot(1)

    def test_edge_count_consistent_after_churn(self, small_oracle):
        ov = Overlay(small_oracle, np.arange(5))
        ov.add_edge(0, 4)
        ov.add_edge(1, 4)
        for x in list(ov.neighbor_list(4)):
            ov.remove_edge(4, x)
        ov.pop_slot(4)
        assert ov.n_edges == 0
        assert list(ov.iter_edges()) == []


@pytest.fixture()
def gnutella_sub(small_oracle, rngs):
    """Gnutella over 50 of the 64 oracle members: free hosts exist."""
    import numpy as np
    return GnutellaOverlay.build(
        small_oracle, rngs.stream("gnutella-sub"),
        min_degree=3, embedding=np.arange(50),
    )


class TestGnutellaJoinLeave:
    def test_join_connects_new_peer(self, gnutella_sub):
        gnutella = gnutella_sub
        free_host = next(h for h in range(gnutella.oracle.n)
                         if h not in set(gnutella.embedding.tolist()))
        n0 = gnutella.n_slots
        slot = gnutella.join(free_host, np.random.default_rng(0), degree=4)
        assert slot == n0
        assert gnutella.degree(slot) == 4
        assert gnutella.is_connected()

    def test_join_default_degree_is_min_degree(self, gnutella_sub):
        gnutella = gnutella_sub
        free_host = next(h for h in range(gnutella.oracle.n)
                         if h not in set(gnutella.embedding.tolist()))
        dmin = gnutella.min_degree()
        slot = gnutella.join(free_host, np.random.default_rng(0))
        assert gnutella.degree(slot) == dmin

    def test_leave_preserves_connectivity(self, gnutella):
        rng = np.random.default_rng(1)
        for _ in range(15):
            slot = int(rng.integers(0, gnutella.n_slots))
            gnutella.leave(slot)
            assert gnutella.is_connected()

    def test_leave_returns_host(self, gnutella):
        host = gnutella.host_at(3)
        assert gnutella.leave(3) == host
        assert host not in set(gnutella.embedding.tolist())

    def test_join_leave_roundtrip_count(self, gnutella_sub):
        gnutella = gnutella_sub
        rng = np.random.default_rng(2)
        n0 = gnutella.n_slots
        used = set(gnutella.embedding.tolist())
        free = [h for h in range(gnutella.oracle.n) if h not in used][:5]
        for h in free:
            gnutella.join(h, rng)
        for _ in range(5):
            gnutella.leave(int(rng.integers(0, gnutella.n_slots)))
        assert gnutella.n_slots == n0
        assert gnutella.is_connected()

    def test_lookup_model_survives_membership_change(self, gnutella_sub):
        """Edge-array caches must invalidate across join/leave."""
        gnutella = gnutella_sub
        rng = np.random.default_rng(3)
        _ = gnutella.lookup_latency_matrix([0])  # warm the cache
        free_host = next(h for h in range(gnutella.oracle.n)
                         if h not in set(gnutella.embedding.tolist()))
        slot = gnutella.join(free_host, rng, degree=3)
        mat = gnutella.lookup_latency_matrix([0])
        assert mat.shape == (1, gnutella.n_slots)
        assert np.isfinite(mat[0, slot])
        gnutella.leave(slot)
        mat = gnutella.lookup_latency_matrix([0])
        assert mat.shape == (1, gnutella.n_slots)
