"""Overlay base class: graph ops, embedding, latency views, swap/rewire."""

import numpy as np
import pytest

from repro.overlay.base import Overlay


@pytest.fixture()
def square(small_oracle):
    """4-cycle 0-1-2-3-0 over the first four oracle members."""
    ov = Overlay(small_oracle, np.arange(4))
    for a, b in [(0, 1), (1, 2), (2, 3), (3, 0)]:
        ov.add_edge(a, b)
    return ov


class TestConstruction:
    def test_embedding_must_be_injective(self, small_oracle):
        with pytest.raises(ValueError):
            Overlay(small_oracle, [0, 1, 1])

    def test_embedding_range_checked(self, small_oracle):
        with pytest.raises(ValueError):
            Overlay(small_oracle, [0, small_oracle.n])

    def test_empty_embedding_rejected(self, small_oracle):
        with pytest.raises(ValueError):
            Overlay(small_oracle, [])

    def test_subset_embedding_allowed(self, small_oracle):
        ov = Overlay(small_oracle, [5, 9, 2])
        assert ov.n_slots == 3
        assert ov.host_at(1) == 9


class TestEdges:
    def test_add_and_query(self, square):
        assert square.has_edge(0, 1)
        assert square.has_edge(1, 0)
        assert not square.has_edge(0, 2)
        assert square.n_edges == 4

    def test_self_loop_rejected(self, square):
        with pytest.raises(ValueError):
            square.add_edge(1, 1)

    def test_duplicate_rejected(self, square):
        with pytest.raises(ValueError):
            square.add_edge(0, 1)

    def test_remove(self, square):
        square.remove_edge(0, 1)
        assert not square.has_edge(0, 1)
        assert square.n_edges == 3

    def test_remove_missing_rejected(self, square):
        with pytest.raises(ValueError):
            square.remove_edge(0, 2)

    def test_neighbors(self, square):
        assert square.neighbors(0) == {1, 3}
        assert sorted(square.neighbor_list(2)) == [1, 3]

    def test_degrees(self, square):
        assert square.degree(0) == 2
        assert square.min_degree() == 2
        assert np.array_equal(square.degree_sequence(), [2, 2, 2, 2])

    def test_iter_edges_each_once(self, square):
        edges = list(square.iter_edges())
        assert len(edges) == 4
        assert all(a < b for a, b in edges)

    def test_edge_arrays_cached_and_invalidated(self, square):
        u1, v1 = square.edge_arrays()
        u2, v2 = square.edge_arrays()
        assert u1 is u2  # cached
        square.remove_edge(0, 1)
        u3, _ = square.edge_arrays()
        assert len(u3) == 3

    def test_out_of_range_slot(self, square):
        with pytest.raises(IndexError):
            square.add_edge(0, 99)


class TestLatency:
    def test_latency_matches_oracle(self, square, small_oracle):
        assert square.latency(0, 1) == small_oracle.between(0, 1)

    def test_latencies_from(self, square, small_oracle):
        vec = square.latencies_from(0, [1, 3])
        assert vec[0] == small_oracle.between(0, 1)
        assert vec[1] == small_oracle.between(0, 3)

    def test_neighbor_latency_sum(self, square, small_oracle):
        expected = small_oracle.between(0, 1) + small_oracle.between(0, 3)
        assert square.neighbor_latency_sum(0) == pytest.approx(expected)

    def test_neighbor_latency_sum_isolated(self, small_oracle):
        ov = Overlay(small_oracle, [0, 1])
        assert ov.neighbor_latency_sum(0) == 0.0

    def test_total_neighbor_latency_counts_each_edge_twice(self, square):
        total = sum(square.latency(a, b) for a, b in square.iter_edges())
        assert square.total_neighbor_latency() == pytest.approx(2 * total)

    def test_mean_logical_edge_latency(self, square):
        mean = np.mean([square.latency(a, b) for a, b in square.iter_edges()])
        assert square.mean_logical_edge_latency() == pytest.approx(mean)

    def test_mean_logical_edge_latency_empty(self, small_oracle):
        ov = Overlay(small_oracle, [0, 1])
        assert ov.mean_logical_edge_latency() == 0.0


class TestSwapAndRewire:
    def test_swap_embedding_swaps_hosts(self, square):
        h0, h2 = square.host_at(0), square.host_at(2)
        square.swap_embedding(0, 2)
        assert square.host_at(0) == h2
        assert square.host_at(2) == h0

    def test_swap_preserves_topology(self, square):
        edges_before = set(square.iter_edges())
        square.swap_embedding(1, 3)
        assert set(square.iter_edges()) == edges_before

    def test_swap_changes_latencies_not_structure(self, square):
        before = square.latency(0, 1)
        square.swap_embedding(1, 2)
        after = square.latency(0, 1)
        # host at slot 1 changed, so (generically) the latency changed
        assert square.has_edge(0, 1)
        assert after == square.oracle.between(square.host_at(0), square.host_at(1))
        assert before == square.oracle.between(square.host_at(0), square.host_at(2))

    def test_rewire_moves_edge(self, square):
        square.rewire(0, 1, 2, 0)
        assert not square.has_edge(0, 1)
        assert square.has_edge(0, 2)
        assert square.n_edges == 4

    def test_slot_of_host_inverse(self, square):
        inv = square.slot_of_host()
        for slot in range(square.n_slots):
            assert inv[square.host_at(slot)] == slot

    def test_versions_bump(self, square):
        t0, e0 = square.topology_version, square.embedding_version
        square.swap_embedding(0, 1)
        assert square.embedding_version == e0 + 1
        assert square.topology_version == t0
        square.remove_edge(0, 1)
        assert square.topology_version > t0


class TestViewsAndCopy:
    def test_to_networkx(self, square):
        g = square.to_networkx()
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 4

    def test_is_connected(self, square):
        assert square.is_connected()
        square.remove_edge(0, 1)
        assert square.is_connected()  # still a path
        square.remove_edge(0, 3)
        assert not square.is_connected()  # slot 0 isolated

    def test_copy_is_independent(self, square):
        clone = square.copy()
        clone.remove_edge(0, 1)
        clone.swap_embedding(0, 2)
        assert square.has_edge(0, 1)
        assert square.host_at(0) == 0
