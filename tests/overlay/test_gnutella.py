"""Gnutella overlay: construction guarantees and the flooding lookup model."""

import numpy as np
import pytest

from repro.netsim.rng import RngRegistry
from repro.overlay.gnutella import GnutellaOverlay


class TestBuild:
    def test_connected(self, gnutella):
        assert gnutella.is_connected()

    def test_min_degree_enforced(self, gnutella):
        assert gnutella.min_degree() >= 3

    def test_too_few_nodes_rejected(self, small_oracle, rngs):
        with pytest.raises(ValueError):
            GnutellaOverlay.build(
                small_oracle, rngs.stream("x"), min_degree=4, embedding=np.arange(4)
            )

    def test_deterministic(self, small_oracle):
        a = GnutellaOverlay.build(small_oracle, RngRegistry(5).stream("g"))
        b = GnutellaOverlay.build(small_oracle, RngRegistry(5).stream("g"))
        assert set(a.iter_edges()) == set(b.iter_edges())

    def test_capacity_weight_biases_degree(self, small_oracle):
        n = small_oracle.n
        w = np.ones(n)
        heavy = np.arange(0, n, 2)
        w[heavy] = 10.0
        ov = GnutellaOverlay.build(
            small_oracle,
            RngRegistry(5).stream("g"),
            min_degree=3,
            mean_extra_degree=3.0,
            capacity_weight=w,
        )
        deg = ov.degree_sequence()
        light = np.setdiff1d(np.arange(n), heavy)
        assert deg[heavy].mean() > deg[light].mean()

    def test_capacity_weight_validated(self, small_oracle, rngs):
        with pytest.raises(ValueError):
            GnutellaOverlay.build(
                small_oracle, rngs.stream("g"), capacity_weight=np.zeros(small_oracle.n)
            )

    def test_sub_embedding(self, small_oracle, rngs):
        emb = np.arange(20)
        ov = GnutellaOverlay.build(small_oracle, rngs.stream("g"), embedding=emb, min_degree=3)
        assert ov.n_slots == 20


class TestLookupModel:
    def test_neighbor_lookup_is_edge_latency(self, gnutella):
        a = 0
        b = next(iter(gnutella.neighbors(a)))
        assert gnutella.lookup_latency(a, b) == pytest.approx(gnutella.latency(a, b))

    def test_self_lookup_zero(self, gnutella):
        assert gnutella.lookup_latency(3, 3) == 0.0

    def test_lookup_is_min_path(self, gnutella):
        """Unbounded lookup latency equals networkx weighted shortest path."""
        import networkx as nx

        g = nx.Graph()
        for a, b in gnutella.iter_edges():
            g.add_edge(a, b, weight=gnutella.latency(a, b))
        src = 0
        lengths = nx.single_source_dijkstra_path_length(g, src)
        mat = gnutella.lookup_latency_matrix([src])
        for dst in (1, 5, 17, 33):
            assert mat[0, dst] == pytest.approx(lengths[dst])

    def test_ttl_bounds_scope(self, gnutella):
        mat1 = gnutella.lookup_latency_matrix([0], ttl=1)
        reachable_1 = np.isfinite(mat1[0])
        expected = np.zeros(gnutella.n_slots, dtype=bool)
        expected[0] = True
        expected[list(gnutella.neighbors(0))] = True
        assert np.array_equal(reachable_1, expected)

    def test_ttl_monotone(self, gnutella):
        m2 = gnutella.lookup_latency_matrix([0], ttl=2)[0]
        m4 = gnutella.lookup_latency_matrix([0], ttl=4)[0]
        assert np.all(m4 <= m2 + 1e-9)

    def test_large_ttl_matches_unbounded(self, gnutella):
        bounded = gnutella.lookup_latency_matrix([0], ttl=gnutella.n_slots)[0]
        exact = gnutella.lookup_latency_matrix([0])[0]
        assert np.allclose(bounded, exact)

    def test_ttl_can_force_longer_hops_not_shorter_latency(self, gnutella):
        """A small TTL can only increase latency (fewer paths allowed)."""
        exact = gnutella.lookup_latency_matrix([0])[0]
        m3 = gnutella.lookup_latency_matrix([0], ttl=3)[0]
        finite = np.isfinite(m3)
        assert np.all(m3[finite] >= exact[finite] - 1e-9)

    def test_node_delay_charged_at_intermediates(self, gnutella):
        nd = np.zeros(gnutella.n_slots)
        nd[:] = 7.0
        # destination processing excluded by default
        a = 0
        b = next(iter(gnutella.neighbors(a)))
        lat = gnutella.lookup_latency(a, b, node_delay=nd)
        assert lat == pytest.approx(gnutella.latency(a, b))
        lat_charged = gnutella.lookup_latency(a, b, node_delay=nd, charge_destination=True)
        assert lat_charged == pytest.approx(gnutella.latency(a, b) + 7.0)

    def test_node_delay_shape_validated(self, gnutella):
        with pytest.raises(ValueError):
            gnutella.lookup_latency_matrix([0], node_delay=np.zeros(3))

    def test_mean_lookup_latency(self, gnutella):
        pairs = np.array([[0, 1], [2, 3], [4, 5]])
        vals = [gnutella.lookup_latency(a, b) for a, b in pairs]
        assert gnutella.mean_lookup_latency(pairs) == pytest.approx(np.mean(vals))

    def test_mean_lookup_bad_shape_rejected(self, gnutella):
        with pytest.raises(ValueError):
            gnutella.mean_lookup_latency(np.array([0, 1, 2]))

    def test_success_rate(self, gnutella):
        pairs = np.array([[0, d] for d in range(1, 20)])
        assert gnutella.lookup_success_rate(pairs, ttl=None) == 1.0
        sr1 = gnutella.lookup_success_rate(pairs, ttl=1)
        assert 0.0 <= sr1 <= 1.0

    def test_retry_timeout_penalizes_failures(self, gnutella):
        # build a pair set that includes unreachable-at-ttl-1 targets
        mat1 = gnutella.lookup_latency_matrix([0], ttl=1)[0]
        far = int(np.flatnonzero(~np.isfinite(mat1))[0])
        pairs = np.array([[0, far]])
        with_retry = gnutella.mean_lookup_latency(pairs, ttl=1, retry_timeout=1000.0)
        exact = gnutella.lookup_latency(0, far)
        assert with_retry == pytest.approx(1000.0 + exact)

    def test_invalid_ttl_rejected(self, gnutella):
        with pytest.raises(ValueError):
            gnutella.lookup_latency_matrix([0], ttl=-1)

    def test_copy_preserves_type_and_graph(self, gnutella):
        clone = gnutella.copy()
        assert isinstance(clone, GnutellaOverlay)
        assert set(clone.iter_edges()) == set(gnutella.iter_edges())
        clone.swap_embedding(0, 1)
        assert gnutella.host_at(0) == 0
