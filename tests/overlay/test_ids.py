"""Identifier-space helpers."""

import numpy as np
import pytest

from repro.overlay.ids import (
    common_prefix_len,
    digits_of,
    ring_between,
    ring_distance_cw,
    unique_ids,
)


class TestUniqueIds:
    def test_distinct_and_in_range(self):
        rng = np.random.default_rng(0)
        ids = unique_ids(100, 10, rng)
        assert len(np.unique(ids)) == 100
        assert ids.min() >= 0 and ids.max() < 1024

    def test_dense_regime_full_space(self):
        rng = np.random.default_rng(0)
        ids = unique_ids(8, 3, rng)
        assert sorted(ids) == list(range(8))

    def test_too_many_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            unique_ids(9, 3, rng)

    def test_deterministic(self):
        a = unique_ids(50, 16, np.random.default_rng(7))
        b = unique_ids(50, 16, np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestRingMath:
    def test_cw_distance(self):
        assert ring_distance_cw(1, 5, 3) == 4
        assert ring_distance_cw(5, 1, 3) == 4  # wraps: 8 - 4
        assert ring_distance_cw(3, 3, 3) == 0

    def test_between_basic(self):
        # interval (2, 6] on an 8-ring
        assert ring_between(3, 2, 6, 3)
        assert ring_between(6, 2, 6, 3)
        assert not ring_between(2, 2, 6, 3)
        assert not ring_between(7, 2, 6, 3)

    def test_between_wrapping(self):
        # interval (6, 2] wraps through 0
        assert ring_between(7, 6, 2, 3)
        assert ring_between(0, 6, 2, 3)
        assert ring_between(2, 6, 2, 3)
        assert not ring_between(5, 6, 2, 3)

    def test_degenerate_interval_is_whole_ring(self):
        assert ring_between(0, 4, 4, 3)
        assert ring_between(4, 4, 4, 3)


class TestDigits:
    def test_digits_roundtrip(self):
        d = digits_of(0xBEEF, 4, 4)
        assert d == (0xB, 0xE, 0xE, 0xF)

    def test_leading_zeros(self):
        assert digits_of(1, 4, 4) == (0, 0, 0, 1)

    def test_common_prefix(self):
        assert common_prefix_len((1, 2, 3), (1, 2, 4)) == 2
        assert common_prefix_len((1, 2), (1, 2)) == 2
        assert common_prefix_len((5,), (6,)) == 0
