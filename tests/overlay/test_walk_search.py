"""k-walker random-walk search."""

import numpy as np
import pytest


def _rng(seed=0):
    return np.random.default_rng(seed)


def test_self_search_is_free(gnutella):
    assert gnutella.walk_search_latency(3, 3, _rng()) == 0.0


def test_finds_target_with_enough_walkers(gnutella):
    lat = gnutella.walk_search_latency(0, 20, _rng(), walkers=32, max_steps=256)
    assert np.isfinite(lat)


def test_never_beats_min_latency_path(gnutella):
    optimal = gnutella.lookup_latency(0, 20)
    found = gnutella.walk_search_latency(0, 20, _rng(), walkers=32, max_steps=256)
    assert found >= optimal - 1e-9


def test_more_walkers_never_slower_in_expectation(gnutella):
    few = np.mean([
        gnutella.walk_search_latency(0, 30, _rng(s), walkers=2, max_steps=64)
        for s in range(20) if np.isfinite(
            gnutella.walk_search_latency(0, 30, _rng(s), walkers=2, max_steps=64))
    ])
    many = np.mean([
        gnutella.walk_search_latency(0, 30, _rng(s), walkers=32, max_steps=64)
        for s in range(20)
    ])
    assert many <= few


def test_unreachable_within_budget_is_inf(gnutella):
    lat = gnutella.walk_search_latency(0, 40, _rng(), walkers=1, max_steps=1)
    # one single step almost surely misses a specific far target
    if 40 not in gnutella.neighbors(0):
        assert np.isinf(lat)


def test_processing_delay_increases_latency(gnutella):
    nd = np.full(gnutella.n_slots, 50.0)
    base = gnutella.walk_search_latency(0, 20, _rng(1), walkers=16, max_steps=128)
    slow = gnutella.walk_search_latency(0, 20, _rng(1), walkers=16, max_steps=128, node_delay=nd)
    if np.isfinite(base) and np.isfinite(slow):
        assert slow >= base


def test_validation(gnutella):
    with pytest.raises(ValueError):
        gnutella.walk_search_latency(0, 1, _rng(), walkers=0)
    with pytest.raises(ValueError):
        gnutella.walk_search_latency(0, 1, _rng(), max_steps=0)
