"""CAN: zone tiling, adjacency, greedy routing."""

import numpy as np
import pytest

from repro.netsim.rng import RngRegistry
from repro.overlay.can import CANOverlay, Zone


@pytest.fixture()
def can(small_oracle, rngs):
    return CANOverlay.build(small_oracle, rngs.stream("can"), dims=2)


class TestZone:
    def test_contains(self):
        z = Zone(np.array([0.0, 0.0]), np.array([0.5, 1.0]))
        assert z.contains(np.array([0.25, 0.5]))
        assert not z.contains(np.array([0.5, 0.5]))  # hi excluded
        assert z.contains(np.array([0.0, 0.0]))  # lo included

    def test_volume(self):
        z = Zone(np.array([0.0, 0.25]), np.array([0.5, 0.75]))
        assert z.volume() == pytest.approx(0.25)

    def test_split_halves_widest(self):
        z = Zone(np.array([0.0, 0.0]), np.array([1.0, 0.5]))
        low, high = z.split()
        assert low.hi[0] == pytest.approx(0.5)
        assert high.lo[0] == pytest.approx(0.5)
        assert low.volume() + high.volume() == pytest.approx(z.volume())


class TestBuild:
    def test_zones_tile_the_torus(self, can):
        assert can.total_zone_volume() == pytest.approx(1.0)

    def test_zones_disjoint(self, can):
        """Random points are contained in exactly one zone."""
        rng = np.random.default_rng(0)
        for _ in range(200):
            p = rng.random(2)
            owners = [s for s, z in enumerate(can.zones) if z.contains(p)]
            assert len(owners) == 1

    def test_connected(self, can):
        assert can.is_connected()

    def test_every_zone_has_neighbors(self, can):
        assert can.min_degree() >= 1

    def test_1d_can(self, small_oracle, rngs):
        ov = CANOverlay.build(small_oracle, rngs.stream("can1"), dims=1)
        assert ov.total_zone_volume() == pytest.approx(1.0)
        assert ov.is_connected()
        # 1-D torus: every node has exactly two neighbors (left/right),
        # except degenerate duplicates merged by adjacency
        assert ov.min_degree() >= 1

    def test_3d_can(self, small_oracle, rngs):
        ov = CANOverlay.build(small_oracle, rngs.stream("can3"), dims=3)
        assert ov.total_zone_volume() == pytest.approx(1.0)
        assert ov.is_connected()

    def test_invalid_dims_rejected(self, small_oracle, rngs):
        with pytest.raises(ValueError):
            CANOverlay.build(small_oracle, rngs.stream("x"), dims=0)

    def test_deterministic(self, small_oracle):
        a = CANOverlay.build(small_oracle, RngRegistry(5).stream("can"))
        b = CANOverlay.build(small_oracle, RngRegistry(5).stream("can"))
        assert set(a.iter_edges()) == set(b.iter_edges())


class TestRouting:
    def test_owner_of_point(self, can):
        rng = np.random.default_rng(1)
        for _ in range(50):
            p = rng.random(2)
            owner = can.owner_of_point(p)
            assert can.zones[owner].contains(p)

    def test_route_reaches_owner(self, can):
        rng = np.random.default_rng(2)
        for _ in range(50):
            src = int(rng.integers(0, can.n_slots))
            p = rng.random(2)
            path = can.route(src, p)
            assert path[0] == src
            assert path[-1] == can.owner_of_point(p)

    def test_route_uses_edges(self, can):
        rng = np.random.default_rng(3)
        for _ in range(25):
            src = int(rng.integers(0, can.n_slots))
            p = rng.random(2)
            path = can.route(src, p)
            for a, b in zip(path, path[1:]):
                assert can.has_edge(a, b)

    def test_route_to_own_zone(self, can):
        p = can.zones[5].center()
        assert can.route(5, p) == [5]

    def test_path_latency_with_processing(self, can):
        p = can.zones[10].center()
        path = can.route(0, p)
        nd = np.full(can.n_slots, 3.0)
        base = can.path_latency(path)
        assert can.path_latency(path, nd) == pytest.approx(base + 3.0 * (len(path) - 1))

    def test_swap_embedding_preserves_zones(self, can):
        zones_before = can.zones
        edges_before = set(can.iter_edges())
        can.swap_embedding(0, 5)
        assert can.zones is zones_before
        assert set(can.iter_edges()) == edges_before

    def test_copy_independent(self, can):
        clone = can.copy()
        clone.swap_embedding(0, 1)
        assert can.host_at(0) != clone.host_at(0)
