"""Chord failure-aware routing: successor lists, dead-node skipping."""

import numpy as np
import pytest

from repro.core.exchange import execute_prop_g


class TestSuccessorList:
    def test_contents(self, chord):
        lst = chord.successor_list(5, 3)
        assert lst == [6, 7, 8]

    def test_wraps(self, chord):
        n = chord.n_slots
        assert chord.successor_list(n - 1, 2) == [0, 1]

    def test_size_validated(self, chord):
        with pytest.raises(ValueError):
            chord.successor_list(0, 0)
        with pytest.raises(ValueError):
            chord.successor_list(0, chord.n_slots)


class TestAliveOwner:
    def test_all_alive_matches_plain_owner(self, chord):
        alive = np.ones(chord.n_slots, dtype=bool)
        rng = np.random.default_rng(0)
        for _ in range(30):
            key = int(rng.integers(0, chord.space))
            assert chord.owner_of_key_alive(key, alive) == chord.owner_of_key(key)

    def test_dead_owner_falls_to_next_alive(self, chord):
        alive = np.ones(chord.n_slots, dtype=bool)
        key = int(chord.ids[10])
        alive[10] = False
        assert chord.owner_of_key_alive(key, alive) == 11

    def test_all_dead_raises(self, chord):
        alive = np.zeros(chord.n_slots, dtype=bool)
        with pytest.raises(RuntimeError):
            chord.owner_of_key_alive(0, alive)


class TestFailureRouting:
    def _random_failures(self, chord, frac, seed):
        rng = np.random.default_rng(seed)
        alive = np.ones(chord.n_slots, dtype=bool)
        dead = rng.choice(chord.n_slots, size=int(frac * chord.n_slots), replace=False)
        alive[dead] = False
        return alive, rng

    def test_no_failures_matches_plain_route(self, chord):
        alive = np.ones(chord.n_slots, dtype=bool)
        rng = np.random.default_rng(1)
        for _ in range(30):
            src = int(rng.integers(0, chord.n_slots))
            key = int(rng.integers(0, chord.space))
            assert chord.route_with_failures(src, key, alive) == chord.route(src, key)

    @pytest.mark.parametrize("frac", [0.05, 0.15, 0.25])
    def test_lookups_survive_random_failures(self, chord, frac):
        alive, rng = self._random_failures(chord, frac, seed=2)
        for _ in range(50):
            src = int(rng.choice(np.flatnonzero(alive)))
            key = int(rng.integers(0, chord.space))
            path = chord.route_with_failures(src, key, alive)
            assert path[-1] == chord.owner_of_key_alive(key, alive)
            assert all(alive[s] for s in path)

    def test_dead_source_rejected(self, chord):
        alive = np.ones(chord.n_slots, dtype=bool)
        alive[3] = False
        with pytest.raises(ValueError):
            chord.route_with_failures(3, 0, alive)

    def test_broken_ring_detected(self, chord):
        """Killing a contiguous run longer than the successor list makes
        routing through that arc impossible."""
        alive = np.ones(chord.n_slots, dtype=bool)
        alive[10:30] = False  # 20 consecutive dead slots
        with pytest.raises(RuntimeError):
            # force traversal into the dead arc with a tiny successor list
            chord.route_with_failures(
                9, int(chord.ids[31]), alive, successor_list_size=2
            )

    def test_prop_g_does_not_hurt_resilience(self, chord):
        """PROP-G swaps embeddings only; which *slots* are routable under
        a failure pattern is untouched (the cited resilience concern)."""
        alive, rng = self._random_failures(chord, 0.15, seed=3)
        queries = [
            (int(rng.choice(np.flatnonzero(alive))), int(rng.integers(0, chord.space)))
            for _ in range(30)
        ]
        paths_before = [chord.route_with_failures(s, k, alive) for s, k in queries]
        for _ in range(25):
            u, v = rng.integers(0, chord.n_slots, size=2)
            if u != v:
                execute_prop_g(chord, int(u), int(v))
        paths_after = [chord.route_with_failures(s, k, alive) for s, k in queries]
        assert paths_before == paths_after  # identical slot paths
