"""Directory reports over stored results."""

import json

import pytest

from repro.analysis.tables import describe_config, summarize_directory
from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.persistence import save_result

FAST = dict(
    preset="ts-small",
    n_overlay=60,
    duration=300.0,
    sample_interval=150.0,
    lookups_per_sample=30,
)


@pytest.fixture(scope="module")
def study_dir(tmp_path_factory):
    d = tmp_path_factory.mktemp("study")
    save_result(run_experiment(ExperimentConfig(**FAST)), d / "a_plain.json")
    save_result(
        run_experiment(ExperimentConfig(prop=PROPConfig(policy="G"), **FAST)),
        d / "b_propg.json",
    )
    return d


class TestDescribe:
    def test_plain(self):
        assert describe_config(
            {"overlay_kind": "chord", "n_overlay": 10, "preset": "ts-large"}) == \
            "chord n=10 none ts-large"

    def test_prop_o(self):
        desc = describe_config({
            "overlay_kind": "gnutella", "n_overlay": 5,
            "prop": {"policy": "O", "m": 2}, "preset": "ts-small",
            "heterogeneous": True,
        })
        assert "PROP-O m=2" in desc and "het" in desc


class TestSummarizeDirectory:
    def test_tabulates_all_records(self, study_dir):
        out = summarize_directory(study_dir)
        assert "a_plain.json" in out and "b_propg.json" in out
        assert "PROP-G" in out and "none" in out

    def test_skips_foreign_json(self, study_dir):
        (study_dir / "notes.json").write_text(json.dumps({"hello": 1}))
        out = summarize_directory(study_dir)
        assert "skipped" in out and "notes.json" in out

    def test_metric_selectable(self, study_dir):
        out = summarize_directory(study_dir, metric="link_stretch")
        assert "link_stretch" in out

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            summarize_directory(tmp_path)

    def test_non_dir_rejected(self, study_dir):
        with pytest.raises(ValueError):
            summarize_directory(study_dir / "a_plain.json")


def test_cli_report(study_dir, capsys):
    from repro.cli import main

    assert main(["report", str(study_dir)]) == 0
    out = capsys.readouterr().out
    assert "deployment" in out and "final/initial" in out
