"""Paired statistical comparison of replicated runs."""

import pytest

from repro.analysis.stats import compare_replicated
from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig
from repro.harness.replicate import replicate

FAST = ExperimentConfig(
    preset="ts-small",
    n_overlay=60,
    duration=900.0,
    sample_interval=450.0,
    lookups_per_sample=60,
)

SEEDS = [1, 2, 3, 4, 5]


@pytest.fixture(scope="module")
def plain_summary():
    return replicate(FAST, SEEDS)


@pytest.fixture(scope="module")
def prop_summary():
    return replicate(FAST.but(prop=PROPConfig(policy="G")), SEEDS)


def test_prop_g_significantly_better(plain_summary, prop_summary):
    cmp = compare_replicated(plain_summary, prop_summary)
    assert cmp.n_pairs == 5
    assert cmp.mean_diff < 0  # B (PROP-G) lower latency
    assert cmp.significant
    assert cmp.verdict() == "B lower (better)"
    assert cmp.t_pvalue < 0.05


def test_self_comparison_not_significant(plain_summary):
    cmp = compare_replicated(plain_summary, plain_summary)
    assert cmp.mean_diff == 0.0
    assert not cmp.significant or cmp.ci_low == cmp.ci_high == 0.0
    assert cmp.wilcoxon_pvalue == 1.0


def test_mismatched_seeds_rejected(plain_summary):
    other = replicate(FAST, [7, 8])
    with pytest.raises(ValueError):
        compare_replicated(plain_summary, other)


def test_single_replica_rejected():
    one = replicate(FAST, [1])
    with pytest.raises(ValueError):
        compare_replicated(one, one)


def test_confidence_validated(plain_summary):
    with pytest.raises(ValueError):
        compare_replicated(plain_summary, plain_summary, confidence=1.5)


def test_metric_selectable(plain_summary, prop_summary):
    cmp = compare_replicated(plain_summary, prop_summary, metric="link_stretch")
    assert cmp.metric == "link_stretch"
    assert cmp.mean_diff < 0
