"""CLI: argument mapping, output, and error handling."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.overlay == "gnutella"
        assert args.n == 1000
        assert args.policy is None and not args.ltm

    def test_policy_and_ltm_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "G", "--ltm"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_overlay_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--overlay", "napster"])


class TestPresetsCommand:
    def test_lists_both_presets(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "ts-large" in out and "ts-small" in out
        assert "6100" in out and "6010" in out


class TestRunCommand:
    COMMON = [
        "run", "--preset", "ts-small", "--n", "60",
        "--duration", "300", "--sample-interval", "150", "--lookups", "40",
    ]

    def test_plain_run(self, capsys):
        assert main(self.COMMON) == 0
        out = capsys.readouterr().out
        assert "lookup latency" in out
        assert "gnutella / none" in out

    def test_prop_g_run(self, capsys):
        assert main(self.COMMON + ["--policy", "G"]) == 0
        out = capsys.readouterr().out
        assert "PROP-G" in out
        assert "exchanges" in out

    def test_prop_o_run_with_m(self, capsys):
        assert main(self.COMMON + ["--policy", "O", "--m", "2"]) == 0
        assert "PROP-O" in capsys.readouterr().out

    def test_ltm_run(self, capsys):
        assert main(self.COMMON + ["--ltm"]) == 0
        assert "LTM" in capsys.readouterr().out

    def test_chord_run(self, capsys):
        argv = [a for a in self.COMMON] + ["--overlay", "chord", "--policy", "G"]
        assert main(argv) == 0
        assert "chord / PROP-G" in capsys.readouterr().out

    def test_invalid_combination_surfaces_config_error(self):
        with pytest.raises(ValueError):
            main(self.COMMON + ["--overlay", "chord", "--policy", "O"])


class TestTransportFlags:
    """Smoke tests for the message-plane flags on ``run``."""

    COMMON = [
        "run", "--preset", "ts-small", "--n", "60", "--policy", "G",
        "--duration", "300", "--sample-interval", "150", "--lookups", "40",
    ]

    def test_sim_transport_run(self, capsys):
        assert main(self.COMMON + ["--transport", "sim"]) == 0
        out = capsys.readouterr().out
        assert "PROP-G" in out
        assert "transport.sent" in out and "transport.dropped" in out

    def test_net_table_is_single_merged_table(self, capsys):
        """NetCounters and transport.stats appear once, in one table."""
        assert main(self.COMMON + ["--transport", "sim", "--loss", "0.1"]) == 0
        out = capsys.readouterr().out
        # the pinned column set of the merged table
        assert "metric" in out and "value" in out
        # the legacy two-surface summary lines are gone
        assert "messages:" not in out
        # both planes are sourced from the one registry
        assert out.count("transport.sent ") == 1
        assert "net.walk_timeouts" in out

    def test_lossy_partitioned_run(self, capsys):
        argv = self.COMMON + ["--transport", "sim", "--loss", "0.1",
                              "--partition", "a:b"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "transport.drop_reason.loss" in out
        assert "transport.drop_reason.partition" in out

    def test_transient_partition_spec_accepted(self, capsys):
        argv = self.COMMON + ["--transport", "sim",
                              "--partition", "a:b@60-120"]
        assert main(argv) == 0
        assert "transport.sent" in capsys.readouterr().out

    def test_loss_requires_sim_transport(self):
        with pytest.raises(SystemExit):
            main(self.COMMON + ["--loss", "0.1"])

    def test_partition_requires_sim_transport(self):
        with pytest.raises(SystemExit):
            main(self.COMMON + ["--partition", "a:b"])

    def test_transport_requires_prop_policy(self):
        argv = [a for a in self.COMMON if a not in ("--policy", "G")]
        with pytest.raises(SystemExit):
            main(argv + ["--transport", "sim"])

    def test_transport_rejects_ltm(self):
        argv = [a for a in self.COMMON if a not in ("--policy", "G")]
        with pytest.raises(SystemExit):
            main(argv + ["--ltm", "--transport", "sim"])

    def test_invalid_loss_surfaces_config_error(self):
        with pytest.raises(ValueError):
            main(self.COMMON + ["--transport", "sim", "--loss", "1.5"])

    def test_malformed_partition_spec_rejected(self):
        with pytest.raises(ValueError):
            main(self.COMMON + ["--transport", "sim", "--partition", "oops"])


class TestObservabilityFlags:
    """--trace / --report / --profile on ``run``."""

    COMMON = [
        "run", "--preset", "ts-small", "--n", "60", "--policy", "G",
        "--duration", "300", "--sample-interval", "150", "--lookups", "20",
    ]

    def test_trace_writes_parseable_jsonl(self, tmp_path, capsys):
        from repro.obs.events import events_from_jsonl

        path = tmp_path / "trace.jsonl"
        argv = self.COMMON + ["--transport", "sim", "--trace", str(path)]
        assert main(argv) == 0
        events = events_from_jsonl(path.read_text())
        assert events, "a PROP run must emit events"
        assert {e.etype for e in events} >= {"PROBE", "MSG_SEND", "MSG_DELIVER"}

    def test_report_flag_writes_run_report(self, tmp_path, capsys):
        from repro.obs.report import load_report

        path = tmp_path / "report.json"
        assert main(self.COMMON + ["--report", str(path)]) == 0
        report = load_report(path)
        assert report.seed == 0
        assert report.phases and report.metrics
        assert report.event_counts.get("PROBE", 0) > 0

    def test_trace_rejects_seeds(self, tmp_path):
        with pytest.raises(SystemExit):
            main(self.COMMON + ["--seeds", "0,1",
                                "--trace", str(tmp_path / "t.jsonl")])

    def test_report_with_seeds_writes_aggregate_report(self, tmp_path, capsys):
        from repro.obs.report import load_report

        path = tmp_path / "agg.json"
        assert main(self.COMMON + ["--seeds", "0,1", "--report", str(path)]) == 0
        report = load_report(path)
        assert report.metrics.get("replicate.n_replicas") == 2.0
        assert "final_lookup_latency_ms_mean" in report.samples
        assert "final_lookup_latency_ms_std" in report.samples
        assert report.seed == 0  # first seed identifies the family
        assert "aggregate report (2 seeds)" in capsys.readouterr().err

    def test_empty_trace_warns_on_stderr(self, tmp_path, capsys):
        # no optimizer -> no protocol activity -> zero events; the file
        # is still written (empty) but the CLI must say so
        path = tmp_path / "empty.jsonl"
        argv = [
            "run", "--preset", "ts-small", "--n", "60",
            "--duration", "300", "--sample-interval", "150", "--lookups", "20",
            "--trace", str(path),
        ]
        assert main(argv) == 0
        assert path.exists() and path.read_text() == ""
        err = capsys.readouterr().err
        assert "warning" in err and "no trace events" in err

    def test_monitor_prints_live_status_lines(self, capsys):
        assert main(self.COMMON + ["--monitor"]) == 0
        err = capsys.readouterr().err
        assert "[warmup]" in err or "[maintenance]" in err
        assert "[done]" in err
        assert "exch" in err

    def test_monitor_with_seeds_prints_rollup(self, capsys):
        assert main(self.COMMON + ["--seeds", "0,1", "--monitor"]) == 0
        err = capsys.readouterr().err
        assert "[1/2]" in err and "[2/2]" in err

    def test_profile_prints_stage_table(self, capsys):
        assert main(self.COMMON + ["--profile"]) == 0
        out = capsys.readouterr().out
        assert "build_world" in out and "simulate" in out

    def test_no_trace_flag_means_no_tracer(self, capsys):
        # plain runs keep the NullTracer: nothing observability-related
        # in the output beyond the merged net table
        assert main(self.COMMON) == 0
        assert "build_world" not in capsys.readouterr().out


class TestParallelExecution:
    """Smoke tests keeping the worker-pool path exercised on every run."""

    TINY = [
        "run", "--preset", "ts-small", "--n", "60",
        "--duration", "150", "--sample-interval", "150", "--lookups", "20",
    ]

    def test_run_through_pool(self, capsys):
        assert main(self.TINY + ["--workers", "2"]) == 0
        assert "lookup latency" in capsys.readouterr().out

    def test_multi_seed_replication_with_workers(self, capsys):
        assert main(self.TINY + ["--policy", "G", "--seeds", "0,1",
                                 "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "mean over seeds [0, 1]" in out
        assert "improvement ratio" in out

    def test_seeds_reject_save(self, tmp_path):
        with pytest.raises(SystemExit):
            main(self.TINY + ["--seeds", "0,1",
                              "--save", str(tmp_path / "r.json")])

    def test_malformed_seeds_rejected(self):
        with pytest.raises(SystemExit):
            main(self.TINY + ["--seeds", "0,x"])

    def test_figure_accepts_workers(self):
        args = build_parser().parse_args(["figure", "fig5a", "--workers", "4"])
        assert args.workers == 4
