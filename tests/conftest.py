"""Shared fixtures: a small physical world every suite can afford.

The ``small_*`` fixtures are session-scoped because topology generation
plus the Dijkstra oracle is the expensive part of setup; tests must not
mutate them (mutating tests build their own overlays via the factories).
"""

from __future__ import annotations

import pytest

from repro.netsim.rng import RngRegistry
from repro.overlay.chord import ChordOverlay
from repro.overlay.gnutella import GnutellaOverlay
from repro.topology.latency import LatencyOracle
from repro.topology.transit_stub import (
    LinkLatencies,
    TransitStubParams,
    generate_transit_stub,
)

SMALL_PARAMS = TransitStubParams(
    transit_domains=3,
    transit_nodes_per_domain=3,
    stub_domains_per_transit=2,
    stub_nodes_per_domain=6,
    latencies=LinkLatencies(stub_stub=5.0, stub_transit=20.0, transit_transit=100.0),
)


@pytest.fixture(scope="session")
def small_net():
    """~117-host transit-stub network (9 transit + 108 stub)."""
    rng = RngRegistry(1234).stream("test-topology")
    return generate_transit_stub(SMALL_PARAMS, rng)


@pytest.fixture(scope="session")
def small_oracle(small_net):
    """Latency oracle over 64 random stub hosts of ``small_net``."""
    rng = RngRegistry(1234).stream("test-membership")
    hosts = rng.choice(small_net.stub_hosts, size=64, replace=False)
    return LatencyOracle(small_net, hosts)


@pytest.fixture()
def rngs():
    return RngRegistry(99)


@pytest.fixture()
def gnutella(small_oracle, rngs):
    """Fresh mutable Gnutella overlay over the shared oracle."""
    return GnutellaOverlay.build(small_oracle, rngs.stream("gnutella"), min_degree=3)


@pytest.fixture()
def chord(small_oracle, rngs):
    """Fresh mutable Chord overlay over the shared oracle."""
    return ChordOverlay.build(small_oracle, rngs.stream("chord"))
