"""Message grammar: immutability, tags, and the wire-size model."""

import dataclasses

import pytest

from repro.net.messages import (
    HEADER_BYTES,
    INT_BYTES,
    MSG_TYPES,
    ExchangeAbort,
    ExchangeCommit,
    ExchangePrepare,
    Notify,
    VarProbe,
    VarReply,
    Walk,
)

ONE_OF_EACH = [
    Walk(src=0, dst=1, origin=0, ttl=2, cycle=7, path=(0,)),
    VarProbe(src=1, dst=2, cycle=7),
    VarReply(src=1, dst=0, cycle=7, candidate=1, ok=True, path=(0, 1),
             cand_neighbors=(2, 3)),
    ExchangePrepare(src=0, dst=1, xid=9, cycle=7, policy="G", var=1.5,
                    give_u=(), give_v=()),
    ExchangeCommit(src=1, dst=0, xid=9),
    ExchangeAbort(src=1, dst=0, xid=9, reason="busy"),
    Notify(src=0, dst=3, xid=9, commit=False),
]


def test_grammar_covers_every_type():
    assert sorted(m.type_name for m in ONE_OF_EACH) == sorted(MSG_TYPES)
    assert len(set(MSG_TYPES)) == len(MSG_TYPES)


@pytest.mark.parametrize("msg", ONE_OF_EACH, ids=lambda m: m.type_name)
def test_messages_are_frozen(msg):
    with pytest.raises(dataclasses.FrozenInstanceError):
        msg.src = 99


@pytest.mark.parametrize("msg", ONE_OF_EACH, ids=lambda m: m.type_name)
def test_size_has_header_plus_payload(msg):
    assert msg.size_bytes() >= HEADER_BYTES


def test_size_scales_with_payload_lists():
    short = Walk(src=0, dst=1, origin=0, ttl=2, cycle=7, path=(0,))
    long = Walk(src=0, dst=1, origin=0, ttl=2, cycle=7, path=(0, 1, 2))
    assert long.size_bytes() - short.size_bytes() == 2 * INT_BYTES


def test_size_counts_scalars_and_strings():
    commit = ExchangeCommit(src=1, dst=0, xid=9)
    assert commit.size_bytes() == HEADER_BYTES + INT_BYTES  # xid only
    abort = ExchangeAbort(src=1, dst=0, xid=9, reason="busy")
    assert abort.size_bytes() == HEADER_BYTES + INT_BYTES + len("busy")
