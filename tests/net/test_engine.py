"""MessagePROPEngine: cycle mechanics and two-phase exchange safety.

These are targeted unit tests; the exhaustive any-fault-pattern
invariant check lives in ``tests/properties/test_fault_safety.py`` and
the inline-equivalence guarantee in
``tests/integration/test_net_bridge.py``.
"""

import pytest

from repro.core.config import PROPConfig
from repro.net.engine import MessagePROPEngine, NetConfig
from repro.net.messages import ExchangeCommit, Notify
from repro.net.transport import SimTransport
from repro.netsim.engine import Simulator
from repro.netsim.rng import RngRegistry


class DropFirst:
    """Transport decorator dropping the first ``n`` messages of a type."""

    def __init__(self, inner, drop_type, n=1):
        self.inner = inner
        self.drop_type = drop_type
        self.remaining = n

    @property
    def stats(self):
        return self.inner.stats

    def register(self, slot, handler):
        self.inner.register(slot, handler)

    def send(self, msg, extra_delay_ms=0.0):
        if isinstance(msg, self.drop_type) and self.remaining > 0:
            self.remaining -= 1
            self.stats.record_send(msg)
            self.stats.record_drop(msg, "test-drop")
            return
        self.inner.send(msg, extra_delay_ms=extra_delay_ms)


def _engine(overlay, *, policy="G", transport_wrap=None, net=None, **prop_kw):
    sim = Simulator()
    rngs = RngRegistry(7)
    transport = SimTransport(sim, overlay)
    if transport_wrap is not None:
        transport = transport_wrap(transport)
    config = PROPConfig(policy=policy, **prop_kw)
    engine = MessagePROPEngine(overlay, config, sim, rngs, transport, net=net)
    return engine, sim, transport


def _edge_set(overlay):
    return {
        (min(u, w), max(u, w))
        for u in range(overlay.n_slots)
        for w in overlay.neighbor_list(u)
    }


class TestNetConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(reply_timeout=0.0),
            dict(vote_timeout=-1.0),
            dict(prepared_timeout=0.0),
            dict(max_prepare_retries=-1),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NetConfig(**kwargs)

    def test_defaults_resolve_within_probe_period(self):
        net = NetConfig()
        assert net.reply_timeout < PROPConfig().init_timer
        assert net.prepared_timeout < PROPConfig().init_timer


class TestFaultFreeOperation:
    def test_prop_g_exchanges_and_preserves_structure(self, gnutella):
        engine, sim, tr = _engine(gnutella, policy="G")
        edges = _edge_set(gnutella)
        hosts = sorted(gnutella.embedding.tolist())
        engine.start()
        sim.run_until(900.0)
        assert engine.counters.exchanges > 0
        # PROP-G swaps positions: logical graph untouched, embedding a
        # permutation of the original hosts (Theorem 2 by construction).
        assert _edge_set(gnutella) == edges
        assert sorted(gnutella.embedding.tolist()) == hosts
        assert not engine._prepared and not engine._cycles

    def test_prop_o_preserves_degree_multiset(self, gnutella):
        engine, sim, tr = _engine(gnutella, policy="O", m=2)
        degrees = sorted(gnutella.degree_sequence().tolist())
        engine.start()
        sim.run_until(900.0)
        assert engine.counters.exchanges > 0
        assert sorted(gnutella.degree_sequence().tolist()) == degrees

    def test_no_timeouts_without_faults(self, gnutella):
        engine, sim, _ = _engine(gnutella, policy="G")
        engine.start()
        sim.run_until(600.0)
        nc = engine.net_counters
        assert nc.walk_timeouts == 0
        assert nc.vote_timeouts == 0
        assert nc.prepared_timeouts == 0

    def test_control_traffic_not_in_legacy_counters(self, gnutella):
        engine, sim, tr = _engine(gnutella, policy="G")
        engine.start()
        sim.run_until(600.0)
        c = engine.counters
        assert tr.stats.sent["WALK"] == c.walk_messages
        assert (tr.stats.sent["VAR_PROBE"] + tr.stats.sent["VAR_REPLY"]
                == c.collect_messages)
        assert tr.stats.sent["NOTIFY"] == c.notify_messages
        assert tr.stats.sent["EXCHANGE_PREPARE"] >= c.exchanges


class TestTwoPhaseSafety:
    def test_lost_commit_vote_never_half_applies(self, gnutella):
        """Dropping the participant's yes-vote must leave the graph intact."""
        engine, sim, tr = _engine(
            gnutella, policy="G",
            transport_wrap=lambda t: DropFirst(t, ExchangeCommit, n=3),
            net=NetConfig(max_prepare_retries=0),
        )
        edges = _edge_set(gnutella)
        hosts = sorted(gnutella.embedding.tolist())
        engine.start()
        sim.run_until(1200.0)
        assert engine.net_counters.vote_timeouts >= 1
        assert _edge_set(gnutella) == edges
        assert sorted(gnutella.embedding.tolist()) == hosts
        assert not engine._prepared  # every lock released

    def test_prepare_retry_recovers_lost_vote(self, gnutella):
        """With retries enabled a lost vote only delays the exchange."""
        engine, sim, _ = _engine(
            gnutella, policy="G",
            transport_wrap=lambda t: DropFirst(t, ExchangeCommit, n=1),
            net=NetConfig(max_prepare_retries=2),
        )
        engine.start()
        sim.run_until(1200.0)
        assert engine.net_counters.prepare_retries >= 1
        assert engine.counters.exchanges > 0

    def test_lost_notify_lock_self_heals(self, gnutella):
        """A participant that never hears the outcome unlocks on timeout."""
        engine, sim, _ = _engine(
            gnutella, policy="G",
            transport_wrap=lambda t: DropFirst(t, Notify, n=50),
            net=NetConfig(prepared_timeout=15.0),
        )
        engine.start()
        sim.run_until(1200.0)
        assert engine.counters.exchanges > 0
        assert engine.net_counters.prepared_timeouts >= 1
        assert not engine._prepared

    def test_reset_slot_clears_inflight_state_and_keeps_probing(self, gnutella):
        engine, sim, _ = _engine(gnutella, policy="G")
        engine.start()
        sim.run_until(61.0)  # mid-flight: some cycle is usually open
        victim = next(iter(engine._cycles), 0)
        engine.reset_slot(victim)
        assert victim not in engine._cycles
        assert victim not in engine._prepared
        before = engine.counters.probes
        sim.run_until(400.0)
        assert engine.counters.probes > before
        assert not engine._prepared and not engine._cycles


class TestCounters:
    def test_var_history_grows_with_evaluated_cycles(self, gnutella):
        engine, sim, _ = _engine(gnutella, policy="G")
        engine.start()
        sim.run_until(600.0)
        assert len(engine.counters.var_history) > 0
        assert len(engine.counters.var_history) <= engine.counters.probes

    def test_exchange_log_records_commits(self, gnutella):
        engine, sim, _ = _engine(gnutella, policy="G")
        engine.start()
        sim.run_until(600.0)
        log = engine.counters.exchange_log
        assert len(log) == engine.counters.exchanges
        assert all(rec.var > 0 for rec in log)
