"""SimTransport delivery semantics and TransportStats bookkeeping."""

import pytest

from repro.net.messages import VarProbe, Walk
from repro.net.transport import SimTransport, TransportStats
from repro.netsim.engine import Simulator


def _transport(overlay, **kwargs):
    sim = Simulator()
    return sim, SimTransport(sim, overlay, **kwargs)


class TestDelivery:
    def test_delivers_after_oracle_latency(self, gnutella):
        sim, tr = _transport(gnutella)
        seen = []
        tr.register(1, seen.append)
        msg = VarProbe(src=0, dst=1, cycle=1)
        tr.send(msg)
        sim.run()
        assert seen == [msg]
        assert sim.now == pytest.approx(gnutella.latency(0, 1) * 1e-3)

    def test_latency_scale_zero_delivers_at_send_time_in_order(self, gnutella):
        sim, tr = _transport(gnutella, latency_scale=0.0)
        seen = []
        tr.register(1, seen.append)
        first = VarProbe(src=0, dst=1, cycle=1)
        second = VarProbe(src=2, dst=1, cycle=2)
        sim.schedule(5.0, tr.send, first)
        sim.schedule(5.0, tr.send, second)
        sim.run()
        assert seen == [first, second]  # insertion order at one timestamp
        assert sim.now == 5.0

    def test_extra_delay_is_added(self, gnutella):
        sim, tr = _transport(gnutella, latency_scale=0.0)
        tr.register(1, lambda m: None)
        tr.send(VarProbe(src=0, dst=1, cycle=1), extra_delay_ms=250.0)
        sim.run()
        assert sim.now == pytest.approx(0.25)

    def test_unregistered_destination_still_counts_delivery(self, gnutella):
        sim, tr = _transport(gnutella)
        tr.send(VarProbe(src=0, dst=1, cycle=1))
        sim.run()
        assert tr.stats.delivered["VAR_PROBE"] == 1

    def test_tap_runs_after_handler(self, gnutella):
        sim, tr = _transport(gnutella)
        order = []
        tr.register(1, lambda m: order.append("handler"))
        tr.tap = lambda m: order.append("tap")
        tr.send(VarProbe(src=0, dst=1, cycle=1))
        sim.run()
        assert order == ["handler", "tap"]

    def test_negative_latency_scale_rejected(self, gnutella):
        with pytest.raises(ValueError):
            _transport(gnutella, latency_scale=-1.0)


class TestStats:
    def test_send_deliver_accounting(self, gnutella):
        sim, tr = _transport(gnutella)
        tr.register(1, lambda m: None)
        walk = Walk(src=0, dst=1, origin=0, ttl=1, cycle=1, path=(0,))
        tr.send(walk)
        tr.send(VarProbe(src=0, dst=1, cycle=1))
        assert tr.stats.total_sent == 2
        assert tr.stats.in_flight == 2
        assert tr.stats.max_in_flight == 2
        assert tr.stats.bytes_sent == walk.size_bytes() + VarProbe(
            src=0, dst=1, cycle=1
        ).size_bytes()
        sim.run()
        assert tr.stats.total_delivered == 2
        assert tr.stats.in_flight == 0
        assert tr.stats.max_in_flight == 2

    def test_drop_accounting(self):
        stats = TransportStats()
        msg = VarProbe(src=0, dst=1, cycle=1)
        stats.record_send(msg)
        stats.record_drop(msg, "loss")
        assert stats.total_dropped == 1
        assert stats.drop_reasons["loss"] == 1
        assert stats.in_flight == 0
