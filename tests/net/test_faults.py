"""FaultyTransport loss/partition injection and the PartitionSpec grammar."""

import numpy as np
import pytest

from repro.net.faults import FaultyTransport, PartitionSpec
from repro.net.messages import VarProbe
from repro.net.transport import SimTransport
from repro.netsim.engine import Simulator


def _faulty(overlay, **kwargs):
    sim = Simulator()
    inner = SimTransport(sim, overlay)
    rng = np.random.default_rng(42)
    return sim, FaultyTransport(inner, rng, **kwargs)


def _ping(i=0, j=1):
    return VarProbe(src=i, dst=j, cycle=1)


class TestLoss:
    def test_zero_loss_drops_nothing(self, gnutella):
        sim, tr = _faulty(gnutella, loss=0.0)
        for _ in range(50):
            tr.send(_ping())
        sim.run()
        assert tr.stats.total_dropped == 0
        assert tr.stats.total_delivered == 50

    def test_loss_rate_is_respected(self, gnutella):
        sim, tr = _faulty(gnutella, loss=0.5)
        for _ in range(400):
            tr.send(_ping())
        sim.run()
        dropped = tr.stats.dropped["VAR_PROBE"]
        assert 140 <= dropped <= 260  # ~Binomial(400, 0.5)
        assert tr.stats.drop_reasons["loss"] == dropped
        assert tr.stats.total_delivered + dropped == 400

    def test_loss_is_seed_deterministic(self, gnutella):
        outcomes = []
        for _ in range(2):
            sim, tr = _faulty(gnutella, loss=0.3)
            for _ in range(100):
                tr.send(_ping())
            sim.run()
            outcomes.append(tr.stats.total_dropped)
        assert outcomes[0] == outcomes[1]

    def test_per_link_loss_mapping_is_symmetric(self, gnutella):
        sim, tr = _faulty(gnutella, loss={(1, 0): 1.0 - 1e-12})
        tr.send(_ping(0, 1))  # looked up as (0,1) then (1,0)
        tr.send(_ping(2, 3))  # not in the map: lossless
        sim.run()
        assert tr.stats.total_dropped == 1
        assert tr.stats.total_delivered == 1

    def test_callable_loss(self, gnutella):
        sim, tr = _faulty(gnutella, loss=lambda s, d: 1.0 - 1e-12 if s == 0 else 0.0)
        tr.send(_ping(0, 1))
        tr.send(_ping(1, 0))
        sim.run()
        assert tr.stats.total_dropped == 1

    def test_invalid_rates_rejected(self, gnutella):
        with pytest.raises(ValueError):
            _faulty(gnutella, loss=1.0)
        with pytest.raises(ValueError):
            _faulty(gnutella, extra_delay_ms=-1.0)
        with pytest.raises(ValueError):
            _faulty(gnutella, reorder_prob=1.5)


class TestDelayAndReorder:
    def test_extra_delay_shifts_delivery(self, gnutella):
        sim, tr = _faulty(gnutella, extra_delay_ms=500.0)
        tr.register(1, lambda m: None)
        tr.send(_ping())
        sim.run()
        assert sim.now >= 0.5

    def test_reorder_can_overtake(self, gnutella):
        sim, tr = _faulty(gnutella, reorder_prob=0.5, reorder_ms=500.0)
        seen = []
        tr.register(1, lambda m: seen.append(m.cycle))
        for i in range(40):
            tr.send(VarProbe(src=0, dst=1, cycle=i))
        sim.run()
        assert sorted(seen) == list(range(40))
        assert seen != sorted(seen)  # at least one overtake at these rates


class TestPartitions:
    def test_partition_severs_both_directions(self, gnutella):
        sim, tr = _faulty(gnutella)
        tr.partition("a:b", {0, 1}, {2, 3})
        tr.send(_ping(0, 2))
        tr.send(_ping(3, 1))
        tr.send(_ping(0, 1))  # same side: unaffected
        sim.run()
        assert tr.stats.drop_reasons["partition"] == 2
        assert tr.stats.total_delivered == 1

    def test_heal_restores_links(self, gnutella):
        sim, tr = _faulty(gnutella)
        tr.partition("a:b", {0}, {1})
        tr.heal("a:b")
        tr.send(_ping(0, 1))
        sim.run()
        assert tr.stats.total_dropped == 0
        tr.heal("never-existed")  # no-op

    def test_overlapping_groups_rejected(self, gnutella):
        _, tr = _faulty(gnutella)
        with pytest.raises(ValueError):
            tr.partition("bad", {0, 1}, {1, 2})


class TestPartitionSpec:
    def test_parse_plain(self):
        spec = PartitionSpec.parse("east:west")
        assert spec.name == "east:west"
        assert spec.start is None and spec.end is None

    def test_parse_with_window(self):
        spec = PartitionSpec.parse("a:b@120-300")
        assert (spec.start, spec.end) == (120.0, 300.0)

    @pytest.mark.parametrize("bad", ["a", "a:", ":b", "a:b:c", "a:b@x-y", "a:b@300-120"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            PartitionSpec.parse(bad)

    def test_groups_are_contiguous_halves(self):
        a, b = PartitionSpec.parse("a:b").groups(10)
        assert a == frozenset(range(5))
        assert b == frozenset(range(5, 10))

    def test_install_with_window_schedules_and_heals(self, gnutella):
        sim, tr = _faulty(gnutella)
        PartitionSpec.parse("a:b@10-20").install(tr, sim, 64)
        assert tr.partitions == {}
        sim.run_until(15.0)
        assert "a:b" in tr.partitions
        sim.run_until(25.0)
        assert tr.partitions == {}

    def test_install_without_window_applies_now(self, gnutella):
        sim, tr = _faulty(gnutella)
        PartitionSpec.parse("a:b").install(tr, sim, 64)
        assert "a:b" in tr.partitions
