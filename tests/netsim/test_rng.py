"""Reproducibility contract of the named RNG streams."""

import numpy as np
import pytest

from repro.netsim.rng import RngRegistry, derive_seed


def test_same_seed_same_name_same_draws():
    a = RngRegistry(42).stream("walk").random(8)
    b = RngRegistry(42).stream("walk").random(8)
    assert np.array_equal(a, b)


def test_different_names_different_draws():
    reg = RngRegistry(42)
    a = reg.stream("walk").random(8)
    b = reg.stream("lookup").random(8)
    assert not np.array_equal(a, b)


def test_different_seeds_different_draws():
    a = RngRegistry(1).stream("walk").random(8)
    b = RngRegistry(2).stream("walk").random(8)
    assert not np.array_equal(a, b)


def test_stream_is_cached_and_stateful():
    reg = RngRegistry(7)
    s1 = reg.stream("x")
    first = s1.random(4)
    s2 = reg.stream("x")
    assert s1 is s2
    assert not np.array_equal(first, s2.random(4))


def test_fresh_restarts_stream():
    reg = RngRegistry(7)
    a = reg.fresh("x").random(4)
    reg.stream("x").random(100)  # consume the cached stream
    b = reg.fresh("x").random(4)
    assert np.array_equal(a, b)


def test_adding_streams_does_not_perturb_existing():
    reg1 = RngRegistry(3)
    _ = reg1.stream("a").random(4)
    after1 = reg1.stream("a").random(4)

    reg2 = RngRegistry(3)
    _ = reg2.stream("a").random(4)
    _ = reg2.stream("brand-new").random(1000)
    after2 = reg2.stream("a").random(4)
    assert np.array_equal(after1, after2)


def test_spawn_creates_independent_namespace():
    reg = RngRegistry(5)
    child1 = reg.spawn("node:1").stream("walk").random(4)
    child2 = reg.spawn("node:2").stream("walk").random(4)
    again = RngRegistry(5).spawn("node:1").stream("walk").random(4)
    assert not np.array_equal(child1, child2)
    assert np.array_equal(child1, again)


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        derive_seed(1, "")


def test_derive_seed_stable():
    s1 = derive_seed(10, "abc").generate_state(2)
    s2 = derive_seed(10, "abc").generate_state(2)
    assert np.array_equal(s1, s2)
