"""EventQueue ordering, cancellation, and bookkeeping."""

import pytest

from repro.netsim.events import EventQueue


def test_empty_queue():
    q = EventQueue()
    assert len(q) == 0
    assert not q
    assert q.peek_time() is None
    with pytest.raises(IndexError):
        q.pop()


def test_orders_by_time():
    q = EventQueue()
    q.push(3.0, lambda: None)
    q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert [q.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]


def test_ties_broken_by_insertion_order():
    q = EventQueue()
    out = []
    q.push(1.0, out.append, "a")
    q.push(1.0, out.append, "b")
    q.push(1.0, out.append, "c")
    while q:
        ev = q.pop()
        ev.callback(*ev.args)
    assert out == ["a", "b", "c"]


def test_same_timestamp_tiebreak_survives_interleaved_pops_and_cancels():
    """Insertion order at one timestamp is stable under queue churn.

    The message transport relies on this: at ``latency_scale=0`` a whole
    probe cascade shares one timestamp and must replay in send order
    even while unrelated events are pushed, popped, and cancelled.
    """
    q = EventQueue()
    out = []
    early = q.push(1.0, out.append, "early")
    q.push(2.0, out.append, "a")
    doomed = q.push(2.0, out.append, "doomed")
    q.push(2.0, out.append, "b")
    ev = q.pop()  # interleaved pop of the earlier event
    ev.callback(*ev.args)
    q.push(2.0, out.append, "c")
    doomed.cancel()
    q.push(2.0, out.append, "d")
    while q:
        ev = q.pop()
        ev.callback(*ev.args)
    assert out == ["early", "a", "b", "c", "d"]
    assert early.time == 1.0


def test_cancel_after_pop_is_noop():
    """A handle whose event already fired cannot corrupt the live count.

    Regression: protocol code cancels its timeout handle while running
    *inside* that timeout's callback; the double-decrement used to drive
    ``_live`` negative, making the queue report empty with events still
    heaped (an infinite ``run_until`` spin in the simulator).
    """
    q = EventQueue()
    h = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    ev = q.pop()
    assert ev.time == 1.0
    assert h.cancel() is False  # already fired: dead, not cancellable
    assert not h.pending
    assert len(q) == 1
    assert q
    assert q.pop().time == 2.0


def test_negative_time_rejected():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.push(-1.0, lambda: None)


def test_len_counts_live_events():
    q = EventQueue()
    h1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert len(q) == 2
    h1.cancel()
    assert len(q) == 1


def test_cancelled_events_skipped():
    q = EventQueue()
    h1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    h1.cancel()
    assert q.pop().time == 2.0


def test_cancel_is_idempotent():
    q = EventQueue()
    h = q.push(1.0, lambda: None)
    assert h.cancel() is True
    assert h.cancel() is False


def test_handle_reports_pending():
    q = EventQueue()
    h = q.push(1.0, lambda: None)
    assert h.pending
    h.cancel()
    assert not h.pending


def test_peek_time_skips_cancelled_head():
    q = EventQueue()
    h = q.push(1.0, lambda: None)
    q.push(5.0, lambda: None)
    h.cancel()
    assert q.peek_time() == 5.0


def test_clear_resets():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.clear()
    assert len(q) == 0
    assert q.peek_time() is None


def test_args_carried():
    q = EventQueue()
    q.push(1.0, lambda a, b: None, 1, 2)
    ev = q.pop()
    assert ev.args == (1, 2)
